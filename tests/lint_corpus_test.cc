// Lints every program in examples/queries/ and asserts none of them
// reports an error — the example corpus must always parse, analyze, and
// stay presentable. Warnings are allowed (several examples exist precisely
// to demonstrate trap diagnostics) and are pinned per file below.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "arc/lint.h"
#include "sql/eval.h"
#include "text/parser.h"

namespace arc {
namespace {

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::set<std::string> Codes(const LintResult& result) {
  std::set<std::string> codes;
  for (const Diagnostic& d : result.findings) codes.insert(d.code);
  return codes;
}

TEST(LintCorpus, EveryExampleQueryLintsWithoutErrors) {
  const std::filesystem::path dir =
      std::filesystem::path(ARC_EXAMPLES_DIR) / "queries";
  // Which trap diagnostics each demonstration file is expected to carry.
  // Files absent from this map must lint completely clean.
  const std::map<std::string, std::set<std::string>> expected = {
      {"fig21a_count_bug_original.arc", {"ARC-W101", "ARC-W103"}},
      {"fig21b_count_bug_decorrelated.arc", {"ARC-W103", "ARC-W109"}},
      {"fig21c_count_bug_corrected.arc", {"ARC-W103"}},
      {"eq15_convention_divergence.arc", {"ARC-W103", "ARC-W104"}},
      {"not_in_null_trap.arc", {"ARC-W102"}},
  };
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".arc") continue;
    ++files;
    const std::string name = entry.path().filename().string();
    SCOPED_TRACE(name);
    auto program = text::ParseProgram(ReadFile(entry.path()));
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    // Each example ships a sidecar setup script with its schemas; linting
    // against them lets the range-class-dependent passes participate.
    LintOptions opts;
    data::Database db;
    std::filesystem::path setup = entry.path();
    setup.replace_extension(".setup.sql");
    ASSERT_TRUE(std::filesystem::exists(setup)) << setup;
    auto built = sql::ExecuteSetupScript(ReadFile(setup));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    db = std::move(*built);
    opts.analyze.database = &db;
    LintResult result = Lint(*program, opts);
    EXPECT_TRUE(result.ok()) << LintToText(result);
    auto it = expected.find(name);
    EXPECT_EQ(Codes(result),
              it == expected.end() ? std::set<std::string>{} : it->second)
        << LintToText(result);
  }
  EXPECT_GE(files, 8);
}

}  // namespace
}  // namespace arc
