// Tests for the CSV loader/saver, the ALT-format parser, and the random
// query generator.
#include <gtest/gtest.h>

#include "arc/random_query.h"
#include "data/csv.h"
#include "data/generators.h"
#include "text/alt_parser.h"
#include "text/parser.h"
#include "text/printer.h"

namespace arc {
namespace {

using data::Relation;
using data::Value;

TEST(Csv, ParsesTypesAndNulls) {
  auto rel = data::RelationFromCsv(
      "A,B,C,D\n"
      "1,2.5,hello,\n"
      "-3,true,\"with,comma\",x\n");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel->size(), 2);
  EXPECT_EQ(rel->rows()[0].at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(rel->rows()[0].at(1).as_double(), 2.5);
  EXPECT_EQ(rel->rows()[0].at(2).as_string(), "hello");
  EXPECT_TRUE(rel->rows()[0].at(3).is_null());
  EXPECT_EQ(rel->rows()[1].at(0).as_int(), -3);
  EXPECT_EQ(rel->rows()[1].at(1).as_bool(), true);
  EXPECT_EQ(rel->rows()[1].at(2).as_string(), "with,comma");
}

TEST(Csv, RoundTrip) {
  Relation r(data::Schema{"A", "B"});
  r.Add({Value::Int(1), Value::String("a,b")});
  r.Add({Value::Null(), Value::Double(1.5)});
  r.Add({Value::Bool(true), Value::String("quote\"d")});
  auto again = data::RelationFromCsv(data::RelationToCsv(r));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(r.EqualsBag(*again))
      << data::RelationToCsv(r) << "\nvs\n" << data::RelationToCsv(*again);
}

TEST(Csv, Errors) {
  EXPECT_FALSE(data::RelationFromCsv("").ok());
  EXPECT_FALSE(data::RelationFromCsv("A,B\n1\n").ok());       // width
  EXPECT_FALSE(data::RelationFromCsv("A\n\"unterminated\n").ok());
}

TEST(Csv, FileRoundTrip) {
  Relation r(data::Schema{"x"});
  r.Add({Value::Int(7)});
  const std::string path = ::testing::TempDir() + "/arc_csv_test.csv";
  ASSERT_TRUE(data::SaveCsvFile(r, path).ok());
  data::Database db;
  ASSERT_TRUE(data::LoadCsvFile(path, "T", &db).ok());
  EXPECT_TRUE(db.GetPtr("T")->EqualsBag(r));
  EXPECT_FALSE(data::LoadCsvFile("/nonexistent/file.csv", "X", &db).ok());
}

// ---------------------------------------------------------------------------
// ALT parser
// ---------------------------------------------------------------------------

TEST(AltParser, RoundTripsPaperCorpus) {
  const char* corpus[] = {
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}",
      "{Q(A, sm) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and Q.sm = sum(r.B)]}",
      "{Q(A, sm) | exists r in R, x in {X(sm) | exists r2 in R, gamma() "
      "[r2.A = r.A and X.sm = sum(r2.B)]} [Q.A = r.A and Q.sm = x.sm]}",
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}",
      "{Q(m, n) | exists r in R, s in S, left(r, inner(11, s)) "
      "[Q.m = r.m and Q.n = s.n and r.y = s.y and r.h = 11]}",
      "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
      "[s.A = r.A or s.A is null or r.A is null])]}",
      "exists r in R [exists s in S, gamma() "
      "[r.id = s.id and r.q <= count(s.d)]]",
      "abstract define {S(left, right) | not(exists l3 in L "
      "[l3.d = S.left])} {Q(d) | exists l1 in L [Q.d = l1.d]}",
  };
  for (const char* source : corpus) {
    auto program = text::ParseProgram(source);
    ASSERT_TRUE(program.ok()) << source;
    const std::string alt = text::PrintAltProgram(*program);
    auto reparsed = text::ParseAltProgram(alt);
    ASSERT_TRUE(reparsed.ok()) << alt << "\n" << reparsed.status().ToString();
    EXPECT_EQ(text::PrintProgram(*program), text::PrintProgram(*reparsed))
        << alt;
  }
}

TEST(AltParser, Errors) {
  EXPECT_FALSE(text::ParseAltProgram("").ok());
  EXPECT_FALSE(text::ParseAltProgram("COLLECTION\n").ok());  // no HEAD
  EXPECT_FALSE(text::ParseAltProgram("COLLECTION\n  HEAD: Q(A)\n").ok());
  EXPECT_FALSE(
      text::ParseAltProgram("COLLECTION\n HEAD: Q(A)\n").ok());  // odd indent
  EXPECT_FALSE(text::ParseAltProgram(
                   "COLLECTION\n  HEAD: Q(A)\n  WHAT: nope\n")
                   .ok());
}

TEST(AltParser, OperatorRelationNames) {
  auto program = text::ParseProgram(
      "{C(v) | exists f in \"*\", gamma() [C.v = sum(f.out)]}");
  ASSERT_TRUE(program.ok());
  const std::string alt = text::PrintAltProgram(*program);
  auto reparsed = text::ParseAltProgram(alt);
  ASSERT_TRUE(reparsed.ok()) << alt << reparsed.status().ToString();
  EXPECT_EQ(text::PrintProgram(*program), text::PrintProgram(*reparsed));
}

// ---------------------------------------------------------------------------
// Random query generator
// ---------------------------------------------------------------------------

TEST(RandomQuery, DeterministicInSeed) {
  data::Database db;
  db.Put("R", data::RandomBinary(5, 5, 0.0, 0.0, 1));
  RandomQueryOptions opts;
  opts.seed = 12;
  auto a = GenerateRandomCollection(db, opts);
  auto b = GenerateRandomCollection(db, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(text::PrintCollection(**a), text::PrintCollection(**b));
  opts.seed = 13;
  auto c = GenerateRandomCollection(db, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(text::PrintCollection(**a), text::PrintCollection(**c));
}

TEST(RandomQuery, EmptyDatabaseRejected) {
  data::Database db;
  RandomQueryOptions opts;
  EXPECT_FALSE(GenerateRandomCollection(db, opts).ok());
}

}  // namespace
}  // namespace arc
