// Differential validation of ArcLint's convention-sensitivity warnings
// (ARC-W102/W103/W104). A warning that says "this query means different
// things under different conventions" must be realizable: there must exist
// an instance on which evaluating under the two conventions actually
// produces different results. ExhibitDivergence searches instance
// mutations for such a witness; the corpus test at the bottom enforces the
// acceptance criterion — every convention warning emitted on a random-query
// corpus is confirmed, so the passes cannot drift into unfalsifiable
// advice.
#include <gtest/gtest.h>

#include <iostream>
#include <map>
#include <string>

#include "arc/conventions.h"
#include "arc/lint.h"
#include "arc/random_query.h"
#include "data/generators.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/differential.h"

namespace arc::translate {
namespace {

// Domain 16 covers every literal the generator can mention (0..15), so
// generated filters are satisfiable and queries stay observationally live —
// a dead query has no behavior for the harness to witness.
data::Database FuzzDb(uint64_t seed) {
  data::Database db;
  data::Relation r = data::RandomBinary(24, 16, 0.15, 0.0, seed);
  db.Put("R", std::move(r));
  data::Relation s0 = data::RandomBinary(20, 16, 0.0, 0.0, seed + 100);
  db.Put("S", data::Relation(data::Schema{"C", "D"}, s0.rows()));
  return db;
}

Program ParseOrDie(const std::string& text) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

// --- FlipConvention ----------------------------------------------------------

TEST(FlipConvention, TogglesExactlyTheRequestedDimension) {
  const Conventions base = Conventions::Arc();
  Conventions m = FlipConvention(base, ConventionDimension::kMultiplicity);
  EXPECT_NE(m.multiplicity, base.multiplicity);
  EXPECT_EQ(m.null_logic, base.null_logic);
  EXPECT_EQ(m.empty_aggregate, base.empty_aggregate);
  Conventions n = FlipConvention(base, ConventionDimension::kNullLogic);
  EXPECT_NE(n.null_logic, base.null_logic);
  Conventions e = FlipConvention(base, ConventionDimension::kEmptyAggregate);
  EXPECT_NE(e.empty_aggregate, base.empty_aggregate);
}

// --- ExhibitDivergence -------------------------------------------------------

TEST(ExhibitDivergence, FindsEmptyAggregateWitnessForEq15) {
  // Eq. (15): sum over a possibly-empty group — NULL vs neutral 0.
  Program program = ParseOrDie(
      "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.a < r.ak and X.sm = sum(s.b)]} [Q.ak = r.ak and Q.sm = x.sm]}");
  data::Database db = data::ConventionInstance();  // R = {(1,2)}, S = ∅
  auto witness =
      ExhibitDivergence(program, db, ConventionDimension::kEmptyAggregate);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->dimension, ConventionDimension::kEmptyAggregate);
  EXPECT_FALSE(witness->base_result.EqualsBag(witness->varied_result));
  // The paper instance itself already diverges — no mutation needed.
  EXPECT_EQ(witness->mutation, "identity");
  EXPECT_FALSE(witness->ToString().empty());
}

TEST(ExhibitDivergence, FindsNullLogicWitnessForNegatedComparison) {
  Program program = ParseOrDie(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and not(s.b = r.a)]}");
  data::Database db;
  db.Put("R", data::Relation(data::Schema{"a"}, {{data::Value::Int(1)}}));
  db.Put("S", data::Relation(data::Schema{"b"}, {{data::Value::Int(2)}}));
  auto witness =
      ExhibitDivergence(program, db, ConventionDimension::kNullLogic);
  // No NULL in the base instance: a null-injecting mutation must be found.
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->mutation.find("null"), std::string::npos)
      << witness->mutation;
  EXPECT_FALSE(witness->base_result.EqualsBag(witness->varied_result));
}

TEST(ExhibitDivergence, FindsMultiplicityWitnessForSum) {
  Program program = ParseOrDie(
      "{Q(t) | exists s in S, gamma() [Q.t = sum(s.d)]}");
  data::Database db;
  db.Put("S", data::Relation(data::Schema{"d"}, {{data::Value::Int(3)}}));
  auto witness =
      ExhibitDivergence(program, db, ConventionDimension::kMultiplicity);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->mutation.find("dup"), std::string::npos)
      << witness->mutation;
}

TEST(ExhibitDivergence, ReturnsNulloptForInsensitiveQuery) {
  // A guarded NOT EXISTS is null-logic insensitive under this evaluator
  // (EXISTS is never unknown): no mutation can exhibit a divergence.
  Program program = ParseOrDie(
      "{Q(a) | exists r in R [Q.a = r.a and "
      "not(exists s in S [s.b = r.a])]}");
  data::Database db;
  db.Put("R", data::Relation(data::Schema{"a"}, {{data::Value::Int(1)}}));
  db.Put("S", data::Relation(data::Schema{"b"}, {{data::Value::Int(2)}}));
  auto witness =
      ExhibitDivergence(program, db, ConventionDimension::kNullLogic);
  EXPECT_FALSE(witness.has_value());
}

// --- ExhibitDivergenceBounded ------------------------------------------------

TEST(ExhibitDivergenceBounded, EscalatesSampledWitnessToMinimalOne) {
  // The null-logic trap again, but exhaustively: the bounded mode walks
  // every instance in ascending row-count order, so its witness is
  // row-count-minimal — here two rows (one R row, one S row with NULL),
  // wherever in the mutation menu the sampled search happened to land.
  Program program = ParseOrDie(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and not(s.b = r.a)]}");
  data::Database db;
  db.Put("R", data::Relation(data::Schema{"a"}));
  db.Put("S", data::Relation(data::Schema{"b"}));
  BoundedWitnessOptions opts;
  opts.domain_size = 2;
  auto witness = ExhibitDivergenceBounded(
      program, db, ConventionDimension::kNullLogic, opts);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->mutation.rfind("bounded(", 0), 0u) << witness->mutation;
  int64_t total_rows = 0;
  for (const std::string& name : witness->instance.Names()) {
    total_rows += witness->instance.GetPtr(name)->rows().size();
  }
  EXPECT_LE(total_rows, 2) << witness->ToString();
  EXPECT_FALSE(witness->base_result.EqualsBag(witness->varied_result));
}

TEST(ExhibitDivergenceBounded, NulloptIsBoundedInsensitivityEvidence) {
  // The fully guarded variant (both operands) is insensitive: exhausting
  // the bounded space (rather than a mutation menu) certifies there is no
  // small witness.
  Program program = ParseOrDie(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and s.b is not null and "
      "r.a is not null and not(s.b = r.a)]}");
  data::Database db;
  db.Put("R", data::Relation(data::Schema{"a"}));
  db.Put("S", data::Relation(data::Schema{"b"}));
  BoundedWitnessOptions opts;
  opts.domain_size = 2;
  auto witness = ExhibitDivergenceBounded(
      program, db, ConventionDimension::kNullLogic, opts);
  EXPECT_FALSE(witness.has_value());
}

// --- ValidateConventionWarnings ----------------------------------------------

TEST(ValidateConventionWarnings, ConfirmsEq15WarningWithSqlCrossCheck) {
  Program program = ParseOrDie(
      "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.a < r.ak and X.sm = sum(s.b)]} [Q.ak = r.ak and Q.sm = x.sm]}");
  data::Database db = data::ConventionInstance();
  LintOptions opts;
  opts.analyze.database = &db;
  LintResult lint = Lint(program, opts);
  ASSERT_TRUE(lint.ok()) << LintToText(lint);
  LintValidationReport report = ValidateConventionWarnings(program, db, lint);
  EXPECT_FALSE(report.entries.empty());
  EXPECT_TRUE(report.AllConfirmed()) << report.ToString();
  // The query renders to SQL, so the witness must carry the independent
  // engine's agreement.
  for (const auto& entry : report.entries) {
    ASSERT_TRUE(entry.witness.has_value());
    EXPECT_TRUE(entry.witness->sql_cross_checked) << report.ToString();
  }
}

TEST(ValidateConventionWarnings, EmptyReportWhenNothingWarns) {
  Program program = ParseOrDie(
      "{Q(a) | exists r in R, s in S [r.a = s.b and Q.a = r.a]}");
  data::Database db;
  db.Put("R", data::Relation(data::Schema{"a"}, {{data::Value::Int(1)}}));
  db.Put("S", data::Relation(data::Schema{"b"}, {{data::Value::Int(1)}}));
  LintOptions opts;
  opts.analyze.database = &db;
  LintResult lint = Lint(program, opts);
  LintValidationReport report = ValidateConventionWarnings(program, db, lint);
  EXPECT_TRUE(report.entries.empty()) << report.ToString();
  EXPECT_TRUE(report.AllConfirmed());
}

// --- the acceptance criterion ------------------------------------------------

// Every convention-sensitivity warning emitted on the random-query corpus
// must be confirmed by the differential harness: either realized by a
// concrete divergence witness, or (for the few generated queries that are
// observationally dead — empty output on every probed instance) proven
// vacuous by the same search. The aggregate floor at the bottom keeps the
// test honest: a harness that only ever reported "vacuous" would fail it.
// The generator is biased toward the trap shapes (correlated scalar
// aggregates, negated filters) so the convention passes actually fire on a
// healthy fraction of the corpus.
TEST(LintCorpusDifferential, ConventionWarningsAreRealizable) {
  std::map<ConventionDimension, int> confirmed;
  int warned_programs = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    data::Database db = FuzzDb(seed * 31 + 1);
    RandomQueryOptions opts;
    opts.seed = seed;
    opts.scalar_agg_probability = 0.3;
    opts.negated_filter_probability = 0.3;
    auto coll = GenerateRandomCollection(db, opts);
    ASSERT_TRUE(coll.ok()) << coll.status().ToString();
    Program program;
    program.main.collection = std::move(coll).value();

    LintOptions lint_opts;
    lint_opts.analyze.database = &db;
    LintResult lint = Lint(program, lint_opts);
    ASSERT_TRUE(lint.ok()) << LintToText(lint);

    LintValidationReport report =
        ValidateConventionWarnings(program, db, lint);
    if (!report.entries.empty()) ++warned_programs;
    EXPECT_TRUE(report.AllConfirmed())
        << text::PrintCollection(*program.main.collection) << "\n"
        << LintToText(lint) << report.ToString();
    for (const auto& entry : report.entries) {
      if (entry.witness.has_value()) ++confirmed[entry.dimension];
    }
  }
  // Random γ∅ scopes mostly correlate a relation with itself on the same
  // attribute, which the ARC-W104 self-join gate rightly suppresses as
  // never-empty — so empty-aggregate witnesses are rare in the random
  // corpus. The deterministic part of the corpus covers that dimension
  // with Eq. 15-shaped programs whose groups genuinely can be empty.
  const char* kTrapPrograms[] = {
      "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.C < r.A and X.sm = sum(s.D)]} [Q.ak = r.A and Q.sm = x.sm]}",
      "{Q(ak, av) | exists r in R, x in {X(av) | exists s in S, gamma() "
      "[s.D < r.B and X.av = avg(s.C)]} [Q.ak = r.B and Q.av = x.av]}",
  };
  for (const char* trap : kTrapPrograms) {
    SCOPED_TRACE(trap);
    data::Database db = FuzzDb(7);
    Program program = ParseOrDie(trap);
    LintOptions lint_opts;
    lint_opts.analyze.database = &db;
    LintResult lint = Lint(program, lint_opts);
    ASSERT_TRUE(lint.ok()) << LintToText(lint);
    LintValidationReport report = ValidateConventionWarnings(program, db, lint);
    ASSERT_FALSE(report.entries.empty()) << LintToText(lint);
    ++warned_programs;
    EXPECT_TRUE(report.AllConfirmed()) << LintToText(lint) << report.ToString();
    for (const auto& entry : report.entries) {
      if (entry.witness.has_value()) ++confirmed[entry.dimension];
    }
  }

  // The corpus must actually exercise the claim: plenty of warned
  // programs, and concrete witnesses for every dimension.
  std::cout << "warned programs: " << warned_programs
            << ", witnesses: multiplicity="
            << confirmed[ConventionDimension::kMultiplicity]
            << " null-logic=" << confirmed[ConventionDimension::kNullLogic]
            << " empty-aggregate="
            << confirmed[ConventionDimension::kEmptyAggregate] << "\n";
  EXPECT_GE(warned_programs, 20);
  EXPECT_GE(confirmed[ConventionDimension::kMultiplicity], 5);
  EXPECT_GE(confirmed[ConventionDimension::kNullLogic], 5);
  EXPECT_GE(confirmed[ConventionDimension::kEmptyAggregate], 3);
}

}  // namespace
}  // namespace arc::translate
