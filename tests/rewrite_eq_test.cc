// Rewriter parity suite: every shipped rewrite must be bounded-equivalent
// to its input — checked exhaustively by ArcVerify over all small database
// instances, not just sampled ones. Two tiers:
//   * a 40-seed random-query corpus at a cheap bound (every instance over
//     a 2-value domain, two rows per relation),
//   * the paper's trap programs (Eq. 15, Fig. 21) at k = 3 with NULL in
//     the domain, under both Arc and Sql conventions — the acceptance
//     bound for the rewrites and the auto-fix gate.
#include <gtest/gtest.h>

#include <string>

#include "arc/conventions.h"
#include "arc/random_query.h"
#include "data/generators.h"
#include "rewrite/rewriter.h"
#include "text/parser.h"
#include "text/printer.h"
#include "verify/bounded_eq.h"

namespace arc::rewrite {
namespace {

Program ParseOrDie(const std::string& text) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(program).value() : Program();
}

/// Asserts `before` and `after` are bounded-equivalent, failing with the
/// counterexample database when they are not.
void ExpectBoundedEquivalent(const Program& before, const Program& after,
                             const verify::BoundedEqOptions& opts,
                             const std::string& label) {
  auto sig = verify::InferSignature(before, after, nullptr);
  ASSERT_TRUE(sig.ok()) << label << ": " << sig.status().ToString();
  auto report = verify::CheckEquivalent(before, after, *sig, opts);
  ASSERT_TRUE(report.ok()) << label << ": " << report.status().ToString();
  EXPECT_TRUE(report->holds)
      << label << "\nbefore: " << text::PrintProgram(before)
      << "\nafter:  " << text::PrintProgram(after) << "\n"
      << report->ToString();
}

// ---------------------------------------------------------------------------
// 40-seed corpus tier.
// ---------------------------------------------------------------------------

data::Database FuzzDb(uint64_t seed) {
  data::Database db;
  data::Relation r = data::RandomBinary(12, 8, 0.1, 0.0, seed);
  db.Put("R", std::move(r));
  data::Relation s0 = data::RandomBinary(10, 8, 0.0, 0.0, seed + 100);
  db.Put("S", data::Relation(data::Schema{"C", "D"}, s0.rows()));
  data::Relation t0 = data::RandomUnary(8, 8, 0.0, seed + 200);
  db.Put("T", data::Relation(data::Schema{"E"}, t0.rows()));
  return db;
}

class RewriteCorpusEq : public ::testing::TestWithParam<uint64_t> {
 protected:
  Program Generate() {
    data::Database db = FuzzDb(GetParam() * 31 + 1);
    RandomQueryOptions opts;
    opts.seed = GetParam();
    auto coll = GenerateRandomCollection(db, opts);
    EXPECT_TRUE(coll.ok()) << coll.status().ToString();
    Program program;
    program.main.collection = std::move(coll).value();
    return program;
  }

  /// Cheap corpus bound: exhaustive over a 2-value domain without NULL
  /// (the NULL axis is exercised by the trap tier below).
  verify::BoundedEqOptions CorpusBound() {
    verify::BoundedEqOptions opts;
    opts.domain_size = 2;
    opts.max_rows = 2;
    opts.include_null = false;
    return opts;
  }
};

TEST_P(RewriteCorpusEq, NormalizeConjunctionsPreservesSemantics) {
  Program p = Generate();
  RewriteResult result = NormalizeConjunctions(p);
  if (result.applications == 0) return;
  ExpectBoundedEquivalent(p, result.program, CorpusBound(), "normalize");
}

TEST_P(RewriteCorpusEq, UnnestPreservesSemanticsUnderSetConventions) {
  Program p = Generate();
  auto result = UnnestExistentialScopes(p, Conventions::Arc());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result->applications == 0) return;
  verify::BoundedEqOptions opts = CorpusBound();
  // The rewrite is only claimed under set multiplicity (its legality
  // precondition): check Arc, not Sql.
  opts.conventions = {Conventions::Arc()};
  ExpectBoundedEquivalent(p, result->program, opts, "unnest");
}

TEST_P(RewriteCorpusEq, DecorrelatePreservesSemantics) {
  Program p = Generate();
  RewriteResult result = DecorrelateAggregation(p);
  if (result.applications == 0) return;
  ExpectBoundedEquivalent(p, result.program, CorpusBound(), "decorrelate");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteCorpusEq,
                         ::testing::Range<uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Trap tier: the paper's own programs at the acceptance bound (k = 3,
// NULL in the domain, both conventions).
// ---------------------------------------------------------------------------

verify::BoundedEqOptions TrapBound() {
  verify::BoundedEqOptions opts;
  opts.domain_size = 3;
  opts.max_rows = 2;
  opts.include_null = true;
  return opts;
}

// Fig. 21a — the count-bug query. DecorrelateAggregation must produce the
// *corrected* (left-join) decorrelation, equivalent at k = 3 under both
// conventions — unlike the naive variant ArcVerify refutes in
// verify_test.cc.
TEST(RewriteTrapEq, DecorrelatedCountBugEquivalentAtAcceptanceBound) {
  Program p = ParseOrDie(
      "{Q(id) | exists r in R [Q.id = r.id and "
      "exists s in S, gamma() [r.id = s.id and r.q = count(s.d)]]}");
  RewriteResult result = DecorrelateAggregation(p);
  ASSERT_GT(result.applications, 0);
  ExpectBoundedEquivalent(p, result.program, TrapBound(),
                          "decorrelate(fig21a)");
}

// Eq. 15 — the empty-aggregate divergence query (sum over an empty group).
// Conjunction normalization must not disturb it under either convention.
TEST(RewriteTrapEq, NormalizedEq15EquivalentAtAcceptanceBound) {
  Program p = ParseOrDie(
      "{Q(ak, sm) | exists r in R, "
      "x in {X(sm) | exists s in S, gamma() [(s.a < r.ak and s.b = s.b) and "
      "X.sm = sum(s.b)]} [Q.ak = r.ak and Q.sm = x.sm]}");
  RewriteResult result = NormalizeConjunctions(p);
  ASSERT_GT(result.applications, 0);
  ExpectBoundedEquivalent(p, result.program, TrapBound(), "normalize(eq15)");
}

// §2.10 — the NOT-IN null trap under a nested existential: unnesting must
// stay equivalent with NULL in the domain (set conventions; the bag-side
// refusal is asserted below).
TEST(RewriteTrapEq, UnnestedNullTrapEquivalentAtAcceptanceBound) {
  Program p = ParseOrDie(
      "{Q(a) | exists r in R [exists s in S [Q.a = r.a and "
      "not(s.b = r.a)]]}");
  auto result = UnnestExistentialScopes(p, Conventions::Arc());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->applications, 0);
  verify::BoundedEqOptions opts = TrapBound();
  opts.conventions = {Conventions::Arc()};
  ExpectBoundedEquivalent(p, result->program, opts, "unnest(null-trap)");
}

// The legality switch itself: under bag conventions the unnest rewrite
// must refuse — ArcVerify's counterexample for the forced variant is the
// planted-wrong-rewrite test in verify_test.cc.
TEST(RewriteTrapEq, UnnestRefusesUnderBagConventions) {
  Program p = ParseOrDie(
      "{Q(a) | exists r in R [exists s in S [Q.a = r.a and "
      "not(s.b = r.a)]]}");
  EXPECT_FALSE(UnnestExistentialScopes(p, Conventions::Sql()).ok());
}

}  // namespace
}  // namespace arc::rewrite
