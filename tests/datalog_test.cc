// Datalog substrate tests: parser, stratified semi-naive evaluation with
// Soufflé conventions, naive-vs-semi-naive agreement, and differential
// equivalence of Datalog→ARC translation under Conventions::Souffle().
#include <gtest/gtest.h>

#include "data/generators.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "text/printer.h"
#include "translate/datalog_to_arc.h"

namespace arc::datalog {
namespace {

using data::Relation;
using data::Schema;
using data::Value;

Relation Rel(Schema schema, std::vector<std::vector<int64_t>> rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) {
    data::Tuple t;
    for (int64_t v : row) t.Append(Value::Int(v));
    r.Add(std::move(t));
  }
  return r;
}

Relation MustEval(const data::Database& db, const std::string& source,
                  const std::string& query, DlEvalOptions opts = {}) {
  auto program = ParseDatalog(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  DlEvaluator ev(db, opts);
  auto out = ev.Eval(*program, query);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? std::move(out).value() : Relation();
}

TEST(DatalogParser, ParsesDeclsRulesFactsAggregates) {
  auto p = ParseDatalog(
      ".decl P(s:number, t:number)\n"
      ".decl A(s, t)\n"
      "P(1, 2).\n"
      "A(x, y) :- P(x, y).\n"
      "A(x, y) :- P(x, z), A(z, y).\n"
      "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.\n"
      "V(x) :- R(x, _), !T(x).\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->decls.size(), 2u);
  EXPECT_EQ(p->facts.size(), 1u);
  EXPECT_EQ(p->rules.size(), 4u);
  EXPECT_EQ(p->rules[2].body[1].kind, LiteralKind::kAggregate);
  EXPECT_EQ(p->rules[3].body[1].kind, LiteralKind::kNegatedAtom);
  // Round-trip through the printer.
  auto again = ParseDatalog(ToDatalog(*p));
  ASSERT_TRUE(again.ok()) << ToDatalog(*p) << again.status().ToString();
  EXPECT_EQ(ToDatalog(*p), ToDatalog(*again));
}

TEST(DatalogParser, Errors) {
  EXPECT_FALSE(ParseDatalog("A(x, y)").ok());       // missing '.'
  EXPECT_FALSE(ParseDatalog("A(x) :- .").ok());     // empty body
  EXPECT_FALSE(ParseDatalog("A(x) :- P(x),.").ok());
  EXPECT_FALSE(ParseDatalog("A(x).").ok());          // non-ground fact
}

TEST(DatalogEval, TransitiveClosure) {
  data::Database db = data::ParentChain(5);
  Relation out = MustEval(
      db,
      "A(x, y) :- P(x, y).\n"
      "A(x, y) :- P(x, z), A(z, y).\n",
      "A");
  EXPECT_EQ(out.size(), 10);
}

TEST(DatalogEval, NaiveAgreesWithSemiNaive) {
  data::Database db = data::ParentRandom(30, 60, 7);
  const std::string src =
      "A(x, y) :- P(x, y).\n"
      "A(x, y) :- P(x, z), A(z, y).\n";
  DlEvalOptions naive;
  naive.semi_naive = false;
  Relation a = MustEval(db, src, "A");
  Relation b = MustEval(db, src, "A", naive);
  EXPECT_TRUE(a.EqualsSet(b));
}

TEST(DatalogEval, StratifiedNegation) {
  data::Database db;
  db.Put("R", Rel(Schema{"x"}, {{1}, {2}, {3}}));
  db.Put("S", Rel(Schema{"x"}, {{2}}));
  Relation out = MustEval(db, "V(x) :- R(x), !S(x).", "V");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"x"}, {{1}, {3}})));
}

TEST(DatalogEval, NonStratifiableRejected) {
  data::Database db;
  db.Put("R", Rel(Schema{"x"}, {{1}}));
  auto program = ParseDatalog("P(x) :- R(x), !P(x).");
  ASSERT_TRUE(program.ok());
  DlEvaluator ev(db);
  auto out = ev.Eval(*program, "P");
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("stratifiable"), std::string::npos);
}

TEST(DatalogEval, Eq15SumOverEmptyIsZero) {
  // The paper's §2.6 example: R = {(1,2)}, S = ∅ ⇒ Q(1, 0).
  data::Database db = data::ConventionInstance();
  Relation out = MustEval(
      db, "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.", "Q");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"$1", "$2"}, {{1, 0}})))
      << out.ToString();
}

TEST(DatalogEval, MinOverEmptyDoesNotFire) {
  data::Database db = data::ConventionInstance();
  Relation out = MustEval(
      db, "Q(ak, mn) :- R(ak, _), mn = min b : { S(a, b) }.", "Q");
  EXPECT_TRUE(out.empty());
}

TEST(DatalogEval, CountAggregate) {
  data::Database db;
  db.Put("S", Rel(Schema{"a", "b"}, {{1, 10}, {1, 20}, {2, 30}}));
  db.Put("K", Rel(Schema{"a"}, {{1}, {2}, {3}}));
  Relation out = MustEval(
      db, "Q(k, c) :- K(k), c = count : { S(k2, _), k2 = k }.", "Q");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"$1", "$2"}, {{1, 2}, {2, 1}, {3, 0}})))
      << out.ToString();
}

TEST(DatalogEval, GroundingEquality) {
  data::Database db;
  db.Put("R", Rel(Schema{"x"}, {{1}, {2}}));
  Relation out = MustEval(db, "Q(x, y) :- R(x), y = x * 10 + 1.", "Q");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"$1", "$2"}, {{1, 11}, {2, 21}})));
}

TEST(DatalogEval, FactsAndRulesCombine) {
  data::Database db;
  Relation out = MustEval(
      db,
      "P(0, 1).\nP(1, 2).\n"
      "A(x, y) :- P(x, y).\n"
      "A(x, y) :- P(x, z), A(z, y).\n",
      "A");
  EXPECT_EQ(out.size(), 3);
}

TEST(DatalogEval, WildcardProjection) {
  data::Database db;
  db.Put("R", Rel(Schema{"a", "b"}, {{1, 10}, {1, 20}, {2, 30}}));
  Relation out = MustEval(db, "Q(x) :- R(x, _).", "Q");
  EXPECT_EQ(out.size(), 2);  // set semantics
}

// ---------------------------------------------------------------------------
// Datalog → ARC differential tests
// ---------------------------------------------------------------------------

struct DlCase {
  const char* name;
  const char* source;
  const char* query;
};

const DlCase kDlCases[] = {
    {"Projection", ".decl R(a, b)\nQ(x) :- R(x, _).", "Q"},
    {"JoinConst", ".decl R(a, b)\n.decl S(b, c)\n"
                  "Q(x) :- R(x, y), S(y, 0).", "Q"},
    {"TransitiveClosure",
     ".decl P(s, t)\nA(x, y) :- P(x, y).\nA(x, y) :- P(x, z), A(z, y).",
     "A"},
    {"Negation", ".decl R(a, b)\n.decl S(b, c)\n"
                 "Q(x) :- R(x, y), !S(y, 0).", "Q"},
    {"Comparison", ".decl R(a, b)\nQ(x) :- R(x, y), x < y.", "Q"},
    {"Arith", ".decl R(a, b)\nQ(x, z) :- R(x, y), z = x + y.", "Q"},
    {"SouffleAggregate",
     ".decl R(a, b)\n.decl S(b, c)\n"
     "Q(a, sm) :- R(a, _), sm = sum c : { S(b, c), b < a }.",
     "Q"},
    {"CountAggregate",
     ".decl R(a, b)\n.decl K(a)\n"
     "Q(k, c) :- K(k), c = count : { R(k2, _), k2 = k }.",
     "Q"},
    {"TwoRules",
     ".decl R(a, b)\n.decl S(b, c)\n"
     "Q(x) :- R(x, _).\nQ(x) :- S(_, x).",
     "Q"},
    {"DerivedChain",
     ".decl R(a, b)\n"
     "T(x, y) :- R(x, y), x < y.\n"
     "Q(x) :- T(x, _).",
     "Q"},
};

class DlDifferential : public ::testing::TestWithParam<DlCase> {};

TEST_P(DlDifferential, TranslationMatchesEngine) {
  const DlCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    data::Database db;
    data::Relation r = data::RandomBinary(20, 6, 0.0, 0.0, seed);
    db.Put("R", data::Relation(data::Schema{"a", "b"}, r.rows()));
    data::Relation s = data::RandomBinary(15, 6, 0.0, 0.0, seed + 10);
    db.Put("S", data::Relation(data::Schema{"b", "c"}, s.rows()));
    data::Relation k = data::RandomUnary(6, 6, 0.0, seed + 20);
    db.Put("K", data::Relation(data::Schema{"a"}, k.Distinct().rows()));
    data::Database parents = data::ParentRandom(12, 18, seed);
    db.Put("P", *parents.GetPtr("P"));

    auto program = ParseDatalog(c.source);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    DlEvaluator engine(db);
    auto expected = engine.Eval(*program, c.query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    auto arc_program = translate::DatalogToArc(*program, c.query);
    ASSERT_TRUE(arc_program.ok()) << arc_program.status().ToString();
    eval::EvalOptions eopts;
    eopts.conventions = Conventions::Souffle();
    auto actual = eval::Eval(db, *arc_program, eopts);
    ASSERT_TRUE(actual.ok())
        << actual.status().ToString() << "\nARC:\n"
        << text::PrintProgram(*arc_program);
    EXPECT_TRUE(actual->EqualsSet(*expected))
        << "seed " << seed << "\nARC:\n"
        << text::PrintProgram(*arc_program) << "expected:\n"
        << expected->Sorted().ToString() << "actual:\n"
        << actual->Sorted().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(DlCorpus, DlDifferential, ::testing::ValuesIn(kDlCases),
                         [](const ::testing::TestParamInfo<DlCase>& info) {
                           return info.param.name;
                         });

TEST(DatalogToArc, SouffleAggregateBecomesFoiPattern) {
  auto program = ParseDatalog(
      ".decl R(ak, b)\n.decl S(a, b)\n"
      "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.");
  ASSERT_TRUE(program.ok());
  auto arc_program = translate::DatalogToArc(*program, "Q");
  ASSERT_TRUE(arc_program.ok()) << arc_program.status().ToString();
  const std::string printed = text::PrintProgram(*arc_program);
  // FOI: correlated nested collection with γ∅ (Eq. 7).
  EXPECT_NE(printed.find("gamma()"), std::string::npos) << printed;
  EXPECT_NE(printed.find("sum("), std::string::npos) << printed;
}

TEST(DatalogToArc, MutualRecursionRejected) {
  auto program = ParseDatalog(
      ".decl R(a)\n"
      "P(x) :- R(x).\nP(x) :- T(x).\nT(x) :- P(x), R(x).");
  ASSERT_TRUE(program.ok());
  auto arc_program = translate::DatalogToArc(*program, "P");
  EXPECT_FALSE(arc_program.ok());
  EXPECT_EQ(arc_program.status().code(), StatusCode::kUnsupported);
}

TEST(DatalogToArc, ConventionDivergenceEq15) {
  // Same relational pattern, two conventions: the ARC translation under
  // Souffle() gives 0; under Sql() gives NULL (§2.6).
  data::Database db = data::ConventionInstance();
  auto program = ParseDatalog(
      ".decl R(ak, b)\n.decl S(a, b)\n"
      "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.");
  ASSERT_TRUE(program.ok());
  auto arc_program = translate::DatalogToArc(*program, "Q");
  ASSERT_TRUE(arc_program.ok()) << arc_program.status().ToString();
  eval::EvalOptions souffle;
  souffle.conventions = Conventions::Souffle();
  auto as_souffle = eval::Eval(db, *arc_program, souffle);
  ASSERT_TRUE(as_souffle.ok()) << as_souffle.status().ToString();
  ASSERT_EQ(as_souffle->size(), 1);
  EXPECT_EQ(as_souffle->rows()[0].at(1).as_int(), 0);
  eval::EvalOptions sql;
  sql.conventions = Conventions::Sql();
  auto as_sql = eval::Eval(db, *arc_program, sql);
  ASSERT_TRUE(as_sql.ok());
  ASSERT_EQ(as_sql->size(), 1);
  EXPECT_TRUE(as_sql->rows()[0].at(1).is_null());
}

}  // namespace
}  // namespace arc::datalog
