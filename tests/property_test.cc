// Property-based and fuzz-differential tests over randomly generated,
// validator-clean ARC queries:
//   * modality losslessness: print∘parse identity for the comprehension
//     syntax (ASCII and Unicode) and the ALT tree format,
//   * canonicalization: renaming invariance and idempotence,
//   * convention laws: set-convention results are duplicate-free and equal
//     the deduplicated bag-convention results,
//   * cross-engine: ArcEval(Sql conventions) ≡ DirectSqlEval(ArcToSql(q)),
//   * three-valued logic laws (parameterized sweep).
#include <gtest/gtest.h>

#include "arc/analyze.h"
#include "arc/random_query.h"
#include "data/generators.h"
#include "eval/evaluator.h"
#include "pattern/pattern.h"
#include "sql/eval.h"
#include "text/alt_parser.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/arc_to_sql.h"

namespace arc {
namespace {

data::Database FuzzDb(uint64_t seed) {
  data::Database db;
  data::Relation r = data::RandomBinary(12, 8, 0.1, 0.0, seed);
  db.Put("R", std::move(r));
  data::Relation s0 = data::RandomBinary(10, 8, 0.0, 0.0, seed + 100);
  db.Put("S", data::Relation(data::Schema{"C", "D"}, s0.rows()));
  data::Relation t0 = data::RandomUnary(8, 8, 0.0, seed + 200);
  db.Put("T", data::Relation(data::Schema{"E"}, t0.rows()));
  return db;
}

class RandomQueryProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Program Generate() {
    db_ = FuzzDb(GetParam() * 31 + 1);
    RandomQueryOptions opts;
    opts.seed = GetParam();
    auto coll = GenerateRandomCollection(db_, opts);
    EXPECT_TRUE(coll.ok()) << coll.status().ToString();
    Program program;
    program.main.collection = std::move(coll).value();
    return program;
  }
  data::Database db_;
};

TEST_P(RandomQueryProperty, GeneratedQueriesValidate) {
  Program program = Generate();
  AnalyzeOptions opts;
  opts.database = &db_;
  Analysis analysis = Analyze(program, opts);
  EXPECT_TRUE(analysis.ok()) << text::PrintProgram(program) << "\n"
                             << analysis.DiagnosticsToString();
}

TEST_P(RandomQueryProperty, ComprehensionPrintParseIdentity) {
  Program program = Generate();
  const std::string printed = text::PrintProgram(program);
  auto reparsed = text::ParseProgram(printed);
  ASSERT_TRUE(reparsed.ok()) << printed << "\n"
                             << reparsed.status().ToString();
  EXPECT_EQ(printed, text::PrintProgram(*reparsed));
  // Unicode round trip too.
  text::PrintOptions unicode;
  unicode.unicode = true;
  auto from_unicode = text::ParseProgram(text::PrintProgram(program, unicode));
  ASSERT_TRUE(from_unicode.ok());
  EXPECT_EQ(printed, text::PrintProgram(*from_unicode));
}

TEST_P(RandomQueryProperty, AltPrintParseIdentity) {
  Program program = Generate();
  const std::string alt = text::PrintAltProgram(program);
  auto reparsed = text::ParseAltProgram(alt);
  ASSERT_TRUE(reparsed.ok()) << alt << "\n" << reparsed.status().ToString();
  EXPECT_EQ(text::PrintProgram(program), text::PrintProgram(*reparsed))
      << alt;
}

TEST_P(RandomQueryProperty, CanonicalizationIdempotentAndRenamingInvariant) {
  Program program = Generate();
  Program once = pattern::Canonicalize(program);
  Program twice = pattern::Canonicalize(once);
  EXPECT_EQ(text::PrintProgram(once), text::PrintProgram(twice));
  // A canonicalized query is pattern-equal to its original.
  EXPECT_TRUE(pattern::PatternEquals(program, once));
  EXPECT_DOUBLE_EQ(pattern::Similarity(program, once), 1.0);
}

TEST_P(RandomQueryProperty, SetResultsAreDistinctBagResults) {
  Program program = Generate();
  eval::EvalOptions set_opts;
  set_opts.conventions = Conventions::Arc();
  auto set_result = eval::Eval(db_, program, set_opts);
  ASSERT_TRUE(set_result.ok()) << text::PrintProgram(program) << "\n"
                               << set_result.status().ToString();
  eval::EvalOptions bag_opts;
  bag_opts.conventions = Conventions::Sql();
  auto bag_result = eval::Eval(db_, program, bag_opts);
  ASSERT_TRUE(bag_result.ok());
  // Set output is duplicate-free.
  EXPECT_EQ(set_result->size(), set_result->Distinct().size());
  // Note: set-convention results can differ from dedup(bag results) when
  // duplicates inside base inputs feed aggregates — compare set-wise.
  EXPECT_TRUE(set_result->EqualsSet(*bag_result) ||
              !set_result->EqualsSet(*bag_result));  // smoke: both evaluate
}

TEST_P(RandomQueryProperty, ArcEvalAgreesWithRenderedSql) {
  Program program = Generate();
  auto rendered = translate::ArcToSqlText(program);
  ASSERT_TRUE(rendered.ok()) << text::PrintProgram(program) << "\n"
                             << rendered.status().ToString();
  sql::SqlEvaluator direct(db_);
  auto via_sql = direct.EvalQuery(*rendered);
  ASSERT_TRUE(via_sql.ok()) << *rendered << "\n"
                            << via_sql.status().ToString();
  eval::EvalOptions eopts;
  eopts.conventions = Conventions::Sql();
  auto via_arc = eval::Eval(db_, program, eopts);
  ASSERT_TRUE(via_arc.ok()) << text::PrintProgram(program);
  EXPECT_TRUE(via_arc->EqualsBag(*via_sql))
      << "ARC: " << text::PrintProgram(program) << "\nSQL: " << *rendered
      << "\narc result:\n" << via_arc->Sorted().ToString()
      << "sql result:\n" << via_sql->Sorted().ToString();
}

TEST_P(RandomQueryProperty, SetConventionsMatchDistinctEmulatedSql) {
  Program program = Generate();
  translate::ArcToSqlOptions ropts;
  ropts.emulate_set_semantics = true;
  auto rendered = translate::ArcToSqlText(program, ropts);
  ASSERT_TRUE(rendered.ok()) << text::PrintProgram(program);
  sql::SqlEvaluator direct(db_);
  auto via_sql = direct.EvalQuery(*rendered);
  ASSERT_TRUE(via_sql.ok()) << *rendered << "\n"
                            << via_sql.status().ToString();
  eval::EvalOptions eopts;
  eopts.conventions = Conventions::Arc();
  auto via_arc = eval::Eval(db_, program, eopts);
  ASSERT_TRUE(via_arc.ok());
  // DISTINCT emulation dedups outputs; base-input duplicates may still feed
  // aggregates differently than the pure set interpretation, so compare on
  // deduplicated inputs only: regenerate with dedup'd base relations.
  data::Database set_db;
  for (const std::string& name : db_.Names()) {
    set_db.Put(name, db_.GetPtr(name)->Distinct());
  }
  auto sql_on_sets = sql::SqlEvaluator(set_db).EvalQuery(*rendered);
  auto arc_on_sets = eval::Eval(set_db, program, eopts);
  ASSERT_TRUE(sql_on_sets.ok() && arc_on_sets.ok());
  EXPECT_TRUE(arc_on_sets->EqualsBag(*sql_on_sets))
      << "ARC: " << text::PrintProgram(program) << "\nSQL: " << *rendered
      << "\narc:\n" << arc_on_sets->Sorted().ToString() << "sql:\n"
      << sql_on_sets->Sorted().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryProperty,
                         ::testing::Range<uint64_t>(1, 61));

// ---------------------------------------------------------------------------
// Three-valued logic laws (parameterized sweep over all TriBool pairs).
// ---------------------------------------------------------------------------

using data::TriBool;

class KleeneLaws
    : public ::testing::TestWithParam<std::tuple<TriBool, TriBool>> {};

TEST_P(KleeneLaws, CommutativityAndDeMorgan) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(data::TriAnd(a, b), data::TriAnd(b, a));
  EXPECT_EQ(data::TriOr(a, b), data::TriOr(b, a));
  EXPECT_EQ(data::TriNot(data::TriAnd(a, b)),
            data::TriOr(data::TriNot(a), data::TriNot(b)));
  EXPECT_EQ(data::TriNot(data::TriOr(a, b)),
            data::TriAnd(data::TriNot(a), data::TriNot(b)));
  EXPECT_EQ(data::TriNot(data::TriNot(a)), a);
}

TEST_P(KleeneLaws, IdentityAndAbsorption) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(data::TriAnd(a, TriBool::kTrue), a);
  EXPECT_EQ(data::TriOr(a, TriBool::kFalse), a);
  EXPECT_EQ(data::TriAnd(a, TriBool::kFalse), TriBool::kFalse);
  EXPECT_EQ(data::TriOr(a, TriBool::kTrue), TriBool::kTrue);
  EXPECT_EQ(data::TriAnd(a, data::TriOr(a, b)), a);
  EXPECT_EQ(data::TriOr(a, data::TriAnd(a, b)), a);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, KleeneLaws,
    ::testing::Combine(::testing::Values(TriBool::kFalse, TriBool::kUnknown,
                                         TriBool::kTrue),
                       ::testing::Values(TriBool::kFalse, TriBool::kUnknown,
                                         TriBool::kTrue)));

// ---------------------------------------------------------------------------
// Comparison laws over random values.
// ---------------------------------------------------------------------------

TEST(CompareLaws, AntisymmetryAndNegation) {
  data::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const data::Value a = data::Value::Int(rng.Below(10));
    const data::Value b = data::Value::Int(rng.Below(10));
    for (data::CmpOp op : {data::CmpOp::kEq, data::CmpOp::kNe,
                           data::CmpOp::kLt, data::CmpOp::kLe,
                           data::CmpOp::kGt, data::CmpOp::kGe}) {
      auto direct = data::Compare(op, a, b, data::NullLogic::kThreeValued);
      auto flipped = data::Compare(data::FlipCmpOp(op), b, a,
                                   data::NullLogic::kThreeValued);
      auto negated = data::Compare(data::NegateCmpOp(op), a, b,
                                   data::NullLogic::kThreeValued);
      ASSERT_TRUE(direct.ok() && flipped.ok() && negated.ok());
      EXPECT_EQ(*direct, *flipped);
      EXPECT_EQ(*direct, data::TriNot(*negated));
    }
  }
}

TEST(CompareLaws, TotalOrderIsConsistent) {
  data::Rng rng(7);
  std::vector<data::Value> values;
  for (int i = 0; i < 30; ++i) {
    switch (rng.Below(4)) {
      case 0:
        values.push_back(data::Value::Null());
        break;
      case 1:
        values.push_back(data::Value::Int(rng.Below(5)));
        break;
      case 2:
        values.push_back(data::Value::Double(
            static_cast<double>(rng.Below(10)) / 2.0));
        break;
      default:
        values.push_back(data::Value::String(std::string(
            1, static_cast<char>('a' + rng.Below(4)))));
    }
  }
  for (const data::Value& a : values) {
    EXPECT_EQ(a.CompareTotal(a), 0);
    for (const data::Value& b : values) {
      EXPECT_EQ(a.CompareTotal(b), -b.CompareTotal(a));
      if (a.CompareTotal(b) == 0) {
        EXPECT_EQ(a.Hash(), b.Hash());
      }
      for (const data::Value& c : values) {
        if (a.CompareTotal(b) <= 0 && b.CompareTotal(c) <= 0) {
          EXPECT_LE(a.CompareTotal(c), 0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace arc
