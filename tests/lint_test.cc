// Tests for ArcLint — the static trap-detection passes layered on the
// resolved Analysis (see arc/lint.h and LINTS.md). Each pass gets at least
// one positive case (the trap fires) and one negative case (a nearby
// correct query stays clean), plus golden-file tests over the paper's trap
// figures in tests/golden/.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arc/analyze.h"
#include "arc/lint.h"
#include "sql/eval.h"
#include "text/alt_parser.h"
#include "text/parser.h"
#include "text/printer.h"

namespace arc {
namespace {

// --- helpers -----------------------------------------------------------------

// Fig. 21 schemas: R(id, q), S(id, d).
data::Database CountBugDb() {
  data::Database db;
  db.Create("R", data::Schema{"id", "q"});
  db.Create("S", data::Schema{"id", "d"});
  return db;
}

// §2.10 schemas: R(a), S(b).
data::Database NotInDb() {
  data::Database db;
  db.Create("R", data::Schema{"a"});
  db.Create("S", data::Schema{"b"});
  return db;
}

LintResult LintText(const std::string& text, const data::Database* db) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  LintOptions opts;
  opts.analyze.database = db;
  return Lint(*program, opts);
}

int CountCode(const LintResult& result, const std::string& code) {
  int n = 0;
  for (const Diagnostic& d : result.findings) {
    if (d.code == code) ++n;
  }
  return n;
}

bool Fires(const LintResult& result, const std::string& code) {
  return CountCode(result, code) > 0;
}

std::string FirstMessage(const LintResult& result, const std::string& code) {
  for (const Diagnostic& d : result.findings) {
    if (d.code == code) return d.message;
  }
  return "";
}

// The paper's count-bug triptych (Fig. 21 / Eqs. 27-29).
constexpr const char* kCountBugOriginal =
    "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
    "[r.id = s.id and r.q = count(s.d)]]}";
constexpr const char* kCountBugBuggy =
    "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, gamma(s.id) "
    "[X.id = s.id and X.ct = count(s.d)]} "
    "[Q.id = r.id and r.id = x.id and r.q = x.ct]}";
constexpr const char* kCountBugCorrect =
    "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, r2 in R, "
    "gamma(r2.id), left(r2, s) [X.id = r2.id and X.ct = count(s.d) and "
    "r2.id = s.id]} [Q.id = r.id and r.id = x.id and r.q = x.ct]}";

// --- pass registry -----------------------------------------------------------

TEST(LintRegistry, HasAtLeastEightPassesWithUniqueCodes) {
  const std::vector<LintPass>& passes = LintPasses();
  EXPECT_GE(passes.size(), 8u);
  std::vector<std::string> codes;
  for (const LintPass& p : passes) {
    const std::string code = p.code;
    EXPECT_EQ(code.rfind("ARC-W1", 0), 0u) << code;
    EXPECT_FALSE(std::string(p.name).empty());
    EXPECT_FALSE(std::string(p.summary).empty());
    EXPECT_NE(p.run, nullptr);
    for (const std::string& seen : codes) EXPECT_NE(seen, code);
    codes.push_back(code);
  }
}

TEST(LintRegistry, FindLintPassByCode) {
  const LintPass* p = FindLintPass("ARC-W101");
  ASSERT_NE(p, nullptr);
  EXPECT_STREQ(p->code, "ARC-W101");
  EXPECT_EQ(p->category, LintCategory::kTrapShape);
  EXPECT_EQ(FindLintPass("ARC-W999"), nullptr);
}

TEST(LintRegistry, ConventionPassesDeclareTheirDimension) {
  // Every kConvention pass must name the dimension it warns about — that
  // is what the differential harness validates against.
  for (const LintPass& p : LintPasses()) {
    if (p.category == LintCategory::kConvention) {
      EXPECT_TRUE(p.dimension.has_value()) << p.code;
    } else {
      EXPECT_FALSE(p.dimension.has_value()) << p.code;
    }
  }
}

// --- W101: count-bug shape ---------------------------------------------------

TEST(LintPass, W101FiresOnFig21aOriginal) {
  data::Database db = CountBugDb();
  LintResult r = LintText(kCountBugOriginal, &db);
  EXPECT_TRUE(r.ok()) << LintToText(r);
  EXPECT_TRUE(Fires(r, "ARC-W101")) << LintToText(r);
  EXPECT_NE(FirstMessage(r, "ARC-W101").find("count(s.d)"), std::string::npos);
}

TEST(LintPass, W101SilentOnUncorrelatedScalarAggregate) {
  // gamma() without outer correlation is a plain scalar subquery — no
  // decorrelation trap.
  data::Database db = CountBugDb();
  LintResult r = LintText(
      "{Q(id) | exists r in R [Q.id = r.id and "
      "exists s in S, gamma() [count(s.d) >= 5]]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W101")) << LintToText(r);
}

// --- W109: count-bug decorrelation -------------------------------------------

TEST(LintPass, W109FiresOnFig21bBuggyDecorrelation) {
  data::Database db = CountBugDb();
  LintResult r = LintText(kCountBugBuggy, &db);
  EXPECT_TRUE(r.ok()) << LintToText(r);
  EXPECT_TRUE(Fires(r, "ARC-W109")) << LintToText(r);
  // The message names the join predicate that loses rows.
  EXPECT_NE(FirstMessage(r, "ARC-W109").find("r.id = x.id"),
            std::string::npos);
}

TEST(LintPass, Fig21cCorrectedFormIsCleanOfCountBugWarnings) {
  data::Database db = CountBugDb();
  LintResult r = LintText(kCountBugCorrect, &db);
  EXPECT_TRUE(r.ok()) << LintToText(r);
  EXPECT_FALSE(Fires(r, "ARC-W101")) << LintToText(r);
  EXPECT_FALSE(Fires(r, "ARC-W109")) << LintToText(r);
}

// --- W102: null-logic sensitivity under negation -----------------------------

TEST(LintPass, W102FiresOnNegatedComparisonOverNullables) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and not(s.b = r.a)]}", &db);
  EXPECT_TRUE(Fires(r, "ARC-W102")) << LintToText(r);
}

TEST(LintPass, W102SilentOnNotExists) {
  // The evaluator's EXISTS is SQL-style — never unknown — so NOT EXISTS
  // does not diverge between the logics; only a bare negated comparison
  // does. The differential harness depends on this distinction.
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R [Q.a = r.a and "
      "not(exists s in S [s.b = r.a])]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W102")) << LintToText(r);
}

TEST(LintPass, W102SilentWhenOperandsAreNullGuarded) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and s.b is not null "
      "and r.a is not null and not(s.b = r.a)]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W102")) << LintToText(r);
}

TEST(LintPass, W102SilentOnUnnegatedInequality) {
  // `!=` without NOT is unknown on NULL under both conventions the
  // evaluator implements for positive filters — no divergence.
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and s.b != r.a]}", &db);
  EXPECT_FALSE(Fires(r, "ARC-W102")) << LintToText(r);
}

TEST(LintPass, W102FiresOnDoubleNegationDepthTwo) {
  // not(not(p)) has even parity — silent; not(p and not(q)) flags q's
  // enclosing comparison at odd parity.
  data::Database db = NotInDb();
  LintResult even = LintText(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and not(not(s.b = r.a))]}",
      &db);
  EXPECT_FALSE(Fires(even, "ARC-W102")) << LintToText(even);
}

// --- W103: set-vs-bag sensitive aggregate ------------------------------------

TEST(LintPass, W103FiresOnSumOverBaseRelation) {
  data::Database db = CountBugDb();
  LintResult r = LintText(
      "{Q(id, t) | exists s in S, gamma(s.id) "
      "[Q.id = s.id and Q.t = sum(s.d)]}",
      &db);
  EXPECT_TRUE(Fires(r, "ARC-W103")) << LintToText(r);
}

TEST(LintPass, W103SilentOnDuplicateInsensitiveAggregates) {
  data::Database db = CountBugDb();
  LintResult r = LintText(
      "{Q(id, t) | exists s in S, gamma(s.id) "
      "[Q.id = s.id and Q.t = max(s.d)]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W103")) << LintToText(r);
  LintResult rd = LintText(
      "{Q(id, t) | exists s in S, gamma(s.id) "
      "[Q.id = s.id and Q.t = countdistinct(s.d)]}",
      &db);
  EXPECT_FALSE(Fires(rd, "ARC-W103")) << LintToText(rd);
}

TEST(LintPass, W103SilentOnConstantCountThreshold) {
  // count(*) >= 1 holds for every non-empty group regardless of
  // multiplicities — duplicates cannot flip it.
  data::Database db = CountBugDb();
  LintResult r = LintText(
      "{Q(id) | exists s in S, gamma(s.id) "
      "[Q.id = s.id and count(*) >= 1]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W103")) << LintToText(r);
}

TEST(LintPass, W103SilentWhenScopeRangesOverDistinctNestedCollection) {
  // An ungrouped nested collection is evaluated as a set under both
  // interpretations here only if its own output is duplicate-free; a
  // grouped nested collection collapses multiplicity, so sum over its
  // grouping-key output is safe.
  data::Database db = CountBugDb();
  LintResult r = LintText(
      "{Q(t) | exists x in {X(id) | exists s in S, gamma(s.id) "
      "[X.id = s.id]}, gamma() [Q.t = sum(x.id)]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W103")) << LintToText(r);
}

// --- W104: empty-aggregate sensitivity ---------------------------------------

TEST(LintPass, W104FiresOnEq15SumAssignment) {
  data::Database db;
  db.Create("R", data::Schema{"ak"});
  db.Create("S", data::Schema{"a", "b"});
  LintResult r = LintText(
      "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.a < r.ak and X.sm = sum(s.b)]} [Q.ak = r.ak and Q.sm = x.sm]}",
      &db);
  EXPECT_TRUE(Fires(r, "ARC-W104")) << LintToText(r);
}

TEST(LintPass, W104TruthGateOnAggregateFilters) {
  // sum >= 3: both NULL (excluded as unknown) and 0 (excluded as false)
  // drop the empty group — no divergence, no warning. sum <= 3: NULL is
  // excluded but 0 passes — divergence, warning.
  data::Database db = CountBugDb();
  LintResult ge = LintText(
      "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and sum(s.d) >= 3]]}",
      &db);
  EXPECT_FALSE(Fires(ge, "ARC-W104")) << LintToText(ge);
  LintResult le = LintText(
      "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and sum(s.d) <= 3]]}",
      &db);
  EXPECT_TRUE(Fires(le, "ARC-W104")) << LintToText(le);
}

TEST(LintPass, W104SilentOnCountFamily) {
  // count over an empty group is 0 under both conventions.
  data::Database db = CountBugDb();
  LintResult r = LintText(
      "{Q(id, c) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and r.q = count(s.d)]]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W104")) << LintToText(r);
}

// --- W105: non-monotone self-reference ---------------------------------------

TEST(LintPass, W105NotesRecursionThroughNegation) {
  data::Database db;
  db.Create("E", data::Schema{"s", "t"});
  LintResult r = LintText(
      "define {T(s, t) | exists e in E [T.s = e.s and T.t = e.t and "
      "not(exists t2 in T [t2.s = e.s])]}"
      "{Q(s) | exists t2 in T [Q.s = t2.s]}",
      &db);
  EXPECT_TRUE(Fires(r, "ARC-W105")) << LintToText(r);
}

TEST(LintPass, W105SilentOnMonotoneTransitiveClosure) {
  data::Database db;
  db.Create("E", data::Schema{"s", "t"});
  LintResult r = LintText(
      "define {T(s, t) | exists e in E [T.s = e.s and T.t = e.t] or "
      "exists e in E, t2 in T [T.s = e.s and e.t = t2.s and T.t = t2.t]}"
      "{Q(s, t) | exists t2 in T [Q.s = t2.s and Q.t = t2.t]}",
      &db);
  EXPECT_TRUE(r.ok()) << LintToText(r);
  EXPECT_FALSE(Fires(r, "ARC-W105")) << LintToText(r);
}

// --- W106: unused binding ----------------------------------------------------

TEST(LintPass, W106FiresOnUnreferencedBinding) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R, s in S [Q.a = r.a]}", &db);
  EXPECT_TRUE(Fires(r, "ARC-W106")) << LintToText(r);
  EXPECT_NE(FirstMessage(r, "ARC-W106").find("'s'"), std::string::npos);
}

TEST(LintPass, W106SilentWhenEveryBindingIsUsed) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R, s in S [Q.a = r.a and s.b = r.a]}", &db);
  EXPECT_FALSE(Fires(r, "ARC-W106")) << LintToText(r);
}

TEST(LintPass, W106SilentUnderCountStar) {
  // count(*) observes the whole scope, so an otherwise-unreferenced
  // binding still contributes (it multiplies the count).
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(c) | exists r in R, s in S, gamma() [Q.c = count(*)]}", &db);
  EXPECT_FALSE(Fires(r, "ARC-W106")) << LintToText(r);
}

// --- W107: cartesian product -------------------------------------------------

TEST(LintPass, W107FiresOnUnjoinedBindings) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a, b) | exists r in R, s in S [Q.a = r.a and Q.b = s.b]}", &db);
  EXPECT_TRUE(Fires(r, "ARC-W107")) << LintToText(r);
}

TEST(LintPass, W107SilentWhenJoined) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a, b) | exists r in R, s in S "
      "[Q.a = r.a and Q.b = s.b and r.a = s.b]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W107")) << LintToText(r);
}

TEST(LintPass, W107SilentUnderJoinAnnotation) {
  // An explicit join-tree annotation is a deliberate join spec, even when
  // the predicate lives elsewhere.
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a, b) | exists r in R, s in S, left(r, s) "
      "[Q.a = r.a and Q.b = s.b and r.a = s.b]}",
      &db);
  EXPECT_FALSE(Fires(r, "ARC-W107")) << LintToText(r);
}

// --- W108: unknown-relation suggestion ---------------------------------------

TEST(LintPass, W108SuggestsNearbyRelationName) {
  data::Database db;
  db.Create("Employee", data::Schema{"id"});
  LintResult r = LintText(
      "{Q(id) | exists e in Employe [Q.id = e.id]}", &db);
  EXPECT_FALSE(r.ok());  // unknown relation is an analyzer error
  EXPECT_TRUE(Fires(r, "ARC-W108")) << LintToText(r);
  EXPECT_NE(FirstMessage(r, "ARC-W108").find("Employee"), std::string::npos);
}

TEST(LintPass, W108SilentWhenNothingIsClose) {
  data::Database db;
  db.Create("Employee", data::Schema{"id"});
  LintResult r = LintText(
      "{Q(id) | exists z in Zyzzyva [Q.id = z.id]}", &db);
  EXPECT_FALSE(Fires(r, "ARC-W108")) << LintToText(r);
}

// --- W110: vacuous predicate -------------------------------------------------

TEST(LintPass, W110FlagsLiteralComparison) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R [Q.a = r.a and 1 = 1]}", &db);
  EXPECT_TRUE(Fires(r, "ARC-W110")) << LintToText(r);
}

TEST(LintPass, W110SilentOnContingentPredicates) {
  data::Database db = NotInDb();
  LintResult r = LintText(
      "{Q(a) | exists r in R [Q.a = r.a and r.a > 3]}", &db);
  EXPECT_FALSE(Fires(r, "ARC-W110")) << LintToText(r);
}

// --- options & rendering -----------------------------------------------------

TEST(Lint, DisabledPassesAreSkipped) {
  data::Database db = CountBugDb();
  auto program = text::ParseProgram(kCountBugOriginal);
  ASSERT_TRUE(program.ok());
  LintOptions opts;
  opts.analyze.database = &db;
  opts.disabled = {"ARC-W101", "ARC-W103"};
  LintResult r = Lint(*program, opts);
  EXPECT_FALSE(Fires(r, "ARC-W101")) << LintToText(r);
  EXPECT_FALSE(Fires(r, "ARC-W103")) << LintToText(r);
}

TEST(Lint, TextRenderingHasSeverityCodeAndSummary) {
  data::Database db = CountBugDb();
  LintResult r = LintText(kCountBugOriginal, &db);
  const std::string text = LintToText(r);
  EXPECT_NE(text.find("warning[ARC-W101]"), std::string::npos) << text;
  EXPECT_NE(text.find("warnings"), std::string::npos) << text;
  EXPECT_NE(text.find("0 errors"), std::string::npos) << text;
}

TEST(Lint, JsonRenderingIsWellFormedEnoughToGrep) {
  data::Database db = CountBugDb();
  LintResult r = LintText(kCountBugOriginal, &db);
  const std::string json = LintToJson(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"code\": \"ARC-W101\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos) << json;
}

TEST(Lint, AltParsedProgramsCarryLineProvenance) {
  // Round-trip Fig. 21a through the position-tracking ALT parser: the
  // findings must anchor to 1-based source lines.
  auto parsed = text::ParseCollection(kCountBugOriginal);
  ASSERT_TRUE(parsed.ok());
  const std::string alt = text::PrintAltCollection(**parsed);
  auto re = text::ParseAltCollection(alt);
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  data::Database db = CountBugDb();
  LintOptions opts;
  opts.analyze.database = &db;
  LintResult r = Lint(MakeProgram(std::move(*re)), opts);
  ASSERT_TRUE(Fires(r, "ARC-W101")) << LintToText(r);
  for (const Diagnostic& d : r.findings) {
    if (d.code == "ARC-W101") {
      EXPECT_GT(d.line, 0);
    }
  }
  EXPECT_NE(LintToText(r).find("line "), std::string::npos);
}

// --- analyzer diagnostic dedup (satellite) -----------------------------------

TEST(Analyze, DisjunctiveBodiesReportSharedDefectsOnce) {
  // Both disjuncts range over the same unknown relation; the analyzer
  // visits shared structure per disjunct but must report the defect once.
  LintResult r = LintText(
      "{Q(a) | exists r in Mystery [Q.a = r.a] or "
      "exists r in Mystery [Q.a = r.a]}",
      nullptr);
  int unknown = 0;
  for (const Diagnostic& d : r.analysis.diagnostics) {
    if (d.message.find("Mystery") != std::string::npos) ++unknown;
  }
  EXPECT_EQ(unknown, 1) << LintToText(r);
}

TEST(Analyze, DeduplicateDiagnosticsCollapsesExactRepeats) {
  std::vector<Diagnostic> ds(3);
  ds[0].code = ds[1].code = ds[2].code = "ARC-E001";
  ds[0].message = ds[1].message = "same";
  ds[2].message = "different";
  DeduplicateDiagnostics(&ds);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].message, "same");
  EXPECT_EQ(ds[1].message, "different");
}

// --- golden files ------------------------------------------------------------

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(LintGolden, TrapFiguresMatchExpectedDiagnostics) {
  const std::filesystem::path dir =
      std::filesystem::path(ARC_TEST_DATA_DIR) / "golden";
  int cases = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".arc") continue;
    ++cases;
    SCOPED_TRACE(entry.path().filename().string());
    auto program = text::ParseProgram(ReadFile(entry.path()));
    ASSERT_TRUE(program.ok()) << program.status().ToString();

    LintOptions opts;
    data::Database db;
    std::filesystem::path setup = entry.path();
    setup.replace_extension(".setup.sql");
    if (std::filesystem::exists(setup)) {
      auto built = sql::ExecuteSetupScript(ReadFile(setup));
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      db = std::move(*built);
      opts.analyze.database = &db;
    }

    std::filesystem::path expected = entry.path();
    expected.replace_extension(".expected");
    EXPECT_EQ(LintToText(Lint(*program, opts)), ReadFile(expected));
  }
  EXPECT_GE(cases, 5);  // the golden corpus must not silently vanish
}

}  // namespace
}  // namespace arc
