// Rewriter tests: legality conditions and execution-equivalence of
// pattern-level rewrites under the conventions that make them sound.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/evaluator.h"
#include "rewrite/rewriter.h"
#include "text/parser.h"
#include "text/printer.h"

namespace arc::rewrite {
namespace {

using data::Relation;
using data::Schema;
using data::Value;

Program MustParse(const std::string& source) {
  auto p = text::ParseProgram(source);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? std::move(p).value() : Program();
}

Relation MustEval(const data::Database& db, const Program& program,
                  Conventions conv) {
  eval::EvalOptions opts;
  opts.conventions = conv;
  auto r = eval::Eval(db, program, opts);
  EXPECT_TRUE(r.ok()) << text::PrintProgram(program) << "\n"
                      << r.status().ToString();
  return r.ok() ? std::move(r).value() : Relation();
}

Relation Rel(Schema schema, std::vector<std::vector<int64_t>> rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) {
    data::Tuple t;
    for (int64_t v : row) t.Append(Value::Int(v));
    r.Add(std::move(t));
  }
  return r;
}

TEST(Normalize, FlattensAndDropsTrue) {
  Program p = MustParse(
      "{Q(A) | exists r in R [(r.A = 1 and r.B = 2) and Q.A = r.A]}");
  RewriteResult result = NormalizeConjunctions(p);
  EXPECT_GT(result.applications, 0);
  EXPECT_EQ(text::PrintProgram(result.program),
            "{Q(A) | exists r in R [r.A = 1 and r.B = 2 and Q.A = r.A]}");
}

TEST(Unnest, HoistsNestedExistentialUnderSetSemantics) {
  Program p = MustParse(
      "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}");
  auto result = UnnestExistentialScopes(p, Conventions::Arc());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->applications, 1);
  EXPECT_EQ(text::PrintProgram(result->program),
            "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B]}");
}

TEST(Unnest, RefusedUnderBagSemantics) {
  Program p = MustParse(
      "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}");
  auto result = UnnestExistentialScopes(p, Conventions::Sql());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Unnest, PreservesResultsUnderSetSemantics) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 5}, {2, 6}, {1, 5}}));
  db.Put("S", Rel(Schema{"B"}, {{5}, {5}, {6}}));
  Program p = MustParse(
      "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}");
  auto rewritten = UnnestExistentialScopes(p, Conventions::Arc());
  ASSERT_TRUE(rewritten.ok());
  Relation before = MustEval(db, p, Conventions::Arc());
  Relation after = MustEval(db, rewritten->program, Conventions::Arc());
  EXPECT_TRUE(before.EqualsBag(after));
  // …and the same pair diverges under bags — the §2.7 point.
  Relation bag_before = MustEval(db, p, Conventions::Sql());
  Relation bag_after = MustEval(db, rewritten->program, Conventions::Sql());
  EXPECT_FALSE(bag_before.EqualsBag(bag_after));
}

TEST(Unnest, SkipsGroupingAndCaptureSites) {
  // Grouping scopes and variable-capturing sites are left alone.
  Program grouped = MustParse(
      "{Q(ct) | exists r in R [exists s in S, gamma() [r.A = s.B and "
      "Q.ct = count(s.B)]]}");
  auto r1 = UnnestExistentialScopes(grouped, Conventions::Arc());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->applications, 0);
  Program capture = MustParse(
      "{Q(A) | exists r in R [exists r in S [Q.A = r.B]]}");
  auto r2 = UnnestExistentialScopes(capture, Conventions::Arc());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->applications, 0);
}

TEST(Decorrelate, RewritesEq27IntoEq29Shape) {
  Program p = MustParse(
      "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and r.q = count(s.d)]]}");
  RewriteResult result = DecorrelateAggregation(p);
  EXPECT_EQ(result.applications, 1);
  const std::string printed = text::PrintProgram(result.program);
  // The rewritten form has the Eq. 29 ingredients: a left join annotation,
  // grouping on the (deduplicated) outer key, and an outer equality on it.
  EXPECT_NE(printed.find("left("), std::string::npos) << printed;
  EXPECT_NE(printed.find("gamma(_dr1.k1)"), std::string::npos) << printed;
  EXPECT_NE(printed.find("count("), std::string::npos) << printed;
}

TEST(Decorrelate, PreservesCountBugSemanticsOnPaperInstance) {
  // The whole point: the naive (Eq. 28) decorrelation loses R(9,0); this
  // rewrite must keep it.
  data::Database db = data::CountBugInstance();
  Program p = MustParse(
      "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and r.q = count(s.d)]]}");
  RewriteResult result = DecorrelateAggregation(p);
  ASSERT_EQ(result.applications, 1);
  Relation before = MustEval(db, p, Conventions::Sql());
  Relation after = MustEval(db, result.program, Conventions::Sql());
  EXPECT_TRUE(before.EqualsBag(after))
      << text::PrintProgram(result.program) << "\nbefore:\n"
      << before.ToString() << "after:\n" << after.ToString();
  EXPECT_EQ(after.size(), 1);  // R(9,0) is kept
}

TEST(Decorrelate, PreservesSemanticsOnRandomKeyedInstances) {
  Program p = MustParse(
      "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and r.q <= sum(s.d)]]}");
  RewriteResult result = DecorrelateAggregation(p);
  ASSERT_EQ(result.applications, 1);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    data::Rng rng(seed);
    data::Database db;
    Relation r(Schema{"id", "q"});
    Relation s(Schema{"id", "d"});
    for (int64_t id = 0; id < 15; ++id) {  // ids unique: the key assumption
      r.Add({Value::Int(id), Value::Int(rng.Below(6))});
      const int64_t n = rng.Below(3);
      for (int64_t i = 0; i < n; ++i) {
        s.Add({Value::Int(id), Value::Int(rng.Below(5))});
      }
    }
    db.Put("R", std::move(r));
    db.Put("S", std::move(s));
    Relation before = MustEval(db, p, Conventions::Sql());
    Relation after = MustEval(db, result.program, Conventions::Sql());
    EXPECT_TRUE(before.EqualsBag(after))
        << "seed " << seed << "\n"
        << text::PrintProgram(result.program) << "before:\n"
        << before.Sorted().ToString() << "after:\n"
        << after.Sorted().ToString();
  }
}

TEST(Decorrelate, LeavesUnmatchedSitesAlone) {
  // Correlation through two outer variables is out of scope.
  Program two_outer = MustParse(
      "{Q(id) | exists r in R, t in T [Q.id = r.id and "
      "exists s in S, gamma() [r.id = s.id and t.id = s.d and "
      "r.q = count(s.d)]]}");
  EXPECT_EQ(DecorrelateAggregation(two_outer).applications, 0);
  // Grouped-by-keys scopes (already decorrelated) are not matched.
  Program keyed = MustParse(
      "{Q(id, ct) | exists s in S, gamma(s.id) "
      "[Q.id = s.id and Q.ct = count(s.d)]}");
  EXPECT_EQ(DecorrelateAggregation(keyed).applications, 0);
}

TEST(Decorrelate, LocalFiltersMoveIntoTheJoin) {
  // A filter on s stays with s inside the rewritten collection.
  data::Database db;
  db.Put("R", Rel(Schema{"id", "q"}, {{1, 1}, {2, 0}}));
  db.Put("S", Rel(Schema{"id", "d"}, {{1, 10}, {1, 3}, {2, 3}}));
  Program p = MustParse(
      "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
      "[r.id = s.id and s.d > 5 and r.q = count(s.d)]]}");
  RewriteResult result = DecorrelateAggregation(p);
  ASSERT_EQ(result.applications, 1);
  Relation before = MustEval(db, p, Conventions::Sql());
  Relation after = MustEval(db, result.program, Conventions::Sql());
  EXPECT_TRUE(before.EqualsBag(after))
      << text::PrintProgram(result.program) << before.ToString()
      << after.ToString();
}

}  // namespace
}  // namespace arc::rewrite
