// Differential parity tests for slot-compiled evaluation: the slot binder
// (BindingMode::kSlotCompiled, the default) must be bit-for-bit
// result-compatible with the string-keyed reference path
// (BindingMode::kStringKeyed, the pre-slot semantics) on
//   * a 40-seed random-query corpus (trap-biased generator settings),
//   * the same corpus wrapped into recursive closures (linear and
//     non-linear), exercising the fixpoint overlay / watermark indexes,
//   * every example query in examples/queries/ against its setup sidecar,
// each under both Conventions::Arc() and Conventions::Sql() and both
// RecursionStrategy::kSemiNaive and ::kNaive. The SQL differential baseline
// (direct SQL evaluation of the rendered translation) must agree with the
// slot-compiled result too.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arc/conventions.h"
#include "arc/random_query.h"
#include "data/generators.h"
#include "eval/evaluator.h"
#include "sql/eval.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/arc_to_sql.h"

namespace arc::eval {
namespace {

using data::Relation;

data::Database FuzzDb(uint64_t seed) {
  data::Database db;
  data::Relation r = data::RandomBinary(12, 8, 0.1, 0.0, seed);
  db.Put("R", std::move(r));
  data::Relation s0 = data::RandomBinary(10, 8, 0.0, 0.0, seed + 100);
  db.Put("S", data::Relation(data::Schema{"C", "D"}, s0.rows()));
  data::Relation t0 = data::RandomUnary(8, 8, 0.0, seed + 200);
  db.Put("T", data::Relation(data::Schema{"E"}, t0.rows()));
  return db;
}

struct EvalConfig {
  Conventions conventions;
  RecursionStrategy strategy;
  const char* label;
};

std::vector<EvalConfig> AllConfigs() {
  return {
      {Conventions::Arc(), RecursionStrategy::kSemiNaive, "arc/semi-naive"},
      {Conventions::Arc(), RecursionStrategy::kNaive, "arc/naive"},
      {Conventions::Sql(), RecursionStrategy::kSemiNaive, "sql/semi-naive"},
      {Conventions::Sql(), RecursionStrategy::kNaive, "sql/naive"},
  };
}

Result<Relation> EvalMode(const data::Database& db, const Program& program,
                          const EvalConfig& config, BindingMode mode,
                          EvalStats* stats = nullptr) {
  EvalOptions opts;
  opts.conventions = config.conventions;
  opts.recursion_strategy = config.strategy;
  opts.binding_mode = mode;
  Evaluator ev(db, opts);
  auto out = ev.EvalProgram(program);
  if (stats != nullptr) *stats = ev.stats();
  return out;
}

/// Asserts slot-compiled ≡ string-keyed for every config: same success
/// status, same error message on failure, bag-equal relations on success.
void ExpectParity(const data::Database& db, const Program& program,
                  const std::string& context) {
  for (const EvalConfig& config : AllConfigs()) {
    SCOPED_TRACE(context + " [" + config.label + "]");
    EvalStats slot_stats;
    auto slot = EvalMode(db, program, config, BindingMode::kSlotCompiled,
                         &slot_stats);
    EvalStats ref_stats;
    auto ref = EvalMode(db, program, config, BindingMode::kStringKeyed,
                        &ref_stats);
    ASSERT_EQ(slot.ok(), ref.ok())
        << "slot: " << slot.status().ToString()
        << "\nreference: " << ref.status().ToString();
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().message(), ref.status().message());
      continue;
    }
    EXPECT_TRUE(slot->EqualsBag(*ref))
        << "slot-compiled:\n" << slot->Sorted().ToString()
        << "string-keyed:\n" << ref->Sorted().ToString();
    // The reference path must really be the reference path.
    EXPECT_EQ(ref_stats.frames_pushed, 0);
    EXPECT_EQ(ref_stats.slot_reads, 0);
    EXPECT_EQ(ref_stats.join_table_reuses, 0);
  }
}

class SlotParity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlotParity, RandomQueryCorpus) {
  const uint64_t seed = GetParam();
  data::Database db = FuzzDb(seed * 31 + 1);
  RandomQueryOptions opts;
  opts.seed = seed;
  opts.scalar_agg_probability = 0.3;
  opts.negated_filter_probability = 0.3;
  auto coll = GenerateRandomCollection(db, opts);
  ASSERT_TRUE(coll.ok()) << coll.status().ToString();
  Program program;
  program.main.collection = std::move(coll).value();
  ExpectParity(db, program, text::PrintProgram(program));

  // The SQL differential baseline: direct evaluation of the rendered SQL
  // must agree with the slot-compiled result under SQL conventions.
  auto rendered = translate::ArcToSqlText(program);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  sql::SqlEvaluator direct(db);
  auto via_sql = direct.EvalQuery(*rendered);
  ASSERT_TRUE(via_sql.ok()) << *rendered << "\n"
                            << via_sql.status().ToString();
  EvalConfig sql_config{Conventions::Sql(), RecursionStrategy::kSemiNaive,
                        "sql/semi-naive"};
  auto slot = EvalMode(db, program, sql_config, BindingMode::kSlotCompiled);
  ASSERT_TRUE(slot.ok());
  EXPECT_TRUE(slot->EqualsBag(*via_sql))
      << "ARC: " << text::PrintProgram(program) << "\nSQL: " << *rendered
      << "\nslot:\n" << slot->Sorted().ToString() << "sql:\n"
      << via_sql->Sorted().ToString();
}

TEST_P(SlotParity, RecursiveClosureOverRandomEdges) {
  const uint64_t seed = GetParam();
  data::Database db = FuzzDb(seed * 31 + 1);
  RandomQueryOptions opts;
  opts.seed = seed;
  auto base = GenerateRandomCollection(db, opts);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const auto& attrs = (*base)->head.attrs;
  if (attrs.size() < 2) GTEST_SKIP() << "need a binary edge relation";
  Program base_program;
  base_program.main.collection = (*base)->Clone();
  const std::string edges = text::PrintProgram(base_program);
  const std::string a0 = attrs[0];
  const std::string a1 = attrs[1];
  // Odd seeds use the non-linear doubling rule, whose non-delta site probes
  // the fixpoint accumulator (the watermark-index reuse path).
  const std::string step =
      seed % 2 == 0
          ? "exists b in Q, t2 in Tc [Tc.x = b." + a0 + " and b." + a1 +
                " = t2.x and t2.y = Tc.y]"
          : "exists t1 in Tc, t2 in Tc [Tc.x = t1.x and t1.y = t2.x and "
            "t2.y = Tc.y]";
  const std::string source =
      "define " + edges +
      " {Tc(x, y) | exists b in Q [Tc.x = b." + a0 + " and Tc.y = b." + a1 +
      "] or " + step + "}";
  auto program = text::ParseProgram(source);
  ASSERT_TRUE(program.ok()) << source;
  ExpectParity(db, *program, source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotParity, ::testing::Range<uint64_t>(1, 41));

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SlotParityCorpus, EveryExampleQueryAgrees) {
  const std::filesystem::path dir =
      std::filesystem::path(ARC_EXAMPLES_DIR) / "queries";
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".arc") continue;
    ++files;
    const std::string name = entry.path().filename().string();
    SCOPED_TRACE(name);
    auto program = text::ParseProgram(ReadFile(entry.path()));
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    std::filesystem::path setup = entry.path();
    setup.replace_extension(".setup.sql");
    ASSERT_TRUE(std::filesystem::exists(setup)) << setup;
    auto db = sql::ExecuteSetupScript(ReadFile(setup));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ExpectParity(*db, *program, name);
  }
  EXPECT_GE(files, 8);
}

}  // namespace
}  // namespace arc::eval
