// Tests for resolution ("linking") and validation — the checks the paper
// proposes for validating machine-generated ALTs (§4): well-scoped
// variables, grouping legality, clean heads, correlation shape.
#include <gtest/gtest.h>

#include "arc/analyze.h"
#include "arc/dsl.h"
#include "data/generators.h"
#include "text/parser.h"

namespace arc {
namespace {

using namespace arc::dsl;  // NOLINT

data::Database TestDb() {
  data::Database db;
  db.Create("R", data::Schema{"A", "B"});
  db.Create("S", data::Schema{"B", "C"});
  return db;
}

Analysis AnalyzeText(const std::string& text, const data::Database* db) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  AnalyzeOptions opts;
  opts.database = db;
  return Analyze(*program, opts);
}

bool HasError(const Analysis& a, const std::string& needle) {
  for (const std::string& e : a.ErrorMessages()) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Analyze, AcceptsEq1FromPaper) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}",
      &db);
  EXPECT_TRUE(a.ok()) << a.DiagnosticsToString();
}

TEST(Analyze, RejectsUnboundVariable) {
  data::Database db = TestDb();
  Analysis a =
      AnalyzeText("{Q(A) | exists r in R [Q.A = r.A and z.B = 1]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "unbound variable 'z'"));
}

TEST(Analyze, RejectsUnknownAttribute) {
  data::Database db = TestDb();
  Analysis a =
      AnalyzeText("{Q(A) | exists r in R [Q.A = r.nope]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "no attribute 'nope'"));
}

TEST(Analyze, RejectsUnknownRelationWithDatabase) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText("{Q(A) | exists r in Missing [Q.A = r.A]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "unknown relation 'Missing'"));
}

TEST(Analyze, UnknownRelationIsWarningWithoutDatabase) {
  Analysis a = AnalyzeText("{Q(A) | exists r in Missing [Q.A = r.A]}", nullptr);
  EXPECT_TRUE(a.ok()) << a.DiagnosticsToString();
  EXPECT_FALSE(a.diagnostics.empty());
}

TEST(Analyze, RejectsUnassignedHeadAttribute) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText("{Q(A, B) | exists r in R [Q.A = r.A]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "'Q.B' is not assigned"));
}

TEST(Analyze, OrBranchesMustEachAssign) {
  data::Database db = TestDb();
  // Second disjunct forgets Q.A.
  Analysis a = AnalyzeText(
      "{Q(A) | exists r in R [Q.A = r.A] or exists s in S [s.C = 0]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "not assigned in every disjunct"));
}

TEST(Analyze, RejectsAssignmentUnderNegation) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText(
      "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S [Q.A = s.B])]}",
      &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "under negation"));
}

TEST(Analyze, AggregateRequiresGroupingScope) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText(
      "{Q(sm) | exists r in R [Q.sm = sum(r.B)]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "grouping"));
}

TEST(Analyze, AcceptsGroupedAggregateEq3) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText(
      "{Q(A, sm) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and Q.sm = sum(r.B)]}",
      &db);
  EXPECT_TRUE(a.ok()) << a.DiagnosticsToString();
}

TEST(Analyze, NonKeyAttributeInAggregationScopeRejected) {
  data::Database db = TestDb();
  // Q.B = r.B where r.B is not a grouping key.
  Analysis a = AnalyzeText(
      "{Q(A, B) | exists r in R, gamma(r.A) [Q.A = r.A and Q.B = r.B]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "not a grouping key"));
}

TEST(Analyze, DuplicateRangeVariableRejected) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText(
      "{Q(A) | exists r in R, r in S [Q.A = r.A]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "duplicate range variable"));
}

TEST(Analyze, DuplicateHeadAttributeRejected) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText("{Q(A, A) | exists r in R [Q.A = r.A]}", &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "duplicate head attribute"));
}

TEST(Analyze, JoinAnnotationMustReferenceScopeVars) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText(
      "{Q(A) | exists r in R, s in S, left(r, z) [Q.A = r.A and r.B = s.B]}",
      &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "join annotation references 'z'"));
}

TEST(Analyze, RecursionDetectedAndPositive) {
  data::Database db = data::ParentChain(4);
  Analysis a = AnalyzeText(
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}",
      &db);
  EXPECT_TRUE(a.ok()) << a.DiagnosticsToString();
  bool found_recursive = false;
  for (const auto& [coll, info] : a.collections) {
    (void)coll;
    if (info.is_recursive) found_recursive = true;
  }
  EXPECT_TRUE(found_recursive);
}

TEST(Analyze, RecursionUnderNegationRejected) {
  data::Database db = data::ParentChain(4);
  Analysis a = AnalyzeText(
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t and "
      "not(exists a2 in A [a2.s = p.s])]}",
      &db);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(HasError(a, "under negation"));
}

TEST(Analyze, AbstractHeadParametersAllowed) {
  data::Database db = data::LikesInstance(5, 5, 0.5, 0.0, 1);
  // The Subset module (Eq. 23): head attrs used as parameters, not assigned.
  Analysis a = AnalyzeText(
      "abstract define {S(left, right) | "
      "not(exists l3 in Likes [l3.drinker = S.left and "
      "not(exists l4 in Likes [l4.beer = l3.beer and "
      "l4.drinker = S.right])])} "
      "{Q(d) | exists l1 in Likes [Q.d = l1.drinker]}",
      &db);
  EXPECT_TRUE(a.ok()) << a.DiagnosticsToString();
}

TEST(Analyze, ExternalRelationSchemaResolves) {
  data::Database db = TestDb();
  Analysis a = AnalyzeText(
      "{Q(A) | exists r in R, s in S, t in S, f in Minus "
      "[Q.A = r.A and f.left = r.B and f.right = s.B and f.out > t.B]}",
      &db);
  EXPECT_TRUE(a.ok()) << a.DiagnosticsToString();
}

TEST(Analyze, SentenceWithAggregateComparison) {
  data::Database db = data::InventoryInstance(3, 2, true, 1);
  // Eq. (14): ¬∃r∈R[∃s∈S, γ∅ [r.id = s.id ∧ r.q > count(s.d)]]
  Analysis a = AnalyzeText(
      "not(exists r in R [exists s in S, gamma() "
      "[r.id = s.id and r.q > count(s.d)]])",
      &db);
  EXPECT_TRUE(a.ok()) << a.DiagnosticsToString();
}

TEST(Analyze, PredicateClassification) {
  data::Database db = TestDb();
  auto program = text::ParseProgram(
      "{Q(A, sm) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and Q.sm = sum(r.B) and r.A > 0]}");
  ASSERT_TRUE(program.ok());
  AnalyzeOptions opts;
  opts.database = &db;
  Analysis a = Analyze(*program, opts);
  ASSERT_TRUE(a.ok()) << a.DiagnosticsToString();
  int assignments = 0;
  int agg_assignments = 0;
  int filters = 0;
  for (const auto& [f, cls] : a.predicates) {
    (void)f;
    if (cls == PredClass::kAssignment) ++assignments;
    if (cls == PredClass::kAggAssignment) ++agg_assignments;
    if (cls == PredClass::kFilter) ++filters;
  }
  EXPECT_EQ(assignments, 1);
  EXPECT_EQ(agg_assignments, 1);
  EXPECT_EQ(filters, 1);
}

TEST(Analyze, ValidateWrapper) {
  data::Database db = TestDb();
  auto good =
      text::ParseProgram("{Q(A) | exists r in R [Q.A = r.A]}");
  ASSERT_TRUE(good.ok());
  AnalyzeOptions opts;
  opts.database = &db;
  EXPECT_TRUE(Validate(*good, opts).ok());
  auto bad = text::ParseProgram("{Q(A) | exists r in R [Q.B = r.A]}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(Validate(*bad, opts).ok());
}

}  // namespace
}  // namespace arc
