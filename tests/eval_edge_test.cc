// Edge-case and error-path coverage for the ARC evaluator and the direct
// SQL evaluator: runtime failures surface as typed Status values, guards
// stop divergence, and unusual-but-legal shapes evaluate correctly.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/evaluator.h"
#include "sql/eval.h"
#include "text/parser.h"

namespace arc::eval {
namespace {

using data::Relation;
using data::Schema;
using data::Value;

Relation Rel(Schema schema, std::vector<std::vector<int64_t>> rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) {
    data::Tuple t;
    for (int64_t v : row) t.Append(Value::Int(v));
    r.Add(std::move(t));
  }
  return r;
}

Program MustParse(const std::string& source) {
  auto p = text::ParseProgram(source);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? std::move(p).value() : Program();
}

TEST(EvalEdge, FixpointGuardStopsDivergentRecursion) {
  // A(n) grows forever: base from P, step n+1 — the guard must fire.
  data::Database db = data::ParentChain(3);
  Program p = MustParse(
      "{A(n) | exists p in P [A.n = p.s] or "
      "exists a2 in A [A.n = a2.n + 1]}");
  EvalOptions opts;
  opts.max_fixpoint_iterations = 50;
  auto result = Eval(db, p, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kEvalError);
  EXPECT_NE(result.status().message().find("fixpoint"), std::string::npos);
}

TEST(EvalEdge, DivisionByZeroSurfaces) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {0}}));
  Program p = MustParse("{Q(x) | exists r in R [Q.x = 10 / r.A]}");
  auto result = Eval(db, p);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kEvalError);
}

TEST(EvalEdge, SumOverStringsErrors) {
  data::Database db;
  Relation r(Schema{"A"});
  r.Add({Value::String("x")});
  db.Put("R", std::move(r));
  Program p = MustParse("{Q(s) | exists r in R, gamma() [Q.s = sum(r.A)]}");
  auto result = Eval(db, p);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kEvalError);
}

TEST(EvalEdge, MinMaxOverStringsUsesLexicographicOrder) {
  data::Database db;
  Relation r(Schema{"A"});
  r.Add({Value::String("pear")});
  r.Add({Value::String("apple")});
  db.Put("R", std::move(r));
  Program p = MustParse(
      "{Q(mn, mx) | exists r in R, gamma() "
      "[Q.mn = min(r.A) and Q.mx = max(r.A)]}");
  auto result = Eval(db, p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1);
  EXPECT_EQ(result->rows()[0].at(0).as_string(), "apple");
  EXPECT_EQ(result->rows()[0].at(1).as_string(), "pear");
}

TEST(EvalEdge, SentenceVsCollectionApiMismatch) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  Evaluator ev(db);
  Program collection = MustParse("{Q(A) | exists r in R [Q.A = r.A]}");
  EXPECT_FALSE(ev.EvalSentence(collection).ok());
  Program sentence = MustParse("exists r in R [r.A = 1]");
  EXPECT_FALSE(ev.EvalProgram(sentence).ok());
}

TEST(EvalEdge, UnknownRelationWithoutValidation) {
  data::Database db;
  Program p = MustParse("{Q(A) | exists r in Nope [Q.A = r.A]}");
  EvalOptions opts;
  opts.validate = false;
  auto result = Eval(db, p, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EvalEdge, DisjunctiveGroupFilterWithAggregates) {
  // OR between aggregate comparisons inside a grouping scope.
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 1}, {3, 9}}));
  Program p = MustParse(
      "{Q(A) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and (sum(r.B) > 25 or count(r.B) >= 2)]}");
  auto result = Eval(db, p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->EqualsSet(Rel(Schema{"A"}, {{1}})));
}

TEST(EvalEdge, ArithmeticInsideAggregateAndGroupKeyExpression) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 2}, {3, 4}, {5, 6}}));
  // Group by a computed key (A % 2), aggregate over an expression.
  Program p = MustParse(
      "{Q(k, s) | exists r in R, gamma(r.A % 2) "
      "[Q.k = r.A % 2 and Q.s = sum(r.B * 2)]}");
  auto result = Eval(db, p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // All A values are odd: one group, sum = (2+4+6)*2 = 24.
  EXPECT_TRUE(result->EqualsSet(Rel(Schema{"k", "s"}, {{1, 24}})));
}

TEST(EvalEdge, CorrelatedNestedCollectionInsideNegation) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}, {3}}));
  db.Put("S", Rel(Schema{"A", "B"}, {{1, 5}, {2, 0}}));
  // Keep r when there is no s-row with positive B for it.
  Program p = MustParse(
      "{Q(A) | exists r in R [Q.A = r.A and "
      "not(exists x in {X(A) | exists s in S "
      "[X.A = s.A and s.B > 0]} [x.A = r.A])]}");
  auto result = Eval(db, p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->EqualsSet(Rel(Schema{"A"}, {{2}, {3}})));
}

TEST(EvalEdge, EmptyDatabaseRelations) {
  data::Database db;
  db.Put("R", Relation(Schema{"A", "B"}));
  Program joins = MustParse(
      "{Q(A) | exists r in R, s in R [Q.A = r.A and r.B = s.B]}");
  auto result = Eval(db, joins);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  Program grouped = MustParse(
      "{Q(A, c) | exists r in R, gamma(r.A) [Q.A = r.A and Q.c = count(r.B)]}");
  auto g = Eval(db, grouped);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->empty());
}

// ---------------------------------------------------------------------------
// SQL evaluator edges
// ---------------------------------------------------------------------------

TEST(SqlEdge, UnionArityMismatch) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 2}}));
  sql::SqlEvaluator ev(db);
  auto r = ev.EvalQuery("select R.A from R union select R.A, R.B from R");
  EXPECT_FALSE(r.ok());
}

TEST(SqlEdge, InSubqueryMustBeUnary) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 2}}));
  sql::SqlEvaluator ev(db);
  auto r = ev.EvalQuery(
      "select R.A from R where R.A in (select R.A, R.B from R)");
  EXPECT_FALSE(r.ok());
}

TEST(SqlEdge, FromlessSelectWithWhere) {
  data::Database db;
  sql::SqlEvaluator ev(db);
  auto t = ev.EvalQuery("select 1 x where 1 < 2");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->size(), 1);
  auto f = ev.EvalQuery("select 1 x where 1 > 2");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->empty());
}

TEST(SqlEdge, HavingWithoutGroupBy) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}, {3}}));
  sql::SqlEvaluator ev(db);
  auto big = ev.EvalQuery("select sum(R.A) s from R having count(R.A) > 2");
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  EXPECT_EQ(big->size(), 1);
  auto small = ev.EvalQuery("select sum(R.A) s from R having count(R.A) > 5");
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->empty());
}

TEST(SqlEdge, NullArithmeticPropagates) {
  data::Database db;
  Relation r(Schema{"A"});
  r.Add({Value::Null()});
  r.Add({Value::Int(3)});
  db.Put("R", std::move(r));
  sql::SqlEvaluator ev(db);
  auto out = ev.EvalQuery("select R.A + 1 x from R");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2);
  Relation sorted = out->Sorted();
  EXPECT_TRUE(sorted.rows()[0].at(0).is_null());
  EXPECT_EQ(sorted.rows()[1].at(0).as_int(), 4);
}

TEST(SqlEdge, CteShadowsBaseTable) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  sql::SqlEvaluator ev(db);
  auto out = ev.EvalQuery(
      "with R as (select R.A from R where R.A > 1) select R.A from R");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->EqualsBag(Rel(Schema{"A"}, {{2}})));
}

}  // namespace
}  // namespace arc::eval
