// Recursion-strategy tests (§2.9): semi-naive vs. naive differential
// equivalence on the Fig. 10 transitive-closure program (chains, trees,
// random DAGs), non-linear and mutually-referencing definitions, the
// fixpoint iteration guard under both strategies, and EvalStats telemetry.
#include <gtest/gtest.h>

#include "arc/random_query.h"
#include "data/generators.h"
#include "eval/evaluator.h"
#include "text/parser.h"
#include "text/printer.h"

namespace arc::eval {
namespace {

using data::Relation;
using data::Value;

constexpr const char* kTransitiveClosure =
    "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
    "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}";

Program MustParse(const std::string& source) {
  auto p = text::ParseProgram(source);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? std::move(p).value() : Program();
}

Result<Relation> EvalWith(const data::Database& db, const Program& program,
                          RecursionStrategy strategy,
                          EvalStats* stats = nullptr,
                          BindingMode binding_mode = BindingMode::kSlotCompiled) {
  EvalOptions opts;
  opts.recursion_strategy = strategy;
  opts.binding_mode = binding_mode;
  Evaluator ev(db, opts);
  auto out = ev.EvalProgram(program);
  if (stats != nullptr) *stats = ev.stats();
  return out;
}

/// Evaluates under both strategies, asserts set-equal results, and returns
/// the semi-naive result.
Relation BothStrategies(const data::Database& db, const std::string& source) {
  Program program = MustParse(source);
  auto semi = EvalWith(db, program, RecursionStrategy::kSemiNaive);
  auto naive = EvalWith(db, program, RecursionStrategy::kNaive);
  EXPECT_TRUE(semi.ok()) << semi.status().ToString();
  EXPECT_TRUE(naive.ok()) << naive.status().ToString();
  if (!semi.ok() || !naive.ok()) return Relation();
  EXPECT_TRUE(semi->EqualsSet(*naive))
      << source << "\nsemi-naive:\n" << semi->ToString() << "naive:\n"
      << naive->ToString();
  return std::move(semi).value();
}

TEST(Recursion, Fig10ChainBothStrategies) {
  for (int64_t n : {2, 6, 20, 40}) {
    data::Database db = data::ParentChain(n);
    Relation tc = BothStrategies(db, kTransitiveClosure);
    EXPECT_EQ(tc.size(), n * (n - 1) / 2) << "chain n=" << n;  // C(n,2)
    EXPECT_TRUE(tc.Contains(data::Tuple{Value::Int(0), Value::Int(n - 1)}));
  }
}

TEST(Recursion, Fig10TreeBothStrategies) {
  // Complete binary tree, 63 nodes: each node has depth(node) ancestors,
  // and there are 2^d nodes at depth d for d = 0..5.
  data::Database db = data::ParentTree(63, 2);
  Relation tc = BothStrategies(db, kTransitiveClosure);
  int64_t expected = 0;
  for (int64_t depth = 1; depth <= 5; ++depth) {
    expected += depth * (int64_t{1} << depth);
  }
  EXPECT_EQ(tc.size(), expected);  // 258
}

TEST(Recursion, Fig10RandomDagBothStrategies) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    data::Database db = data::ParentRandom(40, 80, seed);
    Relation tc = BothStrategies(db, kTransitiveClosure);
    EXPECT_GT(tc.size(), 0) << "seed " << seed;
  }
}

TEST(Recursion, NonLinearDoublingRule) {
  // Two recursive sites in one disjunct (A ⋈ A). Semi-naive must cover
  // Δ⋈A and A⋈Δ; the result must still equal the linear formulation.
  data::Database db = data::ParentChain(16);
  Relation nonlinear = BothStrategies(
      db,
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists a1 in A, a2 in A [A.s = a1.s and a1.t = a2.s and "
      "a2.t = A.t]}");
  Relation linear = BothStrategies(db, kTransitiveClosure);
  EXPECT_TRUE(nonlinear.EqualsSet(linear));
}

TEST(Recursion, MutuallyReferencingDefinitionChain) {
  // E copies P, TC is the recursive closure over E, and the main query
  // joins TC back with E: each definition references the previous one.
  data::Database db = data::ParentChain(8);
  const std::string source =
      "define {E(s, t) | exists p in P [E.s = p.s and E.t = p.t]} "
      "define {TC(s, t) | exists e in E [TC.s = e.s and TC.t = e.t] or "
      "exists e in E, t2 in TC [TC.s = e.s and e.t = t2.s and "
      "t2.t = TC.t]} "
      "{Q(s, t) | exists tc in TC, e in E [Q.s = tc.s and tc.t = e.s and "
      "Q.t = e.t]}";
  Relation out = BothStrategies(db, source);
  // Paths of length >= 2 in a chain of 8: pairs (i, j) with j - i >= 2.
  EXPECT_EQ(out.size(), 21);
  EXPECT_TRUE(out.Contains(data::Tuple{Value::Int(0), Value::Int(7)}));
  EXPECT_FALSE(out.Contains(data::Tuple{Value::Int(0), Value::Int(1)}));
}

TEST(Recursion, RecursiveDefineFeedsMainQuery) {
  data::Database db = data::ParentChain(6);
  const std::string source =
      "define {A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]} "
      "{Roots(s) | exists a in A [Roots.s = a.s and a.t = 5]}";
  Relation out = BothStrategies(db, source);
  EXPECT_EQ(out.size(), 5);  // every node 0..4 reaches 5
}

TEST(Recursion, GuardErrorsCleanlyUnderBothStrategies) {
  // A(n) grows forever: base from P, step n+1 — the guard must fire with
  // a clean error (no hang, no OOM) under both strategies.
  data::Database db = data::ParentChain(3);
  Program p = MustParse(
      "{A(n) | exists p in P [A.n = p.s] or "
      "exists a2 in A [A.n = a2.n + 1]}");
  for (RecursionStrategy strategy :
       {RecursionStrategy::kSemiNaive, RecursionStrategy::kNaive}) {
    EvalOptions opts;
    opts.recursion_strategy = strategy;
    opts.max_fixpoint_iterations = 50;
    auto result = Eval(db, p, opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kEvalError);
    EXPECT_NE(result.status().message().find("fixpoint"), std::string::npos);
  }
}

TEST(Recursion, NegatedSelfReferenceFallsBackToNaive) {
  // The self-reference sits under `not`. The validator normally rejects
  // this shape outright; with validation off (the escape hatch for unusual
  // shapes), the semi-naive strategy must detect the non-monotone site and
  // route the collection to the naive oracle (EvalStats counts it). The
  // negation here is vacuously true, so the fixpoint still converges.
  data::Database db = data::ParentChain(4);
  Program p = MustParse(
      "{A(n) | exists p in P [A.n = p.s] or "
      "exists p in P [A.n = p.s + 10 and "
      "not(exists a2 in A [a2.n = p.s + 100])]}");
  auto run = [&](RecursionStrategy strategy, EvalStats* stats) {
    EvalOptions opts;
    opts.recursion_strategy = strategy;
    opts.validate = false;
    Evaluator ev(db, opts);
    auto out = ev.EvalProgram(p);
    if (stats != nullptr) *stats = ev.stats();
    return out;
  };
  EvalStats stats;
  auto semi = run(RecursionStrategy::kSemiNaive, &stats);
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  EXPECT_GE(stats.naive_fixpoints, 1);
  auto naive = run(RecursionStrategy::kNaive, nullptr);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(semi->EqualsSet(*naive));
}

TEST(Recursion, StatsTelemetryPopulated) {
  data::Database db = data::ParentChain(20);
  Program p = MustParse(kTransitiveClosure);
  EvalStats semi_stats;
  auto semi = EvalWith(db, p, RecursionStrategy::kSemiNaive, &semi_stats);
  ASSERT_TRUE(semi.ok());
  EXPECT_GT(semi_stats.fixpoint_iterations, 0);
  // Every result tuple enters the accumulator exactly once.
  EXPECT_EQ(semi_stats.fixpoint_delta_tuples, semi->size());
  EXPECT_GT(semi_stats.scope_evaluations, 0);
  EXPECT_GT(semi_stats.rows_scanned, 0);
  EXPECT_EQ(semi_stats.naive_fixpoints, 0);

  EvalStats naive_stats;
  auto naive = EvalWith(db, p, RecursionStrategy::kNaive, &naive_stats);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive_stats.naive_fixpoints, 1);

  // The asymptotic win semi-naive exists for — the delta overlay visits
  // strictly fewer rows than re-evaluating the full body every round — is
  // asserted under the string-keyed reference path: the slot-compiled path
  // additionally index-probes the fixpoint accumulator, which collapses the
  // naive strategy's scan counts and blurs the strategy comparison.
  EvalStats semi_ref;
  ASSERT_TRUE(EvalWith(db, p, RecursionStrategy::kSemiNaive, &semi_ref,
                       BindingMode::kStringKeyed)
                  .ok());
  EvalStats naive_ref;
  ASSERT_TRUE(EvalWith(db, p, RecursionStrategy::kNaive, &naive_ref,
                       BindingMode::kStringKeyed)
                  .ok());
  EXPECT_LT(semi_ref.rows_scanned, naive_ref.rows_scanned);
  // Naive re-derives every known tuple each round; semi-naive only
  // re-derives across overlapping deltas.
  EXPECT_LT(semi_stats.dedup_hits, naive_stats.dedup_hits);
  EXPECT_LT(semi_ref.dedup_hits, naive_ref.dedup_hits);

  // Slot-compiled counters: frames are bound and attribute reads are served
  // from slots. The reference path keeps all of them at 0.
  EXPECT_GT(semi_stats.frames_pushed, 0);
  EXPECT_GT(semi_stats.slot_reads, 0);
  EXPECT_EQ(semi_ref.frames_pushed, 0);
  EXPECT_EQ(semi_ref.slot_reads, 0);
  EXPECT_EQ(semi_ref.join_table_reuses, 0);

  // Join-table reuse: rounds after the first extend the accumulator's hash
  // table incrementally instead of rebuilding it. Linear TC under
  // semi-naive only probes the (wholesale-replaced) delta, so reuse shows
  // where the accumulator is actually probed across rounds: every naive
  // round, and the non-delta site of a non-linear rule.
  EXPECT_GT(naive_stats.join_table_reuses, 0);
  EXPECT_EQ(semi_stats.join_table_reuses, 0);
  Program nonlinear = MustParse(
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists a1 in A, a2 in A [A.s = a1.s and a1.t = a2.s and "
      "a2.t = A.t]}");
  EvalStats nonlinear_stats;
  ASSERT_TRUE(EvalWith(db, nonlinear, RecursionStrategy::kSemiNaive,
                       &nonlinear_stats)
                  .ok());
  EXPECT_GT(nonlinear_stats.join_table_reuses, 0);

  // ToString (the `arctool --stats` shape) lists every counter.
  const std::string rendered = semi_stats.ToString();
  for (const char* name :
       {"fixpoint_iterations", "rows_scanned", "index_probes", "dedup_hits",
        "scope_evaluations", "frames_pushed", "slot_reads",
        "join_table_reuses"}) {
    EXPECT_NE(rendered.find(name), std::string::npos) << name;
  }
}

TEST(Recursion, StatsResetBetweenEvaluations) {
  data::Database db = data::ParentChain(10);
  Program p = MustParse(kTransitiveClosure);
  Evaluator ev(db);
  ASSERT_TRUE(ev.EvalProgram(p).ok());
  const int64_t first = ev.stats().fixpoint_iterations;
  ASSERT_TRUE(ev.EvalProgram(p).ok());
  EXPECT_EQ(ev.stats().fixpoint_iterations, first);
}

// ---------------------------------------------------------------------------
// Differential property test: a randomly generated (validator-clean)
// collection becomes the edge relation of a recursive closure, evaluated
// under both strategies. Odd seeds use the non-linear doubling rule so the
// multi-site delta expansion is exercised too.
// ---------------------------------------------------------------------------

data::Database FuzzDb(uint64_t seed) {
  data::Database db;
  data::Relation r = data::RandomBinary(12, 8, 0.1, 0.0, seed);
  db.Put("R", std::move(r));
  data::Relation s0 = data::RandomBinary(10, 8, 0.0, 0.0, seed + 100);
  db.Put("S", data::Relation(data::Schema{"C", "D"}, s0.rows()));
  data::Relation t0 = data::RandomUnary(8, 8, 0.0, seed + 200);
  db.Put("T", data::Relation(data::Schema{"E"}, t0.rows()));
  return db;
}

class RecursiveDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecursiveDifferential, SemiNaiveEqualsNaive) {
  const uint64_t seed = GetParam();
  data::Database db = FuzzDb(seed * 31 + 1);
  RandomQueryOptions qopts;
  qopts.seed = seed;
  auto base = GenerateRandomCollection(db, qopts);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const auto& attrs = (*base)->head.attrs;
  if (attrs.size() < 2) GTEST_SKIP() << "need a binary edge relation";
  Program base_program;
  base_program.main.collection = (*base)->Clone();
  const std::string edges = text::PrintProgram(base_program);
  const std::string a0 = attrs[0];
  const std::string a1 = attrs[1];
  const std::string step =
      seed % 2 == 0
          // Linear: Tc(x, y) ← Q(x, z), Tc(z, y).
          ? "exists b in Q, t2 in Tc [Tc.x = b." + a0 + " and b." + a1 +
                " = t2.x and t2.y = Tc.y]"
          // Non-linear: Tc(x, y) ← Tc(x, z), Tc(z, y).
          : "exists t1 in Tc, t2 in Tc [Tc.x = t1.x and t1.y = t2.x and "
            "t2.y = Tc.y]";
  const std::string source =
      "define " + edges +
      " {Tc(x, y) | exists b in Q [Tc.x = b." + a0 + " and Tc.y = b." + a1 +
      "] or " + step + "}";
  Program program = MustParse(source);
  auto semi = EvalWith(db, program, RecursionStrategy::kSemiNaive);
  auto naive = EvalWith(db, program, RecursionStrategy::kNaive);
  ASSERT_TRUE(semi.ok()) << source << "\n" << semi.status().ToString();
  ASSERT_TRUE(naive.ok()) << source << "\n" << naive.status().ToString();
  EXPECT_TRUE(semi->EqualsSet(*naive))
      << source << "\nsemi-naive:\n" << semi->ToString() << "naive:\n"
      << naive->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecursiveDifferential,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace arc::eval
