// Translator tests. The central property is *execution equivalence by
// differential testing*: for a SQL query Q,
//   DirectSqlEval(Q)  ≡bag  ArcEval(SqlToArc(Q), Conventions::Sql())
// and for the rendered round trip,
//   DirectSqlEval(Q)  ≡bag  DirectSqlEval(ArcToSql(SqlToArc(Q))).
#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/evaluator.h"
#include "sql/eval.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/arc_to_sql.h"
#include "translate/sql_to_arc.h"

namespace arc::translate {
namespace {

using data::Relation;

struct Case {
  const char* name;
  const char* setup;  // CREATE/INSERT script
  const char* sql;
};

// Shared mini-instances (kept small; randomized instances below).
constexpr const char* kRsSetup =
    "create table R (A int, B int);"
    "insert into R values (1,5),(2,6),(3,7),(1,5),(4,9);"
    "create table S (B int, C int);"
    "insert into S values (5,0),(6,3),(7,0),(5,1),(9,0);";

constexpr const char* kEmplSetup =
    "create table R (empl int, dept int);"
    "insert into R values (1,1),(2,1),(3,2),(4,2),(5,3);"
    "create table S (empl int, sal int);"
    "insert into S values (1,60),(2,60),(3,30),(4,80),(5,100);";

constexpr const char* kNullSetup =
    "create table R (A int);"
    "insert into R values (1),(2),(3);"
    "create table S (A int);"
    "insert into S values (1),(null);";

constexpr const char* kCountBugSetup =
    "create table R (id int, q int);"
    "insert into R values (9,0),(1,2),(2,1);"
    "create table S (id int, d int);"
    "insert into S values (1,10),(1,20),(2,30);";

constexpr const char* kLikesSetup =
    "create table Likes (drinker int, beer int);"
    "insert into Likes values (0,0),(0,1),(1,0),(1,1),(2,2),(3,0);";

constexpr const char* kParentSetup =
    "create table P (s int, t int);"
    "insert into P values (0,1),(1,2),(2,3),(1,4);";

const Case kCases[] = {
    {"Projection", kRsSetup, "select R.A from R"},
    {"Selection", kRsSetup, "select R.A, R.B from R where R.B > 5"},
    {"Distinct", kRsSetup, "select distinct R.A from R"},
    {"Join", kRsSetup,
     "select R.A from R, S where R.B = S.B and S.C = 0"},
    {"ExplicitJoin", kRsSetup,
     "select R.A from R join S on R.B = S.B where S.C = 0"},
    {"Arithmetic", kRsSetup,
     "select R.A + R.B * 2 x from R where R.A - 1 < R.B / 2"},
    {"OrPredicate", kRsSetup,
     "select R.A from R where R.B = 5 or R.A > 2"},
    {"GroupBy", kRsSetup, "select R.A, sum(R.B) sm from R group by R.A"},
    {"GroupByMultiAgg", kRsSetup,
     "select R.A, sum(R.B) sm, count(R.B) ct, min(R.B) mn, max(R.B) mx "
     "from R group by R.A"},
    {"AvgDouble", kEmplSetup,
     "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
     "group by R.dept"},
    {"ImplicitSingleGroup", kRsSetup, "select count(R.A) ct from R"},
    {"SumOverEmpty", "create table R (A int);", "select sum(R.A) sm from R"},
    {"Having", kEmplSetup,
     "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
     "group by R.dept having sum(S.sal) > 100"},
    {"HavingReusesSelectAgg", kEmplSetup,
     "select R.dept, sum(S.sal) sm from R, S where R.empl = S.empl "
     "group by R.dept having sum(S.sal) > 100"},
    {"CountDistinct", kRsSetup,
     "select count(distinct R.A) c from R"},
    {"Exists", kRsSetup,
     "select R.A from R where exists (select 1 from S where S.B = R.B)"},
    {"NotExists", kRsSetup,
     "select R.A from R where not exists (select 1 from S where S.B = R.B)"},
    {"In", kNullSetup,
     "select R.A from R where R.A in (select S.A from S)"},
    {"NotInWithNulls", kNullSetup,
     "select R.A from R where R.A not in (select S.A from S)"},
    {"NotInNoNulls", kRsSetup,
     "select R.A from R where R.A not in (select S.B from S)"},
    {"NotParenIn", kNullSetup,
     "select R.A from R where not (R.A in (select S.A from S))"},
    {"ScalarSubqueryAggregate", kCountBugSetup,
     "select R.id, (select count(S.d) from S where S.id = R.id) c from R"},
    {"CountBugOriginal", kCountBugSetup,
     "select R.id from R where R.q = (select count(S.d) from S "
     "where S.id = R.id)"},
    {"CountBugBuggy", kCountBugSetup,
     "select R.id from R, (select S.id, count(S.d) ct from S group by S.id) X "
     "where R.id = X.id and R.q = X.ct"},
    {"CountBugCorrect", kCountBugSetup,
     "select R.id from R, (select R2.id, count(S.d) ct from R R2 left join S "
     "on R2.id = S.id group by R2.id) X where R.id = X.id and R.q = X.ct"},
    {"LateralJoin", kRsSetup,
     "select R.A, X.sm from R join lateral (select sum(S.C) sm from S "
     "where S.B = R.B) X on true"},
    {"Fig5ScalarVsLateral", kRsSetup,
     "select distinct R.A, (select sum(R2.B) from R R2 where R2.A = R.A) sm "
     "from R"},
    {"LeftJoin", kRsSetup,
     "select R.A, S.C from R left join S on R.B = S.B"},
    {"FullJoin", kRsSetup,
     "select R.B, S.B from R full join S on R.B = S.B"},
    {"LeftJoinGroupBy", kCountBugSetup,
     "select R2.id, count(S.d) ct from R R2 left join S on R2.id = S.id "
     "group by R2.id"},
    {"LeftJoinLiteralAnchor", kRsSetup,
     "select R.A, S.C from R left join S on R.B = S.B and R.A = 1"},
    {"CrossJoin", kRsSetup,
     "select R.A, S.C from R cross join S where R.B = S.B"},
    {"FromSubquery", kRsSetup,
     "select X.A from (select R.A from R where R.B > 5) X"},
    {"Union", kRsSetup, "select R.A from R union select S.C from S"},
    {"UnionAll", kRsSetup,
     "select R.A from R union all select S.C from S"},
    {"Cte", kRsSetup,
     "with T as (select R.A, R.B from R where R.A > 1) "
     "select T.A from T where T.B < 9"},
    {"RecursiveCte", kParentSetup,
     "with recursive A as (select P.s, P.t from P union "
     "select P.s, A.t from P, A where P.t = A.s) select A.s, A.t from A"},
    {"IsNull", kNullSetup, "select S.A from S where S.A is null"},
    {"IsNotNull", kNullSetup, "select S.A from S where S.A is not null"},
    {"UniqueSet", kLikesSetup,
     "select distinct L1.drinker from Likes L1 where not exists "
     "(select 1 from Likes L2 where L1.drinker <> L2.drinker and "
     "not exists (select 1 from Likes L3 where L3.drinker = L2.drinker and "
     "not exists (select 1 from Likes L4 where L4.drinker = L1.drinker and "
     "L4.beer = L3.beer)) and "
     "not exists (select 1 from Likes L5 where L5.drinker = L1.drinker and "
     "not exists (select 1 from Likes L6 where L6.drinker = L2.drinker and "
     "L6.beer = L5.beer)))"},
    {"NestedAggExists", kCountBugSetup,
     "select R.id from R where exists (select 1 from S where S.id = R.id "
     "group by S.id having count(S.d) >= 2)"},
    {"UnqualifiedColumns", kRsSetup, "select A, C from R, S where R.B = S.B"},
    // Regression: the inner FROM alias shadows the outer one; the
    // translated membership/correlation references must not be captured.
    {"SelfShadowingNotIn", kRsSetup,
     "select R.A from R where R.A not in (select R.B from R)"},
    {"SelfShadowingIn", kRsSetup,
     "select R.A from R where R.B in (select R.A from R)"},
    {"SelfShadowingExists", kRsSetup,
     "select R.A from R where exists (select 1 from R where R.B > 6)"},
    {"SelfShadowingScalar", kRsSetup,
     "select R.A, (select count(R.B) from R) c from R"},
};

class Differential : public ::testing::TestWithParam<Case> {};

TEST_P(Differential, SqlToArcMatchesDirectSql) {
  const Case& c = GetParam();
  auto db = sql::ExecuteSetupScript(c.setup);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  sql::SqlEvaluator direct(*db);
  auto expected = direct.EvalQuery(c.sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  SqlToArcOptions topts;
  topts.database = &*db;
  auto program = SqlToArc(c.sql, topts);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  eval::EvalOptions eopts;
  eopts.conventions = Conventions::Sql();
  auto actual = eval::Eval(*db, *program, eopts);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString() << "\nARC:\n"
                           << text::PrintProgram(*program);
  EXPECT_TRUE(actual->EqualsBag(*expected))
      << "SQL: " << c.sql << "\nARC:\n"
      << text::PrintProgram(*program) << "\nexpected:\n"
      << expected->Sorted().ToString() << "actual:\n"
      << actual->Sorted().ToString();
}

TEST_P(Differential, RoundTripSqlArcSqlMatches) {
  const Case& c = GetParam();
  auto db = sql::ExecuteSetupScript(c.setup);
  ASSERT_TRUE(db.ok());
  sql::SqlEvaluator direct(*db);
  auto expected = direct.EvalQuery(c.sql);
  ASSERT_TRUE(expected.ok());

  SqlToArcOptions topts;
  topts.database = &*db;
  auto program = SqlToArc(c.sql, topts);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto rendered = ArcToSqlText(*program);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString() << "\nARC:\n"
                             << text::PrintProgram(*program);
  auto actual = direct.EvalQuery(*rendered);
  ASSERT_TRUE(actual.ok()) << *rendered << "\n" << actual.status().ToString();
  EXPECT_TRUE(actual->EqualsBag(*expected))
      << "SQL: " << c.sql << "\nrendered: " << *rendered << "\nexpected:\n"
      << expected->Sorted().ToString() << "actual:\n"
      << actual->Sorted().ToString();
}

INSTANTIATE_TEST_SUITE_P(Corpus, Differential, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

// Randomized differential testing over generated instances.
TEST(DifferentialRandom, JoinAggregateQueriesOnRandomData) {
  const char* queries[] = {
      "select R.A, count(R.B) c from R group by R.A",
      "select R.A from R where R.B in (select S.B from S)",
      "select R.A from R where R.B not in (select S.B from S)",
      "select R.A, (select count(S.C) from S where S.B = R.B) c from R",
      "select R.A, S.C from R left join S on R.B = S.B",
      "select distinct R.A from R, S where R.B = S.B",
  };
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    data::Database db;
    data::Relation r = data::RandomBinary(30, 8, 0.2, 0.1, seed);
    db.Put("R", std::move(r));
    data::Relation s0 = data::RandomBinary(25, 8, 0.1, 0.1, seed + 50);
    db.Put("S", data::Relation(data::Schema{"B", "C"}, s0.rows()));
    sql::SqlEvaluator direct(db);
    for (const char* q : queries) {
      auto expected = direct.EvalQuery(q);
      ASSERT_TRUE(expected.ok()) << q;
      SqlToArcOptions topts;
      topts.database = &db;
      auto program = SqlToArc(q, topts);
      ASSERT_TRUE(program.ok()) << q << "\n" << program.status().ToString();
      eval::EvalOptions eopts;
      eopts.conventions = Conventions::Sql();
      auto actual = eval::Eval(db, *program, eopts);
      ASSERT_TRUE(actual.ok())
          << q << "\n" << actual.status().ToString() << "\nARC:\n"
          << text::PrintProgram(*program);
      EXPECT_TRUE(actual->EqualsBag(*expected))
          << "seed " << seed << " query " << q << "\nARC:\n"
          << text::PrintProgram(*program) << "expected:\n"
          << expected->Sorted().ToString() << "actual:\n"
          << actual->Sorted().ToString();
    }
  }
}

// ARC → SQL for ARC-native queries (paper corpus), validated against the
// ARC evaluator.
TEST(ArcToSqlNative, GroupedAggregate) {
  auto db = sql::ExecuteSetupScript(
      "create table R (A int, B int);"
      "insert into R values (1,10),(1,20),(2,5);");
  ASSERT_TRUE(db.ok());
  auto program = text::ParseProgram(
      "{Q(A, sm) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and Q.sm = sum(r.B)]}");
  ASSERT_TRUE(program.ok());
  ArcToSqlOptions opts;
  opts.emulate_set_semantics = true;
  auto rendered = ArcToSqlText(*program, opts);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  sql::SqlEvaluator direct(*db);
  auto via_sql = direct.EvalQuery(*rendered);
  ASSERT_TRUE(via_sql.ok()) << *rendered;
  auto via_arc = eval::Eval(*db, *program);
  ASSERT_TRUE(via_arc.ok());
  EXPECT_TRUE(via_sql->EqualsBag(*via_arc)) << *rendered;
}

TEST(ArcToSqlNative, RecursionRendersWithRecursive) {
  auto db = sql::ExecuteSetupScript(
      "create table P (s int, t int);"
      "insert into P values (0,1),(1,2),(2,3);");
  ASSERT_TRUE(db.ok());
  auto program = text::ParseProgram(
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}");
  ASSERT_TRUE(program.ok());
  auto rendered = ArcToSqlText(*program);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_NE(rendered->find("WITH RECURSIVE"), std::string::npos);
  sql::SqlEvaluator direct(*db);
  auto via_sql = direct.EvalQuery(*rendered);
  ASSERT_TRUE(via_sql.ok()) << *rendered;
  auto via_arc = eval::Eval(*db, *program);
  ASSERT_TRUE(via_arc.ok());
  EXPECT_TRUE(via_sql->EqualsSet(*via_arc)) << *rendered;
}

TEST(ArcToSqlNative, NegationAndSentence) {
  auto db = sql::ExecuteSetupScript(
      "create table R (id int, q int); insert into R values (1,1);"
      "create table S (id int, d int); insert into S values (1,10);");
  ASSERT_TRUE(db.ok());
  auto program = text::ParseProgram(
      "exists r in R [exists s in S, gamma() "
      "[r.id = s.id and r.q <= count(s.d)]]");
  ASSERT_TRUE(program.ok());
  auto rendered = ArcToSqlText(*program);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  sql::SqlEvaluator direct(*db);
  auto out = direct.EvalQuery(*rendered);
  ASSERT_TRUE(out.ok()) << *rendered;
  EXPECT_EQ(out->size(), 1) << *rendered;  // SELECT TRUE … WHERE cond: true
}

TEST(ArcToSqlNative, OuterJoinWithLiteralAnchor) {
  auto db = sql::ExecuteSetupScript(
      "create table R (m int, y int, h int);"
      "insert into R values (1,7,11),(2,8,12);"
      "create table S (n int, y int);"
      "insert into S values (100,7),(200,8);");
  ASSERT_TRUE(db.ok());
  auto program = text::ParseProgram(
      "{Q(m, n) | exists r in R, s in S, left(r, inner(11, s)) "
      "[Q.m = r.m and Q.n = s.n and r.y = s.y and r.h = 11]}");
  ASSERT_TRUE(program.ok());
  auto rendered = ArcToSqlText(*program);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  sql::SqlEvaluator direct(*db);
  auto via_sql = direct.EvalQuery(*rendered);
  ASSERT_TRUE(via_sql.ok()) << *rendered;
  eval::EvalOptions eopts;
  eopts.conventions = Conventions::Sql();
  auto via_arc = eval::Eval(*db, *program, eopts);
  ASSERT_TRUE(via_arc.ok());
  EXPECT_TRUE(via_sql->EqualsBag(*via_arc)) << *rendered;
}

TEST(ArcToSqlNative, AbstractModuleInlines) {
  auto db = sql::ExecuteSetupScript(kLikesSetup);
  ASSERT_TRUE(db.ok());
  auto program = text::ParseProgram(
      "abstract define {Sub(left, right) | "
      "not(exists l3 in Likes [l3.drinker = Sub.left and "
      "not(exists l4 in Likes [l4.beer = l3.beer and "
      "l4.drinker = Sub.right])])} "
      "{Q(d) | exists l1 in Likes [Q.d = l1.drinker and "
      "not(exists l2 in Likes, s1 in Sub, s2 in Sub "
      "[l2.drinker <> l1.drinker and "
      "s1.left = l2.drinker and s1.right = l1.drinker and "
      "s2.left = l1.drinker and s2.right = l2.drinker])]}");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ArcToSqlOptions opts;
  opts.emulate_set_semantics = true;
  auto rendered = ArcToSqlText(*program, opts);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  sql::SqlEvaluator direct(*db);
  auto via_sql = direct.EvalQuery(*rendered);
  ASSERT_TRUE(via_sql.ok()) << *rendered;
  auto via_arc = eval::Eval(*db, *program);
  ASSERT_TRUE(via_arc.ok());
  EXPECT_TRUE(via_sql->EqualsSet(*via_arc)) << *rendered;
}

TEST(SqlToArcShapes, Fig5ScalarAndLateralShareTheFoiPattern) {
  auto db = sql::ExecuteSetupScript(kRsSetup);
  ASSERT_TRUE(db.ok());
  SqlToArcOptions topts;
  topts.database = &*db;
  auto scalar = SqlToArc(
      "select distinct R.A, (select sum(R2.B) from R R2 where R2.A = R.A) sm "
      "from R",
      topts);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  const std::string printed = text::PrintProgram(*scalar);
  // The scalar subquery is represented as a lateral nested collection with
  // γ∅ — the FOI pattern (Fig. 5c / Fig. 13d).
  EXPECT_NE(printed.find("gamma()"), std::string::npos) << printed;
  EXPECT_NE(printed.find("sum(R2.B)"), std::string::npos) << printed;
}

TEST(SqlToArcShapes, OrderByIsRejectedAsPresentationLevel) {
  auto db = sql::ExecuteSetupScript(kRsSetup);
  ASSERT_TRUE(db.ok());
  SqlToArcOptions topts;
  topts.database = &*db;
  auto result = SqlToArc("select R.A from R order by R.A", topts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(result.status().message().find("presentation-level"),
            std::string::npos);
}

TEST(SqlToArcShapes, UnsupportedConstructsReportClearly) {
  auto db = sql::ExecuteSetupScript(kRsSetup);
  ASSERT_TRUE(db.ok());
  SqlToArcOptions topts;
  topts.database = &*db;
  auto star = SqlToArc("select * from R", topts);
  EXPECT_FALSE(star.ok());
  EXPECT_EQ(star.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace arc::translate
