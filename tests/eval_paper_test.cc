// End-to-end reproduction of every worked example in the paper, on the
// paper's own instances where it gives one (count bug §3.2, conventions
// §2.6) and on small constructed instances otherwise. Each test cites the
// equation/figure it reproduces.
#include <gtest/gtest.h>

#include "arc/conventions.h"
#include "data/generators.h"
#include "eval/evaluator.h"
#include "text/parser.h"

namespace arc::eval {
namespace {

using data::Relation;
using data::Schema;
using data::Value;

Relation MustEval(const data::Database& db, const std::string& text,
                  Conventions conv = Conventions::Arc()) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EvalOptions opts;
  opts.conventions = conv;
  auto result = Eval(db, *program, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Relation();
}

Relation Rel(Schema schema, std::vector<std::vector<int64_t>> rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) {
    data::Tuple t;
    for (int64_t v : row) t.Append(Value::Int(v));
    r.Add(std::move(t));
  }
  return r;
}

// --- §2.1 / Eq. (1), Fig. 2 ------------------------------------------------

TEST(Paper, Eq1TrcQuery) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 5}, {2, 6}, {3, 7}}));
  db.Put("S", Rel(Schema{"B", "C"}, {{5, 0}, {6, 3}, {7, 0}}));
  Relation out = MustEval(
      db, "{Q(A) | exists r in R, s in S "
          "[Q.A = r.A and r.B = s.B and s.C = 0]}");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A"}, {{1}, {3}})));
}

// --- §2.4 / Eq. (2), Fig. 3: lateral nesting -------------------------------

TEST(Paper, Eq2OrthogonalNesting) {
  data::Database db;
  db.Put("X", Rel(Schema{"A"}, {{1}, {4}}));
  db.Put("Y", Rel(Schema{"A"}, {{2}, {5}}));
  Relation out = MustEval(
      db,
      "{Q(A, B) | exists x in X, z in {Z(B) | exists y in Y "
      "[Z.B = y.A and x.A < y.A]} [Q.A = x.A and Q.B = z.B]}");
  EXPECT_TRUE(out.EqualsSet(
      Rel(Schema{"A", "B"}, {{1, 2}, {1, 5}, {4, 5}})));
}

// --- §2.5 / Eq. (3), Fig. 4: FIO grouped aggregate --------------------------

TEST(Paper, Eq3GroupedAggregateFio) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 5}}));
  Relation out = MustEval(
      db, "{Q(A, sm) | exists r in R, gamma(r.A) "
          "[Q.A = r.A and Q.sm = sum(r.B)]}");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A", "sm"}, {{1, 30}, {2, 5}})));
}

// --- §2.5 / Eq. (7), Fig. 5: FOI pattern ------------------------------------

TEST(Paper, Eq7FoiPatternAgreesWithFio) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 5}}));
  Relation foi = MustEval(
      db,
      "{Q(A, sm) | exists r in R, x in {X(sm) | exists r2 in R, gamma() "
      "[r2.A = r.A and X.sm = sum(r2.B)]} [Q.A = r.A and Q.sm = x.sm]}");
  Relation fio = MustEval(
      db, "{Q(A, sm) | exists r in R, gamma(r.A) "
          "[Q.A = r.A and Q.sm = sum(r.B)]}");
  EXPECT_TRUE(foi.EqualsSet(fio)) << foi.ToString() << fio.ToString();
}

// --- §2.5 / Eq. (8), Fig. 6: multiple aggregates + HAVING -------------------

TEST(Paper, Eq8MultipleAggregatesWithHaving) {
  // R(empl, dept), S(empl, sal): dept 1 pays (60, 60) → sum 120, avg 60;
  // dept 2 pays (30) → sum 30 < 100 filtered by HAVING.
  data::Database db;
  db.Put("R", Rel(Schema{"empl", "dept"}, {{1, 1}, {2, 1}, {3, 2}}));
  db.Put("S", Rel(Schema{"empl", "sal"}, {{1, 60}, {2, 60}, {3, 30}}));
  Relation out = MustEval(
      db,
      "{Q(dept, av) | exists x in {X(dept, av, sm) | "
      "exists r in R, s in S, gamma(r.dept) "
      "[X.dept = r.dept and X.av = avg(s.sal) and X.sm = sum(s.sal) and "
      "r.empl = s.empl]} "
      "[Q.dept = x.dept and Q.av = x.av and x.sm > 100]}");
  Relation expected(Schema{"dept", "av"});
  expected.Add({Value::Int(1), Value::Double(60.0)});
  EXPECT_TRUE(out.EqualsSet(expected)) << out.ToString();
}

// --- §2.5 / Eq. (10): the Hella et al. pattern ------------------------------

TEST(Paper, Eq10HellaPatternSameResult) {
  data::Database db;
  db.Put("R", Rel(Schema{"empl", "dept"}, {{1, 1}, {2, 1}, {3, 2}}));
  db.Put("S", Rel(Schema{"empl", "sal"}, {{1, 60}, {2, 60}, {3, 30}}));
  Relation hella = MustEval(
      db,
      "{Q(dept, av) | exists r3 in R, s3 in S, "
      "x in {X(av) | exists r1 in R, s1 in S, gamma(r1.dept) "
      "[r1.dept = r3.dept and r1.empl = s1.empl and X.av = avg(s1.sal)]}, "
      "y in {Y(sm) | exists r2 in R, s2 in S, gamma(r2.dept) "
      "[r2.dept = r3.dept and r2.empl = s2.empl and Y.sm = sum(s2.sal)]} "
      "[Q.dept = r3.dept and Q.av = x.av and r3.empl = s3.empl and "
      "y.sm > 100]}");
  Relation expected(Schema{"dept", "av"});
  expected.Add({Value::Int(1), Value::Double(60.0)});
  EXPECT_TRUE(hella.EqualsSet(expected)) << hella.ToString();
}

// --- §2.5 / Eq. (12): the Rel pattern ----------------------------------------

TEST(Paper, Eq12RelPatternSameResult) {
  data::Database db;
  db.Put("R", Rel(Schema{"empl", "dept"}, {{1, 1}, {2, 1}, {3, 2}}));
  db.Put("S", Rel(Schema{"empl", "sal"}, {{1, 60}, {2, 60}, {3, 30}}));
  Relation rel_pattern = MustEval(
      db,
      "{Q(dept, av) | exists x in {X(dept, av) | "
      "exists r1 in R, s1 in S, gamma(r1.dept) "
      "[X.dept = r1.dept and r1.empl = s1.empl and X.av = avg(s1.sal)]}, "
      "y in {Y(dept, sm) | exists r2 in R, s2 in S, gamma(r2.dept) "
      "[Y.dept = r2.dept and r2.empl = s2.empl and Y.sm = sum(s2.sal)]} "
      "[Q.dept = x.dept and Q.av = x.av and x.dept = y.dept and "
      "y.sm > 100]}");
  Relation expected(Schema{"dept", "av"});
  expected.Add({Value::Int(1), Value::Double(60.0)});
  EXPECT_TRUE(rel_pattern.EqualsSet(expected)) << rel_pattern.ToString();
}

// --- §2.5 / Eqs. (13)-(14), Fig. 9: Boolean sentences -----------------------

TEST(Paper, Eq13Eq14Constraints) {
  auto eval_sentence = [](const data::Database& db, const std::string& text) {
    auto program = text::ParseProgram(text);
    EXPECT_TRUE(program.ok());
    Evaluator ev(db);
    auto r = ev.EvalSentence(*program);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  };
  const std::string eq13 =
      "exists r in R [exists s in S, gamma() "
      "[r.id = s.id and r.q <= count(s.d)]]";
  const std::string eq14 =
      "not(exists r in R [exists s in S, gamma() "
      "[r.id = s.id and r.q > count(s.d)]])";
  // Satisfied instance: every id has enough deliveries.
  data::Database good = data::InventoryInstance(10, 3, /*satisfy_all=*/true, 1);
  EXPECT_EQ(eval_sentence(good, eq13), data::TriBool::kTrue);
  EXPECT_EQ(eval_sentence(good, eq14), data::TriBool::kTrue);
  // Violating instance: some id demands more than delivered.
  data::Database bad = data::InventoryInstance(10, 3, /*satisfy_all=*/false, 2);
  EXPECT_EQ(eval_sentence(bad, eq14), data::TriBool::kFalse);
}

// --- §2.9 / Eq. (16), Fig. 10: recursion -------------------------------------

TEST(Paper, Eq16AncestorRecursion) {
  data::Database db = data::ParentChain(6);
  Relation out = MustEval(
      db,
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}");
  EXPECT_EQ(out.size(), 15);  // C(6,2)
  EXPECT_TRUE(out.Contains(data::Tuple{Value::Int(0), Value::Int(5)}));
}

// --- §2.10 / Eq. (17), Fig. 11: NOT IN null semantics ------------------------

TEST(Paper, Eq17NotInNullBehavior) {
  // SQL: R.A NOT IN (SELECT S.A FROM S) is empty whenever S has a null.
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  Relation s(Schema{"A"});
  s.Add({Value::Int(1)});
  s.Add({Value::Null()});
  db.Put("S", std::move(s));
  Relation out = MustEval(
      db,
      "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
      "[s.A = r.A or s.A is null or r.A is null])]}");
  EXPECT_TRUE(out.empty()) << out.ToString();
  // Without the null row, 2 survives.
  data::Database db2;
  db2.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  db2.Put("S", Rel(Schema{"A"}, {{1}}));
  Relation out2 = MustEval(
      db2,
      "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
      "[s.A = r.A or s.A is null or r.A is null])]}");
  EXPECT_TRUE(out2.EqualsBag(Rel(Schema{"A"}, {{2}})));
}

// --- §2.12, Fig. 13: head aggregates — lateral vs LEFT JOIN + GROUP BY ------

TEST(Paper, Fig13LateralVsLeftJoinGroupByUnderBags) {
  // R has duplicate rows; the scalar/lateral form emits once per R tuple;
  // the LEFT JOIN + GROUP BY rewrite collapses duplicates (the paper's
  // counterexample).
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {1}}));  // duplicates, no key
  db.Put("S", Rel(Schema{"A", "B"}, {{0, 7}}));
  const std::string lateral =
      "{Q(A, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.A < r.A and X.sm = sum(s.B)]} [Q.A = r.A and Q.sm = x.sm]}";
  // LEFT JOIN + GROUP BY r.A in ARC: group on r.A, aggregate over padded s.
  const std::string left_join =
      "{Q(A, sm) | exists r in R, s in S, gamma(r.A), left(r, s) "
      "[Q.A = r.A and Q.sm = sum(s.B) and s.A < r.A]}";
  Relation lat = MustEval(db, lateral, Conventions::Sql());
  Relation lj = MustEval(db, left_join, Conventions::Sql());
  // Once per R tuple: (1,7) twice.
  EXPECT_TRUE(lat.EqualsBag(Rel(Schema{"A", "sm"}, {{1, 7}, {1, 7}})))
      << lat.ToString();
  // Duplicates collapsed into one group whose sum double-counts: (1,14).
  EXPECT_TRUE(lj.EqualsBag(Rel(Schema{"A", "sm"}, {{1, 14}})))
      << lj.ToString();
  // Without duplicates in R the two rewrites agree.
  data::Database db2;
  db2.Put("R", Rel(Schema{"A"}, {{1}}));
  db2.Put("S", Rel(Schema{"A", "B"}, {{0, 7}}));
  EXPECT_TRUE(MustEval(db2, lateral, Conventions::Sql())
                  .EqualsBag(MustEval(db2, left_join, Conventions::Sql())));
}

// --- §2.13 / Eqs. (19)-(21), Fig. 15: external relations ---------------------

TEST(Paper, Eq19to21ExternalRelationsAgree) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {2, 4}}));
  db.Put("S", Rel(Schema{"B"}, {{3}}));
  db.Put("T", Rel(Schema{"B"}, {{5}}));
  // Native arithmetic (19).
  Relation native = MustEval(
      db, "{Q(A) | exists r in R, s in S, t in T "
          "[Q.A = r.A and r.B - s.B > t.B]}");
  // Reified minus (20).
  Relation reified = MustEval(
      db, "{Q(A) | exists r in R, s in S, t in T, f in Minus "
          "[Q.A = r.A and f.left = r.B and f.right = s.B and f.out > t.B]}");
  // Fully reified (21).
  Relation fully = MustEval(
      db, "{Q(A) | exists r in R, s in S, t in T, f in Minus, g in Bigger "
          "[Q.A = r.A and f.left = r.B and f.right = s.B and "
          "f.out = g.left and g.right = t.B]}");
  EXPECT_TRUE(native.EqualsSet(Rel(Schema{"A"}, {{1}})));
  EXPECT_TRUE(reified.EqualsSet(native));
  EXPECT_TRUE(fully.EqualsSet(native));
}

// --- §2.13.2 / Eqs. (22)-(24), Figs. 16-19: unique-set query ----------------

constexpr const char* kUniqueSetMonolithic =
    "{Q(d) | exists l1 in Likes [Q.d = l1.drinker and "
    "not(exists l2 in Likes [l2.drinker <> l1.drinker and "
    "not(exists l3 in Likes [l3.drinker = l2.drinker and "
    "not(exists l4 in Likes [l4.beer = l3.beer and "
    "l4.drinker = l1.drinker])])"
    " and "
    "not(exists l5 in Likes [l5.drinker = l1.drinker and "
    "not(exists l6 in Likes [l6.drinker = l2.drinker and "
    "l6.beer = l5.beer])])])]}";

constexpr const char* kUniqueSetModular =
    "abstract define {S(left, right) | "
    "not(exists l3 in Likes [l3.drinker = S.left and "
    "not(exists l4 in Likes [l4.beer = l3.beer and "
    "l4.drinker = S.right])])} "
    "{Q(d) | exists l1 in Likes [Q.d = l1.drinker and "
    "not(exists l2 in Likes, s1 in S, s2 in S "
    "[l2.drinker <> l1.drinker and "
    "s1.left = l2.drinker and s1.right = l1.drinker and "
    "s2.left = l1.drinker and s2.right = l2.drinker])]}";

TEST(Paper, Eq22UniqueSetQueryHandPicked) {
  // Drinkers: 0 likes {0,1}; 1 likes {0,1}; 2 likes {2}. Unique: only 2.
  data::Database db;
  db.Put("Likes", Rel(Schema{"drinker", "beer"},
                      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}}));
  Relation out = MustEval(db, kUniqueSetMonolithic);
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"d"}, {{2}})));
}

TEST(Paper, Eq24ModularizedUniqueSetAgrees) {
  data::Database db = data::LikesInstance(8, 6, 0.4, 0.4, 42);
  Relation mono = MustEval(db, kUniqueSetMonolithic);
  Relation modular = MustEval(db, kUniqueSetModular);
  EXPECT_TRUE(mono.EqualsSet(modular))
      << mono.ToString() << modular.ToString();
}

// --- §3.1 / Eqs. (25)-(26), Fig. 20: matrix multiplication -------------------

TEST(Paper, Eq26MatrixMultiplication) {
  // A = [[1,2],[0,3]], B = [[4,0],[1,1]]  →  C = [[6,2],[3,3]].
  data::Database db;
  db.Put("A", Rel(Schema{"row", "col", "val"},
                  {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}}));
  db.Put("B", Rel(Schema{"row", "col", "val"},
                  {{0, 0, 4}, {1, 0, 1}, {1, 1, 1}}));
  Relation out = MustEval(
      db,
      "{C(row, col, val) | exists a in A, b in B, gamma(a.row, b.col) "
      "[C.row = a.row and C.col = b.col and a.col = b.row and "
      "C.val = sum(a.val * b.val)]}");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"row", "col", "val"},
                                {{0, 0, 6}, {0, 1, 2}, {1, 0, 3}, {1, 1, 3}})))
      << out.ToString();
}

TEST(Paper, Fig20MatrixMultiplicationWithReifiedTimes) {
  data::Database db;
  db.Put("A", Rel(Schema{"row", "col", "val"}, {{0, 0, 2}, {0, 1, 3}}));
  db.Put("B", Rel(Schema{"row", "col", "val"}, {{0, 0, 5}, {1, 0, 7}}));
  Relation reified = MustEval(
      db,
      "{C(row, col, val) | exists a in A, b in B, f in \"*\", "
      "gamma(a.row, b.col) [C.row = a.row and C.col = b.col and "
      "a.col = b.row and C.val = sum(f.out) and "
      "f.$1 = a.val and f.$2 = b.val]}");
  // 2*5 + 3*7 = 31 at (0,0).
  EXPECT_TRUE(reified.EqualsSet(
      Rel(Schema{"row", "col", "val"}, {{0, 0, 31}})))
      << reified.ToString();
}

// --- §3.2 / Eqs. (27)-(29), Fig. 21: the count bug ---------------------------

constexpr const char* kCountBugOriginal =
    "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
    "[r.id = s.id and r.q = count(s.d)]]}";
constexpr const char* kCountBugBuggy =
    "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, gamma(s.id) "
    "[X.id = s.id and X.ct = count(s.d)]} "
    "[Q.id = r.id and r.id = x.id and r.q = x.ct]}";
constexpr const char* kCountBugCorrect =
    "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, r2 in R, "
    "gamma(r2.id), left(r2, s) [X.id = r2.id and X.ct = count(s.d) and "
    "r2.id = s.id]} [Q.id = r.id and r.id = x.id and r.q = x.ct]}";

TEST(Paper, Fig21CountBugOnPaperInstance) {
  data::Database db = data::CountBugInstance();  // R(9,0), S = ∅
  Relation original = MustEval(db, kCountBugOriginal);
  Relation buggy = MustEval(db, kCountBugBuggy);
  Relation correct = MustEval(db, kCountBugCorrect);
  EXPECT_TRUE(original.EqualsBag(Rel(Schema{"id"}, {{9}})))
      << original.ToString();
  EXPECT_TRUE(buggy.empty()) << buggy.ToString();  // the bug
  EXPECT_TRUE(correct.EqualsBag(original)) << correct.ToString();
}

TEST(Paper, Fig21CountBugOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    data::Database db;
    db.Put("R", data::RandomBinary(12, 6, 0.0, 0.0, seed));
    data::Relation s = data::RandomBinary(20, 6, 0.0, 0.0, seed + 100);
    db.Put("S", data::Relation(Schema{"id", "d"}, s.rows()));
    // Rename R's columns to (id, q).
    const data::Relation* r0 = db.GetPtr("R");
    data::Relation r(Schema{"id", "q"}, r0->rows());
    // Make ids unique (the paper's example assumes R.id is a key).
    r = [](const data::Relation& in) {
      data::Relation out(in.schema());
      std::vector<bool> seen(100, false);
      for (const data::Tuple& t : in.rows()) {
        const int64_t id = t.at(0).as_int();
        if (id >= 0 && id < 100 && !seen[static_cast<size_t>(id)]) {
          seen[static_cast<size_t>(id)] = true;
          out.Add(t);
        }
      }
      return out;
    }(r);
    db.Put("R", std::move(r));
    Relation original = MustEval(db, kCountBugOriginal);
    Relation correct = MustEval(db, kCountBugCorrect);
    EXPECT_TRUE(original.EqualsSet(correct))
        << "seed " << seed << "\n"
        << original.ToString() << correct.ToString();
  }
}

// --- §2.6 / Eq. (15): conventions --------------------------------------------

TEST(Paper, Eq15ConventionDivergence) {
  // R = {(1,2)}, S = ∅: Soufflé derives Q(1,0); SQL returns (1, NULL).
  data::Database db = data::ConventionInstance();
  const std::string q =
      "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.a < r.ak and X.sm = sum(s.b)]} "
      "[Q.ak = r.ak and Q.sm = x.sm]}";
  Relation souffle = MustEval(db, q, Conventions::Souffle());
  ASSERT_EQ(souffle.size(), 1);
  EXPECT_EQ(souffle.rows()[0].at(0).as_int(), 1);
  EXPECT_EQ(souffle.rows()[0].at(1).as_int(), 0);
  Relation sql = MustEval(db, q, Conventions::Sql());
  ASSERT_EQ(sql.size(), 1);
  EXPECT_EQ(sql.rows()[0].at(0).as_int(), 1);
  EXPECT_TRUE(sql.rows()[0].at(1).is_null());
}

}  // namespace
}  // namespace arc::eval
