// Unit tests for the ALT node model and the construction DSL.
#include <gtest/gtest.h>

#include "arc/ast.h"
#include "arc/dsl.h"
#include "text/printer.h"

namespace arc {
namespace {

using namespace arc::dsl;  // NOLINT

TEST(AggFunc, NamesRoundTrip) {
  EXPECT_EQ(AggFuncFromName("sum"), AggFunc::kSum);
  EXPECT_EQ(AggFuncFromName("SUM"), AggFunc::kSum);
  EXPECT_EQ(AggFuncFromName("average"), AggFunc::kAvg);
  EXPECT_EQ(AggFuncFromName("countdistinct"), AggFunc::kCountDistinct);
  EXPECT_FALSE(AggFuncFromName("median").has_value());
  EXPECT_STREQ(AggFuncName(AggFunc::kCountStar), "count*");
  EXPECT_TRUE(IsDistinctAgg(AggFunc::kSumDistinct));
  EXPECT_FALSE(IsDistinctAgg(AggFunc::kSum));
}

TEST(Term, ContainsAggregate) {
  TermPtr plain = Attr("r", "A");
  EXPECT_FALSE(plain->ContainsAggregate());
  TermPtr agg = Sum(Attr("r", "B"));
  EXPECT_TRUE(agg->ContainsAggregate());
  TermPtr arith = Add(Int(1), Sum(Attr("r", "B")));
  EXPECT_TRUE(arith->ContainsAggregate());
}

TEST(Term, References) {
  TermPtr t = Add(Attr("r", "A"), Mul(Attr("s", "B"), Int(3)));
  EXPECT_TRUE(t->References("r"));
  EXPECT_TRUE(t->References("S"));  // case-insensitive
  EXPECT_FALSE(t->References("q"));
}

TEST(Term, CloneIsDeep) {
  TermPtr t = Add(Attr("r", "A"), Int(1));
  TermPtr c = t->Clone();
  t->lhs->var = "changed";
  EXPECT_EQ(c->lhs->var, "r");
}

TEST(Formula, ContainsAggregateStopsAtNestedScopes) {
  // An aggregate inside a *nested* quantifier is not this formula's.
  FormulaPtr inner = Scope()
                         .Bind("s", "S")
                         .GroupBy(Keys())
                         .Where(Eq(Attr("X", "c"), Count(Attr("s", "d"))))
                         .Exists();
  EXPECT_FALSE(inner->ContainsAggregate());  // kExists boundary
  FormulaPtr pred = Eq(Attr("Q", "c"), Count(Attr("s", "d")));
  EXPECT_TRUE(pred->ContainsAggregate());
}

TEST(Collection, CloneIsDeep) {
  CollectionPtr c = Coll("Q", {"A"},
                         Scope()
                             .Bind("r", "R")
                             .Where(Eq(Attr("Q", "A"), Attr("r", "A")))
                             .Exists());
  CollectionPtr clone = c->Clone();
  c->head.attrs[0] = "Z";
  EXPECT_EQ(clone->head.attrs[0], "A");
  EXPECT_EQ(clone->body->kind, FormulaKind::kExists);
}

TEST(JoinTree, CollectVars) {
  JoinNodePtr t = Left(JVar("r"), Inner(JLit(int64_t{11}), JVar("s")));
  std::vector<std::string> vars;
  t->CollectVars(&vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "r");
  EXPECT_EQ(vars[1], "s");
}

TEST(Program, FindDefinition) {
  Program p;
  Definition def;
  def.kind = DefKind::kAbstract;
  def.collection = Coll("Subset", {"left", "right"},
                        Scope()
                            .Bind("l", "Likes")
                            .Where(Eq(Attr("Subset", "left"), Attr("l", "d")))
                            .Exists());
  p.definitions.push_back(std::move(def));
  EXPECT_NE(p.FindDefinition("subset"), nullptr);
  EXPECT_EQ(p.FindDefinition("nope"), nullptr);
}

TEST(Dsl, BuildsEq3FromThePaper) {
  // Eq. (3): {Q(A,sm) | ∃r∈R, γ_{r.A} [Q.A = r.A ∧ Q.sm = sum(r.B)]}
  CollectionPtr q = Coll("Q", {"A", "sm"},
                         Scope()
                             .Bind("r", "R")
                             .GroupBy(Keys(Attr("r", "A")))
                             .Where(Eq(Attr("Q", "A"), Attr("r", "A")))
                             .Where(Eq(Attr("Q", "sm"), Sum(Attr("r", "B"))))
                             .Exists());
  EXPECT_EQ(text::PrintCollection(*q),
            "{Q(A, sm) | exists r in R, gamma(r.A) "
            "[Q.A = r.A and Q.sm = sum(r.B)]}");
}

TEST(Dsl, UnicodePrinting) {
  CollectionPtr q = Coll("Q", {"A"},
                         Scope()
                             .Bind("r", "R")
                             .Where(Eq(Attr("Q", "A"), Attr("r", "A")))
                             .Exists());
  text::PrintOptions opts;
  opts.unicode = true;
  EXPECT_EQ(text::PrintCollection(*q, opts), "{Q(A) | ∃ r ∈ R [Q.A = r.A]}");
}

TEST(AltPrinter, MatchesPaperFigureShape) {
  CollectionPtr q = Coll("Q", {"A", "sm"},
                         Scope()
                             .Bind("r", "R")
                             .GroupBy(Keys(Attr("r", "A")))
                             .Where(Eq(Attr("Q", "A"), Attr("r", "A")))
                             .Where(Eq(Attr("Q", "sm"), Sum(Attr("r", "B"))))
                             .Exists());
  const std::string alt = text::PrintAltCollection(*q);
  EXPECT_NE(alt.find("COLLECTION"), std::string::npos);
  EXPECT_NE(alt.find("HEAD: Q(A,sm)"), std::string::npos);
  EXPECT_NE(alt.find("QUANTIFIER exists"), std::string::npos);
  EXPECT_NE(alt.find("BINDING: r in R"), std::string::npos);
  EXPECT_NE(alt.find("GROUPING: r.A"), std::string::npos);
  EXPECT_NE(alt.find("PREDICATE: Q.sm = sum(r.B)"), std::string::npos);
}

}  // namespace
}  // namespace arc
