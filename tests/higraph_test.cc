// Higraph modality tests: structure of the built diagrams for the paper's
// figures and well-formedness of the three renderers.
#include <gtest/gtest.h>

#include "higraph/higraph.h"
#include "text/parser.h"

namespace arc::higraph {
namespace {

Higraph MustBuild(const std::string& source, BuildOptions opts = {}) {
  auto program = text::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto h = Build(*program, opts);
  EXPECT_TRUE(h.ok()) << h.status().ToString();
  return h.ok() ? std::move(h).value() : Higraph();
}

TEST(Higraph, Fig2TrcQueryStructure) {
  Higraph h = MustBuild(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and "
      "s.C = 0]}");
  // Canvas, collection region, scope region.
  EXPECT_EQ(h.region_count(), 3);
  // Head box + R box + S box.
  EXPECT_EQ(h.box_count(), 3);
  // Join edge r.B—s.B and assignment r.A → Q.A.
  ASSERT_EQ(h.edge_count(), 2);
  int assignments = 0;
  for (const Edge& e : h.edges) {
    if (e.style == EdgeStyle::kAssignment) ++assignments;
  }
  EXPECT_EQ(assignments, 1);
  // The constant selection lives inside S's box as a row "C = 0".
  bool found_selection = false;
  for (const Box& b : h.boxes) {
    for (const Row& r : b.rows) {
      if (r.text == "C = 0") found_selection = true;
    }
  }
  EXPECT_TRUE(found_selection) << ToAscii(h);
}

TEST(Higraph, Fig4GroupingScopeIsMarked) {
  Higraph h = MustBuild(
      "{Q(A, sm) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and Q.sm = sum(r.B)]}");
  bool grouping_region = false;
  for (const Region& r : h.regions) {
    if (r.grouping) grouping_region = true;
  }
  EXPECT_TRUE(grouping_region);
  // Grouped attribute shaded; aggregate appears as a pseudo-row.
  bool grouped_row = false;
  bool agg_row = false;
  for (const Box& b : h.boxes) {
    for (const Row& row : b.rows) {
      if (row.grouped) grouped_row = true;
      if (row.text == "sum(r.B)") agg_row = true;
    }
  }
  EXPECT_TRUE(grouped_row) << ToAscii(h);
  EXPECT_TRUE(agg_row) << ToAscii(h);
}

TEST(Higraph, NegationScopesNest) {
  Higraph h = MustBuild(
      "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
      "[s.B = r.A and not(exists t in T [t.C = s.B])])]}");
  int negations = 0;
  for (const Region& r : h.regions) {
    if (r.kind == RegionKind::kNegation) ++negations;
  }
  EXPECT_EQ(negations, 2);
}

TEST(Higraph, DisjunctionBranches) {
  Higraph h = MustBuild(
      "{Q(A) | exists r in R [Q.A = r.A] or exists s in S [Q.A = s.B]}");
  int disjuncts = 0;
  for (const Region& r : h.regions) {
    if (r.kind == RegionKind::kDisjunct) ++disjuncts;
  }
  EXPECT_EQ(disjuncts, 2);
}

TEST(Higraph, ModuleCollapsedAndExpanded) {
  const std::string source =
      "abstract define {Sub(left, right) | "
      "not(exists l3 in L [l3.d = Sub.left and "
      "not(exists l4 in L [l4.b = l3.b and l4.d = Sub.right])])} "
      "{Q(d) | exists l1 in L, s1 in Sub "
      "[Q.d = l1.d and s1.left = l1.d and s1.right = l1.d]}";
  Higraph collapsed = MustBuild(source);
  bool module_box = false;
  for (const Box& b : collapsed.boxes) {
    if (b.relation.find("«Sub»") != std::string::npos) module_box = true;
  }
  EXPECT_TRUE(module_box) << ToAscii(collapsed);

  BuildOptions opts;
  opts.expand_modules = true;
  Higraph expanded = MustBuild(source, opts);
  // Expanded: the module's sub-diagram appears (its negation scopes).
  int negations = 0;
  for (const Region& r : expanded.regions) {
    if (r.kind == RegionKind::kNegation) ++negations;
  }
  EXPECT_GE(negations, 2) << ToAscii(expanded);
  EXPECT_GT(expanded.region_count(), collapsed.region_count());
}

TEST(Higraph, NestedCollectionHeadIsLinkTarget) {
  // Eq. (7): references to x link to the nested head's rows.
  Higraph h = MustBuild(
      "{Q(A, sm) | exists r in R, x in {X(sm) | exists r2 in R, gamma() "
      "[r2.A = r.A and X.sm = sum(r2.B)]} [Q.A = r.A and Q.sm = x.sm]}");
  // Assignment edge from the nested head's sm row to Q.sm.
  bool nested_head_edge = false;
  for (const Edge& e : h.edges) {
    const Box& from = h.boxes[static_cast<size_t>(e.from_box)];
    if (from.is_head && from.relation == "X" &&
        e.style == EdgeStyle::kAssignment) {
      nested_head_edge = true;
    }
  }
  EXPECT_TRUE(nested_head_edge) << ToAscii(h);
}

TEST(Higraph, RenderersProduceWellFormedOutput) {
  Higraph h = MustBuild(
      "{Q(A, sm) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and Q.sm = sum(r.B) and r.B > 0]}");
  const std::string ascii = ToAscii(h);
  EXPECT_NE(ascii.find("HEAD Q"), std::string::npos);
  EXPECT_NE(ascii.find("edges:"), std::string::npos);

  const std::string dot = ToDot(h);
  EXPECT_NE(dot.find("digraph higraph"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));

  const std::string svg = ToSvg(h);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("sum(r.B)"), std::string::npos);
}

TEST(Higraph, SentenceBuilds) {
  Higraph h = MustBuild(
      "not(exists r in R [exists s in S, gamma() "
      "[r.id = s.id and r.q > count(s.d)]])");
  int negations = 0;
  bool grouping = false;
  for (const Region& r : h.regions) {
    if (r.kind == RegionKind::kNegation) ++negations;
    if (r.grouping) grouping = true;
  }
  EXPECT_EQ(negations, 1);
  EXPECT_TRUE(grouping);
}

TEST(Higraph, OuterJoinQueryBuilds) {
  Higraph h = MustBuild(
      "{Q(m, n) | exists r in R, s in S, left(r, inner(11, s)) "
      "[Q.m = r.m and Q.n = s.n and r.y = s.y and r.h = 11]}");
  EXPECT_GT(h.edge_count(), 0);
  // The literal condition renders inside r's box.
  bool anchor_row = false;
  for (const Box& b : h.boxes) {
    for (const Row& r : b.rows) {
      if (r.text == "h = 11") anchor_row = true;
    }
  }
  EXPECT_TRUE(anchor_row) << ToAscii(h);
}

}  // namespace
}  // namespace arc::higraph
