// SQL substrate tests: parser, printer round-trip, and the direct SQL
// evaluator on the paper's SQL figures.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "sql/eval.h"
#include "sql/parser.h"

namespace arc::sql {
namespace {

using data::Relation;
using data::Schema;
using data::Value;

Relation Rel(Schema schema, std::vector<std::vector<int64_t>> rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) {
    data::Tuple t;
    for (int64_t v : row) t.Append(Value::Int(v));
    r.Add(std::move(t));
  }
  return r;
}

Relation MustQuery(const data::Database& db, const std::string& sql) {
  SqlEvaluator ev(db);
  auto r = ev.EvalQuery(sql);
  EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
  return r.ok() ? std::move(r).value() : Relation();
}

// ---------------------------------------------------------------------------
// Parser + printer
// ---------------------------------------------------------------------------

class SqlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlRoundTrip, ParsePrintParseIsStable) {
  auto first = ParseSelect(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << "\n" << first.status().ToString();
  const std::string printed = ToSql(**first);
  auto second = ParseSelect(printed);
  ASSERT_TRUE(second.ok()) << printed << "\n" << second.status().ToString();
  EXPECT_EQ(printed, ToSql(**second));
}

INSTANTIATE_TEST_SUITE_P(
    PaperSqlCorpus, SqlRoundTrip,
    ::testing::Values(
        // Fig. 4a.
        "select R.A, sum(R.B) sm from R group by R.A",
        // Fig. 5a: scalar subquery.
        "select distinct R.A, (select sum(R2.B) sm from R R2 "
        "where R2.A = R.A) from R",
        // Fig. 5b: lateral join.
        "select distinct R.A, X.sm from R join lateral "
        "(select sum(R2.B) sm from R R2 where R2.A = R.A) X on true",
        // Fig. 6a: multiple aggregates + HAVING.
        "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
        "group by R.dept having sum(S.sal) > 100",
        // Fig. 11a: NOT IN.
        "select R.A from R where R.A not in (select S.A from S)",
        // Fig. 11b: NOT EXISTS with null checks.
        "select R.A from R where not exists (select 1 from S "
        "where S.A = R.A or S.A is null or R.A is null)",
        // Fig. 13a/b/c.
        "select R.A, (select sum(S.B) sm from S where S.A < R.A) from R",
        "select R.A, X.sm from R join lateral (select sum(S.B) sm from S "
        "where S.A < R.A) X on true",
        "select R.A, sum(S.B) sm from R left join S on S.A < R.A "
        "group by R.A",
        // Fig. 3a: lateral with inequality.
        "select x.A, z.B from X as x join lateral (select y.A as B from Y "
        "as y where x.A < y.A) as z on true",
        // Fig. 21a/b/c: the count bug.
        "select R.id from R where R.q = (select count(S.d) from S "
        "where S.id = R.id)",
        "select R.id from R, (select S.id, count(S.d) ct from S "
        "group by S.id) X where R.id = X.id and R.q = X.ct",
        "select R.id from R, (select R2.id, count(S.d) ct from R2 "
        "left join S on R2.id = S.id group by R2.id) X "
        "where R.id = X.id and R.q = X.ct",
        // Fig. 17 fragment: nested NOT EXISTS.
        "select distinct L1.drinker from Likes L1 where not exists "
        "(select 1 from Likes L2 where L1.drinker <> L2.drinker and "
        "not exists (select 1 from Likes L3 where L3.drinker = L2.drinker "
        "and not exists (select 1 from Likes L4 where "
        "L4.drinker = L1.drinker and L4.beer = L3.beer)))",
        // Outer joins, union, CTEs.
        "select R.A, S.B from R full join S on R.A = S.B",
        "select R.A from R union select S.B from S",
        "select R.A from R union all select S.B from S",
        "with T as (select R.A from R where R.A > 1) select T.A from T",
        "with recursive A as (select P.s, P.t from P union "
        "select P.s, A.t from P, A where P.t = A.s) select A.s, A.t from A",
        // Nested join tree with parens.
        "select R.m, S.n from R left join (T cross join S) "
        "on R.y = S.y and T.h = 11",
        // DISTINCT aggregates, IN.
        "select count(DISTINCT R.A) from R",
        "select R.A from R where R.A in (select S.B from S)"));

TEST(SqlParser, Errors) {
  EXPECT_FALSE(ParseSelect("select").ok());
  EXPECT_FALSE(ParseSelect("select from R").ok());
  EXPECT_FALSE(ParseSelect("select R.A from").ok());
  EXPECT_FALSE(ParseSelect("select R.A from R where").ok());
  EXPECT_FALSE(ParseSelect("select R.A from (select R.A from R)").ok());
  EXPECT_FALSE(ParseSelect("select R.A from R group R.A").ok());
}

TEST(SqlParser, AliasForms) {
  auto s = ParseSelect("select r.A as x, r.B y from R r");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->items[0].alias, "x");
  EXPECT_EQ((*s)->items[1].alias, "y");
  EXPECT_EQ((*s)->from[0]->alias, "r");
}

// ---------------------------------------------------------------------------
// Direct evaluator
// ---------------------------------------------------------------------------

TEST(SqlEval, SetupScriptAndBasicSelect) {
  auto db = ExecuteSetupScript(
      "create table R (A int, B int);"
      "insert into R values (1, 10), (2, 20), (3, 30);");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Relation out = MustQuery(*db, "select R.A from R where R.B > 15");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A"}, {{2}, {3}})));
}

TEST(SqlEval, BagSemanticsByDefault) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {1}}));
  EXPECT_EQ(MustQuery(db, "select R.A from R").size(), 2);
  EXPECT_EQ(MustQuery(db, "select distinct R.A from R").size(), 1);
}

TEST(SqlEval, GroupByWithAggregates) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 5}}));
  Relation out = MustQuery(db, "select R.A, sum(R.B) sm from R group by R.A");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A", "sm"}, {{1, 30}, {2, 5}})));
}

TEST(SqlEval, ImplicitSingleGroup) {
  data::Database db;
  db.Put("R", Relation(Schema{"A"}));
  Relation out = MustQuery(db, "select count(R.A) ct from R");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"ct"}, {{0}})));
  Relation sum_out = MustQuery(db, "select sum(R.A) sm from R");
  ASSERT_EQ(sum_out.size(), 1);
  EXPECT_TRUE(sum_out.rows()[0].at(0).is_null());
}

TEST(SqlEval, Having) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 5}}));
  Relation out = MustQuery(
      db, "select R.A from R group by R.A having sum(R.B) > 25");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(SqlEval, Fig6MultipleAggregatesWithHaving) {
  data::Database db;
  db.Put("R", Rel(Schema{"empl", "dept"}, {{1, 1}, {2, 1}, {3, 2}}));
  db.Put("S", Rel(Schema{"empl", "sal"}, {{1, 60}, {2, 60}, {3, 30}}));
  Relation out = MustQuery(
      db, "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
          "group by R.dept having sum(S.sal) > 100");
  Relation expected(Schema{"dept", "av"});
  expected.Add({Value::Int(1), Value::Double(60.0)});
  EXPECT_TRUE(out.EqualsBag(expected)) << out.ToString();
}

TEST(SqlEval, CorrelatedExists) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  db.Put("S", Rel(Schema{"A"}, {{2}}));
  Relation out = MustQuery(
      db, "select R.A from R where not exists "
          "(select 1 from S where S.A = R.A)");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(SqlEval, Fig11NotInIsEmptyWithNulls) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  Relation s(Schema{"A"});
  s.Add({Value::Int(1)});
  s.Add({Value::Null()});
  db.Put("S", std::move(s));
  Relation not_in = MustQuery(
      db, "select R.A from R where R.A not in (select S.A from S)");
  EXPECT_TRUE(not_in.empty()) << not_in.ToString();
  Relation rewritten = MustQuery(
      db, "select R.A from R where not exists (select 1 from S "
          "where S.A = R.A or S.A is null or R.A is null)");
  EXPECT_TRUE(rewritten.empty());
  // IN itself still finds the match.
  Relation in_q =
      MustQuery(db, "select R.A from R where R.A in (select S.A from S)");
  EXPECT_TRUE(in_q.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(SqlEval, ScalarSubqueryNullOnEmpty) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  db.Put("S", Relation(Schema{"B"}));
  Relation out =
      MustQuery(db, "select R.A, (select max(S.B) from S) m from R");
  ASSERT_EQ(out.size(), 1);
  EXPECT_TRUE(out.rows()[0].at(1).is_null());
}

TEST(SqlEval, ScalarSubqueryMultiRowErrors) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  db.Put("S", Rel(Schema{"B"}, {{1}, {2}}));
  SqlEvaluator ev(db);
  EXPECT_FALSE(
      ev.EvalQuery("select (select S.B from S) x from R").ok());
}

TEST(SqlEval, LeftJoinPads) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  db.Put("S", Rel(Schema{"B"}, {{1}}));
  Relation out = MustQuery(
      db, "select R.A, S.B from R left join S on R.A = S.B");
  Relation expected(Schema{"A", "B"});
  expected.Add({Value::Int(1), Value::Int(1)});
  expected.Add({Value::Int(2), Value::Null()});
  EXPECT_TRUE(out.EqualsSet(expected));
}

TEST(SqlEval, FullJoin) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  db.Put("S", Rel(Schema{"B"}, {{2}, {3}}));
  Relation out = MustQuery(
      db, "select R.A, S.B from R full join S on R.A = S.B");
  EXPECT_EQ(out.size(), 3);
}

TEST(SqlEval, NestedJoinTreeWithLiteralCondition) {
  // Fig. 12a: R LEFT JOIN (11 CROSS JOIN S); modeled with a one-row table.
  data::Database db;
  Relation r(Schema{"m", "y", "h"});
  r.Add({Value::Int(1), Value::Int(7), Value::Int(11)});
  r.Add({Value::Int(2), Value::Int(8), Value::Int(12)});
  db.Put("R", std::move(r));
  Relation s(Schema{"n", "y"});
  s.Add({Value::Int(100), Value::Int(7)});
  s.Add({Value::Int(200), Value::Int(8)});
  db.Put("S", std::move(s));
  db.Put("Eleven", Rel(Schema{"v"}, {{11}}));
  Relation out = MustQuery(
      db, "select R.m, S.n from R left join (Eleven cross join S) "
          "on R.y = S.y and R.h = Eleven.v");
  Relation expected(Schema{"m", "n"});
  expected.Add({Value::Int(1), Value::Int(100)});
  expected.Add({Value::Int(2), Value::Null()});
  EXPECT_TRUE(out.EqualsSet(expected)) << out.ToString();
}

TEST(SqlEval, LateralJoinSeesLeftBindings) {
  // Fig. 3a.
  data::Database db;
  db.Put("X", Rel(Schema{"A"}, {{1}, {4}}));
  db.Put("Y", Rel(Schema{"A"}, {{2}, {5}}));
  Relation out = MustQuery(
      db, "select x.A, z.B from X as x join lateral "
          "(select y.A as B from Y as y where x.A < y.A) as z on true");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A", "B"}, {{1, 2}, {1, 5}, {4, 5}})));
}

TEST(SqlEval, Fig13LateralVsLeftJoinDivergeOnDuplicates) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {1}}));
  db.Put("S", Rel(Schema{"A", "B"}, {{0, 7}}));
  Relation lateral = MustQuery(
      db, "select R.A, X.sm from R join lateral "
          "(select sum(S.B) sm from S where S.A < R.A) X on true");
  Relation left_join = MustQuery(
      db, "select R.A, sum(S.B) sm from R left join S on S.A < R.A "
          "group by R.A");
  EXPECT_TRUE(lateral.EqualsBag(Rel(Schema{"A", "sm"}, {{1, 7}, {1, 7}})));
  EXPECT_TRUE(left_join.EqualsBag(Rel(Schema{"A", "sm"}, {{1, 14}})));
}

TEST(SqlEval, Fig21CountBugOnPaperInstance) {
  data::Database db = data::CountBugInstance();
  Relation original = MustQuery(
      db, "select R.id from R where R.q = (select count(S.d) from S "
          "where S.id = R.id)");
  Relation buggy = MustQuery(
      db, "select R.id from R, (select S.id, count(S.d) ct from S "
          "group by S.id) X where R.id = X.id and R.q = X.ct");
  Relation correct = MustQuery(
      db, "select R.id from R, (select R2.id, count(S.d) ct from R R2 "
          "left join S on R2.id = S.id group by R2.id) X "
          "where R.id = X.id and R.q = X.ct");
  EXPECT_TRUE(original.EqualsBag(Rel(Schema{"id"}, {{9}})));
  EXPECT_TRUE(buggy.empty());
  EXPECT_TRUE(correct.EqualsBag(original));
}

TEST(SqlEval, UnionAndUnionAll) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  db.Put("S", Rel(Schema{"B"}, {{2}, {3}}));
  EXPECT_EQ(MustQuery(db, "select R.A from R union select S.B from S").size(),
            3);
  EXPECT_EQ(
      MustQuery(db, "select R.A from R union all select S.B from S").size(),
      4);
}

TEST(SqlEval, RecursiveCte) {
  data::Database db = data::ParentChain(5);
  Relation out = MustQuery(
      db, "with recursive A as (select P.s, P.t from P union "
          "select P.s, A.t from P, A where P.t = A.s) "
          "select A.s, A.t from A");
  EXPECT_EQ(out.size(), 10);
}

TEST(SqlEval, Fig17UniqueSetQuery) {
  data::Database db;
  db.Put("Likes", Rel(Schema{"drinker", "beer"},
                      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}}));
  Relation out = MustQuery(
      db,
      "select distinct L1.drinker from Likes L1 where not exists "
      "(select 1 from Likes L2 where L1.drinker <> L2.drinker and "
      "not exists (select 1 from Likes L3 where L3.drinker = L2.drinker and "
      "not exists (select 1 from Likes L4 where L4.drinker = L1.drinker and "
      "L4.beer = L3.beer)) and "
      "not exists (select 1 from Likes L5 where L5.drinker = L1.drinker and "
      "not exists (select 1 from Likes L6 where L6.drinker = L2.drinker and "
      "L6.beer = L5.beer)))");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"drinker"}, {{2}})));
}

TEST(SqlEval, OrderBySortsResults) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{2, 9}, {1, 5}, {3, 1}, {1, 7}}));
  Relation out = MustQuery(db, "select R.A, R.B from R order by R.A, R.B desc");
  ASSERT_EQ(out.size(), 4);
  EXPECT_EQ(out.rows()[0].at(0).as_int(), 1);
  EXPECT_EQ(out.rows()[0].at(1).as_int(), 7);  // B descending within A
  EXPECT_EQ(out.rows()[1].at(1).as_int(), 5);
  EXPECT_EQ(out.rows()[3].at(0).as_int(), 3);
}

TEST(SqlEval, OrderByOutputColumnAndExpression) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 5}, {1, 7}, {2, 1}}));
  Relation grouped = MustQuery(
      db, "select R.A, sum(R.B) sm from R group by R.A order by sm desc");
  ASSERT_EQ(grouped.size(), 2);
  EXPECT_EQ(grouped.rows()[0].at(1).as_int(), 12);
  EXPECT_EQ(grouped.rows()[1].at(1).as_int(), 1);
}

TEST(SqlEval, OrderByRoundTripsThroughPrinter) {
  auto s = ParseSelect("select R.A from R order by R.A desc, R.B");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const std::string printed = ToSql(**s);
  EXPECT_NE(printed.find("ORDER BY R.A DESC, R.B"), std::string::npos)
      << printed;
  auto again = ParseSelect(printed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(printed, ToSql(**again));
}

TEST(SqlEval, SelectStar) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 2}}));
  Relation out = MustQuery(db, "select * from R");
  EXPECT_EQ(out.schema().size(), 2);
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A", "B"}, {{1, 2}})));
}

TEST(SqlEval, UnqualifiedColumnsAndAmbiguity) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  db.Put("S", Rel(Schema{"A"}, {{1}}));
  EXPECT_EQ(MustQuery(db, "select A from R").size(), 1);
  SqlEvaluator ev(db);
  EXPECT_FALSE(ev.EvalQuery("select A from R, S").ok());
}

}  // namespace
}  // namespace arc::sql
