// Lint auto-fix tests: ProposeFixes must build the documented edits for
// ARC-W102 (IS NOT NULL guards under negation) and ARC-W109 (left-join
// annotation for a grouped-subquery join), and VerifyFixes must accept
// both at the acceptance bound (k = 3, NULL in the domain) while the fixed
// programs no longer fire the warnings.
#include <gtest/gtest.h>

#include <string>

#include "arc/conventions.h"
#include "arc/lint.h"
#include "common/strings.h"
#include "data/database.h"
#include "data/relation.h"
#include "text/parser.h"
#include "text/printer.h"
#include "verify/bounded_eq.h"

namespace arc {
namespace {

using data::Schema;

Program ParseOrDie(const std::string& text) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(program).value() : Program();
}

bool Fires(const LintResult& result, const std::string& code) {
  for (const Diagnostic& d : result.findings) {
    if (d.code == code) return true;
  }
  return false;
}

/// Schema-only database: the range-class-dependent passes (and thus the
/// fix builders) need resolvable base relations.
data::Database NullTrapDb() {
  data::Database db;
  db.Put("R", data::Relation(Schema{"A"}));
  db.Put("S", data::Relation(Schema{"B"}));
  return db;
}

data::Database CountBugDb() {
  data::Database db;
  db.Put("R", data::Relation(Schema{"id", "q"}));
  db.Put("S", data::Relation(Schema{"id", "d"}));
  return db;
}

verify::BoundedEqOptions AcceptanceBound() {
  verify::BoundedEqOptions opts;
  opts.domain_size = 3;
  opts.max_rows = 2;
  opts.include_null = true;
  return opts;
}

// ---------------------------------------------------------------------------
// W102: IS NOT NULL guards.
// ---------------------------------------------------------------------------

TEST(LintFix, W102ProposesNullGuardsAtInnermostNot) {
  Program p = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and not(s.B = r.A)]}");
  data::Database db = NullTrapDb();
  LintOptions lopts;
  lopts.analyze.database = &db;
  ASSERT_TRUE(Fires(Lint(p, lopts), "ARC-W102"));

  std::vector<FixIt> fixes = ProposeFixes(p, lopts);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].code, "ARC-W102");
  EXPECT_EQ(fixes[0].name, "insert-is-not-null-guard");
  EXPECT_EQ(fixes[0].effect, FixEffect::kPinsMeaning);
  EXPECT_EQ(text::PrintProgram(fixes[0].fixed),
            "{Q(A) | exists r in R, s in S [Q.A = r.A and s.B is not null "
            "and r.A is not null and not(s.B = r.A)]}");

  // The fixed program no longer fires W102.
  EXPECT_FALSE(Fires(Lint(fixes[0].fixed, lopts), "ARC-W102"));
}

TEST(LintFix, W102FixVerifiedAtAcceptanceBound) {
  Program p = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and not(s.B = r.A)]}");
  data::Database db = NullTrapDb();
  LintOptions lopts;
  lopts.analyze.database = &db;
  std::vector<FixIt> fixes = ProposeFixes(p, lopts);
  ASSERT_EQ(fixes.size(), 1u);

  auto sig = verify::InferSignature(p, p, &db);
  ASSERT_TRUE(sig.ok()) << sig.status().ToString();
  std::vector<verify::VerifiedFix> out =
      verify::VerifyFixes(p, std::move(fixes), *sig, AcceptanceBound());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].verified) << out[0].verdict;
  // kPinsMeaning: the primary check is 3VL equivalence, the direction
  // check proves fixed ⊆ original under the two-valued flip.
  EXPECT_TRUE(out[0].primary.holds) << out[0].primary.ToString();
  ASSERT_TRUE(out[0].direction.has_value());
  EXPECT_TRUE(out[0].direction->holds) << out[0].direction->ToString();
  EXPECT_EQ(out[0].direction->relation, verify::EqRelation::kLhsSubsetRhs);
}

// ---------------------------------------------------------------------------
// W109: left-join annotation for the count-bug decorrelation.
// ---------------------------------------------------------------------------

TEST(LintFix, W109ProposesLeftJoinAnnotation) {
  Program p = ParseOrDie(
      "{Q(id) | exists r in R, x in {X(id, ct) | "
      "exists s in S, gamma(s.id) [X.id = s.id and X.ct = count(s.d)]} "
      "[Q.id = r.id and r.id = x.id and r.q = x.ct]}");
  data::Database db = CountBugDb();
  LintOptions lopts;
  lopts.analyze.database = &db;
  ASSERT_TRUE(Fires(Lint(p, lopts), "ARC-W109"));

  std::vector<FixIt> fixes = ProposeFixes(p, lopts);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].code, "ARC-W109");
  EXPECT_EQ(fixes[0].name, "left-join-grouped-subquery");
  EXPECT_EQ(fixes[0].effect, FixEffect::kBroadens);
  // The outer scope gains left(r, x): rows of r with no group survive.
  EXPECT_NE(text::PrintProgram(fixes[0].fixed).find("left(r, x)"),
            std::string::npos)
      << text::PrintProgram(fixes[0].fixed);
  EXPECT_FALSE(Fires(Lint(fixes[0].fixed, lopts), "ARC-W109"));
}

TEST(LintFix, W109FixVerifiedAtAcceptanceBound) {
  Program p = ParseOrDie(
      "{Q(id) | exists r in R, x in {X(id, ct) | "
      "exists s in S, gamma(s.id) [X.id = s.id and X.ct = count(s.d)]} "
      "[Q.id = r.id and r.id = x.id and r.q = x.ct]}");
  data::Database db = CountBugDb();
  LintOptions lopts;
  lopts.analyze.database = &db;
  std::vector<FixIt> fixes = ProposeFixes(p, lopts);
  ASSERT_EQ(fixes.size(), 1u);

  auto sig = verify::InferSignature(p, p, &db);
  ASSERT_TRUE(sig.ok()) << sig.status().ToString();
  std::vector<verify::VerifiedFix> out =
      verify::VerifyFixes(p, std::move(fixes), *sig, AcceptanceBound());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].verified) << out[0].verdict;
  // kBroadens: original ⊆ fixed — the annotation only restores rows the
  // count-bug decorrelation dropped.
  EXPECT_EQ(out[0].primary.relation, verify::EqRelation::kLhsSubsetRhs);
  EXPECT_TRUE(out[0].primary.holds) << out[0].primary.ToString();
  EXPECT_FALSE(out[0].direction.has_value());
}

// ---------------------------------------------------------------------------
// Span rendering: the single-edit byte span reported to editors matches
// the canonical renderings the JSON output indexes into.
// ---------------------------------------------------------------------------

TEST(LintFix, SingleEditSpanReconstructsFixedRendering) {
  Program p = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and not(s.B = r.A)]}");
  data::Database db = NullTrapDb();
  LintOptions lopts;
  lopts.analyze.database = &db;
  std::vector<FixIt> fixes = ProposeFixes(p, lopts);
  ASSERT_EQ(fixes.size(), 1u);
  const std::string before = text::PrintProgram(p);
  const std::string after = text::PrintProgram(fixes[0].fixed);
  const EditSpan span = SingleEditSpan(before, after);
  std::string patched = before;
  patched.replace(span.offset, span.length, span.replacement);
  EXPECT_EQ(patched, after);
}

}  // namespace
}  // namespace arc
