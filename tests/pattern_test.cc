// Pattern-analysis tests: canonicalization invariance, pattern equality of
// syntactically-different/semantically-same queries (the paper's central
// intent-vs-syntax claim), FIO/FOI classification, and similarity.
#include <gtest/gtest.h>

#include "pattern/pattern.h"
#include "sql/eval.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/sql_to_arc.h"

namespace arc::pattern {
namespace {

Program MustParse(const std::string& source) {
  auto p = text::ParseProgram(source);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? std::move(p).value() : Program();
}

TEST(Pattern, RenamingInvariance) {
  Program a = MustParse(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}");
  Program b = MustParse(
      "{Q(A) | exists foo in R, bar in S "
      "[Q.A = foo.A and foo.B = bar.B and bar.C = 0]}");
  EXPECT_TRUE(PatternEquals(a, b))
      << CanonicalText(a) << "\nvs\n" << CanonicalText(b);
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
  EXPECT_DOUBLE_EQ(Similarity(a, b), 1.0);
}

TEST(Pattern, ConjunctOrderInvariance) {
  Program a = MustParse(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}");
  Program b = MustParse(
      "{Q(A) | exists r in R, s in S [s.C = 0 and Q.A = r.A and r.B = s.B]}");
  EXPECT_TRUE(PatternEquals(a, b));
}

TEST(Pattern, DifferentPatternsDiffer) {
  Program a = MustParse("{Q(A) | exists r in R [Q.A = r.A]}");
  Program b = MustParse(
      "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
      "[s.B = r.A])]}");
  EXPECT_FALSE(PatternEquals(a, b));
  EXPECT_LT(Similarity(a, b), 1.0);
  EXPECT_GT(Similarity(a, b), 0.3);  // still structurally related
}

TEST(Pattern, Fig5ScalarAndLateralSqlSharePattern) {
  // The paper's central example of semantically-equal but syntactically
  // different SQL: Fig. 5a (scalar subquery) vs Fig. 5b (lateral join)
  // translate to the same ARC pattern.
  auto db = sql::ExecuteSetupScript(
      "create table R (A int, B int); insert into R values (1,2);");
  ASSERT_TRUE(db.ok());
  translate::SqlToArcOptions opts;
  opts.database = &*db;
  auto scalar = translate::SqlToArc(
      "select distinct R.A, (select sum(R2.B) from R R2 where R2.A = R.A) sm "
      "from R",
      opts);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  auto lateral = translate::SqlToArc(
      "select distinct R.A, X.sm from R join lateral "
      "(select sum(R2.B) sm from R R2 where R2.A = R.A) X on true",
      opts);
  ASSERT_TRUE(lateral.ok()) << lateral.status().ToString();
  EXPECT_TRUE(PatternEquals(*scalar, *lateral))
      << CanonicalText(*scalar) << "\nvs\n" << CanonicalText(*lateral);
}

TEST(Pattern, StringDifferentPatternEqualBeatsStringSimilarity) {
  // Intent-based comparison: two queries whose SQL strings differ widely
  // but whose patterns coincide, vs. two whose strings are close but whose
  // patterns differ (the NOT IN / NOT EXISTS null trap).
  auto db = sql::ExecuteSetupScript(
      "create table R (A int); create table S (A int);");
  ASSERT_TRUE(db.ok());
  translate::SqlToArcOptions opts;
  opts.database = &*db;
  auto not_in = translate::SqlToArc(
      "select R.A from R where R.A not in (select S.A from S)", opts);
  ASSERT_TRUE(not_in.ok());
  auto not_exists_nullsafe = translate::SqlToArc(
      "select R.A from R where not exists (select 1 from S "
      "where S.A = R.A or S.A is null or R.A is null)",
      opts);
  ASSERT_TRUE(not_exists_nullsafe.ok());
  auto not_exists_plain = translate::SqlToArc(
      "select R.A from R where not exists (select 1 from S "
      "where S.A = R.A)",
      opts);
  ASSERT_TRUE(not_exists_plain.ok());
  // NOT IN ≡ null-safe NOT EXISTS (Eq. 17) — identical patterns.
  EXPECT_TRUE(PatternEquals(*not_in, *not_exists_nullsafe))
      << CanonicalText(*not_in) << "\nvs\n"
      << CanonicalText(*not_exists_nullsafe);
  // The plain NOT EXISTS is a *different* pattern, despite looking closer
  // to the null-safe variant as a string.
  EXPECT_FALSE(PatternEquals(*not_in, *not_exists_plain));
  EXPECT_GT(Similarity(*not_in, *not_exists_plain), 0.5);
}

TEST(Pattern, FioVsFoiClassification) {
  Program fio = MustParse(
      "{Q(A, sm) | exists r in R, gamma(r.A) "
      "[Q.A = r.A and Q.sm = sum(r.B)]}");
  Features f1 = ExtractFeatures(fio);
  EXPECT_EQ(f1.agg_style, AggStyle::kFio) << f1.ToString();

  Program foi = MustParse(
      "{Q(A, sm) | exists r in R, x in {X(sm) | exists r2 in R, gamma() "
      "[r2.A = r.A and X.sm = sum(r2.B)]} [Q.A = r.A and Q.sm = x.sm]}");
  Features f2 = ExtractFeatures(foi);
  EXPECT_EQ(f2.agg_style, AggStyle::kFoi) << f2.ToString();
  EXPECT_GT(f2.correlation_count, 0);
}

TEST(Pattern, FeaturesCountStructure) {
  Program p = MustParse(
      "{Q(d) | exists l1 in L [Q.d = l1.d and "
      "not(exists l2 in L [l2.d <> l1.d and "
      "not(exists l3 in L [l3.d = l2.d])])]}");
  Features f = ExtractFeatures(p);
  EXPECT_EQ(f.num_scopes, 3);
  EXPECT_EQ(f.negation_depth, 2);
  EXPECT_EQ(f.num_bindings, 3);
  EXPECT_FALSE(f.is_recursive);
  EXPECT_EQ(f.agg_style, AggStyle::kNone);
}

TEST(Pattern, RecursionAndOuterJoinDetected) {
  Program rec = MustParse(
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}");
  EXPECT_TRUE(ExtractFeatures(rec).is_recursive);

  Program oj = MustParse(
      "{Q(A, B) | exists r in R, s in S, left(r, s) "
      "[Q.A = r.A and Q.B = s.B and r.A = s.B]}");
  EXPECT_TRUE(ExtractFeatures(oj).has_outer_join);
}

TEST(Pattern, CanonicalizationIsIdempotent) {
  Program p = MustParse(
      "{Q(A, sm) | exists zz in R, yy in {K(sm) | exists q2 in R, gamma() "
      "[q2.A = zz.A and K.sm = sum(q2.B)]} [Q.A = zz.A and Q.sm = yy.sm]}");
  Program once = Canonicalize(p);
  Program twice = Canonicalize(once);
  EXPECT_EQ(text::PrintProgram(once), text::PrintProgram(twice));
}

TEST(Pattern, PatternDiffShowsStructuralDelta) {
  Program a = MustParse("{Q(A) | exists r in R [Q.A = r.A]}");
  Program b = MustParse(
      "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
      "[s.B = r.A])]}");
  EXPECT_EQ(PatternDiff(a, a), "");
  const std::string diff = PatternDiff(a, b);
  EXPECT_NE(diff.find("+ NOT"), std::string::npos) << diff;
  EXPECT_NE(diff.find("  COLLECTION"), std::string::npos) << diff;
  // Diff is antisymmetric in the +/- marks.
  const std::string rdiff = PatternDiff(b, a);
  EXPECT_NE(rdiff.find("- NOT"), std::string::npos) << rdiff;
}

TEST(Pattern, SimilarityIsSymmetricAndBounded) {
  Program a = MustParse("{Q(A) | exists r in R [Q.A = r.A]}");
  Program b = MustParse(
      "{Q(d) | exists l1 in L [Q.d = l1.d and not(exists l2 in L "
      "[l2.d <> l1.d])]}");
  const double ab = Similarity(a, b);
  const double ba = Similarity(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

}  // namespace
}  // namespace arc::pattern
