// Core evaluator semantics: selection/join/projection, nesting, negation,
// disjunction, conventions (set/bag, null logic, empty aggregates), outer
// joins, recursion, externals, abstract modules.
#include <gtest/gtest.h>

#include "arc/conventions.h"
#include "data/generators.h"
#include "eval/evaluator.h"
#include "text/parser.h"

namespace arc::eval {
namespace {

using data::Relation;
using data::Schema;
using data::Value;

Relation MustEval(const data::Database& db, const std::string& text,
                  Conventions conv = Conventions::Arc()) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EvalOptions opts;
  opts.conventions = conv;
  auto result = Eval(db, *program, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Relation();
}

data::TriBool MustEvalSentence(const data::Database& db,
                               const std::string& text,
                               Conventions conv = Conventions::Arc()) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EvalOptions opts;
  opts.conventions = conv;
  Evaluator ev(db, opts);
  auto result = ev.EvalSentence(*program);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : data::TriBool::kUnknown;
}

Relation Rel(Schema schema, std::vector<std::vector<int64_t>> rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) {
    data::Tuple t;
    for (int64_t v : row) t.Append(Value::Int(v));
    r.Add(std::move(t));
  }
  return r;
}

TEST(Eval, SimpleSelectionProjection) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {2, 20}, {3, 30}}));
  Relation out = MustEval(db, "{Q(A) | exists r in R [Q.A = r.A and r.B > 15]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{2}, {3}})));
}

TEST(Eval, JoinAcrossTwoRelations) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 5}, {2, 6}}));
  db.Put("S", Rel(Schema{"B", "C"}, {{5, 0}, {6, 1}, {5, 0}}));
  Relation out = MustEval(
      db, "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and "
          "s.C = 0]}");
  // Set semantics: {1}.
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(Eval, BagSemanticsKeepsMultiplicity) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 5}, {2, 6}}));
  db.Put("S", Rel(Schema{"B", "C"}, {{5, 0}, {6, 1}, {5, 0}}));
  Relation out = MustEval(
      db,
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}",
      Conventions::Sql());
  // (1,5) matches two copies of (5,0): multiplicity 2.
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}, {1}})));
}

TEST(Eval, NestedVsUnnestedDivergeUnderBags) {
  // §2.7: the nested form is semijoin-like (once per r), the unnested form
  // multiplies multiplicities.
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 5}}));
  db.Put("S", Rel(Schema{"B"}, {{5}, {5}, {5}}));
  const std::string nested =
      "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}";
  const std::string unnested =
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B]}";
  EXPECT_EQ(MustEval(db, nested, Conventions::Sql()).size(), 1);
  EXPECT_EQ(MustEval(db, unnested, Conventions::Sql()).size(), 3);
  // Under set semantics they coincide.
  EXPECT_TRUE(MustEval(db, nested).EqualsBag(MustEval(db, unnested)));
}

TEST(Eval, NegationNotExists) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}, {3}}));
  db.Put("S", Rel(Schema{"A"}, {{2}}));
  Relation out = MustEval(
      db, "{Q(A) | exists r in R [Q.A = r.A and "
          "not(exists s in S [s.A = r.A])]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}, {3}})));
}

TEST(Eval, DisjunctionUnionsDisjuncts) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  db.Put("S", Rel(Schema{"A"}, {{2}}));
  Relation out = MustEval(
      db, "{Q(A) | exists r in R [Q.A = r.A] or exists s in S [Q.A = s.A]}");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A"}, {{1}, {2}})));
}

TEST(Eval, DisjunctionInsidePredicates) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 1}, {2, 5}, {3, 9}}));
  Relation out = MustEval(
      db, "{Q(A) | exists r in R [Q.A = r.A and (r.B = 1 or r.B = 9)]}");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A"}, {{1}, {3}})));
}

TEST(Eval, CorrelatedNestedCollectionIsLateral) {
  // Eq. (2) shape: inner collection references outer x.
  data::Database db;
  db.Put("X", Rel(Schema{"A"}, {{1}, {5}}));
  db.Put("Y", Rel(Schema{"A"}, {{2}, {6}}));
  Relation out = MustEval(
      db,
      "{Q(A, B) | exists x in X, z in {Z(B) | exists y in Y "
      "[Z.B = y.A and x.A < y.A]} [Q.A = x.A and Q.B = z.B]}");
  EXPECT_TRUE(out.EqualsSet(
      Rel(Schema{"A", "B"}, {{1, 2}, {1, 6}, {5, 6}})));
}

TEST(Eval, GroupedAggregateFio) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 5}}));
  Relation out = MustEval(
      db, "{Q(A, sm) | exists r in R, gamma(r.A) "
          "[Q.A = r.A and Q.sm = sum(r.B)]}");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A", "sm"}, {{1, 30}, {2, 5}})));
}

TEST(Eval, MultipleAggregatesShareOneScope) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 6}}));
  Relation out = MustEval(
      db,
      "{Q(A, sm, mx, ct) | exists r in R, gamma(r.A) [Q.A = r.A and "
      "Q.sm = sum(r.B) and Q.mx = max(r.B) and Q.ct = count(r.B)]}");
  EXPECT_TRUE(out.EqualsSet(
      Rel(Schema{"A", "sm", "mx", "ct"}, {{1, 30, 20, 2}, {2, 6, 6, 1}})));
}

TEST(Eval, GroupAllProducesOneGroupEvenWhenEmpty) {
  data::Database db;
  db.Put("S", Relation(Schema{"d"}));
  Relation out =
      MustEval(db, "{Q(ct) | exists s in S, gamma() [Q.ct = count(s.d)]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"ct"}, {{0}})));
}

TEST(Eval, GroupByKeysOverEmptyInputYieldsNoGroups) {
  data::Database db;
  db.Put("S", Relation(Schema{"id", "d"}));
  Relation out = MustEval(
      db, "{Q(id, ct) | exists s in S, gamma(s.id) "
          "[Q.id = s.id and Q.ct = count(s.d)]}");
  EXPECT_TRUE(out.empty());
}

TEST(Eval, SumOverEmptyGroupRespectsConvention) {
  data::Database db;
  db.Put("S", Relation(Schema{"b"}));
  const std::string q =
      "{Q(sm) | exists s in S, gamma() [Q.sm = sum(s.b)]}";
  Relation sql_style = MustEval(db, q, Conventions::Arc());
  ASSERT_EQ(sql_style.size(), 1);
  EXPECT_TRUE(sql_style.rows()[0].at(0).is_null());
  Relation souffle_style = MustEval(db, q, Conventions::Souffle());
  ASSERT_EQ(souffle_style.size(), 1);
  EXPECT_EQ(souffle_style.rows()[0].at(0).as_int(), 0);
}

TEST(Eval, CountSkipsNulls) {
  data::Database db;
  Relation s(Schema{"d"});
  s.Add({Value::Int(1)});
  s.Add({Value::Null()});
  s.Add({Value::Int(2)});
  db.Put("S", std::move(s));
  Relation out =
      MustEval(db, "{Q(ct) | exists s in S, gamma() [Q.ct = count(s.d)]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"ct"}, {{2}})));
}

TEST(Eval, CountDistinct) {
  data::Database db;
  db.Put("S", Rel(Schema{"d"}, {{1}, {1}, {2}}));
  Relation out = MustEval(
      db, "{Q(ct) | exists s in S, gamma() [Q.ct = countdistinct(s.d)]}",
      Conventions::Sql());
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"ct"}, {{2}})));
}

TEST(Eval, DeduplicationViaGrouping) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 2}, {1, 2}, {3, 4}}));
  Relation out = MustEval(
      db,
      "{Q(A, B) | exists r in R, gamma(r.A, r.B) [Q.A = r.A and Q.B = r.B]}",
      Conventions::Sql());  // even under bags, grouping dedups
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A", "B"}, {{1, 2}, {3, 4}})));
}

TEST(Eval, AggregateComparisonAsGroupFilter) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {1, 20}, {2, 5}}));
  // Groups with sum > 25 only.
  Relation out = MustEval(
      db, "{Q(A) | exists r in R, gamma(r.A) "
          "[Q.A = r.A and sum(r.B) > 25]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(Eval, ThreeValuedNullComparisons) {
  data::Database db;
  Relation r(Schema{"A"});
  r.Add({Value::Int(1)});
  r.Add({Value::Null()});
  db.Put("R", std::move(r));
  // Under 3VL, null = null is unknown → filtered.
  Relation out = MustEval(db, "{Q(A) | exists r in R [Q.A = r.A and "
                              "r.A = r.A]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}})));
  // Under 2VL the comparison is false, same visible result here.
  Relation out2 =
      MustEval(db, "{Q(A) | exists r in R [Q.A = r.A and r.A = r.A]}",
               Conventions::Souffle());
  EXPECT_TRUE(out2.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(Eval, IsNullPredicate) {
  data::Database db;
  Relation r(Schema{"A"});
  r.Add({Value::Int(1)});
  r.Add({Value::Null()});
  db.Put("R", std::move(r));
  Relation out = MustEval(
      db, "{Q(A) | exists r in R [Q.A = r.A and r.A is not null]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(Eval, LeftOuterJoinPadsWithNulls) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  db.Put("S", Rel(Schema{"B"}, {{1}}));
  Relation out = MustEval(
      db, "{Q(A, B) | exists r in R, s in S, left(r, s) "
          "[Q.A = r.A and Q.B = s.B and r.A = s.B]}");
  Relation expected(Schema{"A", "B"});
  expected.Add({Value::Int(1), Value::Int(1)});
  expected.Add({Value::Int(2), Value::Null()});
  EXPECT_TRUE(out.EqualsSet(expected)) << out.ToString();
}

TEST(Eval, FullOuterJoin) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}}));
  db.Put("S", Rel(Schema{"B"}, {{2}, {3}}));
  Relation out = MustEval(
      db, "{Q(A, B) | exists r in R, s in S, full(r, s) "
          "[Q.A = r.A and Q.B = s.B and r.A = s.B]}");
  Relation expected(Schema{"A", "B"});
  expected.Add({Value::Int(1), Value::Null()});
  expected.Add({Value::Int(2), Value::Int(2)});
  expected.Add({Value::Null(), Value::Int(3)});
  EXPECT_TRUE(out.EqualsSet(expected)) << out.ToString();
}

TEST(Eval, NestedOuterJoinWithLiteralAnchor) {
  // Eq. (18) / Fig. 12a: left(r, inner(11, s)) — R rows with h ≠ 11 are
  // preserved and null-padded, not filtered.
  data::Database db;
  Relation r(Schema{"m", "y", "h"});
  r.Add({Value::Int(1), Value::Int(7), Value::Int(11)});
  r.Add({Value::Int(2), Value::Int(8), Value::Int(12)});
  db.Put("R", std::move(r));
  Relation s(Schema{"n", "y"});
  s.Add({Value::Int(100), Value::Int(7)});
  s.Add({Value::Int(200), Value::Int(8)});
  db.Put("S", std::move(s));
  Relation out = MustEval(
      db, "{Q(m, n) | exists r in R, s in S, left(r, inner(11, s)) "
          "[Q.m = r.m and Q.n = s.n and r.y = s.y and r.h = 11]}");
  Relation expected(Schema{"m", "n"});
  expected.Add({Value::Int(1), Value::Int(100)});
  expected.Add({Value::Int(2), Value::Null()});  // h=12: preserved, padded
  EXPECT_TRUE(out.EqualsSet(expected)) << out.ToString();
}

TEST(Eval, RecursionAncestorChain) {
  data::Database db = data::ParentChain(5);  // 0→1→2→3→4
  Relation out = MustEval(
      db,
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}");
  EXPECT_EQ(out.size(), 10);  // C(5,2) pairs on a chain
}

TEST(Eval, RecursionOnTree) {
  data::Database db = data::ParentTree(7, 2);  // complete binary tree
  Relation out = MustEval(
      db,
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}");
  // Ancestor pairs = Σ depth(node) = 0 + 2·1 + 4·2 = 10.
  EXPECT_EQ(out.size(), 10);
}

TEST(Eval, ExternalMinusAndBigger) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 10}, {2, 3}}));
  db.Put("S", Rel(Schema{"B"}, {{4}}));
  db.Put("T", Rel(Schema{"B"}, {{5}}));
  // Q(A) where r.B - s.B > t.B, reified: 10-4=6 > 5 ✓; 3-4=-1 > 5 ✗.
  Relation out = MustEval(
      db,
      "{Q(A) | exists r in R, s in S, t in T, f in Minus, g in Bigger "
      "[Q.A = r.A and f.left = r.B and f.right = s.B and "
      "f.out = g.left and g.right = t.B]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{1}})));
}

TEST(Eval, ExternalSolvesForFreeSlot) {
  // Minus(5, x, 2) → x = 3 (access pattern ③ of §2.13).
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{5}}));
  Relation out = MustEval(
      db, "{Q(x) | exists r in R, f in Minus "
          "[f.left = r.A and f.out = 2 and Q.x = f.right]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"x"}, {{3}})));
}

TEST(Eval, ExternalUnsupportedPatternErrors) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{5}}));
  auto program = text::ParseProgram(
      "{Q(x) | exists r in R, f in Minus [f.left = r.A and Q.x = f.out]}");
  ASSERT_TRUE(program.ok());
  auto result = Eval(db, *program);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(Eval, AbstractRelationModule) {
  // A tiny abstract module: Geq(left,right) over an implicit comparison.
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}, {2}, {3}}));
  Relation out = MustEval(
      db,
      "abstract define {Geq(left, right) | exists d in R "
      "[d.A = Geq.left and Geq.left >= Geq.right]} "
      "{Q(A) | exists r in R, g in Geq [g.left = r.A and g.right = 2 and "
      "Q.A = r.A]}");
  EXPECT_TRUE(out.EqualsSet(Rel(Schema{"A"}, {{2}, {3}})));
}

TEST(Eval, IntensionalDefinitionMaterializes) {
  data::Database db;
  db.Put("R", Rel(Schema{"A", "B"}, {{1, 5}, {2, 9}}));
  Relation out = MustEval(
      db,
      "define {Big(A) | exists r in R [Big.A = r.A and r.B > 6]} "
      "{Q(A) | exists b in Big [Q.A = b.A]}");
  EXPECT_TRUE(out.EqualsBag(Rel(Schema{"A"}, {{2}})));
}

TEST(Eval, SentenceTrueAndFalse) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  EXPECT_EQ(MustEvalSentence(db, "exists r in R [r.A = 1]"),
            data::TriBool::kTrue);
  EXPECT_EQ(MustEvalSentence(db, "exists r in R [r.A = 2]"),
            data::TriBool::kFalse);
  EXPECT_EQ(MustEvalSentence(db, "not(exists r in R [r.A = 2])"),
            data::TriBool::kTrue);
}

TEST(Eval, ValidationRejectsBadQueryBeforeRunning) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  auto program = text::ParseProgram("{Q(A) | exists r in R [Q.Z = r.A]}");
  ASSERT_TRUE(program.ok());
  auto result = Eval(db, *program);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kValidationError);
}

TEST(Eval, UnsafeHeadCaughtByValidator) {
  data::Database db;
  db.Put("R", Rel(Schema{"A"}, {{1}}));
  auto program =
      text::ParseProgram("{Q(A, B) | exists r in R [Q.A = r.A]}");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Eval(db, *program).ok());
}

TEST(Eval, FixpointGuardStopsDivergence) {
  // A query that grows forever via an external would diverge; the guard
  // caps iterations. Build a monotone-but-finite case instead and check it
  // converges fast: transitive closure over a cycle.
  data::Database db;
  Relation p(Schema{"s", "t"});
  p.Add({Value::Int(0), Value::Int(1)});
  p.Add({Value::Int(1), Value::Int(0)});
  db.Put("P", std::move(p));
  Relation out = MustEval(
      db,
      "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
      "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}");
  EXPECT_EQ(out.size(), 4);  // 0→0, 0→1, 1→0, 1→1
}

}  // namespace
}  // namespace arc::eval
