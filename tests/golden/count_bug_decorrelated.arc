{Q(id) |
  exists r in R,
         x in {X(id, ct) |
                 exists s in S, gamma(s.id)
                   [X.id = s.id and X.ct = count(s.d)]}
    [Q.id = r.id and r.id = x.id and r.q = x.ct]}
