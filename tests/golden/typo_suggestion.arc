{Q(a) |
  exists r in Rs [Q.a = r.a]}
