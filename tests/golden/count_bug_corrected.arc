{Q(id) |
  exists r in R,
         x in {X(id, ct) |
                 exists s in S, r2 in R, gamma(r2.id), left(r2, s)
                   [X.id = r2.id and X.ct = count(s.d) and r2.id = s.id]}
    [Q.id = r.id and r.id = x.id and r.q = x.ct]}
