create table R (a int);
create table S (b int);
