create table R (id int, q int);
create table S (id int, d int);
