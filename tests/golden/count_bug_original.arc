{Q(id) |
  exists r in R [
    Q.id = r.id and
    exists s in S, gamma() [r.id = s.id and r.q = count(s.d)]]}
