{Q(a, d) |
  exists r in R, s in S [r.a = s.b and Q.a = r.a and Q.d = s.b]}
