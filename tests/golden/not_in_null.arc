{Q(a) |
  exists r in R, s in S [Q.a = r.a and not(s.b = r.a)]}
