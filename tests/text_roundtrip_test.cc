// Lexer/parser/printer tests, including print∘parse round-trip identities
// over the paper's query corpus (a property the modalities must satisfy:
// they are lossless renderings of the same ALT, §2.2).
#include <gtest/gtest.h>

#include "text/lexer.h"
#include "text/parser.h"
#include "text/printer.h"

namespace arc::text {
namespace {

TEST(Lexer, BasicTokens) {
  auto tokens = Lex("{Q(A) | exists r in R [Q.A = r.A]}");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  EXPECT_EQ(tokens->front().kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(Lexer, UnicodeNormalizes) {
  auto a = Lex("∃ r ∈ R [r.A ≤ 3 ∧ ¬(r.B ≠ 1)]");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = Lex("exists r in R [r.A <= 3 and not(r.B <> 1)]");
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].kind, (*b)[i].kind) << "token " << i;
  }
}

TEST(Lexer, NumbersAndStrings) {
  auto tokens = Lex("42 2.5 1e3 'hello' \"*\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 2.5);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kFloat);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[3].text, "hello");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kQuotedIdent);
  EXPECT_EQ((*tokens)[4].text, "*");
}

TEST(Lexer, ErrorsCarryPosition) {
  auto tokens = Lex("a.b\n  ^");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("2:"), std::string::npos);
}

TEST(Parser, RejectsGarbage) {
  EXPECT_FALSE(ParseCollection("{Q(A) | }").ok());
  EXPECT_FALSE(ParseCollection("{Q() | exists r in R [Q.A = r.A]}").ok());
  EXPECT_FALSE(ParseFormula("exists r in [x]").ok());
  EXPECT_FALSE(ParseTerm("r.").ok());
  EXPECT_FALSE(ParseFormula("r.A = ").ok());
  EXPECT_FALSE(ParseCollection("{Q(A) | exists r in R [Q.A = r.A]").ok());
}

TEST(Parser, ErrorMessagesNamePosition) {
  auto r = ParseCollection("{Q(A) |\n exists r in R [Q.A = ]}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:"), std::string::npos);
}

// Round-trip: parse(print(parse(text))) == print(parse(text)).
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  auto first = ParseProgram(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << "\n" << first.status().ToString();
  const std::string printed = PrintProgram(*first);
  auto second = ParseProgram(printed);
  ASSERT_TRUE(second.ok()) << printed << "\n" << second.status().ToString();
  EXPECT_EQ(printed, PrintProgram(*second)) << "input: " << GetParam();
}

TEST_P(RoundTrip, UnicodePrintingParsesBack) {
  auto first = ParseProgram(GetParam());
  ASSERT_TRUE(first.ok());
  PrintOptions opts;
  opts.unicode = true;
  const std::string printed = PrintProgram(*first, opts);
  auto second = ParseProgram(printed);
  ASSERT_TRUE(second.ok()) << printed << "\n" << second.status().ToString();
  EXPECT_EQ(PrintProgram(*first), PrintProgram(*second));
}

// The paper's corpus, in ASCII comprehension syntax.
INSTANTIATE_TEST_SUITE_P(
    PaperCorpus, RoundTrip,
    ::testing::Values(
        // Eq. (1): TRC query.
        "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}",
        // Eq. (2): orthogonal nesting / lateral.
        "{Q(A, B) | exists x in X, z in {Z(B) | exists y in Y "
        "[Z.B = y.A and x.A < y.A]} [Q.A = x.A and Q.B = z.B]}",
        // Eq. (3): grouped aggregate (FIO).
        "{Q(A, sm) | exists r in R, gamma(r.A) "
        "[Q.A = r.A and Q.sm = sum(r.B)]}",
        // Eq. (7): FOI pattern.
        "{Q(A, sm) | exists r in R, x in {X(sm) | exists r2 in R, gamma() "
        "[r2.A = r.A and X.sm = sum(r2.B)]} "
        "[Q.A = r.A and Q.sm = x.sm]}",
        // Eq. (8): multiple aggregates + HAVING.
        "{Q(dept, av) | exists x in {X(dept, av, sm) | "
        "exists r in R, s in S, gamma(r.dept) "
        "[X.dept = r.dept and X.av = avg(s.sal) and X.sm = sum(s.sal) and "
        "r.empl = s.empl]} "
        "[Q.dept = x.dept and Q.av = x.av and x.sm > 100]}",
        // Eq. (13): Boolean sentence.
        "exists r in R [exists s in S, gamma() "
        "[r.id = s.id and r.q <= count(s.d)]]",
        // Eq. (14): integrity constraint.
        "not(exists r in R [exists s in S, gamma() "
        "[r.id = s.id and r.q > count(s.d)]])",
        // Eq. (16): recursion.
        "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
        "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}",
        // Eq. (17): NOT IN with explicit null checks.
        "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
        "[s.A = r.A or s.A is null or r.A is null])]}",
        // Eq. (18): nested outer join with literal anchor.
        "{Q(m, n) | exists r in R, s in S, left(r, inner(11, s)) "
        "[Q.m = r.m and Q.n = s.n and r.y = s.y and r.h = 11]}",
        // Eq. (19): arithmetic.
        "{Q(A) | exists r in R, s in S, t in T "
        "[Q.A = r.A and r.B - s.B > t.B]}",
        // Eq. (21): fully reified arithmetic and comparison.
        "{Q(A) | exists r in R, s in S, t in T, f in Minus, g in Bigger "
        "[Q.A = r.A and f.left = r.B and f.right = s.B and "
        "f.out = g.left and g.right = t.B]}",
        // Eq. (22): unique-set query.
        "{Q(d) | exists l1 in L [Q.d = l1.d and "
        "not(exists l2 in L [l2.d <> l1.d and "
        "not(exists l3 in L [l3.d = l2.d and "
        "not(exists l4 in L [l4.b = l3.b and l4.d = l1.d])])"
        " and "
        "not(exists l5 in L [l5.d = l1.d and "
        "not(exists l6 in L [l6.d = l2.d and l6.b = l5.b])])])]}",
        // Eq. (23)+(24): abstract relation definition and use.
        "abstract define {S(left, right) | "
        "not(exists l3 in L [l3.d = S.left and "
        "not(exists l4 in L [l4.b = l3.b and l4.d = S.right])])} "
        "{Q(d) | exists l1 in L [Q.d = l1.d and "
        "not(exists l2 in L, s1 in S, s2 in S [l2.d <> l1.d and "
        "s1.left = l2.d and s1.right = l1.d and "
        "s2.left = l1.d and s2.right = l2.d])]}",
        // Eq. (26): matrix multiplication.
        "{C(row, col, val) | exists a in A, b in B, gamma(a.row, b.col) "
        "[C.row = a.row and C.col = b.col and a.col = b.row and "
        "C.val = sum(a.val * b.val)]}",
        // Matrix multiplication with the reified "*" external (Fig. 20).
        "{C(row, col, val) | exists a in A, b in B, f in \"*\", "
        "gamma(a.row, b.col) [C.row = a.row and C.col = b.col and "
        "a.col = b.row and C.val = sum(f.out) and "
        "f.$1 = a.val and f.$2 = b.val]}",
        // Eq. (27): the count bug (incorrectly decorrelatable form).
        "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
        "[r.id = s.id and r.q = count(s.d)]]}",
        // Eq. (28): the buggy decorrelation.
        "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, "
        "gamma(s.id) [X.id = s.id and X.ct = count(s.d)]} "
        "[Q.id = r.id and r.id = x.id and r.q = x.ct]}",
        // Eq. (29): the correct decorrelation with a left join.
        "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, r2 in R, "
        "gamma(r2.id), left(r2, s) [X.id = r2.id and X.ct = count(s.d) and "
        "r2.id = s.id]} [Q.id = r.id and r.id = x.id and r.q = x.ct]}",
        // Deduplication via grouping (§2.7).
        "{Q(A, B) | exists r in R, gamma(r.A, r.B) "
        "[Q.A = r.A and Q.B = r.B]}",
        // Soufflé-style rule (15) ported to ARC.
        "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
        "[s.a < r.ak and X.sm = sum(s.b)]} "
        "[Q.ak = r.ak and Q.sm = x.sm]}"));

TEST(Parser, ParenthesizedFormulaAndTermDisambiguation) {
  auto f = ParseFormula("(r.A = 1 or r.B = 2) and r.C = 3");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind, FormulaKind::kAnd);
  auto g = ParseFormula("(r.A + 1) * 2 = r.B");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->kind, FormulaKind::kPredicate);
}

TEST(Parser, OperatorPrecedenceInTerms) {
  auto t = ParseTerm("r.A + r.B * 2");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->arith_op, data::ArithOp::kAdd);
  EXPECT_EQ((*t)->rhs->arith_op, data::ArithOp::kMul);
  EXPECT_EQ(PrintTerm(**t), "r.A + r.B * 2");
  auto u = ParseTerm("(r.A + r.B) * 2");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(PrintTerm(**u), "(r.A + r.B) * 2");
}

TEST(Parser, UnaryMinus) {
  auto t = ParseTerm("-5");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->literal.as_int(), -5);
}

TEST(Parser, KeywordAttributeNames) {
  // "left" and "in"-like names after a dot.
  auto t = ParseTerm("f.left");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->attr, "left");
}

TEST(Parser, GammaWithoutParensIsGroupAll) {
  auto f = ParseFormula("exists s in S, gamma [X.c = count(s.d)]");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_TRUE((*f)->quantifier->grouping.has_value());
  EXPECT_TRUE((*f)->quantifier->grouping->keys.empty());
}

TEST(Parser, CountStar) {
  auto t = ParseTerm("count(*)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->agg_func, AggFunc::kCountStar);
  EXPECT_EQ(PrintTerm(**t), "count(*)");
}

TEST(AltPrinter, NestedCollectionIndentation) {
  auto c = ParseCollection(
      "{Q(A, sm) | exists r in R, x in {X(sm) | exists r2 in R, gamma() "
      "[r2.A = r.A and X.sm = sum(r2.B)]} [Q.A = r.A and Q.sm = x.sm]}");
  ASSERT_TRUE(c.ok());
  const std::string alt = PrintAltCollection(**c);
  EXPECT_NE(alt.find("BINDING: x in\n"), std::string::npos);
  EXPECT_NE(alt.find("GROUPING: ()"), std::string::npos);
}

}  // namespace
}  // namespace arc::text
