// Unit tests for the data substrate: values, three-valued logic,
// comparisons, arithmetic, tuples, relations, database catalog, generators.
#include <gtest/gtest.h>

#include "data/database.h"
#include "data/generators.h"
#include "data/relation.h"
#include "data/value.h"

namespace arc::data {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value::Null().kind(), ValueKind::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::Bool(true).as_bool(), true);
  EXPECT_EQ(Value::Int(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("hi").as_string(), "hi");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("x").is_numeric());
}

TEST(Value, StructuralEqualityTreatsNullAsEqual) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));  // cross-numeric
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
}

TEST(Value, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(TriBool, KleeneTables) {
  using enum TriBool;
  EXPECT_EQ(TriAnd(kTrue, kUnknown), kUnknown);
  EXPECT_EQ(TriAnd(kFalse, kUnknown), kFalse);
  EXPECT_EQ(TriOr(kTrue, kUnknown), kTrue);
  EXPECT_EQ(TriOr(kFalse, kUnknown), kUnknown);
  EXPECT_EQ(TriNot(kUnknown), kUnknown);
  EXPECT_EQ(TriNot(kTrue), kFalse);
}

TEST(Compare, ThreeValuedNulls) {
  auto r = Compare(CmpOp::kEq, Value::Null(), Value::Int(1),
                   NullLogic::kThreeValued);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TriBool::kUnknown);
  // Even null = null is unknown in 3VL.
  r = Compare(CmpOp::kEq, Value::Null(), Value::Null(),
              NullLogic::kThreeValued);
  EXPECT_EQ(*r, TriBool::kUnknown);
}

TEST(Compare, TwoValuedNullsCollapseToFalse) {
  auto r = Compare(CmpOp::kEq, Value::Null(), Value::Null(),
                   NullLogic::kTwoValued);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TriBool::kFalse);
}

TEST(Compare, Orderings) {
  auto t = [](CmpOp op, Value a, Value b) {
    auto r = Compare(op, a, b, NullLogic::kThreeValued);
    EXPECT_TRUE(r.ok());
    return *r == TriBool::kTrue;
  };
  EXPECT_TRUE(t(CmpOp::kLt, Value::Int(1), Value::Int(2)));
  EXPECT_TRUE(t(CmpOp::kLe, Value::Int(2), Value::Double(2.0)));
  EXPECT_TRUE(t(CmpOp::kGt, Value::Double(2.5), Value::Int(2)));
  EXPECT_TRUE(t(CmpOp::kNe, Value::Int(1), Value::Int(2)));
  EXPECT_TRUE(t(CmpOp::kLt, Value::String("a"), Value::String("b")));
}

TEST(Compare, IncompatibleKindsError) {
  auto r = Compare(CmpOp::kLt, Value::Int(1), Value::String("x"),
                   NullLogic::kThreeValued);
  EXPECT_FALSE(r.ok());
}

TEST(Arith, IntegerAndDouble) {
  EXPECT_EQ(Arith(ArithOp::kAdd, Value::Int(2), Value::Int(3))->as_int(), 5);
  EXPECT_EQ(Arith(ArithOp::kDiv, Value::Int(7), Value::Int(2))->as_int(), 3);
  EXPECT_DOUBLE_EQ(
      Arith(ArithOp::kDiv, Value::Double(7), Value::Int(2))->as_double(), 3.5);
  EXPECT_EQ(Arith(ArithOp::kMod, Value::Int(7), Value::Int(4))->as_int(), 3);
}

TEST(Arith, NullPropagates) {
  EXPECT_TRUE(Arith(ArithOp::kAdd, Value::Null(), Value::Int(3))->is_null());
}

TEST(Arith, DivisionByZeroErrors) {
  EXPECT_FALSE(Arith(ArithOp::kDiv, Value::Int(1), Value::Int(0)).ok());
}

TEST(Schema, CaseInsensitiveLookup) {
  Schema s{"A", "B"};
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("B"), 1);
  EXPECT_EQ(s.IndexOf("c"), -1);
  EXPECT_EQ(s.ToString(), "(A, B)");
}

TEST(Tuple, EqualityAndOrder) {
  Tuple a{Value::Int(1), Value::String("x")};
  Tuple b{Value::Int(1), Value::String("x")};
  Tuple c{Value::Int(2), Value::String("x")};
  EXPECT_EQ(a, b);
  EXPECT_LT(a.CompareTotal(c), 0);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(Relation, DistinctPreservesFirstOccurrence) {
  Relation r(Schema{"A"});
  r.Add({Value::Int(1)});
  r.Add({Value::Int(2)});
  r.Add({Value::Int(1)});
  Relation d = r.Distinct();
  ASSERT_EQ(d.size(), 2);
  EXPECT_EQ(d.rows()[0].at(0).as_int(), 1);
  EXPECT_EQ(d.rows()[1].at(0).as_int(), 2);
}

TEST(Relation, BagAndSetEquality) {
  Relation a(Schema{"A"});
  a.Add({Value::Int(1)});
  a.Add({Value::Int(1)});
  Relation b(Schema{"A"});
  b.Add({Value::Int(1)});
  EXPECT_FALSE(a.EqualsBag(b));
  EXPECT_TRUE(a.EqualsSet(b));
  Relation c(Schema{"A"});
  c.Add({Value::Int(1)});
  c.Add({Value::Int(1)});
  EXPECT_TRUE(a.EqualsBag(c));
}

TEST(Relation, AppendChecksWidth) {
  Relation a(Schema{"A"});
  Relation b(Schema{"A", "B"});
  EXPECT_FALSE(a.Append(b).ok());
}

TEST(Database, CaseInsensitiveCatalog) {
  Database db;
  Relation r(Schema{"A"});
  r.Add({Value::Int(1)});
  db.Put("Likes", std::move(r));
  EXPECT_TRUE(db.Has("likes"));
  EXPECT_TRUE(db.Has("LIKES"));
  ASSERT_NE(db.GetPtr("likes"), nullptr);
  EXPECT_EQ(db.GetPtr("likes")->size(), 1);
  EXPECT_FALSE(db.Get("nope").ok());
}

TEST(Generators, CountBugInstanceMatchesPaper) {
  Database db = data::CountBugInstance();
  const Relation* r = db.GetPtr("R");
  const Relation* s = db.GetPtr("S");
  ASSERT_NE(r, nullptr);
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(r->size(), 1);
  EXPECT_EQ(r->rows()[0].at(0).as_int(), 9);
  EXPECT_EQ(r->rows()[0].at(1).as_int(), 0);
  EXPECT_TRUE(s->empty());
}

TEST(Generators, Deterministic) {
  Relation a = RandomBinary(100, 50, 0.2, 0.1, 7);
  Relation b = RandomBinary(100, 50, 0.2, 0.1, 7);
  EXPECT_TRUE(a.EqualsBag(b));
  Relation c = RandomBinary(100, 50, 0.2, 0.1, 8);
  EXPECT_FALSE(a.EqualsBag(c));
}

TEST(Generators, ParentChainHasExpectedEdges) {
  Database db = ParentChain(5);
  EXPECT_EQ(db.GetPtr("P")->size(), 4);
}

TEST(Generators, SparseMatrixDensity) {
  Relation m = SparseMatrix(40, 0.25, 3);
  // 1600 cells at density .25 → about 400 entries; loose bounds.
  EXPECT_GT(m.size(), 250);
  EXPECT_LT(m.size(), 550);
}

TEST(Generators, LikesCloneFractionProducesDuplicates) {
  Database db = LikesInstance(30, 10, 0.4, 0.5, 11);
  EXPECT_GT(db.GetPtr("Likes")->size(), 0);
}

}  // namespace
}  // namespace arc::data
