// ArcVerify tests: the bounded exhaustive equivalence checker must
//   * refute planted wrong rewrites with a minimal concrete counterexample
//     (a database of a few tuples, found in ascending row-count order),
//   * prove right rewrites equivalent up to the bound,
//   * be exhaustive: the enumerator's instance count matches the closed
//     form, and symmetry reduction skips only renaming-redundant instances
//     (same verdicts with reduction on and off),
//   * gate lint auto-fixes (VerifyFixes) so a bogus fix cannot survive.
#include <gtest/gtest.h>

#include <string>

#include "arc/conventions.h"
#include "arc/lint.h"
#include "data/database.h"
#include "data/relation.h"
#include "data/value.h"
#include "text/parser.h"
#include "text/printer.h"
#include "verify/bounded_eq.h"

namespace arc::verify {
namespace {

using data::Schema;
using data::Value;

Program ParseOrDie(const std::string& text) {
  auto program = text::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(program).value() : Program();
}

std::vector<RelationSig> SigOrDie(const Program& a, const Program& b) {
  auto sig = InferSignature(a, b, nullptr);
  EXPECT_TRUE(sig.ok()) << sig.status().ToString();
  return sig.ok() ? std::move(sig).value() : std::vector<RelationSig>();
}

BoundedEqReport CheckOrDie(const Program& a, const Program& b,
                           const BoundedEqOptions& opts,
                           EqRelation relation = EqRelation::kEquivalent) {
  auto report = CheckEquivalent(a, b, SigOrDie(a, b), opts, relation);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? std::move(report).value() : BoundedEqReport();
}

// ---------------------------------------------------------------------------
// Planted counterexamples (acceptance criterion: a deliberately wrong
// rewrite variant is refuted with a database of <= 3 tuples).
// ---------------------------------------------------------------------------

// Unnesting an existential scope is a set-semantics rewrite: under bag
// conventions the flat join multiplies row multiplicities where the nested
// EXISTS deduplicated them. ArcVerify must refute the pair under Sql (bag)
// and prove it under Arc (set).
TEST(BoundedEq, WrongUnnestRefutedUnderBagSemantics) {
  Program nested = ParseOrDie(
      "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}");
  Program flat = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B]}");
  BoundedEqOptions opts;
  opts.domain_size = 2;
  opts.include_null = false;

  opts.conventions = {Conventions::Sql()};
  BoundedEqReport bag = CheckOrDie(nested, flat, opts);
  EXPECT_FALSE(bag.holds) << bag.ToString();
  ASSERT_TRUE(bag.counterexample.has_value());
  EXPECT_LE(bag.counterexample->total_rows, 3) << bag.ToString();

  opts.conventions = {Conventions::Arc()};
  BoundedEqReport set = CheckOrDie(nested, flat, opts);
  EXPECT_TRUE(set.holds) << set.ToString();
}

// Dropping an IS NOT NULL guard is invisible under three-valued logic (the
// unguarded comparison goes unknown exactly where the guard fails) but
// diverges under two-valued logic, where NULL = x is plain false and the
// negation resurrects the row. One NULL tuple suffices as witness.
TEST(BoundedEq, DroppedNullGuardRefutedUnderTwoValuedLogic) {
  Program guarded = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and s.B is not null and "
      "not(s.B = r.A)]}");
  Program unguarded = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and not(s.B = r.A)]}");
  BoundedEqOptions opts;
  opts.domain_size = 2;

  // Equivalent under both three-valued conventions...
  BoundedEqReport threevl = CheckOrDie(guarded, unguarded, opts);
  EXPECT_TRUE(threevl.holds) << threevl.ToString();

  // ...refuted under the two-valued flip, with a tiny witness.
  Conventions twovl = Conventions::Arc();
  twovl.null_logic = data::NullLogic::kTwoValued;
  opts.conventions = {twovl};
  BoundedEqReport report = CheckOrDie(guarded, unguarded, opts);
  EXPECT_FALSE(report.holds) << report.ToString();
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_LE(report.counterexample->total_rows, 3) << report.ToString();
  const std::string rendered = report.counterexample->ToString();
  EXPECT_NE(rendered.find("null"), std::string::npos) << rendered;
}

// The count bug (Fig. 21a vs. 21b): naive decorrelation loses rows of R
// with no matching group. The minimal witness is one R row with S empty.
TEST(BoundedEq, NaiveDecorrelationRefutedWithOneTupleWitness) {
  Program original = ParseOrDie(
      "{Q(id) | exists r in R [Q.id = r.id and "
      "exists s in S, gamma() [r.id = s.id and r.q = count(s.d)]]}");
  Program decorrelated = ParseOrDie(
      "{Q(id) | exists r in R, x in {X(id, ct) | "
      "exists s in S, gamma(s.id) [X.id = s.id and X.ct = count(s.d)]} "
      "[Q.id = r.id and r.id = x.id and r.q = x.ct]}");
  BoundedEqOptions opts;
  opts.domain_size = 2;
  opts.include_null = false;
  opts.conventions = {Conventions::Arc()};
  BoundedEqReport report = CheckOrDie(original, decorrelated, opts);
  EXPECT_FALSE(report.holds) << report.ToString();
  ASSERT_TRUE(report.counterexample.has_value());
  // r.q = count(...) = 0 over empty S: the witness is a single R row.
  EXPECT_LE(report.counterexample->total_rows, 2) << report.ToString();
}

// ---------------------------------------------------------------------------
// Exhaustiveness: enumeration counts match the closed form, and symmetry
// reduction only skips what it may.
// ---------------------------------------------------------------------------

TEST(BoundedEq, EnumerationCountMatchesClosedForm) {
  // A self-comparison: no early stop, so the enumerator must visit the
  // entire space and its counters must reconcile with the closed form.
  Program p = ParseOrDie("{Q(A) | exists r in R [Q.A = r.A]}");
  Program q = p.Clone();
  const std::vector<RelationSig> schema = SigOrDie(p, q);

  for (const bool symmetry : {true, false}) {
    BoundedEqOptions opts;
    opts.domain_size = 2;
    opts.max_rows = 2;
    opts.symmetry_reduction = symmetry;
    auto report = CheckEquivalent(p, q, schema, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->holds) << report->ToString();
    // R is unary over a pool of 3 values (2 ints + NULL): multisets of at
    // most 2 of 3 tuples = C(3,0) + C(3,1) + C(4,2)/... = 1 + 3 + 6 = 10.
    EXPECT_EQ(CountInstances(schema, opts), 10);
    EXPECT_EQ(report->instances_enumerated, 10);
    EXPECT_EQ(report->instances_checked + report->instances_skipped_symmetry,
              report->instances_enumerated);
    if (symmetry) {
      EXPECT_TRUE(report->symmetry_used);
      EXPECT_GT(report->instances_skipped_symmetry, 0);
    } else {
      EXPECT_EQ(report->instances_skipped_symmetry, 0);
      EXPECT_EQ(report->instances_checked, 10);
    }
  }
}

TEST(BoundedEq, SymmetryOnAndOffAgreeOnVerdictAndMinimality) {
  Program lhs = ParseOrDie("{Q(A) | exists r in R [Q.A = r.A]}");
  Program rhs =
      ParseOrDie("{Q(A) | exists r in R [Q.A = r.A and not(r.B = r.A)]}");
  BoundedEqOptions opts;
  opts.domain_size = 2;
  opts.conventions = {Conventions::Arc()};

  opts.symmetry_reduction = true;
  BoundedEqReport with = CheckOrDie(lhs, rhs, opts);
  opts.symmetry_reduction = false;
  BoundedEqReport without = CheckOrDie(lhs, rhs, opts);

  EXPECT_FALSE(with.holds);
  EXPECT_FALSE(without.holds);
  ASSERT_TRUE(with.counterexample.has_value());
  ASSERT_TRUE(without.counterexample.has_value());
  // Canonical-orbit filtering must not skip past the minimal witness: both
  // runs find a counterexample of the same (minimal) total row count.
  EXPECT_EQ(with.counterexample->total_rows,
            without.counterexample->total_rows);
}

TEST(BoundedEq, SymmetryDisabledForNonEquivariantPrograms) {
  // An order comparison breaks renaming equivariance; the checker must
  // fall back to full enumeration even when reduction is requested.
  Program p = ParseOrDie("{Q(A) | exists r in R [Q.A = r.A and r.A < 2]}");
  EXPECT_FALSE(RenamingEquivariant(p));
  BoundedEqOptions opts;
  opts.domain_size = 2;
  opts.symmetry_reduction = true;
  BoundedEqReport report = CheckOrDie(p, p, opts);
  EXPECT_TRUE(report.holds);
  EXPECT_FALSE(report.symmetry_used);
  EXPECT_EQ(report.instances_skipped_symmetry, 0);
}

TEST(BoundedEq, InstanceCapRejectsBlowups) {
  Program p = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B]}");
  BoundedEqOptions opts;
  opts.domain_size = 4;
  opts.max_rows = 4;
  opts.max_instances = 100;
  auto report = CheckEquivalent(p, p, SigOrDie(p, p), opts);
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Containment mode and signature inference.
// ---------------------------------------------------------------------------

TEST(BoundedEq, SubsetModeProvesContainmentAndRefutesItsConverse) {
  Program narrow =
      ParseOrDie("{Q(A) | exists r in R [Q.A = r.A and r.B = 0]}");
  Program wide = ParseOrDie("{Q(A) | exists r in R [Q.A = r.A]}");
  BoundedEqOptions opts;
  opts.domain_size = 2;
  opts.include_null = false;

  BoundedEqReport forward =
      CheckOrDie(narrow, wide, opts, EqRelation::kLhsSubsetRhs);
  EXPECT_TRUE(forward.holds) << forward.ToString();
  EXPECT_EQ(forward.relation, EqRelation::kLhsSubsetRhs);

  BoundedEqReport backward =
      CheckOrDie(wide, narrow, opts, EqRelation::kLhsSubsetRhs);
  EXPECT_FALSE(backward.holds) << backward.ToString();
  ASSERT_TRUE(backward.counterexample.has_value());
}

TEST(BoundedEq, InferSignatureReconstructsAttributesFromReferences) {
  Program a = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.C]}");
  auto sig = InferSignature(a, a, nullptr);
  ASSERT_TRUE(sig.ok()) << sig.status().ToString();
  ASSERT_EQ(sig->size(), 2u);
  EXPECT_EQ((*sig)[0].name, "R");
  EXPECT_EQ((*sig)[0].attrs, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ((*sig)[1].name, "S");
  EXPECT_EQ((*sig)[1].attrs, (std::vector<std::string>{"C"}));
}

TEST(BoundedEq, InferSignaturePrefersDatabaseSchemas) {
  Program a = ParseOrDie("{Q(A) | exists r in R [Q.A = r.A]}");
  data::Database db;
  db.Put("R", data::Relation(Schema{"A", "B", "C"}));
  auto sig = InferSignature(a, a, &db);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->size(), 1u);
  EXPECT_EQ((*sig)[0].attrs, (std::vector<std::string>{"A", "B", "C"}));
}

// Literal values a program compares against must appear in the pool, or
// the predicate is never exercised within the bound.
TEST(BoundedEq, ProgramLiteralsSeedTheValuePool) {
  Program p = ParseOrDie("{Q(A) | exists r in R [Q.A = r.A and r.A = 9]}");
  BoundedEqOptions opts;
  opts.domain_size = 2;
  const std::vector<Value> pool = BuildValuePool(p, p, opts);
  ASSERT_FALSE(pool.empty());
  bool has_nine = false;
  for (const Value& v : pool) {
    has_nine = has_nine || (!v.is_null() && v.as_int() == 9);
  }
  EXPECT_TRUE(has_nine);

  // And the distinguishing power matters: R.A = 9 differs from R.A = 8.
  Program q = ParseOrDie("{Q(A) | exists r in R [Q.A = r.A and r.A = 8]}");
  BoundedEqReport report = CheckOrDie(p, q, opts);
  EXPECT_FALSE(report.holds) << report.ToString();
}

// ---------------------------------------------------------------------------
// Fix gating: VerifyFixes must refute a bogus fix.
// ---------------------------------------------------------------------------

TEST(VerifyFixes, BogusFixRefuted) {
  Program original = ParseOrDie(
      "{Q(A) | exists r in R, s in S [Q.A = r.A and not(s.B = r.A)]}");
  // A "fix" that silently drops the negated conjunct entirely: claims to
  // pin meaning, actually changes the result on trivial instances.
  FixIt bogus;
  bogus.code = "ARC-W102";
  bogus.name = "bogus-drop-conjunct";
  bogus.description = "planted wrong fix";
  bogus.effect = FixEffect::kPinsMeaning;
  bogus.fixed = ParseOrDie("{Q(A) | exists r in R, s in S [Q.A = r.A]}");

  BoundedEqOptions opts;
  opts.domain_size = 2;
  std::vector<FixIt> fixes;
  fixes.push_back(std::move(bogus));
  std::vector<VerifiedFix> out = VerifyFixes(
      original, std::move(fixes), SigOrDie(original, original), opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].verified);
  EXPECT_NE(out[0].verdict.find("REFUTED"), std::string::npos)
      << out[0].verdict;
  EXPECT_TRUE(out[0].primary.counterexample.has_value());
}

}  // namespace
}  // namespace arc::verify
