// E1 — Fig. 2 / Eq. (1): the running TRC query
//   {Q(A) | ∃r∈R, s∈S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}
// evaluated by the ARC engine versus the direct SQL evaluator on the same
// instance. Shape: both agree on every instance; both scale with |R|·|S|
// modulo the eager filter pushdown.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kArc =
    "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B and s.C = 0]}";
constexpr const char* kSql =
    "select distinct R.A from R, S where R.B = S.B and S.C = 0";

void Shape() {
  arc::bench::Header("E1", "Fig. 2 / Eq. (1): TRC query",
                     "ARC evaluation ≡ SQL evaluation on every instance");
  std::printf("%8s %10s %10s %8s\n", "rows", "|ARC out|", "|SQL out|",
              "agree");
  arc::Program program = MustParse(kArc);
  for (int64_t rows : {10, 100, 400}) {
    arc::data::Database db = arc::data::TrcInstance(rows, rows / 2, 0.3, 42);
    arc::data::Relation via_arc = MustEvalArc(db, program);
    arc::sql::SqlEvaluator sql(db);
    auto via_sql = sql.EvalQuery(kSql);
    std::printf("%8lld %10lld %10lld %8s\n", static_cast<long long>(rows),
                static_cast<long long>(via_arc.size()),
                static_cast<long long>(via_sql.ok() ? via_sql->size() : -1),
                via_sql.ok() && via_arc.EqualsSet(*via_sql) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ArcEval(benchmark::State& state) {
  arc::data::Database db =
      arc::data::TrcInstance(state.range(0), state.range(0) / 2, 0.3, 42);
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ArcEval)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_DirectSqlEval(benchmark::State& state) {
  arc::data::Database db =
      arc::data::TrcInstance(state.range(0), state.range(0) / 2, 0.3, 42);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kSql);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DirectSqlEval)->Range(16, 1024)->Complexity();

// Ablation: evaluation with validation included (parse → analyze → eval),
// the full pipeline an interactive tool would run.
void BM_FullPipeline(benchmark::State& state) {
  arc::data::Database db =
      arc::data::TrcInstance(state.range(0), state.range(0) / 2, 0.3, 42);
  for (auto _ : state) {
    arc::Program program = MustParse(kArc);
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_FullPipeline)->Range(16, 256);

}  // namespace

ARC_BENCH_MAIN(Shape)
