// E8 — Fig. 9 / Eqs. (13)-(14): Boolean sentences with aggregate
// comparison predicates used as integrity constraints. Shape: Eq. (13)
// (∃ id fully delivered) and Eq. (14) (no id under-delivered) evaluate to
// the expected truth values on satisfying/violating instances, and
// constraint checking scales with |R|·|S|.
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustParse;

constexpr const char* kEq13 =
    "exists r in R [exists s in S, gamma() "
    "[r.id = s.id and r.q <= count(s.d)]]";
constexpr const char* kEq14 =
    "not(exists r in R [exists s in S, gamma() "
    "[r.id = s.id and r.q > count(s.d)]])";

arc::data::TriBool EvalSentence(const arc::data::Database& db,
                                const arc::Program& program) {
  arc::eval::Evaluator ev(db);
  auto r = ev.EvalSentence(program);
  if (!r.ok()) {
    std::fprintf(stderr, "sentence eval failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return *r;
}

void Shape() {
  arc::bench::Header("E8", "Fig. 9 / Eqs. (13)-(14): Boolean constraints",
                     "(13) true when some id is fully delivered; (14) true "
                     "iff no id is under-delivered");
  arc::Program eq13 = MustParse(kEq13);
  arc::Program eq14 = MustParse(kEq14);
  std::printf("%14s %10s %10s\n", "instance", "Eq.(13)", "Eq.(14)");
  arc::data::Database sat = arc::data::InventoryInstance(50, 3, true, 1);
  arc::data::Database vio = arc::data::InventoryInstance(50, 3, false, 2);
  std::printf("%14s %10s %10s\n", "satisfying",
              arc::data::TriBoolName(EvalSentence(sat, eq13)),
              arc::data::TriBoolName(EvalSentence(sat, eq14)));
  std::printf("%14s %10s %10s\n", "violating",
              arc::data::TriBoolName(EvalSentence(vio, eq13)),
              arc::data::TriBoolName(EvalSentence(vio, eq14)));
  std::printf("\n");
}

void BM_ConstraintCheckSatisfying(benchmark::State& state) {
  arc::data::Database db =
      arc::data::InventoryInstance(state.range(0), 3, true, 1);
  arc::Program program = MustParse(kEq14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalSentence(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConstraintCheckSatisfying)->Range(16, 512)->Complexity();

void BM_ConstraintCheckViolating(benchmark::State& state) {
  // Violating instances short-circuit at the first bad id.
  arc::data::Database db =
      arc::data::InventoryInstance(state.range(0), 3, false, 2);
  arc::Program program = MustParse(kEq14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalSentence(db, program));
  }
}
BENCHMARK(BM_ConstraintCheckViolating)->Range(16, 512);

}  // namespace

ARC_BENCH_MAIN(Shape)
