// E2 — Fig. 3 / Eq. (2): orthogonal nesting — the nested comprehension
// {Q(A,B) | ∃x∈X, z∈{Z(B)|∃y∈Y[…x.A < y.A]}[…]} is SQL's lateral join.
// Shape: the ARC nested-collection form ≡ the SQL LATERAL form on every
// instance; the correlated inner collection is re-evaluated per outer
// binding, so cost is |X|·|Y|.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kArc =
    "{Q(A, B) | exists x in X, z in {Z(B) | exists y in Y "
    "[Z.B = y.A and x.A < y.A]} [Q.A = x.A and Q.B = z.B]}";
constexpr const char* kSql =
    "select x.A, z.B from X as x join lateral "
    "(select y.A as B from Y as y where x.A < y.A) as z on true";

arc::data::Database MakeDb(int64_t rows, uint64_t seed) {
  arc::data::Database db;
  arc::data::Relation x0 = arc::data::RandomUnary(rows, rows * 2, 0.0, seed);
  db.Put("X", arc::data::Relation(arc::data::Schema{"A"}, x0.rows()));
  arc::data::Relation y0 =
      arc::data::RandomUnary(rows, rows * 2, 0.0, seed + 1);
  db.Put("Y", arc::data::Relation(arc::data::Schema{"A"}, y0.rows()));
  return db;
}

void Shape() {
  arc::bench::Header("E2", "Fig. 3 / Eq. (2): orthogonal nesting = LATERAL",
                     "ARC nested collection ≡ SQL LATERAL join");
  arc::Program program = MustParse(kArc);
  std::printf("%8s %10s %10s %8s\n", "rows", "|ARC|", "|SQL|", "agree");
  for (int64_t rows : {10, 50, 150}) {
    arc::data::Database db = MakeDb(rows, 23);
    arc::data::Relation via_arc =
        MustEvalArc(db, program, arc::Conventions::Sql());
    arc::sql::SqlEvaluator sql(db);
    auto via_sql = sql.EvalQuery(kSql);
    std::printf("%8lld %10lld %10lld %8s\n", static_cast<long long>(rows),
                static_cast<long long>(via_arc.size()),
                static_cast<long long>(via_sql.ok() ? via_sql->size() : -1),
                via_sql.ok() && via_arc.EqualsBag(*via_sql) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ArcNestedCollection(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 23);
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ArcNestedCollection)->Range(16, 256)->Complexity();

void BM_SqlLateral(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 23);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kSql);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SqlLateral)->Range(16, 256)->Complexity();

}  // namespace

ARC_BENCH_MAIN(Shape)
