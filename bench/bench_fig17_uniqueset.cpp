// E16 — Figs. 16-19 / Eqs. (22)-(24): the unique-set query with deeply
// nested negation, monolithic versus modularized with the abstract Subset
// relation. Shape: identical answers; abstraction is (nearly) free — the
// module is inlined with bound parameters, so the relational pattern, and
// hence the work, is preserved.
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kMonolithic =
    "{Q(d) | exists l1 in Likes [Q.d = l1.drinker and "
    "not(exists l2 in Likes [l2.drinker <> l1.drinker and "
    "not(exists l3 in Likes [l3.drinker = l2.drinker and "
    "not(exists l4 in Likes [l4.beer = l3.beer and "
    "l4.drinker = l1.drinker])])"
    " and "
    "not(exists l5 in Likes [l5.drinker = l1.drinker and "
    "not(exists l6 in Likes [l6.drinker = l2.drinker and "
    "l6.beer = l5.beer])])])]}";

constexpr const char* kModular =
    "abstract define {S(left, right) | "
    "not(exists l3 in Likes [l3.drinker = S.left and "
    "not(exists l4 in Likes [l4.beer = l3.beer and "
    "l4.drinker = S.right])])} "
    "{Q(d) | exists l1 in Likes [Q.d = l1.drinker and "
    "not(exists l2 in Likes, s1 in S, s2 in S "
    "[l2.drinker <> l1.drinker and "
    "s1.left = l2.drinker and s1.right = l1.drinker and "
    "s2.left = l1.drinker and s2.right = l2.drinker])]}";

void Shape() {
  arc::bench::Header(
      "E16", "Figs. 16-19 / Eqs. (22)-(24): unique-set query + modules",
      "monolithic ≡ modularized (abstract relations preserve the pattern)");
  arc::Program mono = MustParse(kMonolithic);
  arc::Program modular = MustParse(kModular);
  std::printf("%10s %8s %10s %10s %8s\n", "drinkers", "|Likes|", "|mono|",
              "|modular|", "agree");
  for (int64_t drinkers : {6, 12, 20}) {
    arc::data::Database db =
        arc::data::LikesInstance(drinkers, 8, 0.4, 0.4, 42);
    arc::data::Relation a = MustEvalArc(db, mono);
    arc::data::Relation b = MustEvalArc(db, modular);
    std::printf("%10lld %8lld %10lld %10lld %8s\n",
                static_cast<long long>(drinkers),
                static_cast<long long>(db.GetPtr("Likes")->size()),
                static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                a.EqualsSet(b) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_Monolithic(benchmark::State& state) {
  arc::data::Database db =
      arc::data::LikesInstance(state.range(0), 8, 0.4, 0.4, 42);
  arc::Program program = MustParse(kMonolithic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Monolithic)->Range(4, 32)->Complexity();

void BM_Modularized(benchmark::State& state) {
  arc::data::Database db =
      arc::data::LikesInstance(state.range(0), 8, 0.4, 0.4, 42);
  arc::Program program = MustParse(kModular);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Modularized)->Range(4, 32)->Complexity();

}  // namespace

ARC_BENCH_MAIN(Shape)
