// E20 — §5: the SQL↔ARC translator the paper says it is building. Over
// the paper's SQL corpus: parse → SqlToArc → ArcToSql → re-execute, and
// print∘parse over the comprehension modality. Shape: every round trip is
// execution-equivalent; throughput numbers for each pipeline stage.
#include <string>

#include "bench/bench_util.h"
#include "sql/eval.h"
#include "text/parser.h"
#include "text/printer.h"
#include "translate/arc_to_sql.h"
#include "translate/sql_to_arc.h"

namespace {

constexpr const char* kSetup =
    "create table R (A int, B int);"
    "insert into R values (1,5),(2,6),(3,7),(1,5);"
    "create table S (B int, C int);"
    "insert into S values (5,0),(6,3),(7,0);"
    "create table P (s int, t int);"
    "insert into P values (0,1),(1,2),(2,3);";

constexpr const char* kCorpus[] = {
    "select R.A from R where R.B > 5",
    "select R.A, sum(R.B) sm from R group by R.A",
    "select R.A from R, S where R.B = S.B and S.C = 0",
    "select distinct R.A from R where not exists (select 1 from S "
    "where S.B = R.B)",
    "select R.A from R where R.B not in (select S.B from S)",
    "select R.A, (select count(S.C) from S where S.B = R.B) c from R",
    "select R.A, S.C from R left join S on R.B = S.B",
    "select R.A from R union select S.C from S",
    "with recursive A as (select P.s, P.t from P union "
    "select P.s, A.t from P, A where P.t = A.s) select A.s, A.t from A",
    "select R.dept2, avg(R.B) av from (select R.A dept2, R.B from R) R "
    "group by R.dept2 having sum(R.B) > 5",
};

void Shape() {
  arc::bench::Header(
      "E20", "§5: SQL↔ARC round-tripping",
      "for every corpus query: SQL ≡ SQL→ARC→SQL (execution equivalence) "
      "and parse∘print is the identity on the comprehension modality");
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  if (!db.ok()) std::exit(1);
  arc::sql::SqlEvaluator direct(*db);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  std::printf("%-70.70s %8s %8s\n", "query", "exec≡", "text≡");
  int ok_count = 0;
  for (const char* q : kCorpus) {
    auto expected = direct.EvalQuery(q);
    auto program = arc::translate::SqlToArc(q, topts);
    bool exec_equal = false;
    bool text_stable = false;
    if (expected.ok() && program.ok()) {
      auto rendered = arc::translate::ArcToSqlText(*program);
      if (rendered.ok()) {
        auto actual = direct.EvalQuery(*rendered);
        exec_equal = actual.ok() && actual->EqualsBag(*expected);
      }
      const std::string printed = arc::text::PrintProgram(*program);
      auto reparsed = arc::text::ParseProgram(printed);
      text_stable =
          reparsed.ok() && arc::text::PrintProgram(*reparsed) == printed;
    }
    if (exec_equal && text_stable) ++ok_count;
    std::printf("%-70.70s %8s %8s\n", q, exec_equal ? "yes" : "NO",
                text_stable ? "yes" : "NO");
  }
  std::printf("round trips intact: %d/%d\n\n", ok_count,
              static_cast<int>(std::size(kCorpus)));
}

void BM_SqlParse(benchmark::State& state) {
  for (auto _ : state) {
    auto s = arc::sql::ParseSelect(kCorpus[2]);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SqlParse);

void BM_SqlToArcTranslate(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  for (auto _ : state) {
    auto p = arc::translate::SqlToArc(kCorpus[2], topts);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SqlToArcTranslate);

void BM_ArcToSqlRender(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  auto program = arc::translate::SqlToArc(kCorpus[2], topts);
  for (auto _ : state) {
    auto s = arc::translate::ArcToSqlText(*program);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ArcToSqlRender);

void BM_ComprehensionPrint(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  auto program = arc::translate::SqlToArc(kCorpus[2], topts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arc::text::PrintProgram(*program));
  }
}
BENCHMARK(BM_ComprehensionPrint);

void BM_ComprehensionParse(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  auto program = arc::translate::SqlToArc(kCorpus[2], topts);
  const std::string printed = arc::text::PrintProgram(*program);
  for (auto _ : state) {
    auto p = arc::text::ParseProgram(printed);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ComprehensionParse);

void BM_AltPrint(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  auto program = arc::translate::SqlToArc(kCorpus[2], topts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arc::text::PrintAltProgram(*program));
  }
}
BENCHMARK(BM_AltPrint);

void BM_FullRoundTrip(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  arc::translate::SqlToArcOptions topts;
  topts.database = &*db;
  for (auto _ : state) {
    auto program = arc::translate::SqlToArc(kCorpus[2], topts);
    auto rendered = arc::translate::ArcToSqlText(*program);
    benchmark::DoNotOptimize(rendered);
  }
}
BENCHMARK(BM_FullRoundTrip);

}  // namespace

ARC_BENCH_MAIN(Shape)
