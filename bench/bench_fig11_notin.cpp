// E10 — Fig. 11 / Eq. (17): NOT IN versus the null-checked NOT EXISTS
// rewrite. Shape: on null-free instances both return the antijoin; as soon
// as S contains a single NULL, both become empty under SQL's 3VL — and the
// ARC representation (Eq. 17) reproduces this inside two-valued logic with
// explicit null checks.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kArc =
    "{Q(A) | exists r in R [Q.A = r.A and not(exists s in S "
    "[s.A = r.A or s.A is null or r.A is null])]}";
constexpr const char* kSqlNotIn =
    "select R.A from R where R.A not in (select S.A from S)";
constexpr const char* kSqlNotExists =
    "select R.A from R where not exists (select 1 from S "
    "where S.A = R.A or S.A is null or R.A is null)";

arc::data::Database MakeDb(int64_t rows, double null_fraction,
                           uint64_t seed) {
  arc::data::Database db;
  db.Put("R", arc::data::RandomUnary(rows, rows, 0.0, seed));
  db.Put("S", arc::data::RandomUnary(rows, rows, null_fraction, seed + 7));
  return db;
}

void Shape() {
  arc::bench::Header(
      "E10", "Fig. 11 / Eq. (17): NOT IN under NULLs",
      "a single NULL in S empties the result; the Eq. 17 rewrite reproduces "
      "it in 2-valued logic");
  arc::Program program = MustParse(kArc);
  std::printf("%12s %10s %12s %10s %8s\n", "null-frac", "|NOT IN|",
              "|NOT EXISTS|", "|ARC|", "agree");
  for (double nf : {0.0, 0.05, 0.3}) {
    arc::data::Database db = MakeDb(60, nf, 11);
    arc::sql::SqlEvaluator sql(db);
    auto not_in = sql.EvalQuery(kSqlNotIn);
    auto not_exists = sql.EvalQuery(kSqlNotExists);
    arc::data::Relation via_arc =
        MustEvalArc(db, program, arc::Conventions::Sql());
    const bool agree = not_in.ok() && not_exists.ok() &&
                       not_in->EqualsBag(*not_exists) &&
                       not_in->EqualsBag(via_arc);
    std::printf("%12.2f %10lld %12lld %10lld %8s\n", nf,
                static_cast<long long>(not_in.ok() ? not_in->size() : -1),
                static_cast<long long>(
                    not_exists.ok() ? not_exists->size() : -1),
                static_cast<long long>(via_arc.size()),
                agree ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_SqlNotIn(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.05, 11);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kSqlNotIn);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlNotIn)->Range(16, 512);

void BM_SqlNotExistsRewrite(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.05, 11);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kSqlNotExists);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlNotExistsRewrite)->Range(16, 512);

void BM_ArcEq17(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.05, 11);
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_ArcEq17)->Range(16, 512);

}  // namespace

ARC_BENCH_MAIN(Shape)
