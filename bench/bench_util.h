// Shared helpers for the per-figure benchmark binaries. Each binary first
// prints a "shape table" — the qualitative result the paper reports for
// that figure (who wins / where results diverge), measured on this build —
// then runs its google-benchmark timing sweeps.
#ifndef ARC_BENCH_BENCH_UTIL_H_
#define ARC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arc/conventions.h"
#include "data/database.h"
#include "eval/evaluator.h"
#include "text/parser.h"

namespace arc::bench {

/// Binding mode used by every MustEvalArc call, selectable via the
/// ARC_BINDING_MODE environment variable ("slot" — the default — or
/// "string"). run_benchmarks.sh uses "string" to capture the pre-slot
/// reference baseline with the same binaries.
inline eval::BindingMode BindingModeFromEnv() {
  const char* env = std::getenv("ARC_BINDING_MODE");
  if (env == nullptr || std::strcmp(env, "slot") == 0) {
    return eval::BindingMode::kSlotCompiled;
  }
  if (std::strcmp(env, "string") == 0) return eval::BindingMode::kStringKeyed;
  std::fprintf(stderr, "unknown ARC_BINDING_MODE '%s' (want slot|string)\n",
               env);
  std::exit(1);
}

inline Program MustParse(const std::string& source) {
  auto p = text::ParseProgram(source);
  if (!p.ok()) {
    std::fprintf(stderr, "parse failed: %s\nsource: %s\n",
                 p.status().ToString().c_str(), source.c_str());
    std::exit(1);
  }
  return std::move(p).value();
}

inline data::Relation MustEvalArc(const data::Database& db,
                                  const Program& program,
                                  Conventions conventions = Conventions::Arc()) {
  eval::EvalOptions opts;
  opts.conventions = conventions;
  opts.binding_mode = BindingModeFromEnv();
  auto r = eval::Eval(db, program, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "eval failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

inline void Header(const char* experiment, const char* paper_artifact,
                   const char* expected_shape) {
  std::printf("================================================================\n");
  std::printf("%s — reproducing %s\n", experiment, paper_artifact);
  std::printf("paper shape: %s\n", expected_shape);
  std::printf("================================================================\n");
}

/// Runs the registered google-benchmark sweeps after the shape table.
inline int RunBenchmarks(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace arc::bench

#define ARC_BENCH_MAIN(ShapeFn)              \
  int main(int argc, char** argv) {          \
    ShapeFn();                               \
    return arc::bench::RunBenchmarks(argc, argv); \
  }

#endif  // ARC_BENCH_BENCH_UTIL_H_
