// E9 — Fig. 10 / Eq. (16): recursion in the named perspective. The
// ancestor query runs as (a) an ARC recursive collection (naive fixpoint
// over the disjunctive body), (b) the Datalog engine naive, and (c) the
// Datalog engine semi-naive — the ablation the design calls out. Shape:
// all agree; semi-naive wins with depth (chains), and the gap shrinks on
// shallow graphs (trees).
#include "bench/bench_util.h"
#include "data/generators.h"
#include "datalog/eval.h"
#include "datalog/parser.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kArc =
    "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
    "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}";
constexpr const char* kDatalog =
    "A(x, y) :- P(x, y).\n"
    "A(x, y) :- P(x, z), A(z, y).\n";

arc::data::Relation RunDatalog(const arc::data::Database& db,
                               bool semi_naive) {
  auto program = arc::datalog::ParseDatalog(kDatalog);
  arc::datalog::DlEvalOptions opts;
  opts.semi_naive = semi_naive;
  arc::datalog::DlEvaluator ev(db, opts);
  auto r = ev.Eval(*program, "A");
  if (!r.ok()) {
    std::fprintf(stderr, "datalog failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void Shape() {
  arc::bench::Header(
      "E9", "Fig. 10 / Eq. (16): ancestor recursion",
      "ARC fixpoint ≡ Datalog naive ≡ Datalog semi-naive on chains, trees, "
      "and random DAGs");
  arc::Program program = MustParse(kArc);
  struct Case {
    const char* name;
    arc::data::Database db;
  };
  Case cases[] = {
      {"chain n=40", arc::data::ParentChain(40)},
      {"tree n=63", arc::data::ParentTree(63, 2)},
      {"dag n=40 e=80", arc::data::ParentRandom(40, 80, 5)},
  };
  std::printf("%16s %8s %10s %10s %8s\n", "graph", "|TC|", "naive", "semi",
              "agree");
  for (Case& c : cases) {
    arc::data::Relation via_arc = MustEvalArc(c.db, program);
    arc::data::Relation naive = RunDatalog(c.db, false);
    arc::data::Relation semi = RunDatalog(c.db, true);
    std::printf("%16s %8lld %10lld %10lld %8s\n", c.name,
                static_cast<long long>(via_arc.size()),
                static_cast<long long>(naive.size()),
                static_cast<long long>(semi.size()),
                via_arc.EqualsSet(naive) && naive.EqualsSet(semi) ? "yes"
                                                                  : "NO");
  }
  std::printf("\n");
}

void BM_ArcFixpointChain(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentChain(state.range(0));
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ArcFixpointChain)->Range(8, 64)->Complexity();

void BM_DatalogNaiveChain(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentChain(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, false));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DatalogNaiveChain)->Range(8, 64)->Complexity();

void BM_DatalogSemiNaiveChain(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentChain(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, true));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DatalogSemiNaiveChain)->Range(8, 64)->Complexity();

void BM_DatalogSemiNaiveTree(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentTree(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, true));
  }
}
BENCHMARK(BM_DatalogSemiNaiveTree)->Range(16, 256);

void BM_DatalogNaiveTree(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentTree(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, false));
  }
}
BENCHMARK(BM_DatalogNaiveTree)->Range(16, 256);

}  // namespace

ARC_BENCH_MAIN(Shape)
