// E9 — Fig. 10 / Eq. (16): recursion in the named perspective. The
// ancestor query runs as (a) the ARC evaluator semi-naive, (b) the ARC
// evaluator naive (the differential oracle), (c) the Datalog engine naive,
// and (d) the Datalog engine semi-naive — the ablation the design calls
// out. Shape: all agree; semi-naive wins with depth (chains), and the gap
// shrinks on shallow graphs (trees).
#include "bench/bench_util.h"
#include "data/generators.h"
#include "datalog/eval.h"
#include "datalog/parser.h"

namespace {

using arc::bench::MustParse;

constexpr const char* kArc =
    "{A(s, t) | exists p in P [A.s = p.s and A.t = p.t] or "
    "exists p in P, a2 in A [A.s = p.s and p.t = a2.s and a2.t = A.t]}";
constexpr const char* kDatalog =
    "A(x, y) :- P(x, y).\n"
    "A(x, y) :- P(x, z), A(z, y).\n";

arc::data::Relation RunArc(const arc::data::Database& db,
                           const arc::Program& program,
                           arc::eval::RecursionStrategy strategy,
                           arc::eval::EvalStats* stats = nullptr) {
  arc::eval::EvalOptions opts;
  opts.recursion_strategy = strategy;
  opts.binding_mode = arc::bench::BindingModeFromEnv();
  arc::eval::Evaluator ev(db, opts);
  auto r = ev.EvalProgram(program);
  if (!r.ok()) {
    std::fprintf(stderr, "arc eval failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  if (stats != nullptr) *stats = ev.stats();
  return std::move(r).value();
}

arc::data::Relation RunDatalog(const arc::data::Database& db,
                               bool semi_naive) {
  auto program = arc::datalog::ParseDatalog(kDatalog);
  arc::datalog::DlEvalOptions opts;
  opts.semi_naive = semi_naive;
  arc::datalog::DlEvaluator ev(db, opts);
  auto r = ev.Eval(*program, "A");
  if (!r.ok()) {
    std::fprintf(stderr, "datalog failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void Shape() {
  arc::bench::Header(
      "E9", "Fig. 10 / Eq. (16): ancestor recursion",
      "ARC semi-naive ≡ ARC naive ≡ Datalog naive ≡ Datalog semi-naive on "
      "chains, trees, and random DAGs");
  arc::Program program = MustParse(kArc);
  struct Case {
    const char* name;
    arc::data::Database db;
  };
  Case cases[] = {
      {"chain n=40", arc::data::ParentChain(40)},
      {"tree n=63", arc::data::ParentTree(63, 2)},
      {"dag n=40 e=80", arc::data::ParentRandom(40, 80, 5)},
  };
  std::printf("%16s %8s %10s %10s %10s %10s %8s\n", "graph", "|TC|",
              "arc-semi", "arc-naive", "dl-naive", "dl-semi", "agree");
  for (Case& c : cases) {
    arc::data::Relation arc_semi =
        RunArc(c.db, program, arc::eval::RecursionStrategy::kSemiNaive);
    arc::data::Relation arc_naive =
        RunArc(c.db, program, arc::eval::RecursionStrategy::kNaive);
    arc::data::Relation dl_naive = RunDatalog(c.db, false);
    arc::data::Relation dl_semi = RunDatalog(c.db, true);
    const bool agree = arc_semi.EqualsSet(arc_naive) &&
                       arc_naive.EqualsSet(dl_naive) &&
                       dl_naive.EqualsSet(dl_semi);
    std::printf("%16s %8lld %10lld %10lld %10lld %10lld %8s\n", c.name,
                static_cast<long long>(arc_semi.size()),
                static_cast<long long>(arc_semi.size()),
                static_cast<long long>(arc_naive.size()),
                static_cast<long long>(dl_naive.size()),
                static_cast<long long>(dl_semi.size()),
                agree ? "yes" : "NO");
  }
  std::printf("\n");
}

/// Shared driver: transitive closure over a parent chain under one
/// recursion strategy, exporting EvalStats as benchmark counters.
void ArcChainBench(benchmark::State& state,
                   arc::eval::RecursionStrategy strategy) {
  arc::data::Database db = arc::data::ParentChain(state.range(0));
  arc::Program program = MustParse(kArc);
  arc::eval::EvalStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunArc(db, program, strategy, &stats));
  }
  state.counters["fixpoint_iterations"] =
      static_cast<double>(stats.fixpoint_iterations);
  state.counters["fixpoint_delta_tuples"] =
      static_cast<double>(stats.fixpoint_delta_tuples);
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.counters["dedup_hits"] = static_cast<double>(stats.dedup_hits);
  state.counters["scope_evaluations"] =
      static_cast<double>(stats.scope_evaluations);
  state.SetComplexityN(state.range(0));
}

void BM_ArcSemiNaiveChain(benchmark::State& state) {
  ArcChainBench(state, arc::eval::RecursionStrategy::kSemiNaive);
}
BENCHMARK(BM_ArcSemiNaiveChain)->Range(8, 64)->Complexity();

void BM_ArcNaiveChain(benchmark::State& state) {
  ArcChainBench(state, arc::eval::RecursionStrategy::kNaive);
}
BENCHMARK(BM_ArcNaiveChain)->Range(8, 64)->Complexity();

// Semi-naive alone scales further than the naive sweep's common range.
void BM_ArcSemiNaiveChainLarge(benchmark::State& state) {
  ArcChainBench(state, arc::eval::RecursionStrategy::kSemiNaive);
}
BENCHMARK(BM_ArcSemiNaiveChainLarge)->Range(128, 256);

void BM_DatalogNaiveChain(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentChain(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, false));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DatalogNaiveChain)->Range(8, 64)->Complexity();

void BM_DatalogSemiNaiveChain(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentChain(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, true));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DatalogSemiNaiveChain)->Range(8, 64)->Complexity();

void BM_DatalogSemiNaiveTree(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentTree(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, true));
  }
}
BENCHMARK(BM_DatalogSemiNaiveTree)->Range(16, 256);

void BM_DatalogNaiveTree(benchmark::State& state) {
  arc::data::Database db = arc::data::ParentTree(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunDatalog(db, false));
  }
}
BENCHMARK(BM_DatalogNaiveTree)->Range(16, 256);

}  // namespace

ARC_BENCH_MAIN(Shape)
