// E18 — §3.2 / Fig. 21, Eqs. (27)-(29): the count bug. Shape: on the
// paper's instance (R(9,0), S=∅) the original returns {9}, the classic
// decorrelation returns ∅, the left-join decorrelation returns {9}; on
// randomized instances with key R.id, original ≡ correct everywhere while
// the incorrect form loses exactly the empty-group ids.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kOriginal =
    "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
    "[r.id = s.id and r.q = count(s.d)]]}";
constexpr const char* kBuggy =
    "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, gamma(s.id) "
    "[X.id = s.id and X.ct = count(s.d)]} "
    "[Q.id = r.id and r.id = x.id and r.q = x.ct]}";
constexpr const char* kCorrect =
    "{Q(id) | exists r in R, x in {X(id, ct) | exists s in S, r2 in R, "
    "gamma(r2.id), left(r2, s) [X.id = r2.id and X.ct = count(s.d) and "
    "r2.id = s.id]} [Q.id = r.id and r.id = x.id and r.q = x.ct]}";

arc::data::Database RandomInstance(int64_t ids, uint64_t seed) {
  arc::data::Rng rng(seed);
  arc::data::Database db;
  arc::data::Relation r(arc::data::Schema{"id", "q"});
  arc::data::Relation s(arc::data::Schema{"id", "d"});
  for (int64_t id = 0; id < ids; ++id) {
    // Half the ids get zero deliveries: the count-bug trap.
    const int64_t deliveries = rng.NextDouble() < 0.5 ? 0 : 1 + rng.Below(4);
    const int64_t q = rng.NextDouble() < 0.5
                          ? deliveries           // satisfied count
                          : rng.Below(5);        // arbitrary demand
    r.Add({arc::data::Value::Int(id), arc::data::Value::Int(q)});
    for (int64_t d = 0; d < deliveries; ++d) {
      s.Add({arc::data::Value::Int(id), arc::data::Value::Int(rng.Below(99))});
    }
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  return db;
}

void Shape() {
  arc::bench::Header("E18", "§3.2 / Fig. 21, Eqs. (27)-(29): the count bug",
                     "paper instance: original {9}, incorrect ∅, correct "
                     "{9}; randomized: original ≡ correct, incorrect loses "
                     "empty-group ids");
  arc::Program original = MustParse(kOriginal);
  arc::Program buggy = MustParse(kBuggy);
  arc::Program correct = MustParse(kCorrect);
  {
    arc::data::Database db = arc::data::CountBugInstance();
    arc::data::Relation a = MustEvalArc(db, original, arc::Conventions::Sql());
    arc::data::Relation b = MustEvalArc(db, buggy, arc::Conventions::Sql());
    arc::data::Relation c = MustEvalArc(db, correct, arc::Conventions::Sql());
    std::printf("paper instance: original=%lld rows, incorrect=%lld rows, "
                "correct=%lld rows\n",
                static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                static_cast<long long>(c.size()));
  }
  std::printf("%8s %10s %12s %10s %14s %12s\n", "ids", "|orig|",
              "|incorrect|", "|correct|", "orig≡correct", "lost ids");
  for (int64_t ids : {10, 40, 100}) {
    arc::data::Database db = RandomInstance(ids, ids + 1);
    arc::data::Relation a = MustEvalArc(db, original, arc::Conventions::Sql());
    arc::data::Relation b = MustEvalArc(db, buggy, arc::Conventions::Sql());
    arc::data::Relation c = MustEvalArc(db, correct, arc::Conventions::Sql());
    std::printf("%8lld %10lld %12lld %10lld %14s %12lld\n",
                static_cast<long long>(ids), static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                static_cast<long long>(c.size()),
                a.EqualsBag(c) ? "yes" : "NO",
                static_cast<long long>(a.size() - b.size()));
  }
  std::printf("\n");
}

void BM_Original(benchmark::State& state) {
  arc::data::Database db = RandomInstance(state.range(0), 5);
  arc::Program program = MustParse(kOriginal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_Original)->Range(16, 256);

void BM_IncorrectDecorrelation(benchmark::State& state) {
  arc::data::Database db = RandomInstance(state.range(0), 5);
  arc::Program program = MustParse(kBuggy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_IncorrectDecorrelation)->Range(16, 256);

void BM_CorrectDecorrelation(benchmark::State& state) {
  arc::data::Database db = RandomInstance(state.range(0), 5);
  arc::Program program = MustParse(kCorrect);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_CorrectDecorrelation)->Range(16, 256);

}  // namespace

ARC_BENCH_MAIN(Shape)
