// E12 — Fig. 13: single-valued head aggregates. The scalar-subquery form
// and the lateral-join form agree on every instance (both preserve
// per-outer-tuple semantics); the LEFT JOIN + GROUP BY rewrite diverges
// exactly when R contains duplicate rows under bag semantics — the paper's
// counterexample. Row counts: lateral = |R|, left-join = |distinct R|.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

constexpr const char* kScalar =
    "select R.A, (select sum(S.B) from S where S.A < R.A) sm from R";
constexpr const char* kLateral =
    "select R.A, X.sm from R join lateral (select sum(S.B) sm from S "
    "where S.A < R.A) X on true";
constexpr const char* kLeftJoin =
    "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A";

arc::data::Database MakeDb(int64_t rows, double duplicate_fraction,
                           uint64_t seed) {
  arc::data::Database db;
  // R starts duplicate-free (sequential values): at dup-rate 0 all three
  // formulations must agree, per the paper.
  arc::data::Relation r(arc::data::Schema{"A"});
  for (int64_t i = 0; i < rows; ++i) r.Add({arc::data::Value::Int(i)});
  arc::data::Rng rng(seed + 1);
  const int64_t dups = static_cast<int64_t>(
      duplicate_fraction * static_cast<double>(rows));
  for (int64_t i = 0; i < dups; ++i) {
    r.Add(r.rows()[static_cast<size_t>(rng.Below(rows))]);
  }
  db.Put("R", std::move(r));
  arc::data::Relation s0 = arc::data::RandomBinary(rows, rows, 0.0, 0.0,
                                                   seed + 2);
  db.Put("S", arc::data::Relation(arc::data::Schema{"A", "B"}, s0.rows()));
  return db;
}

void Shape() {
  arc::bench::Header(
      "E12", "Fig. 13: scalar vs lateral vs LEFT JOIN + GROUP BY",
      "scalar ≡ lateral always; LEFT JOIN+GROUP BY collapses duplicate R "
      "rows (diverges iff dup-rate > 0)");
  std::printf("%10s %10s %10s %10s %14s %14s\n", "dup-rate", "|scalar|",
              "|lateral|", "|leftjoin|", "scalar≡lateral", "≡leftjoin");
  for (double dup : {0.0, 0.2, 0.5}) {
    arc::data::Database db = MakeDb(30, dup, 17);
    arc::sql::SqlEvaluator sql(db);
    auto scalar = sql.EvalQuery(kScalar);
    auto lateral = sql.EvalQuery(kLateral);
    auto left_join = sql.EvalQuery(kLeftJoin);
    if (!scalar.ok() || !lateral.ok() || !left_join.ok()) {
      std::fprintf(stderr, "query failed\n");
      std::exit(1);
    }
    const bool lj_equal = scalar->EqualsBag(*left_join);
    std::printf("%10.1f %10lld %10lld %10lld %14s %14s\n", dup,
                static_cast<long long>(scalar->size()),
                static_cast<long long>(lateral->size()),
                static_cast<long long>(left_join->size()),
                scalar->EqualsBag(*lateral) ? "yes" : "NO",
                lj_equal ? (dup == 0.0 ? "yes" : "yes (UNEXPECTED)")
                         : (dup > 0.0 ? "no (expected)" : "NO"));
  }
  std::printf("\n");
}

void BM_ScalarSubquery(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.2, 17);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kScalar);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ScalarSubquery)->Range(16, 256);

void BM_LateralJoin(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.2, 17);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kLateral);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LateralJoin)->Range(16, 256);

void BM_LeftJoinGroupBy(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.2, 17);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kLeftJoin);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LeftJoinGroupBy)->Range(16, 256);

}  // namespace

ARC_BENCH_MAIN(Shape)
