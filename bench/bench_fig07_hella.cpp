// E6 — Fig. 7 / Eqs. (9)-(10): the Hella et al. formalism gives each
// aggregate *its own scope*, re-joining R ⋈ S once per aggregate and once
// outside. Shape: same answers as the single-scope Eq. (8) pattern, at
// roughly the extra cost of the duplicated join work (the paper's "two
// logical copies of that relation" legacy, §2.5).
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kSingleScope =
    "{Q(dept, av) | exists x in {X(dept, av, sm) | "
    "exists r in R, s in S, gamma(r.dept) "
    "[X.dept = r.dept and X.av = avg(s.sal) and X.sm = sum(s.sal) and "
    "r.empl = s.empl]} "
    "[Q.dept = x.dept and Q.av = x.av and x.sm > 100]}";

// Eq. (10): pattern-preserving ARC form of the Hella et al. query — two
// correlated aggregation scopes plus the outer range restriction.
constexpr const char* kHella =
    "{Q(dept, av) | exists r3 in R, s3 in S, "
    "x in {X(av) | exists r1 in R, s1 in S, gamma(r1.dept) "
    "[r1.dept = r3.dept and r1.empl = s1.empl and X.av = avg(s1.sal)]}, "
    "y in {Y(sm) | exists r2 in R, s2 in S, gamma(r2.dept) "
    "[r2.dept = r3.dept and r2.empl = s2.empl and Y.sm = sum(s2.sal)]} "
    "[Q.dept = r3.dept and Q.av = x.av and r3.empl = s3.empl and "
    "y.sm > 100]}";

void Shape() {
  arc::bench::Header(
      "E6", "Fig. 7 / Eqs. (9)-(10): Hella et al. per-aggregate scopes",
      "same answers; separate scopes repeat the R⋈S work per aggregate and "
      "per outer tuple");
  arc::Program single = MustParse(kSingleScope);
  arc::Program hella = MustParse(kHella);
  std::printf("%8s %12s %12s %8s\n", "empls", "|1-scope|", "|Hella|",
              "agree");
  for (int64_t empls : {10, 30, 60}) {
    arc::data::Database db =
        arc::data::EmployeeInstance(empls, empls / 5 + 1, 10, 90, 3);
    arc::data::Relation a = MustEvalArc(db, single);
    arc::data::Relation b = MustEvalArc(db, hella);
    std::printf("%8lld %12lld %12lld %8s\n", static_cast<long long>(empls),
                static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                a.EqualsSet(b) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_SingleScope(benchmark::State& state) {
  arc::data::Database db = arc::data::EmployeeInstance(
      state.range(0), state.range(0) / 5 + 1, 10, 90, 3);
  arc::Program program = MustParse(kSingleScope);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleScope)->Range(8, 128)->Complexity();

void BM_HellaPattern(benchmark::State& state) {
  arc::data::Database db = arc::data::EmployeeInstance(
      state.range(0), state.range(0) / 5 + 1, 10, 90, 3);
  arc::Program program = MustParse(kHella);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HellaPattern)->Range(8, 128)->Complexity();

}  // namespace

ARC_BENCH_MAIN(Shape)
