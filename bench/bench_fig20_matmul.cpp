// E17 — §3.1 / Fig. 20, Eqs. (25)-(26): sparse matrix multiplication as a
// grouped-aggregate pattern, with inline arithmetic and with the reified
// "*" external relation. Shape: both agree with a dense triple loop; cost
// grows with n and density; reification adds a constant factor.
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kInline =
    "{C(row, col, val) | exists a in A, b in B, gamma(a.row, b.col) "
    "[C.row = a.row and C.col = b.col and a.col = b.row and "
    "C.val = sum(a.val * b.val)]}";
constexpr const char* kReified =
    "{C(row, col, val) | exists a in A, b in B, f in \"*\", "
    "gamma(a.row, b.col) [C.row = a.row and C.col = b.col and "
    "a.col = b.row and C.val = sum(f.out) and "
    "f.$1 = a.val and f.$2 = b.val]}";

arc::data::Database MakeDb(int64_t n, double density) {
  arc::data::Database db;
  db.Put("A", arc::data::SparseMatrix(n, density, 1));
  db.Put("B", arc::data::SparseMatrix(n, density, 2));
  return db;
}

bool MatchesDense(const arc::data::Database& db,
                  const arc::data::Relation& result, int64_t n) {
  std::vector<std::vector<int64_t>> a(
      static_cast<size_t>(n), std::vector<int64_t>(static_cast<size_t>(n), 0));
  std::vector<std::vector<int64_t>> b = a;
  std::vector<std::vector<int64_t>> c = a;
  for (const arc::data::Tuple& t : db.GetPtr("A")->rows()) {
    a[static_cast<size_t>(t.at(0).as_int())]
     [static_cast<size_t>(t.at(1).as_int())] = t.at(2).as_int();
  }
  for (const arc::data::Tuple& t : db.GetPtr("B")->rows()) {
    b[static_cast<size_t>(t.at(0).as_int())]
     [static_cast<size_t>(t.at(1).as_int())] = t.at(2).as_int();
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t k = 0; k < n; ++k) {
      for (int64_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
            a[static_cast<size_t>(i)][static_cast<size_t>(k)] *
            b[static_cast<size_t>(k)][static_cast<size_t>(j)];
      }
    }
  }
  for (const arc::data::Tuple& t : result.rows()) {
    if (c[static_cast<size_t>(t.at(0).as_int())]
         [static_cast<size_t>(t.at(1).as_int())] != t.at(2).as_int()) {
      return false;
    }
  }
  return true;
}

void Shape() {
  arc::bench::Header("E17",
                     "§3.1 / Fig. 20, Eqs. (25)-(26): matrix multiplication",
                     "relational matmul ≡ dense triple loop; reified \"*\" ≡ "
                     "inline arithmetic");
  arc::Program inline_p = MustParse(kInline);
  arc::Program reified_p = MustParse(kReified);
  std::printf("%6s %10s %12s %12s %10s %10s\n", "n", "density", "|C inline|",
              "|C reified|", "≡dense", "≡each");
  for (const auto& [n, density] : {std::pair<int64_t, double>{8, 0.4},
                                   {16, 0.25}, {24, 0.15}}) {
    arc::data::Database db = MakeDb(n, density);
    arc::data::Relation c1 = MustEvalArc(db, inline_p);
    arc::data::Relation c2 = MustEvalArc(db, reified_p);
    std::printf("%6lld %10.2f %12lld %12lld %10s %10s\n",
                static_cast<long long>(n), density,
                static_cast<long long>(c1.size()),
                static_cast<long long>(c2.size()),
                MatchesDense(db, c1, n) ? "yes" : "NO",
                c1.EqualsSet(c2) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_MatmulInline(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.2);
  arc::Program program = MustParse(kInline);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatmulInline)->Range(4, 32)->Complexity();

void BM_MatmulReified(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.2);
  arc::Program program = MustParse(kReified);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_MatmulReified)->Range(4, 32);

void BM_MatmulDensitySweep(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  arc::data::Database db = MakeDb(16, density);
  arc::Program program = MustParse(kInline);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_MatmulDensitySweep)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

}  // namespace

ARC_BENCH_MAIN(Shape)
