// E11 — Fig. 12 / Eq. (18): nested outer joins with a literal anchor,
// left(r, inner(11, s)). Shape: rows of R with h ≠ 11 are preserved and
// null-padded (not filtered) — ARC's join annotation matches the SQL
// `R LEFT JOIN (Eleven CROSS JOIN S) ON …` encoding for every match rate.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kArc =
    "{Q(m, n) | exists r in R, s in S, left(r, inner(11, s)) "
    "[Q.m = r.m and Q.n = s.n and r.y = s.y and r.h = 11]}";
constexpr const char* kSql =
    "select R.m, S.n from R left join (Eleven cross join S) "
    "on R.y = S.y and R.h = Eleven.v";

arc::data::Database MakeDb(int64_t rows, double eleven_fraction,
                           uint64_t seed) {
  arc::data::Rng rng(seed);
  arc::data::Database db;
  arc::data::Relation r(arc::data::Schema{"m", "y", "h"});
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t h = rng.NextDouble() < eleven_fraction ? 11 : 12;
    r.Add({arc::data::Value::Int(i), arc::data::Value::Int(rng.Below(rows)),
           arc::data::Value::Int(h)});
  }
  db.Put("R", std::move(r));
  arc::data::Relation s(arc::data::Schema{"n", "y"});
  for (int64_t i = 0; i < rows; ++i) {
    s.Add({arc::data::Value::Int(100 + i),
           arc::data::Value::Int(rng.Below(rows))});
  }
  db.Put("S", std::move(s));
  arc::data::Relation eleven(arc::data::Schema{"v"});
  eleven.Add({arc::data::Value::Int(11)});
  db.Put("Eleven", std::move(eleven));
  return db;
}

void Shape() {
  arc::bench::Header(
      "E11", "Fig. 12 / Eq. (18): nested outer join with literal anchor",
      "R rows with h≠11 survive null-padded; ARC annotation ≡ SQL nested "
      "join tree");
  arc::Program program = MustParse(kArc);
  std::printf("%10s %10s %10s %10s %8s\n", "match", "|R|", "|ARC|", "|SQL|",
              "agree");
  for (double frac : {0.0, 0.5, 1.0}) {
    arc::data::Database db = MakeDb(40, frac, 3);
    arc::data::Relation via_arc =
        MustEvalArc(db, program, arc::Conventions::Sql());
    arc::sql::SqlEvaluator sql(db);
    auto via_sql = sql.EvalQuery(kSql);
    std::printf("%10.1f %10d %10lld %10lld %8s\n", frac, 40,
                static_cast<long long>(via_arc.size()),
                static_cast<long long>(via_sql.ok() ? via_sql->size() : -1),
                via_sql.ok() && via_arc.EqualsBag(*via_sql) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ArcOuterJoinAnnotation(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.5, 3);
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_ArcOuterJoinAnnotation)->Range(16, 512);

void BM_SqlNestedJoinTree(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.5, 3);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kSql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlNestedJoinTree)->Range(16, 512);

}  // namespace

ARC_BENCH_MAIN(Shape)
