#!/usr/bin/env bash
# Configures + builds a Release benchmark tree, runs the per-figure
# benchmark binaries with google-benchmark's JSON reporter, and aggregates
# the results (per-benchmark timings plus any EvalStats counters the
# binaries export) into BENCH_eval.json at the repo root. The aggregate is
# stamped with `library_build_type` (read back from the CMake cache), the
# current git SHA, and the evaluator binding mode, so a committed
# BENCH_eval.json is self-describing: debug-build or mixed-mode numbers
# can't masquerade as a Release baseline.
#
#   bench/run_benchmarks.sh [build-dir] [filter-regex]
#
# build-dir defaults to ./build-release and is configured with
# -DCMAKE_BUILD_TYPE=Release -DARC_BUILD_BENCHMARKS=ON; filter-regex
# (passed to --benchmark_filter) defaults to everything. Individual raw
# JSON reports land in <build-dir>/bench_results/.
#
# Environment:
#   ARC_BINDING_MODE   slot (default) | string — evaluator path used by
#                      the binaries (see bench_util.h).
#   ARC_BENCH_OUT      aggregate target (default <repo>/BENCH_eval.json);
#                      point it elsewhere to capture a comparison baseline
#                      for scripts/compare_bench.py.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"
filter="${2:-.}"
out_dir="$build_dir/bench_results"
target="${ARC_BENCH_OUT:-$repo_root/BENCH_eval.json}"
binding_mode="${ARC_BINDING_MODE:-slot}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=Release -DARC_BUILD_BENCHMARKS=ON >/dev/null
cmake --build "$build_dir" -j "$jobs"

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [ "$build_type" != "Release" ]; then
  echo "error: $build_dir is a '$build_type' tree, refusing to publish non-Release numbers" >&2
  exit 1
fi
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"

mkdir -p "$out_dir"
rm -f "$out_dir"/bench_*.json

if [ ! -d "$build_dir/bench" ]; then
  echo "error: no bench binaries under $build_dir (build with ARC_BUILD_BENCHMARKS=ON)" >&2
  exit 1
fi

for bin in "$build_dir"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name =="
  # The shape table goes to stdout; timings go to the JSON report. A
  # binary whose benchmarks are all filtered out exits non-zero — skip it.
  ARC_BINDING_MODE="$binding_mode" \
  "$bin" --benchmark_filter="$filter" \
         --benchmark_out="$out_dir/$name.json" \
         --benchmark_out_format=json ||
      echo "   (no benchmarks matched in $name)"
done

python3 - "$out_dir" "$target" "$build_type" "$git_sha" "$binding_mode" <<'EOF'
import json, pathlib, sys

out_dir, target = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
aggregate = {
    "library_build_type": sys.argv[3],
    "git_sha": sys.argv[4],
    "binding_mode": sys.argv[5],
    "context": None,
    "figures": {},
}
for report in sorted(out_dir.glob("bench_*.json")):
    try:
        data = json.loads(report.read_text())
    except json.JSONDecodeError:
        # A binary whose benchmarks were all filtered out leaves an empty
        # report behind.
        continue
    if aggregate["context"] is None:
        aggregate["context"] = data.get("context", {})
    entries = []
    for b in data.get("benchmarks", []):
        entry = {
            "name": b["name"],
            "real_time_ns": b.get("real_time"),
            "cpu_time_ns": b.get("cpu_time"),
            "iterations": b.get("iterations"),
        }
        # EvalStats counters exported via state.counters ride along as
        # extra top-level numeric fields in google-benchmark's JSON.
        standard = {
            "name", "family_index", "per_family_instance_index", "run_name",
            "run_type", "repetitions", "repetition_index", "threads",
            "iterations", "real_time", "cpu_time", "time_unit",
            "aggregate_name", "aggregate_unit", "big_o", "rms",
        }
        counters = {k: v for k, v in b.items()
                    if k not in standard and isinstance(v, (int, float))}
        if counters:
            entry["counters"] = counters
        entries.append(entry)
    aggregate["figures"][report.stem] = entries
target.write_text(json.dumps(aggregate, indent=2) + "\n")
print(f"wrote {target} ({len(aggregate['figures'])} benchmark binaries)")
EOF
