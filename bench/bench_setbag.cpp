// E14 — §2.7: set vs bag as an interpretation switch. The nested and
// unnested formulations coincide under set semantics and diverge under bag
// semantics exactly when S has duplicate B-values (nested = semijoin-like
// "once per r"; unnested = once per pair). Deduplication is grouping, not
// a dedicated operator.
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kNested =
    "{Q(A) | exists r in R [exists s in S [Q.A = r.A and r.B = s.B]]}";
constexpr const char* kUnnested =
    "{Q(A) | exists r in R, s in S [Q.A = r.A and r.B = s.B]}";
constexpr const char* kDedupViaGamma =
    "{Q(A, B) | exists r in R, gamma(r.A, r.B) [Q.A = r.A and Q.B = r.B]}";

arc::data::Database MakeDb(int64_t rows, double dup_fraction, uint64_t seed) {
  arc::data::Database db;
  db.Put("R", arc::data::RandomBinary(rows, rows / 2 + 1, 0.0, 0.0, seed));
  arc::data::Relation s0 = arc::data::RandomBinary(
      rows, rows / 2 + 1, dup_fraction, 0.0, seed + 5);
  db.Put("S", arc::data::Relation(arc::data::Schema{"B", "C"}, s0.rows()));
  return db;
}

void Shape() {
  arc::bench::Header(
      "E14", "§2.7: nesting/unnesting under set vs bag conventions",
      "set: nested ≡ unnested; bag: they diverge once S has duplicate "
      "B-values");
  arc::Program nested = MustParse(kNested);
  arc::Program unnested = MustParse(kUnnested);
  std::printf("%10s %12s %12s %12s %12s\n", "dup-rate", "set nested",
              "set unnested", "bag nested", "bag unnested");
  for (double dup : {0.0, 0.3, 0.6}) {
    arc::data::Database db = MakeDb(40, dup, 21);
    arc::data::Relation sn = MustEvalArc(db, nested, arc::Conventions::Arc());
    arc::data::Relation su =
        MustEvalArc(db, unnested, arc::Conventions::Arc());
    arc::data::Relation bn =
        MustEvalArc(db, nested, arc::Conventions::Sql());
    arc::data::Relation bu =
        MustEvalArc(db, unnested, arc::Conventions::Sql());
    std::printf("%10.1f %12lld %12lld %12lld %12lld   set≡:%s bag≡:%s\n",
                dup, static_cast<long long>(sn.size()),
                static_cast<long long>(su.size()),
                static_cast<long long>(bn.size()),
                static_cast<long long>(bu.size()),
                sn.EqualsBag(su) ? "yes" : "NO",
                bn.EqualsBag(bu) ? "yes" : "no (expected when dups)");
  }
  // Deduplication via γ (§2.7): grouping on all projected attributes.
  arc::data::Database db = MakeDb(40, 0.4, 21);
  arc::Program dedup = MustParse(kDedupViaGamma);
  arc::data::Relation deduped =
      MustEvalArc(db, dedup, arc::Conventions::Sql());
  std::printf("dedup-via-γ: |R|=%lld → %lld distinct (= %lld)\n\n",
              static_cast<long long>(db.GetPtr("R")->size()),
              static_cast<long long>(deduped.size()),
              static_cast<long long>(db.GetPtr("R")->Distinct().size()));
}

void BM_SetSemantics(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.3, 21);
  arc::Program program = MustParse(kUnnested);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program, arc::Conventions::Arc()));
  }
}
BENCHMARK(BM_SetSemantics)->Range(16, 512);

void BM_BagSemantics(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.3, 21);
  arc::Program program = MustParse(kUnnested);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_BagSemantics)->Range(16, 512);

void BM_DedupViaGrouping(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 0.4, 21);
  arc::Program program = MustParse(kDedupViaGamma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_DedupViaGrouping)->Range(16, 512);

}  // namespace

ARC_BENCH_MAIN(Shape)
