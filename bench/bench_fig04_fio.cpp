// E3 — Fig. 4 / Eq. (3): the simple grouped aggregate in the FIO pattern,
// against the direct SQL evaluator (Fig. 4a), sweeping the number of
// groups. Shape: identical results; cost linear in |R| for both engines,
// insensitive to the group count.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kArc =
    "{Q(A, sm) | exists r in R, gamma(r.A) "
    "[Q.A = r.A and Q.sm = sum(r.B)]}";
constexpr const char* kSql =
    "select R.A, sum(R.B) sm from R group by R.A";

arc::data::Database MakeDb(int64_t rows, int64_t groups, uint64_t seed) {
  arc::data::Rng rng(seed);
  arc::data::Relation r(arc::data::Schema{"A", "B"});
  for (int64_t i = 0; i < rows; ++i) {
    r.Add({arc::data::Value::Int(rng.Below(groups)),
           arc::data::Value::Int(rng.Below(100))});
  }
  arc::data::Database db;
  db.Put("R", std::move(r));
  return db;
}

void Shape() {
  arc::bench::Header("E3", "Fig. 4 / Eq. (3): grouped aggregate (FIO)",
                     "ARC γ scope ≡ SQL GROUP BY across group counts");
  arc::Program program = MustParse(kArc);
  std::printf("%8s %8s %10s %10s %8s\n", "rows", "groups", "|ARC|", "|SQL|",
              "agree");
  for (int64_t groups : {2, 16, 128}) {
    arc::data::Database db = MakeDb(256, groups, 31);
    arc::data::Relation via_arc =
        MustEvalArc(db, program, arc::Conventions::Sql());
    arc::sql::SqlEvaluator sql(db);
    auto via_sql = sql.EvalQuery(kSql);
    std::printf("%8d %8lld %10lld %10lld %8s\n", 256,
                static_cast<long long>(groups),
                static_cast<long long>(via_arc.size()),
                static_cast<long long>(via_sql.ok() ? via_sql->size() : -1),
                via_sql.ok() && via_arc.EqualsBag(*via_sql) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ArcGroupedAggregate(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), state.range(0) / 8 + 1, 31);
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ArcGroupedAggregate)->Range(64, 4096)->Complexity();

void BM_SqlGroupBy(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), state.range(0) / 8 + 1, 31);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kSql);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SqlGroupBy)->Range(64, 4096)->Complexity();

void BM_GroupCountSweep(benchmark::State& state) {
  arc::data::Database db = MakeDb(1024, state.range(0), 31);
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_GroupCountSweep)->Arg(2)->Arg(32)->Arg(512);

}  // namespace

ARC_BENCH_MAIN(Shape)
