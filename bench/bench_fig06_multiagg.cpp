// E5 — Fig. 6 / Eq. (8): multiple aggregates evaluated in parallel within
// a *single* grouping scope (ARC/SQL), the paper's running example
// "average salary for each department paying total salary at least 100".
// Shape: one shared scope computes avg and sum in one pass over the join.
#include "bench/bench_util.h"
#include "data/generators.h"
#include "sql/eval.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kArc =
    "{Q(dept, av) | exists x in {X(dept, av, sm) | "
    "exists r in R, s in S, gamma(r.dept) "
    "[X.dept = r.dept and X.av = avg(s.sal) and X.sm = sum(s.sal) and "
    "r.empl = s.empl]} "
    "[Q.dept = x.dept and Q.av = x.av and x.sm > 100]}";
constexpr const char* kSql =
    "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
    "group by R.dept having sum(S.sal) > 100";

void Shape() {
  arc::bench::Header("E5", "Fig. 6 / Eq. (8): multiple aggregates + HAVING",
                     "ARC single-scope pattern ≡ SQL GROUP BY/HAVING");
  arc::Program program = MustParse(kArc);
  std::printf("%8s %8s %10s %10s %8s\n", "empls", "depts", "|ARC out|",
              "|SQL out|", "agree");
  for (int64_t empls : {20, 100, 300}) {
    arc::data::Database db =
        arc::data::EmployeeInstance(empls, empls / 10 + 1, 10, 90, 3);
    arc::data::Relation via_arc =
        MustEvalArc(db, program, arc::Conventions::Sql());
    arc::sql::SqlEvaluator sql(db);
    auto via_sql = sql.EvalQuery(kSql);
    std::printf("%8lld %8lld %10lld %10lld %8s\n",
                static_cast<long long>(empls),
                static_cast<long long>(empls / 10 + 1),
                static_cast<long long>(via_arc.size()),
                static_cast<long long>(via_sql.ok() ? via_sql->size() : -1),
                via_sql.ok() && via_arc.EqualsBag(*via_sql) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ArcSingleScope(benchmark::State& state) {
  arc::data::Database db = arc::data::EmployeeInstance(
      state.range(0), state.range(0) / 10 + 1, 10, 90, 3);
  arc::Program program = MustParse(kArc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_ArcSingleScope)->Range(32, 512);

void BM_DirectSql(benchmark::State& state) {
  arc::data::Database db = arc::data::EmployeeInstance(
      state.range(0), state.range(0) / 10 + 1, 10, 90, 3);
  arc::sql::SqlEvaluator sql(db);
  for (auto _ : state) {
    auto r = sql.EvalQuery(kSql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DirectSql)->Range(32, 512);

}  // namespace

ARC_BENCH_MAIN(Shape)
