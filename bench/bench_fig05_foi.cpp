// E4 — Fig. 5 / Eqs. (3)-(7): the same grouped aggregate in the FIO
// pattern (grouping at the consuming scope, one pass over the join) versus
// the FOI pattern (a correlated per-outer-tuple aggregation scope, as in
// Klug, Hella et al., and Soufflé). Shape: FIO is a single pass; FOI
// re-evaluates the aggregation scope once per outer tuple, so its cost
// grows quadratically and the gap widens with |R|. Both agree as sets.
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kFio =
    "{Q(A, sm) | exists r in R, gamma(r.A) "
    "[Q.A = r.A and Q.sm = sum(r.B)]}";
constexpr const char* kFoi =
    "{Q(A, sm) | exists r in R, x in {X(sm) | exists r2 in R, gamma() "
    "[r2.A = r.A and X.sm = sum(r2.B)]} [Q.A = r.A and Q.sm = x.sm]}";

arc::data::Database MakeDb(int64_t rows, uint64_t seed) {
  arc::data::Database db;
  db.Put("R", arc::data::RandomBinary(rows, rows / 4 + 1, 0.0, 0.0, seed));
  return db;
}

void Shape() {
  arc::bench::Header(
      "E4", "Fig. 5 / Eqs. (3)-(7): FIO vs FOI aggregation patterns",
      "same results; FOI pays a per-outer-tuple re-evaluation (superlinear "
      "gap)");
  arc::Program fio = MustParse(kFio);
  arc::Program foi = MustParse(kFoi);
  std::printf("%8s %8s %8s %8s\n", "rows", "|FIO|", "|FOI|", "agree");
  for (int64_t rows : {20, 80, 200}) {
    arc::data::Database db = MakeDb(rows, 7);
    arc::data::Relation a = MustEvalArc(db, fio);
    arc::data::Relation b = MustEvalArc(db, foi);
    std::printf("%8lld %8lld %8lld %8s\n", static_cast<long long>(rows),
                static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                a.EqualsSet(b) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_Fio(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 7);
  arc::Program program = MustParse(kFio);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fio)->Range(16, 512)->Complexity();

void BM_Foi(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 7);
  arc::Program program = MustParse(kFoi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Foi)->Range(16, 512)->Complexity();

}  // namespace

ARC_BENCH_MAIN(Shape)
