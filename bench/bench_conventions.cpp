// E13 — §2.6 / Eq. (15): conventions are a switch, not a language. The
// identical ARC pattern evaluated under Soufflé conventions (sum ∅ = 0)
// and SQL conventions (sum ∅ = NULL) on the paper's instance and on
// sweeps. Shape: results differ exactly on the empty-aggregation-scope
// rows; timing is convention-independent.
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kEq15 =
    "{Q(ak, sm) | exists r in R, x in {X(sm) | exists s in S, gamma() "
    "[s.a < r.ak and X.sm = sum(s.b)]} "
    "[Q.ak = r.ak and Q.sm = x.sm]}";

arc::data::Database MakeDb(int64_t rows, uint64_t seed) {
  arc::data::Database db;
  arc::data::Relation r0 = arc::data::RandomBinary(rows, rows, 0.0, 0.0, seed);
  db.Put("R", arc::data::Relation(arc::data::Schema{"ak", "b"}, r0.rows()));
  arc::data::Relation s0 =
      arc::data::RandomBinary(rows, rows, 0.0, 0.0, seed + 3);
  db.Put("S", arc::data::Relation(arc::data::Schema{"a", "b"}, s0.rows()));
  return db;
}

int64_t CountNullSums(const arc::data::Relation& rel) {
  int64_t n = 0;
  for (const arc::data::Tuple& t : rel.rows()) {
    if (t.at(1).is_null()) ++n;
  }
  return n;
}

int64_t CountZeroSums(const arc::data::Relation& rel) {
  int64_t n = 0;
  for (const arc::data::Tuple& t : rel.rows()) {
    if (!t.at(1).is_null() && t.at(1).as_int() == 0) ++n;
  }
  return n;
}

void Shape() {
  arc::bench::Header(
      "E13", "§2.6 / Eq. (15): the Soufflé-vs-SQL convention divergence",
      "paper instance R={(1,2)}, S=∅: Soufflé derives Q(1,0), SQL returns "
      "(1, NULL) — one pattern, two conventions");
  arc::Program program = MustParse(kEq15);
  {
    arc::data::Database db = arc::data::ConventionInstance();
    arc::data::Relation souffle =
        MustEvalArc(db, program, arc::Conventions::Souffle());
    arc::data::Relation sql =
        MustEvalArc(db, program, arc::Conventions::Sql());
    std::printf("paper instance — Soufflé conventions: %s",
                souffle.ToString().c_str());
    std::printf("paper instance — SQL conventions:     %s\n",
                sql.ToString().c_str());
  }
  std::printf("%8s %16s %16s\n", "rows", "zero-sums(Souf.)", "null-sums(SQL)");
  for (int64_t rows : {20, 80, 200}) {
    arc::data::Database db = MakeDb(rows, 9);
    arc::data::Relation souffle =
        MustEvalArc(db, program, arc::Conventions::Souffle());
    arc::data::Relation sql =
        MustEvalArc(db, program, arc::Conventions::Sql());
    std::printf("%8lld %16lld %16lld\n", static_cast<long long>(rows),
                static_cast<long long>(CountZeroSums(souffle)),
                static_cast<long long>(CountNullSums(sql)));
  }
  std::printf("\n");
}

void BM_SouffleConventions(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 9);
  arc::Program program = MustParse(kEq15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Souffle()));
  }
}
BENCHMARK(BM_SouffleConventions)->Range(16, 256);

void BM_SqlConventions(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 9);
  arc::Program program = MustParse(kEq15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
}
BENCHMARK(BM_SqlConventions)->Range(16, 256);

}  // namespace

ARC_BENCH_MAIN(Shape)
