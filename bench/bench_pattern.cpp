// E19 — §1/§4: intent vs syntax. Over a corpus of SQL pairs labeled
// same-intent / different-intent, compare (a) surface string similarity
// (normalized LCS over SQL text) against (b) ARC pattern equality and
// pattern similarity. Shape: pattern equality separates the classes
// perfectly on this corpus, while string similarity misorders them — the
// motivation for "intent-based benchmarking frameworks" [22].
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "pattern/pattern.h"
#include "sql/eval.h"
#include "translate/sql_to_arc.h"

namespace {

struct Pair {
  const char* name;
  const char* sql_a;
  const char* sql_b;
  bool same_intent;
};

constexpr const char* kSetup =
    "create table R (A int, B int);"
    "create table S (A int, B int);";

const Pair kPairs[] = {
    {"scalar-vs-lateral (Fig. 5)",
     "select distinct R.A, (select sum(R2.B) from R R2 where R2.A = R.A) sm "
     "from R",
     "select distinct R.A, X.sm from R join lateral "
     "(select sum(R2.B) sm from R R2 where R2.A = R.A) X on true",
     true},
    {"alias renaming",
     "select R.A from R, S where R.B = S.B",
     "select t1.A from R t1, S t2 where t1.B = t2.B",
     true},
    {"predicate order",
     "select R.A from R where R.A > 1 and R.B < 5",
     "select R.A from R where R.B < 5 and R.A > 1",
     true},
    {"not-in vs null-safe not-exists (Eq. 17)",
     "select R.A from R where R.A not in (select S.A from S)",
     "select R.A from R where not exists (select 1 from S "
     "where S.A = R.A or S.A is null or R.A is null)",
     true},
    {"not-in vs plain not-exists (the NULL trap)",
     "select R.A from R where R.A not in (select S.A from S)",
     "select R.A from R where not exists (select 1 from S where S.A = R.A)",
     false},
    {"count-bug pair (Fig. 21a vs 21b)",
     "select R.A from R where R.B = (select count(S.B) from S "
     "where S.A = R.A)",
     "select R.A from R, (select S.A, count(S.B) ct from S group by S.A) X "
     "where R.A = X.A and R.B = X.ct",
     false},
    {"exists vs join",
     "select distinct R.A from R where exists (select 1 from S "
     "where S.B = R.B)",
     "select distinct R.A from R, S where S.B = R.B",
     false},
};

double StringSimilarity(const std::string& a, const std::string& b) {
  // Character-level LCS ratio.
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1, 0);
  std::vector<size_t> cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return 2.0 * static_cast<double>(prev[m]) / static_cast<double>(n + m);
}

arc::translate::SqlToArcOptions Topts(const arc::data::Database* db) {
  arc::translate::SqlToArcOptions opts;
  opts.database = db;
  return opts;
}

void Shape() {
  arc::bench::Header(
      "E19", "§1/§4: intent-based vs string-based query comparison",
      "pattern equality separates same-intent from different-intent pairs; "
      "string similarity does not");
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  if (!db.ok()) std::exit(1);
  std::printf("%-42s %8s %10s %12s %10s\n", "pair", "intent", "string-sim",
              "pattern-eq", "pat-sim");
  int correct = 0;
  int string_correct = 0;
  for (const Pair& p : kPairs) {
    auto a = arc::translate::SqlToArc(p.sql_a, Topts(&*db));
    auto b = arc::translate::SqlToArc(p.sql_b, Topts(&*db));
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "translation failed for %s\n", p.name);
      std::exit(1);
    }
    const bool eq = arc::pattern::PatternEquals(*a, *b);
    const double psim = arc::pattern::Similarity(*a, *b);
    const double ssim = StringSimilarity(p.sql_a, p.sql_b);
    if (eq == p.same_intent) ++correct;
    if ((ssim > 0.8) == p.same_intent) ++string_correct;
    std::printf("%-42s %8s %10.3f %12s %10.3f\n", p.name,
                p.same_intent ? "same" : "diff", ssim, eq ? "EQUAL" : "differ",
                psim);
  }
  std::printf("pattern-equality accuracy: %d/%d;  "
              "string-similarity(>0.8) accuracy: %d/%d\n\n",
              correct, static_cast<int>(std::size(kPairs)), string_correct,
              static_cast<int>(std::size(kPairs)));
}

void BM_Canonicalize(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  auto program = arc::translate::SqlToArc(kPairs[0].sql_a, Topts(&*db));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arc::pattern::Canonicalize(*program));
  }
}
BENCHMARK(BM_Canonicalize);

void BM_Fingerprint(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  auto program = arc::translate::SqlToArc(kPairs[0].sql_a, Topts(&*db));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arc::pattern::Fingerprint(*program));
  }
}
BENCHMARK(BM_Fingerprint);

void BM_Similarity(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  auto a = arc::translate::SqlToArc(kPairs[5].sql_a, Topts(&*db));
  auto b = arc::translate::SqlToArc(kPairs[5].sql_b, Topts(&*db));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arc::pattern::Similarity(*a, *b));
  }
}
BENCHMARK(BM_Similarity);

void BM_FeatureExtraction(benchmark::State& state) {
  auto db = arc::sql::ExecuteSetupScript(kSetup);
  auto program = arc::translate::SqlToArc(kPairs[5].sql_b, Topts(&*db));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arc::pattern::ExtractFeatures(*program));
  }
}
BENCHMARK(BM_FeatureExtraction);

}  // namespace

ARC_BENCH_MAIN(Shape)
