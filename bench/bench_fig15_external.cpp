// E15 — Figs. 14-15 / Eqs. (19)-(21): external relations. The same query
// with (a) inline arithmetic, (b) the reified Minus relation, (c) fully
// reified Minus + Bigger. Shape: identical results; reification costs a
// constant factor per evaluated predicate (access-pattern dispatch), not a
// change in asymptotics.
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kInline =
    "{Q(A) | exists r in R, s in S, t in T "
    "[Q.A = r.A and r.B - s.B > t.B]}";
constexpr const char* kReifiedMinus =
    "{Q(A) | exists r in R, s in S, t in T, f in Minus "
    "[Q.A = r.A and f.left = r.B and f.right = s.B and f.out > t.B]}";
constexpr const char* kFullyReified =
    "{Q(A) | exists r in R, s in S, t in T, f in Minus, g in Bigger "
    "[Q.A = r.A and f.left = r.B and f.right = s.B and "
    "f.out = g.left and g.right = t.B]}";

arc::data::Database MakeDb(int64_t rows, uint64_t seed) {
  arc::data::Database db;
  db.Put("R", arc::data::RandomBinary(rows, 100, 0.0, 0.0, seed));
  arc::data::Relation s0 = arc::data::RandomUnary(rows / 2 + 1, 50, 0.0,
                                                  seed + 1);
  db.Put("S", arc::data::Relation(arc::data::Schema{"B"}, s0.rows()));
  arc::data::Relation t0 = arc::data::RandomUnary(rows / 2 + 1, 50, 0.0,
                                                  seed + 2);
  db.Put("T", arc::data::Relation(arc::data::Schema{"B"}, t0.rows()));
  return db;
}

void Shape() {
  arc::bench::Header(
      "E15", "Figs. 14-15 / Eqs. (19)-(21): external relations",
      "inline ≡ reified Minus ≡ fully reified Minus+Bigger on every "
      "instance");
  arc::Program inline_p = MustParse(kInline);
  arc::Program minus_p = MustParse(kReifiedMinus);
  arc::Program full_p = MustParse(kFullyReified);
  std::printf("%8s %10s %10s %10s %8s\n", "rows", "|inline|", "|Minus|",
              "|full|", "agree");
  for (int64_t rows : {10, 30, 60}) {
    arc::data::Database db = MakeDb(rows, 13);
    arc::data::Relation a = MustEvalArc(db, inline_p);
    arc::data::Relation b = MustEvalArc(db, minus_p);
    arc::data::Relation c = MustEvalArc(db, full_p);
    std::printf("%8lld %10lld %10lld %10lld %8s\n",
                static_cast<long long>(rows), static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                static_cast<long long>(c.size()),
                a.EqualsSet(b) && b.EqualsSet(c) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_InlineArithmetic(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 13);
  arc::Program program = MustParse(kInline);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_InlineArithmetic)->Range(8, 128);

void BM_ReifiedMinus(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 13);
  arc::Program program = MustParse(kReifiedMinus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_ReifiedMinus)->Range(8, 128);

void BM_FullyReified(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 13);
  arc::Program program = MustParse(kFullyReified);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_FullyReified)->Range(8, 128);

}  // namespace

ARC_BENCH_MAIN(Shape)
