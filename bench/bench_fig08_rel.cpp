// E7 — Fig. 8 / Eqs. (11)-(12): the Rel pattern — FIO grouping (grouped
// attributes are returned), but still one aggregation scope *per
// aggregate* over the same relation. Shape: same answers as the
// single-scope pattern; the duplicated join work lies between the
// single-scope pattern and the fully-correlated Hella pattern.
#include "bench/bench_util.h"
#include "data/generators.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kSingleScope =
    "{Q(dept, av) | exists x in {X(dept, av, sm) | "
    "exists r in R, s in S, gamma(r.dept) "
    "[X.dept = r.dept and X.av = avg(s.sal) and X.sm = sum(s.sal) and "
    "r.empl = s.empl]} "
    "[Q.dept = x.dept and Q.av = x.av and x.sm > 100]}";

// Eq. (12): two uncorrelated per-aggregate collections joined on dept.
constexpr const char* kRel =
    "{Q(dept, av) | exists x in {X(dept, av) | "
    "exists r1 in R, s1 in S, gamma(r1.dept) "
    "[X.dept = r1.dept and r1.empl = s1.empl and X.av = avg(s1.sal)]}, "
    "y in {Y(dept, sm) | exists r2 in R, s2 in S, gamma(r2.dept) "
    "[Y.dept = r2.dept and r2.empl = s2.empl and Y.sm = sum(s2.sal)]} "
    "[Q.dept = x.dept and Q.av = x.av and x.dept = y.dept and y.sm > 100]}";

void Shape() {
  arc::bench::Header(
      "E7", "Fig. 8 / Eqs. (11)-(12): the Rel pattern",
      "same answers; ~2× join work (one scope per aggregate), but no "
      "per-outer-tuple correlation");
  arc::Program single = MustParse(kSingleScope);
  arc::Program rel = MustParse(kRel);
  std::printf("%8s %12s %12s %8s\n", "empls", "|1-scope|", "|Rel|", "agree");
  for (int64_t empls : {20, 100, 300}) {
    arc::data::Database db =
        arc::data::EmployeeInstance(empls, empls / 10 + 1, 10, 90, 3);
    arc::data::Relation a = MustEvalArc(db, single);
    arc::data::Relation b = MustEvalArc(db, rel);
    std::printf("%8lld %12lld %12lld %8s\n", static_cast<long long>(empls),
                static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                a.EqualsSet(b) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_SingleScope(benchmark::State& state) {
  arc::data::Database db = arc::data::EmployeeInstance(
      state.range(0), state.range(0) / 10 + 1, 10, 90, 3);
  arc::Program program = MustParse(kSingleScope);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_SingleScope)->Range(32, 512);

void BM_RelPattern(benchmark::State& state) {
  arc::data::Database db = arc::data::EmployeeInstance(
      state.range(0), state.range(0) / 10 + 1, 10, 90, 3);
  arc::Program program = MustParse(kRel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEvalArc(db, program));
  }
}
BENCHMARK(BM_RelPattern)->Range(32, 512);

}  // namespace

ARC_BENCH_MAIN(Shape)
