// Ablation — the pattern rewriter (src/rewrite) on the count-bug shape:
// the correlated γ∅ aggregation scope (Eq. 27) re-evaluates its scope per
// outer tuple; DecorrelateAggregation turns it into the Eq. 29 left-join
// form whose nested collection is *closed* and therefore evaluated once
// (the evaluator caches closed nested collections — without the cache the
// rewritten form would be cubic). Shape: identical results on every
// instance; in this nested-loop evaluator both forms remain quadratic
// (the rewrite is about *correctness-preserving* decorrelation — contrast
// the classic Eq. 28 rewrite, which drops rows — not about asymptotics,
// which would need hash joins).
#include "bench/bench_util.h"
#include "data/generators.h"
#include "rewrite/rewriter.h"

namespace {

using arc::bench::MustEvalArc;
using arc::bench::MustParse;

constexpr const char* kCorrelated =
    "{Q(id) | exists r in R [Q.id = r.id and exists s in S, gamma() "
    "[r.id = s.id and r.q <= sum(s.d)]]}";

arc::data::Database MakeDb(int64_t ids, uint64_t seed) {
  arc::data::Rng rng(seed);
  arc::data::Database db;
  arc::data::Relation r(arc::data::Schema{"id", "q"});
  arc::data::Relation s(arc::data::Schema{"id", "d"});
  for (int64_t id = 0; id < ids; ++id) {
    r.Add({arc::data::Value::Int(id), arc::data::Value::Int(rng.Below(8))});
    const int64_t n = rng.Below(3);
    for (int64_t i = 0; i < n; ++i) {
      s.Add({arc::data::Value::Int(id), arc::data::Value::Int(rng.Below(6))});
    }
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  return db;
}

void Shape() {
  arc::bench::Header(
      "Ablation", "src/rewrite: Eq. 27 → Eq. 29 decorrelation",
      "identical results; the nested collection is closed and cached "
      "(evaluated once), unlike the per-outer-tuple original");
  arc::Program original = MustParse(kCorrelated);
  arc::rewrite::RewriteResult rewritten =
      arc::rewrite::DecorrelateAggregation(original);
  std::printf("sites rewritten: %d\n", rewritten.applications);
  std::printf("%8s %12s %14s %8s\n", "ids", "|original|", "|decorrelated|",
              "agree");
  for (int64_t ids : {20, 80, 200}) {
    arc::data::Database db = MakeDb(ids, 7);
    arc::data::Relation a =
        MustEvalArc(db, original, arc::Conventions::Sql());
    arc::data::Relation b =
        MustEvalArc(db, rewritten.program, arc::Conventions::Sql());
    std::printf("%8lld %12lld %14lld %8s\n", static_cast<long long>(ids),
                static_cast<long long>(a.size()),
                static_cast<long long>(b.size()),
                a.EqualsBag(b) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_CorrelatedOriginal(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 7);
  arc::Program program = MustParse(kCorrelated);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, program, arc::Conventions::Sql()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CorrelatedOriginal)->Range(16, 512)->Complexity();

void BM_Decorrelated(benchmark::State& state) {
  arc::data::Database db = MakeDb(state.range(0), 7);
  arc::Program program = MustParse(kCorrelated);
  arc::rewrite::RewriteResult rewritten =
      arc::rewrite::DecorrelateAggregation(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MustEvalArc(db, rewritten.program, arc::Conventions::Sql()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Decorrelated)->Range(16, 512)->Complexity();

void BM_RewriteItself(benchmark::State& state) {
  arc::Program program = MustParse(kCorrelated);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arc::rewrite::DecorrelateAggregation(program));
  }
}
BENCHMARK(BM_RewriteItself);

void BM_UnnestRewrite(benchmark::State& state) {
  arc::Program program = MustParse(
      "{Q(A) | exists r in R [exists s in S [Q.A = r.id and r.q = s.id]]}");
  for (auto _ : state) {
    auto r = arc::rewrite::UnnestExistentialScopes(program,
                                                   arc::Conventions::Arc());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_UnnestRewrite);

}  // namespace

ARC_BENCH_MAIN(Shape)
