// ArcLint throughput: how much static analysis costs per query, and how
// the differential validation harness scales with instance size. Shape:
// linting is micro-seconds per program (cheap enough to run on every
// translated query); differential confirmation is the expensive step and
// is reserved for tests.
#include "arc/lint.h"
#include "arc/random_query.h"
#include "bench/bench_util.h"
#include "data/generators.h"
#include "translate/differential.h"

namespace {

using arc::Lint;
using arc::LintOptions;
using arc::LintResult;
using arc::Program;
using arc::bench::MustParse;

constexpr const char* kCountBug =
    "{Q(id) | exists r in R [Q.id = r.id and "
    "exists s in S, gamma() [r.id = s.id and r.q = count(s.d)]]}";

arc::data::Database MakeDb(int64_t rows, uint64_t seed) {
  arc::data::Database db;
  arc::data::Relation r0 =
      arc::data::RandomBinary(rows, 16, 0.15, 0.0, seed);
  db.Put("R", arc::data::Relation(arc::data::Schema{"A", "B"}, r0.rows()));
  arc::data::Relation s0 =
      arc::data::RandomBinary(rows, 16, 0.0, 0.0, seed + 100);
  db.Put("S", arc::data::Relation(arc::data::Schema{"C", "D"}, s0.rows()));
  return db;
}

void BM_LintCountBug(benchmark::State& state) {
  Program program = MustParse(kCountBug);
  for (auto _ : state) {
    LintResult result = Lint(program, LintOptions{});
    benchmark::DoNotOptimize(result.findings.data());
  }
}
BENCHMARK(BM_LintCountBug);

void BM_LintRandomCorpus(benchmark::State& state) {
  arc::data::Database db = MakeDb(24, 7);
  std::vector<Program> corpus;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    arc::RandomQueryOptions opts;
    opts.seed = seed;
    opts.scalar_agg_probability = 0.3;
    opts.negated_filter_probability = 0.3;
    auto coll = arc::GenerateRandomCollection(db, opts);
    if (!coll.ok()) continue;
    Program p;
    p.main.collection = std::move(coll).value();
    corpus.push_back(std::move(p));
  }
  LintOptions opts;
  opts.analyze.database = &db;
  for (auto _ : state) {
    for (const Program& p : corpus) {
      LintResult result = Lint(p, opts);
      benchmark::DoNotOptimize(result.findings.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_LintRandomCorpus);

void BM_DifferentialValidation(benchmark::State& state) {
  const int64_t rows = state.range(0);
  arc::data::Database db = MakeDb(rows, 7);
  Program program = MustParse(
      "{Q(a, s) | exists r in R, x in {X(sm) | exists s in S, gamma() "
      "[s.C < r.A and X.sm = sum(s.D)]} [Q.a = r.A and Q.s = x.sm]}");
  LintOptions opts;
  opts.analyze.database = &db;
  LintResult lint = Lint(program, opts);
  for (auto _ : state) {
    auto report =
        arc::translate::ValidateConventionWarnings(program, db, lint);
    benchmark::DoNotOptimize(report.entries.data());
  }
}
BENCHMARK(BM_DifferentialValidation)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  arc::bench::Header(
      "ArcLint", "static trap detection (Fig. 21, §2.10, Eq. 15)",
      "lint is microseconds/query; differential confirmation scales with "
      "the mutation menu (rows x columns null probes)");
  {
    Program program = MustParse(kCountBug);
    LintResult result = Lint(program, LintOptions{});
    std::printf("count-bug query findings: %zu (expect ARC-W101 present)\n",
                result.findings.size());
  }
  return arc::bench::RunBenchmarks(argc, argv);
}
