// arctool — command-line driver for the ARC library.
//
//   arctool translate --sql "select R.A from R" [--setup S] [--modality M]
//   arctool render    --arc "{Q(A)|…}" --modality comp|unicode|alt|ascii|dot|svg
//   arctool eval      (--arc "…" | --sql "…") --setup S
//                     [--conventions sql|arc|souffle] [--csv name=path]…
//   arctool validate  --arc "{Q(A)|…}" [--setup S]
//   arctool lint      (--arc "…" | --sql "…") [--setup S] [--format text|json]
//                     [--fix | --fix-dry-run] [--bound K] [--rows N]
//   arctool verify    --arc "…" --arc2 "…" [--setup S] [--bound K] [--rows N]
//                     [--relation equal|subset] [--conventions arc|sql|souffle|all]
//   arctool compare   --arc "…" --arc2 "…"        (pattern analysis)
//   arctool datalog   --program P --query PRED [--csv name=path]…
//
// Every text argument accepts "@path" to read its content from a file.
// --setup takes a SQL script (CREATE TABLE / INSERT) building the database;
// --csv name=path loads a CSV file as a base relation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "arc/analyze.h"
#include "arc/lint.h"
#include "data/csv.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "higraph/higraph.h"
#include "pattern/pattern.h"
#include "sql/eval.h"
#include "text/alt_parser.h"
#include "text/parser.h"
#include "text/printer.h"
#include "common/strings.h"
#include "translate/arc_to_sql.h"
#include "translate/datalog_to_arc.h"
#include "translate/sql_to_arc.h"
#include "verify/bounded_eq.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: arctool <command> [flags]\n"
      "commands:\n"
      "  translate --sql <query>    SQL -> ARC (all text modalities)\n"
      "  render    --arc <query>    render an ARC query in one modality\n"
      "  eval      --arc|--sql <q>  evaluate a query against a database\n"
      "  validate  --arc <query>    run the resolver/validator\n"
      "  lint      --arc|--sql <q>  run the semantic-trap lint passes\n"
      "            [--format text|json] [--disable ARC-W1##,…] [--list]\n"
      "            [--fix apply verified fixes] [--fix-dry-run print diffs]\n"
      "  verify    --arc <a> --arc2 <b>   bounded exhaustive equivalence\n"
      "            [--bound K] [--rows N] [--no-null] [--relation equal|subset]\n"
      "  compare   --arc <a> --arc2 <b>   pattern equality & similarity\n"
      "  datalog   --program <p> --query <pred>   run & translate Datalog\n"
      "common flags:\n"
      "  --setup <sql-script>       CREATE TABLE/INSERT script (or @file)\n"
      "  --csv <name>=<path>        load a CSV file as a base relation\n"
      "  --conventions sql|arc|souffle   evaluation conventions\n"
      "  --modality comp|unicode|alt|ascii|dot|svg   output modality\n"
      "  --recursion seminaive|naive     fixpoint strategy (eval)\n"
      "  --stats                    print evaluation counters (eval)\n"
      "  --out <path>               write output to a file\n"
      "Text arguments accept @path to read from a file.\n");
  return 2;
}

struct Flags {
  std::map<std::string, std::string> values;
  std::vector<std::string> csvs;

  const std::string* Get(const std::string& key) const {
    auto it = values.find(key);
    return it == values.end() ? nullptr : &it->second;
  }
};

arc::Result<std::string> Dereference(const std::string& value) {
  if (value.empty() || value[0] != '@') return value;
  std::ifstream in(value.substr(1));
  if (!in) return arc::NotFound("cannot open '" + value.substr(1) + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

arc::Result<Flags> ParseFlags(int argc, char** argv, int start) {
  Flags flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return arc::InvalidArgument("unexpected argument '" + arg + "'");
    }
    arg = arg.substr(2);
    if (arg == "stats" || arg == "list" || arg == "fix" ||
        arg == "fix-dry-run" || arg == "no-null") {  // boolean: take no value
      flags.values[arg] = "1";
      continue;
    }
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {  // --flag=value
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        return arc::InvalidArgument("flag --" + arg + " needs a value");
      }
      value = argv[++i];
    }
    if (arg == "csv") {
      flags.csvs.push_back(value);
    } else {
      ARC_ASSIGN_OR_RETURN(value, Dereference(value));
      flags.values[arg] = value;
    }
  }
  return flags;
}

arc::Result<arc::data::Database> BuildDatabase(const Flags& flags) {
  arc::data::Database db;
  if (const std::string* setup = flags.Get("setup")) {
    ARC_ASSIGN_OR_RETURN(db, arc::sql::ExecuteSetupScript(*setup));
  }
  for (const std::string& spec : flags.csvs) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      return arc::InvalidArgument("--csv expects name=path, got '" + spec +
                                  "'");
    }
    ARC_RETURN_IF_ERROR(arc::data::LoadCsvFile(spec.substr(eq + 1),
                                               spec.substr(0, eq), &db));
  }
  return db;
}

arc::Result<arc::Conventions> PickConventions(const Flags& flags) {
  const std::string* which = flags.Get("conventions");
  if (which == nullptr || *which == "arc") return arc::Conventions::Arc();
  if (*which == "sql") return arc::Conventions::Sql();
  if (*which == "souffle") return arc::Conventions::Souffle();
  return arc::InvalidArgument("unknown conventions '" + *which + "'");
}

arc::Status Emit(const Flags& flags, const std::string& content) {
  if (const std::string* out = flags.Get("out")) {
    std::ofstream file(*out);
    if (!file) return arc::InvalidArgument("cannot write '" + *out + "'");
    file << content;
    return arc::Status::Ok();
  }
  std::fputs(content.c_str(), stdout);
  return arc::Status::Ok();
}

/// Parses --arc as comprehension syntax, falling back to the ALT format.
arc::Result<arc::Program> ParseArcArg(const std::string& text) {
  auto program = arc::text::ParseProgram(text);
  if (program.ok()) return program;
  auto alt = arc::text::ParseAltProgram(text);
  if (alt.ok()) return alt;
  return program.status();
}

arc::Result<int> IntFlag(const Flags& flags, const char* key, int fallback) {
  const std::string* v = flags.Get(key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long n = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    return arc::InvalidArgument(std::string("--") + key +
                                " expects an integer, got '" + *v + "'");
  }
  return static_cast<int>(n);
}

/// Shared bound parameters for `verify` and `lint --fix`: --bound (active
/// domain size), --rows (per-relation cap), --no-null.
arc::Result<arc::verify::BoundedEqOptions> BoundedOptsFromFlags(
    const Flags& flags) {
  arc::verify::BoundedEqOptions opts;
  ARC_ASSIGN_OR_RETURN(opts.domain_size,
                       IntFlag(flags, "bound", opts.domain_size));
  ARC_ASSIGN_OR_RETURN(opts.max_rows, IntFlag(flags, "rows", opts.max_rows));
  if (flags.Get("no-null") != nullptr) opts.include_null = false;
  return opts;
}

std::string JsonEscapeArg(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderFixesText(const arc::Program& original,
                            const std::vector<arc::verify::VerifiedFix>& fixes,
                            const arc::verify::BoundedEqOptions& vopts) {
  std::string out = "-- proposed fixes (bounded gate: k=" +
                    std::to_string(vopts.domain_size) +
                    ", rows<=" + std::to_string(vopts.max_rows) + ") --\n";
  if (fixes.empty()) return out + "(no fixes proposed)\n";
  const std::string before = arc::text::PrintProgram(original);
  int i = 0;
  for (const arc::verify::VerifiedFix& vf : fixes) {
    ++i;
    out += "[" + std::to_string(i) + "] " + vf.fix.code + " " + vf.fix.name;
    if (vf.fix.line > 0) out += " (line " + std::to_string(vf.fix.line) + ")";
    out += ": " + vf.fix.description + "\n";
    out += std::string("    ") + (vf.verified ? "VERIFIED: " : "REJECTED: ") +
           vf.verdict + "\n";
    if (vf.verified) {
      out += arc::UnifiedDiff(before, arc::text::PrintProgram(vf.fix.fixed),
                              "original", "fixed");
    }
  }
  return out;
}

/// The "fixes" JSON fragment: fix metadata plus editor-applicable byte
/// spans against the canonical (printer) rendering, which is included as
/// "canonical_source" so clients have the exact string the offsets index.
std::string RenderFixesJson(
    const arc::Program& original,
    const std::vector<arc::verify::VerifiedFix>& fixes) {
  const std::string before = arc::text::PrintProgram(original);
  std::string out =
      "\"canonical_source\": \"" + JsonEscapeArg(before) + "\", \"fixes\": [";
  bool first = true;
  for (const arc::verify::VerifiedFix& vf : fixes) {
    if (!first) out += ", ";
    first = false;
    const arc::EditSpan span =
        arc::SingleEditSpan(before, arc::text::PrintProgram(vf.fix.fixed));
    out += "{\"code\": \"" + JsonEscapeArg(vf.fix.code) + "\"";
    out += ", \"name\": \"" + JsonEscapeArg(vf.fix.name) + "\"";
    if (vf.fix.line > 0) out += ", \"line\": " + std::to_string(vf.fix.line);
    out += ", \"effect\": \"";
    out += arc::FixEffectName(vf.fix.effect);
    out += "\", \"verified\": ";
    out += vf.verified ? "true" : "false";
    out += ", \"verdict\": \"" + JsonEscapeArg(vf.verdict) + "\"";
    out += ", \"offset\": " + std::to_string(span.offset);
    out += ", \"length\": " + std::to_string(span.length);
    out += ", \"replacement\": \"" + JsonEscapeArg(span.replacement) + "\"";
    out += ", \"description\": \"" + JsonEscapeArg(vf.fix.description) + "\"}";
  }
  return out + "]";
}

arc::Result<std::string> RenderModality(const arc::Program& program,
                                        const std::string& modality) {
  if (modality == "comp" || modality.empty()) {
    return arc::text::PrintProgram(program) + "\n";
  }
  if (modality == "unicode") {
    arc::text::PrintOptions opts;
    opts.unicode = true;
    return arc::text::PrintProgram(program, opts) + "\n";
  }
  if (modality == "alt") return arc::text::PrintAltProgram(program);
  if (modality == "ascii" || modality == "dot" || modality == "svg") {
    ARC_ASSIGN_OR_RETURN(arc::higraph::Higraph h,
                         arc::higraph::Build(program));
    if (modality == "ascii") return arc::higraph::ToAscii(h);
    if (modality == "dot") return arc::higraph::ToDot(h);
    return arc::higraph::ToSvg(h);
  }
  if (modality == "sql") return arc::translate::ArcToSqlText(program);
  return arc::Unsupported("unknown modality '" + modality +
                          "' (comp|unicode|alt|ascii|dot|svg|sql)");
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

arc::Status CmdTranslate(const Flags& flags) {
  const std::string* sql = flags.Get("sql");
  if (sql == nullptr) return arc::InvalidArgument("translate needs --sql");
  ARC_ASSIGN_OR_RETURN(arc::data::Database db, BuildDatabase(flags));
  arc::translate::SqlToArcOptions topts;
  topts.database = &db;
  ARC_ASSIGN_OR_RETURN(arc::Program program,
                       arc::translate::SqlToArc(*sql, topts));
  const std::string* modality = flags.Get("modality");
  if (modality != nullptr) {
    ARC_ASSIGN_OR_RETURN(std::string out, RenderModality(program, *modality));
    return Emit(flags, out);
  }
  std::string out = "-- comprehension modality --\n" +
                    arc::text::PrintProgram(program) +
                    "\n\n-- ALT modality --\n" +
                    arc::text::PrintAltProgram(program);
  auto h = arc::higraph::Build(program);
  if (h.ok()) {
    out += "\n-- higraph modality (ascii) --\n" + arc::higraph::ToAscii(*h);
  }
  return Emit(flags, out);
}

arc::Status CmdRender(const Flags& flags) {
  const std::string* query = flags.Get("arc");
  if (query == nullptr) return arc::InvalidArgument("render needs --arc");
  ARC_ASSIGN_OR_RETURN(arc::Program program, ParseArcArg(*query));
  const std::string* modality = flags.Get("modality");
  ARC_ASSIGN_OR_RETURN(
      std::string out,
      RenderModality(program, modality == nullptr ? "comp" : *modality));
  return Emit(flags, out);
}

arc::Status CmdEval(const Flags& flags) {
  ARC_ASSIGN_OR_RETURN(arc::data::Database db, BuildDatabase(flags));
  ARC_ASSIGN_OR_RETURN(arc::Conventions conventions, PickConventions(flags));
  arc::Program program;
  if (const std::string* arc_text = flags.Get("arc")) {
    ARC_ASSIGN_OR_RETURN(program, ParseArcArg(*arc_text));
  } else if (const std::string* sql = flags.Get("sql")) {
    arc::translate::SqlToArcOptions topts;
    topts.database = &db;
    ARC_ASSIGN_OR_RETURN(program, arc::translate::SqlToArc(*sql, topts));
  } else {
    return arc::InvalidArgument("eval needs --arc or --sql");
  }
  arc::eval::EvalOptions eopts;
  eopts.conventions = conventions;
  if (const std::string* strategy = flags.Get("recursion")) {
    if (*strategy == "naive") {
      eopts.recursion_strategy = arc::eval::RecursionStrategy::kNaive;
    } else if (*strategy == "seminaive") {
      eopts.recursion_strategy = arc::eval::RecursionStrategy::kSemiNaive;
    } else {
      return arc::InvalidArgument("unknown recursion strategy '" + *strategy +
                                  "' (seminaive|naive)");
    }
  }
  const bool want_stats = flags.Get("stats") != nullptr;
  arc::eval::Evaluator ev(db, eopts);
  auto emit_stats = [&]() {
    if (!want_stats) return;
    std::fputs(("-- eval stats --\n" + ev.stats().ToString()).c_str(), stderr);
  };
  if (program.main.sentence) {
    ARC_ASSIGN_OR_RETURN(arc::data::TriBool truth, ev.EvalSentence(program));
    emit_stats();
    return Emit(flags, std::string(arc::data::TriBoolName(truth)) + "\n");
  }
  ARC_ASSIGN_OR_RETURN(arc::data::Relation result, ev.EvalProgram(program));
  emit_stats();
  if (const std::string* out = flags.Get("out")) {
    (void)out;
    return Emit(flags, arc::data::RelationToCsv(result));
  }
  return Emit(flags, result.ToString());
}

arc::Status CmdValidate(const Flags& flags) {
  const std::string* query = flags.Get("arc");
  if (query == nullptr) return arc::InvalidArgument("validate needs --arc");
  ARC_ASSIGN_OR_RETURN(arc::Program program, ParseArcArg(*query));
  ARC_ASSIGN_OR_RETURN(arc::data::Database db, BuildDatabase(flags));
  arc::AnalyzeOptions aopts;
  if (db.relation_count() > 0) aopts.database = &db;
  arc::Analysis analysis = arc::Analyze(program, aopts);
  std::string out = analysis.DiagnosticsToString();
  out += analysis.ok() ? "VALID\n" : "INVALID\n";
  ARC_RETURN_IF_ERROR(Emit(flags, out));
  return analysis.ok() ? arc::Status::Ok()
                       : arc::ValidationError("query is invalid");
}

arc::Status CmdLint(const Flags& flags) {
  if (flags.Get("list") != nullptr) {
    std::string out;
    for (const arc::LintPass& pass : arc::LintPasses()) {
      out += std::string(pass.code) + "  " + pass.name + " (" +
             arc::LintCategoryName(pass.category) + "): " + pass.summary +
             "\n";
    }
    return Emit(flags, out);
  }
  ARC_ASSIGN_OR_RETURN(arc::data::Database db, BuildDatabase(flags));
  arc::Program program;
  if (const std::string* arc_text = flags.Get("arc")) {
    ARC_ASSIGN_OR_RETURN(program, ParseArcArg(*arc_text));
  } else if (const std::string* sql = flags.Get("sql")) {
    arc::translate::SqlToArcOptions topts;
    topts.database = &db;
    ARC_ASSIGN_OR_RETURN(program, arc::translate::SqlToArc(*sql, topts));
  } else {
    return arc::InvalidArgument("lint needs --arc or --sql");
  }
  arc::LintOptions lopts;
  if (db.relation_count() > 0) lopts.analyze.database = &db;
  if (const std::string* disable = flags.Get("disable")) {
    std::istringstream list(*disable);
    std::string code;
    while (std::getline(list, code, ',')) {
      if (!code.empty()) lopts.disabled.push_back(code);
    }
  }
  arc::LintResult result = arc::Lint(program, lopts);
  const std::string* format = flags.Get("format");
  if (format != nullptr && *format != "text" && *format != "json") {
    return arc::InvalidArgument("unknown format '" + *format +
                                "' (text|json)");
  }
  const bool json = format != nullptr && *format == "json";
  std::string out = json ? arc::LintToJson(result) : arc::LintToText(result);
  const bool want_fix = flags.Get("fix") != nullptr;
  const bool want_dry = flags.Get("fix-dry-run") != nullptr;
  if (want_fix || want_dry) {
    ARC_ASSIGN_OR_RETURN(arc::verify::BoundedEqOptions vopts,
                         BoundedOptsFromFlags(flags));
    std::vector<arc::FixIt> proposed = arc::ProposeFixes(program, lopts);
    std::vector<arc::verify::RelationSig> schema;
    std::vector<arc::verify::VerifiedFix> verified;
    if (!proposed.empty()) {
      ARC_ASSIGN_OR_RETURN(
          schema, arc::verify::InferSignature(
                      program, program,
                      db.relation_count() > 0 ? &db : nullptr));
      verified = arc::verify::VerifyFixes(program, std::move(proposed),
                                          schema, vopts);
    }
    std::string applied_log;
    arc::Program current = program.Clone();
    if (want_fix) {
      // Apply one verified fix at a time and re-propose: fixes were each
      // verified against the *original* program, so overlapping edits must
      // be re-derived (and re-gated) against the intermediate program.
      std::vector<arc::verify::VerifiedFix>* round = &verified;
      std::vector<arc::verify::VerifiedFix> regated;
      for (int iter = 0; iter < 8; ++iter) {
        const arc::verify::VerifiedFix* pick = nullptr;
        for (const arc::verify::VerifiedFix& vf : *round) {
          if (vf.verified) {
            pick = &vf;
            break;
          }
        }
        if (pick == nullptr) break;
        applied_log += "  applied " + pick->fix.code + " " + pick->fix.name +
                       ": " + pick->fix.description + "\n";
        current = pick->fix.fixed.Clone();
        std::vector<arc::FixIt> next = arc::ProposeFixes(current, lopts);
        if (next.empty()) break;
        regated = arc::verify::VerifyFixes(current, std::move(next), schema,
                                           vopts);
        round = &regated;
      }
    }
    if (json) {
      // Splice the fixes fragment into LintToJson's trailing "}\n".
      out.erase(out.find_last_of('}'));
      out += ", " + RenderFixesJson(program, verified);
      if (want_fix && !applied_log.empty()) {
        out += ", \"fixed_program\": \"" +
               JsonEscapeArg(arc::text::PrintProgram(current)) + "\"";
      }
      out += "}\n";
    } else {
      out += RenderFixesText(program, verified, vopts);
      if (want_fix) {
        out += applied_log.empty()
                   ? "(no verified fixes to apply)\n"
                   : applied_log + "-- fixed program --\n" +
                         arc::text::PrintProgram(current) + "\n";
      }
    }
  }
  ARC_RETURN_IF_ERROR(Emit(flags, out));
  return result.ok() ? arc::Status::Ok()
                     : arc::ValidationError("lint reported errors");
}

arc::Status CmdVerify(const Flags& flags) {
  const std::string* a_text = flags.Get("arc");
  const std::string* b_text = flags.Get("arc2");
  if (a_text == nullptr || b_text == nullptr) {
    return arc::InvalidArgument("verify needs --arc and --arc2");
  }
  ARC_ASSIGN_OR_RETURN(arc::Program a, ParseArcArg(*a_text));
  ARC_ASSIGN_OR_RETURN(arc::Program b, ParseArcArg(*b_text));
  ARC_ASSIGN_OR_RETURN(arc::data::Database db, BuildDatabase(flags));
  ARC_ASSIGN_OR_RETURN(
      std::vector<arc::verify::RelationSig> schema,
      arc::verify::InferSignature(a, b,
                                  db.relation_count() > 0 ? &db : nullptr));
  ARC_ASSIGN_OR_RETURN(arc::verify::BoundedEqOptions vopts,
                       BoundedOptsFromFlags(flags));
  const std::string* which = flags.Get("conventions");
  if (which != nullptr && *which != "all") {
    ARC_ASSIGN_OR_RETURN(arc::Conventions c, PickConventions(flags));
    vopts.conventions = {c};
  }
  arc::verify::EqRelation relation = arc::verify::EqRelation::kEquivalent;
  if (const std::string* r = flags.Get("relation")) {
    if (*r == "subset") {
      relation = arc::verify::EqRelation::kLhsSubsetRhs;
    } else if (*r != "equal") {
      return arc::InvalidArgument("unknown relation '" + *r +
                                  "' (equal|subset)");
    }
  }
  ARC_ASSIGN_OR_RETURN(
      arc::verify::BoundedEqReport report,
      arc::verify::CheckEquivalent(a, b, schema, vopts, relation));
  std::string out = report.ToString();
  if (out.empty() || out.back() != '\n') out += "\n";
  ARC_RETURN_IF_ERROR(Emit(flags, out));
  return report.holds
             ? arc::Status::Ok()
             : arc::ValidationError(
                   std::string("programs are not ") +
                   arc::verify::EqRelationName(relation) +
                   " within the bound");
}

arc::Status CmdCompare(const Flags& flags) {
  const std::string* a_text = flags.Get("arc");
  const std::string* b_text = flags.Get("arc2");
  if (a_text == nullptr || b_text == nullptr) {
    return arc::InvalidArgument("compare needs --arc and --arc2");
  }
  ARC_ASSIGN_OR_RETURN(arc::Program a, ParseArcArg(*a_text));
  ARC_ASSIGN_OR_RETURN(arc::Program b, ParseArcArg(*b_text));
  std::ostringstream out;
  out << "pattern A: " << arc::pattern::ExtractFeatures(a).ToString() << "\n";
  out << "pattern B: " << arc::pattern::ExtractFeatures(b).ToString() << "\n";
  out << "canonical A: " << arc::pattern::CanonicalText(a) << "\n";
  out << "canonical B: " << arc::pattern::CanonicalText(b) << "\n";
  const bool equal = arc::pattern::PatternEquals(a, b);
  out << "pattern-equal: " << (equal ? "yes" : "no") << "\n";
  if (!equal) {
    out << "pattern diff (canonical ALT):\n"
        << arc::pattern::PatternDiff(a, b);
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", arc::pattern::Similarity(a, b));
  out << "similarity: " << buf << "\n";
  return Emit(flags, out.str());
}

arc::Status CmdDatalog(const Flags& flags) {
  const std::string* source = flags.Get("program");
  const std::string* query = flags.Get("query");
  if (source == nullptr || query == nullptr) {
    return arc::InvalidArgument("datalog needs --program and --query");
  }
  ARC_ASSIGN_OR_RETURN(arc::datalog::DlProgram program,
                       arc::datalog::ParseDatalog(*source));
  ARC_ASSIGN_OR_RETURN(arc::data::Database db, BuildDatabase(flags));
  arc::datalog::DlEvaluator engine(db);
  ARC_ASSIGN_OR_RETURN(arc::data::Relation result,
                       engine.Eval(program, *query));
  std::ostringstream out;
  out << result.ToString();
  auto translated = arc::translate::DatalogToArc(program, *query);
  if (translated.ok()) {
    out << "\nas ARC: " << arc::text::PrintProgram(*translated) << "\n";
  }
  return Emit(flags, out.str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
    return Usage();
  }
  arc::Status status = arc::InvalidArgument("unknown command '" + command +
                                            "'");
  if (command == "translate") status = CmdTranslate(*flags);
  else if (command == "render") status = CmdRender(*flags);
  else if (command == "eval") status = CmdEval(*flags);
  else if (command == "validate") status = CmdValidate(*flags);
  else if (command == "lint") status = CmdLint(*flags);
  else if (command == "verify") status = CmdVerify(*flags);
  else if (command == "compare") status = CmdCompare(*flags);
  else if (command == "datalog") status = CmdDatalog(*flags);
  else return Usage();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
