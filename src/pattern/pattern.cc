#include "pattern/pattern.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "text/printer.h"

namespace arc::pattern {

namespace {

// ---------------------------------------------------------------------------
// Canonical renaming
// ---------------------------------------------------------------------------

/// Scoped rename maps: range variables and, for variables bound to nested
/// collections, their attribute rename maps.
struct RenameScope {
  struct Entry {
    std::string from;                   // original var (lower)
    std::string to;                     // canonical var
    std::vector<std::pair<std::string, std::string>> attrs;  // old→new (lower)
  };
  std::vector<Entry> entries;
};

class Canonicalizer {
 public:
  Program Run(const Program& program) {
    Program out = program.Clone();
    for (Definition& def : out.definitions) {
      RenameCollection(def.collection.get(), /*rename_head=*/false);
    }
    if (out.main.collection) {
      RenameCollection(out.main.collection.get(), /*rename_head=*/false);
    }
    if (out.main.sentence) RenameFormula(out.main.sentence.get());
    // Second pass: sort conjuncts/disjuncts by printed form.
    for (Definition& def : out.definitions) {
      SortCollection(def.collection.get());
    }
    if (out.main.collection) SortCollection(out.main.collection.get());
    if (out.main.sentence) SortFormula(out.main.sentence.get());
    return out;
  }

 private:
  // ---- renaming ---------------------------------------------------------

  std::vector<RenameScope> scopes_;
  std::vector<std::pair<std::string, std::string>> head_stack_;  // orig→canon
  int var_counter_ = 0;
  int head_counter_ = 0;

  const RenameScope::Entry* FindVar(const std::string& var) const {
    const std::string key = ToLower(var);
    for (auto s = scopes_.rbegin(); s != scopes_.rend(); ++s) {
      for (const auto& e : s->entries) {
        if (e.from == key) return &e;
      }
    }
    return nullptr;
  }

  void RenameCollection(Collection* c, bool rename_head) {
    std::vector<std::pair<std::string, std::string>> attr_map;
    std::string canon_head = c->head.relation;
    if (rename_head) {
      canon_head = "H" + std::to_string(++head_counter_);
      for (size_t i = 0; i < c->head.attrs.size(); ++i) {
        const std::string canon_attr = "a" + std::to_string(i + 1);
        attr_map.emplace_back(ToLower(c->head.attrs[i]), canon_attr);
        c->head.attrs[i] = canon_attr;
      }
    }
    head_stack_.emplace_back(ToLower(c->head.relation), canon_head);
    // Head references inside the body follow the head rename; model the
    // head as a pseudo variable in scope.
    RenameScope scope;
    RenameScope::Entry head_entry;
    head_entry.from = ToLower(c->head.relation);
    head_entry.to = canon_head;
    head_entry.attrs = attr_map;
    scope.entries.push_back(std::move(head_entry));
    scopes_.push_back(std::move(scope));
    c->head.relation = canon_head;
    if (c->body) RenameFormula(c->body.get());
    scopes_.pop_back();
    head_stack_.pop_back();
    last_head_attr_map_ = std::move(attr_map);
    last_head_name_ = canon_head;
  }

  // Attribute map of the most recently renamed nested collection, consumed
  // by the binding that owns it.
  std::vector<std::pair<std::string, std::string>> last_head_attr_map_;
  std::string last_head_name_;

  void RenameFormula(Formula* f) {
    switch (f->kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (FormulaPtr& c : f->children) RenameFormula(c.get());
        return;
      case FormulaKind::kNot:
        RenameFormula(f->child.get());
        return;
      case FormulaKind::kExists:
        RenameQuantifier(f->quantifier.get());
        return;
      case FormulaKind::kPredicate:
        if (f->lhs) RenameTerm(f->lhs.get());
        if (f->rhs) RenameTerm(f->rhs.get());
        return;
      case FormulaKind::kNullTest:
        if (f->null_arg) RenameTerm(f->null_arg.get());
        return;
    }
  }

  void RenameQuantifier(Quantifier* q) {
    // Entries become visible incrementally: a nested collection range may
    // reference earlier bindings of the same scope (lateral, §2.4).
    scopes_.emplace_back();
    const size_t scope_idx = scopes_.size() - 1;
    for (Binding& b : q->bindings) {
      RenameScope::Entry entry;
      entry.from = ToLower(b.var);
      entry.to = "v" + std::to_string(++var_counter_);
      if (b.range_kind == RangeKind::kCollection) {
        RenameCollection(b.collection.get(), /*rename_head=*/true);
        entry.attrs = last_head_attr_map_;
      }
      // Join-annotation leaves use the variable too.
      const std::string old_var = b.var;
      b.var = entry.to;
      if (q->join_tree) RenameJoinVar(q->join_tree.get(), old_var, entry.to);
      scopes_[scope_idx].entries.push_back(std::move(entry));
    }
    if (q->grouping.has_value()) {
      for (TermPtr& k : q->grouping->keys) RenameTerm(k.get());
    }
    if (q->body) RenameFormula(q->body.get());
    scopes_.pop_back();
  }

  static void RenameJoinVar(JoinNode* n, const std::string& from,
                            const std::string& to) {
    if (n->kind == JoinKind::kVarLeaf && EqualsIgnoreCase(n->var, from)) {
      n->var = to;
      return;
    }
    for (JoinNodePtr& c : n->children) RenameJoinVar(c.get(), from, to);
  }

  void RenameTerm(Term* t) {
    switch (t->kind) {
      case TermKind::kAttrRef: {
        const RenameScope::Entry* e = FindVar(t->var);
        if (e != nullptr) {
          t->var = e->to;
          for (const auto& [old_attr, new_attr] : e->attrs) {
            if (ToLower(t->attr) == old_attr) {
              t->attr = new_attr;
              break;
            }
          }
        }
        return;
      }
      case TermKind::kArith:
        if (t->lhs) RenameTerm(t->lhs.get());
        if (t->rhs) RenameTerm(t->rhs.get());
        return;
      case TermKind::kAggregate:
        if (t->agg_arg) RenameTerm(t->agg_arg.get());
        return;
      case TermKind::kLiteral:
        return;
    }
  }

  // ---- sorting ------------------------------------------------------------

  void SortCollection(Collection* c) {
    if (c->body) SortFormula(c->body.get());
  }

  void SortFormula(Formula* f) {
    switch (f->kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        for (FormulaPtr& c : f->children) SortFormula(c.get());
        // Flatten same-kind children and drop neutral elements (an empty
        // AND is `true`, an empty OR is `false`).
        std::vector<FormulaPtr> flat;
        for (FormulaPtr& c : f->children) {
          if (c->kind == f->kind) {
            for (FormulaPtr& gc : c->children) flat.push_back(std::move(gc));
          } else if (f->kind == FormulaKind::kAnd &&
                     c->kind == FormulaKind::kOr && c->children.empty()) {
            flat.push_back(std::move(c));  // false inside AND is significant
          } else if (c->kind == FormulaKind::kAnd && c->children.empty() &&
                     f->kind == FormulaKind::kAnd) {
            // `true` conjunct: drop.
          } else {
            flat.push_back(std::move(c));
          }
        }
        f->children = std::move(flat);
        std::stable_sort(f->children.begin(), f->children.end(),
                         [](const FormulaPtr& a, const FormulaPtr& b) {
                           return text::PrintFormula(*a) <
                                  text::PrintFormula(*b);
                         });
        return;
      }
      case FormulaKind::kNot:
        SortFormula(f->child.get());
        return;
      case FormulaKind::kExists: {
        Quantifier* q = f->quantifier.get();
        for (Binding& b : q->bindings) {
          if (b.range_kind == RangeKind::kCollection) {
            SortCollection(b.collection.get());
          }
        }
        if (q->body) SortFormula(q->body.get());
        return;
      }
      default:
        return;
    }
  }
};

// ---------------------------------------------------------------------------
// Features
// ---------------------------------------------------------------------------

class FeatureExtractor {
 public:
  Features Run(const Program& program) {
    for (const Definition& def : program.definitions) {
      WalkCollection(*def.collection, 0);
    }
    if (program.main.collection) WalkCollection(*program.main.collection, 0);
    if (program.main.sentence) WalkFormula(*program.main.sentence, 0, 0);
    if (saw_fio_ && saw_foi_) {
      features_.agg_style = AggStyle::kBoth;
    } else if (saw_fio_) {
      features_.agg_style = AggStyle::kFio;
    } else if (saw_foi_) {
      features_.agg_style = AggStyle::kFoi;
    }
    return features_;
  }

 private:
  /// Variables visible at the current point, tagged with the collection
  /// nesting level at which they were bound.
  struct VarDepth {
    std::string var;
    int collection_level;
  };
  std::vector<VarDepth> vars_;
  std::vector<std::string> head_names_;
  int collection_level_ = 0;
  bool saw_fio_ = false;
  bool saw_foi_ = false;
  Features features_;

  void WalkCollection(const Collection& c, int depth) {
    ++features_.num_collections;
    ++collection_level_;
    head_names_.push_back(ToLower(c.head.relation));
    if (c.body) {
      if (FormulaRangesOver(*c.body, c.head.relation)) {
        features_.is_recursive = true;
      }
      WalkFormula(*c.body, depth, 0);
    }
    head_names_.pop_back();
    --collection_level_;
  }

  static bool FormulaRangesOver(const Formula& f, const std::string& name) {
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) {
          if (FormulaRangesOver(*c, name)) return true;
        }
        return false;
      case FormulaKind::kNot:
        return f.child && FormulaRangesOver(*f.child, name);
      case FormulaKind::kExists:
        for (const Binding& b : f.quantifier->bindings) {
          if (b.range_kind == RangeKind::kNamed &&
              EqualsIgnoreCase(b.relation, name)) {
            return true;
          }
          if (b.range_kind == RangeKind::kCollection && b.collection &&
              !EqualsIgnoreCase(b.collection->head.relation, name) &&
              b.collection->body &&
              FormulaRangesOver(*b.collection->body, name)) {
            return true;
          }
        }
        return f.quantifier->body &&
               FormulaRangesOver(*f.quantifier->body, name);
      default:
        return false;
    }
  }

  void WalkFormula(const Formula& f, int depth, int neg_depth) {
    features_.negation_depth = std::max(features_.negation_depth, neg_depth);
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) {
          WalkFormula(*c, depth, neg_depth);
        }
        return;
      case FormulaKind::kNot:
        WalkFormula(*f.child, depth, neg_depth + 1);
        return;
      case FormulaKind::kExists:
        WalkQuantifier(*f.quantifier, depth, neg_depth);
        return;
      case FormulaKind::kPredicate:
        ++features_.num_predicates;
        if (f.lhs) WalkTerm(*f.lhs);
        if (f.rhs) WalkTerm(*f.rhs);
        return;
      case FormulaKind::kNullTest:
        ++features_.num_predicates;
        if (f.null_arg) WalkTerm(*f.null_arg);
        return;
    }
  }

  void WalkQuantifier(const Quantifier& q, int depth, int neg_depth) {
    ++features_.num_scopes;
    features_.max_nesting_depth =
        std::max(features_.max_nesting_depth, depth + 1);
    if (q.grouping.has_value()) {
      ++features_.num_grouping_scopes;
      // FIO vs FOI (§2.5): a grouping scope inside a *correlated* nested
      // collection is the per-outer-tuple FOI shape; otherwise FIO.
      if (collection_level_ >= 2 && CorrelatedAtCurrentLevel(q)) {
        saw_foi_ = true;
      } else {
        saw_fio_ = true;
      }
    }
    if (q.join_tree && HasOuter(*q.join_tree)) features_.has_outer_join = true;
    const size_t mark = vars_.size();
    for (const Binding& b : q.bindings) {
      ++features_.num_bindings;
      if (b.range_kind == RangeKind::kCollection && b.collection) {
        WalkCollection(*b.collection, depth + 1);
      }
      vars_.push_back({ToLower(b.var), collection_level_});
    }
    if (q.grouping.has_value()) {
      for (const TermPtr& k : q.grouping->keys) WalkTerm(*k);
    }
    if (q.body) WalkFormula(*q.body, depth + 1, neg_depth);
    vars_.resize(mark);
  }

  bool CorrelatedAtCurrentLevel(const Quantifier& q) const {
    // Does the scope's body reference a variable bound at a shallower
    // collection level?
    for (const VarDepth& v : vars_) {
      if (v.collection_level < collection_level_ && q.body &&
          FormulaRefsVar(*q.body, v.var)) {
        return true;
      }
    }
    return false;
  }

  static bool FormulaRefsVar(const Formula& f, const std::string& var) {
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) {
          if (FormulaRefsVar(*c, var)) return true;
        }
        return false;
      case FormulaKind::kNot:
        return f.child && FormulaRefsVar(*f.child, var);
      case FormulaKind::kExists:
        return f.quantifier->body && FormulaRefsVar(*f.quantifier->body, var);
      case FormulaKind::kPredicate:
        return (f.lhs && f.lhs->References(var)) ||
               (f.rhs && f.rhs->References(var));
      case FormulaKind::kNullTest:
        return f.null_arg && f.null_arg->References(var);
    }
    return false;
  }

  static bool HasOuter(const JoinNode& n) {
    if (n.kind == JoinKind::kLeft || n.kind == JoinKind::kFull) return true;
    for (const JoinNodePtr& c : n.children) {
      if (HasOuter(*c)) return true;
    }
    return false;
  }

  void WalkTerm(const Term& t) {
    switch (t.kind) {
      case TermKind::kAggregate:
        ++features_.num_aggregates;
        if (t.agg_arg) WalkTerm(*t.agg_arg);
        return;
      case TermKind::kArith:
        if (t.lhs) WalkTerm(*t.lhs);
        if (t.rhs) WalkTerm(*t.rhs);
        return;
      case TermKind::kAttrRef: {
        // Correlation: reference to a variable bound at an outer collection
        // level.
        for (const VarDepth& v : vars_) {
          if (v.var == ToLower(t.var) &&
              v.collection_level < collection_level_) {
            ++features_.correlation_count;
            return;
          }
        }
        return;
      }
      case TermKind::kLiteral:
        return;
    }
  }
};

/// Longest common subsequence length of two line vectors.
size_t LcsLength(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1, 0);
  std::vector<size_t> cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) {
    // Strip indentation: structure is captured by the line content order.
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    out.push_back(line.substr(start));
  }
  return out;
}

}  // namespace

const char* AggStyleName(AggStyle s) {
  switch (s) {
    case AggStyle::kNone:
      return "none";
    case AggStyle::kFio:
      return "FIO";
    case AggStyle::kFoi:
      return "FOI";
    case AggStyle::kBoth:
      return "FIO+FOI";
  }
  return "?";
}

Program Canonicalize(const Program& program) {
  return Canonicalizer().Run(program);
}

std::string CanonicalText(const Program& program) {
  return text::PrintProgram(Canonicalize(program));
}

uint64_t Fingerprint(const Program& program) {
  const std::string canon = CanonicalText(program);
  // FNV-1a.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : canon) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

bool PatternEquals(const Program& a, const Program& b) {
  return CanonicalText(a) == CanonicalText(b);
}

std::string Features::ToString() const {
  std::ostringstream out;
  out << "scopes=" << num_scopes << " depth=" << max_nesting_depth
      << " neg-depth=" << negation_depth
      << " grouping-scopes=" << num_grouping_scopes
      << " aggregates=" << num_aggregates << " bindings=" << num_bindings
      << " predicates=" << num_predicates
      << " collections=" << num_collections
      << " correlations=" << correlation_count
      << " outer-join=" << (has_outer_join ? "yes" : "no")
      << " recursive=" << (is_recursive ? "yes" : "no")
      << " agg-style=" << AggStyleName(agg_style);
  return out.str();
}

Features ExtractFeatures(const Program& program) {
  return FeatureExtractor().Run(program);
}

std::string PatternDiff(const Program& a, const Program& b) {
  Program ca = Canonicalize(a);
  Program cb = Canonicalize(b);
  const std::vector<std::string> la = SplitLines(text::PrintAltProgram(ca));
  const std::vector<std::string> lb = SplitLines(text::PrintAltProgram(cb));
  if (la == lb) return "";
  // LCS table with backtracking.
  const size_t n = la.size();
  const size_t m = lb.size();
  std::vector<std::vector<size_t>> dp(n + 1, std::vector<size_t>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      dp[i][j] = la[i - 1] == lb[j - 1]
                     ? dp[i - 1][j - 1] + 1
                     : std::max(dp[i - 1][j], dp[i][j - 1]);
    }
  }
  std::vector<std::string> out_lines;
  size_t i = n;
  size_t j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 && la[i - 1] == lb[j - 1]) {
      out_lines.push_back("  " + la[i - 1]);
      --i;
      --j;
    } else if (j > 0 && (i == 0 || dp[i][j - 1] >= dp[i - 1][j])) {
      out_lines.push_back("+ " + lb[j - 1]);
      --j;
    } else {
      out_lines.push_back("- " + la[i - 1]);
      --i;
    }
  }
  std::string out;
  for (auto it = out_lines.rbegin(); it != out_lines.rend(); ++it) {
    out += *it;
    out += "\n";
  }
  return out;
}

double Similarity(const Program& a, const Program& b) {
  Program ca = Canonicalize(a);
  Program cb = Canonicalize(b);
  const std::vector<std::string> la = SplitLines(text::PrintAltProgram(ca));
  const std::vector<std::string> lb = SplitLines(text::PrintAltProgram(cb));
  if (la.empty() && lb.empty()) return 1.0;
  const size_t lcs = LcsLength(la, lb);
  return 2.0 * static_cast<double>(lcs) /
         static_cast<double>(la.size() + lb.size());
}

}  // namespace arc::pattern
