// Relational-pattern analysis (§1, §4): the machinery behind comparing
// queries by *intent* instead of surface syntax.
//
//  * Canonicalize: variable-renaming-invariant normal form of an ALT —
//    range variables and nested-collection heads/attributes are renamed by
//    structural traversal order, conjunctions and disjunctions are sorted.
//    Two queries with the same relational pattern (e.g. a scalar subquery
//    and its lateral-join form, Fig. 5a/5b) canonicalize identically.
//  * Fingerprint / PatternEquals: pattern identity via the canonical form.
//  * Features: structural descriptors (scope count, nesting depth, negation
//    depth, grouping scopes, aggregation style FIO vs FOI (§2.5),
//    correlation, recursion).
//  * Similarity: [0,1] score from the LCS ratio over canonical ALT lines —
//    a semantic-structure proxy for NL2SQL-style intent comparison (§5).
#ifndef ARC_PATTERN_PATTERN_H_
#define ARC_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>

#include "arc/ast.h"
#include "common/status.h"

namespace arc::pattern {

/// Canonical normal form (deep copy; the input is untouched).
Program Canonicalize(const Program& program);

/// Canonical text of the pattern (canonicalize + print).
std::string CanonicalText(const Program& program);

/// 64-bit fingerprint of the canonical pattern.
uint64_t Fingerprint(const Program& program);

/// True iff both programs have the same relational pattern.
bool PatternEquals(const Program& a, const Program& b);

/// Aggregation pattern styles (§2.5).
enum class AggStyle {
  kNone,
  kFio,   // "from the inside out": grouping at the consuming scope
  kFoi,   // "from the outside in": correlated per-outer-tuple aggregation
  kBoth,  // query mixes both styles
};
const char* AggStyleName(AggStyle s);

struct Features {
  int num_scopes = 0;           // quantifier scopes
  int max_nesting_depth = 0;    // deepest scope nesting
  int negation_depth = 0;       // deepest ¬ nesting
  int num_grouping_scopes = 0;
  int num_aggregates = 0;
  int num_bindings = 0;
  int num_predicates = 0;
  int num_collections = 0;      // incl. nested
  int correlation_count = 0;    // references crossing a collection boundary
  bool has_outer_join = false;
  bool is_recursive = false;
  AggStyle agg_style = AggStyle::kNone;

  std::string ToString() const;
};

Features ExtractFeatures(const Program& program);

/// Pattern similarity in [0,1]: LCS ratio over the canonical ALT lines.
/// 1.0 iff PatternEquals.
double Similarity(const Program& a, const Program& b);

/// Human-readable structural diff of the two canonical ALTs: an LCS
/// alignment over ALT lines, "- " marking structure only in `a`, "+ " only
/// in `b`, "  " shared. Empty string when the patterns are equal.
std::string PatternDiff(const Program& a, const Program& b);

}  // namespace arc::pattern

#endif  // ARC_PATTERN_PATTERN_H_
