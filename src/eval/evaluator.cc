#include "eval/evaluator.h"

#include <climits>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace arc::eval {

namespace {

using data::Relation;
using data::Schema;
using data::TriBool;
using data::Tuple;
using data::Value;

/// A (partial) head valuation: head-attribute position → value. Positions
/// index the enclosing collection's head attribute list; references to
/// attributes absent from the head (reachable only in unvalidated programs)
/// get stable negative ids so distinct names stay distinct.
using HeadVals = std::vector<std::pair<int, Value>>;

/// Aggregate values computed for the current group, keyed by the aggregate
/// Term node.
using AggCtx = std::unordered_map<const Term*, Value>;

bool HeadValsEqual(const HeadVals& a, const HeadVals& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [attr, val] : a) {
    bool found = false;
    for (const auto& [attr2, val2] : b) {
      if (attr == attr2) {
        if (!(val == val2)) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

const Value* FindHeadVal(const HeadVals& vals, int attr) {
  for (const auto& [a, v] : vals) {
    if (a == attr) return &v;
  }
  return nullptr;
}

/// Hash consistent with HeadValsEqual: commutative over the (attr, value)
/// pairs, since equality ignores pair order.
struct HeadValsHash {
  size_t operator()(const HeadVals& vals) const {
    size_t h = 0x51ed270b ^ vals.size();
    for (const auto& [attr, val] : vals) {
      size_t pair_hash = std::hash<int>{}(attr);
      pair_hash = pair_hash * 31 + val.Hash();
      h += pair_hash * 0x9e3779b97f4a7c15ULL;
    }
    return h;
  }
};

struct HeadValsEq {
  bool operator()(const HeadVals& a, const HeadVals& b) const {
    return HeadValsEqual(a, b);
  }
};

/// Flattens nested ANDs into a conjunct list (any formula flattens to >= 1
/// conjunct).
void FlattenAnd(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind == FormulaKind::kAnd) {
    for (const FormulaPtr& c : f.children) FlattenAnd(*c, out);
    return;
  }
  out->push_back(&f);
}

bool TermReferencesVar(const Term& t, std::string_view var) {
  return t.References(var);
}

/// Deep reference check, descending into nested collections (correlation)
/// but stopping where a nested collection's head shadows `var`.
bool FormulaReferencesVar(const Formula& f, std::string_view var);

bool CollectionReferencesVar(const Collection& c, std::string_view var) {
  if (EqualsIgnoreCase(c.head.relation, var)) return false;  // shadowed
  return c.body && FormulaReferencesVar(*c.body, var);
}

bool QuantifierReferencesVar(const Quantifier& q, std::string_view var) {
  for (const Binding& b : q.bindings) {
    if (EqualsIgnoreCase(b.var, var)) {
      // Re-bound: references below are to the new binding — but the range
      // itself is evaluated first.
      if (b.range_kind == RangeKind::kCollection && b.collection &&
          CollectionReferencesVar(*b.collection, var)) {
        return true;
      }
      return false;
    }
    if (b.range_kind == RangeKind::kCollection && b.collection &&
        CollectionReferencesVar(*b.collection, var)) {
      return true;
    }
  }
  if (q.grouping.has_value()) {
    for (const TermPtr& k : q.grouping->keys) {
      if (TermReferencesVar(*k, var)) return true;
    }
  }
  return q.body && FormulaReferencesVar(*q.body, var);
}

bool FormulaReferencesVar(const Formula& f, std::string_view var) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        if (FormulaReferencesVar(*c, var)) return true;
      }
      return false;
    case FormulaKind::kNot:
      return f.child && FormulaReferencesVar(*f.child, var);
    case FormulaKind::kExists:
      return f.quantifier && QuantifierReferencesVar(*f.quantifier, var);
    case FormulaKind::kPredicate:
      return (f.lhs && TermReferencesVar(*f.lhs, var)) ||
             (f.rhs && TermReferencesVar(*f.rhs, var));
    case FormulaKind::kNullTest:
      return f.null_arg && TermReferencesVar(*f.null_arg, var);
  }
  return false;
}

/// Detects a recursive self-reference to `name` (used as a named range).
bool FormulaHasRangeRef(const Formula& f, std::string_view name);

bool CollectionHasRangeRef(const Collection& c, std::string_view name) {
  if (EqualsIgnoreCase(c.head.relation, name)) return false;  // shadowed
  return c.body && FormulaHasRangeRef(*c.body, name);
}

bool FormulaHasRangeRef(const Formula& f, std::string_view name) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        if (FormulaHasRangeRef(*c, name)) return true;
      }
      return false;
    case FormulaKind::kNot:
      return f.child && FormulaHasRangeRef(*f.child, name);
    case FormulaKind::kExists:
      if (!f.quantifier) return false;
      for (const Binding& b : f.quantifier->bindings) {
        if (b.range_kind == RangeKind::kNamed &&
            EqualsIgnoreCase(b.relation, name)) {
          return true;
        }
        if (b.range_kind == RangeKind::kCollection && b.collection &&
            CollectionHasRangeRef(*b.collection, name)) {
          return true;
        }
      }
      return f.quantifier->body &&
             FormulaHasRangeRef(*f.quantifier->body, name);
    default:
      return false;
  }
}

/// Collects the binding sites through which a recursive collection ranges
/// over its own head `name`, descending into nested collections (stopping
/// where the name is shadowed). Clears `*monotone` when a site sits under
/// negation or inside a grouped (aggregating) scope — contexts where
/// delta-driven evaluation is unsound and the naive oracle must run.
void CollectRecursiveSites(const Formula& f, std::string_view name,
                           bool negated, bool grouped,
                           std::vector<const Binding*>* sites, bool* monotone);

void CollectRecursiveSitesInCollection(const Collection& c,
                                       std::string_view name, bool negated,
                                       bool grouped,
                                       std::vector<const Binding*>* sites,
                                       bool* monotone) {
  if (EqualsIgnoreCase(c.head.relation, name)) return;  // shadowed
  if (c.body) {
    CollectRecursiveSites(*c.body, name, negated, grouped, sites, monotone);
  }
}

void CollectRecursiveSites(const Formula& f, std::string_view name,
                           bool negated, bool grouped,
                           std::vector<const Binding*>* sites,
                           bool* monotone) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        CollectRecursiveSites(*c, name, negated, grouped, sites, monotone);
      }
      return;
    case FormulaKind::kNot:
      if (f.child) {
        CollectRecursiveSites(*f.child, name, true, grouped, sites, monotone);
      }
      return;
    case FormulaKind::kExists: {
      if (!f.quantifier) return;
      const bool in_group = grouped || f.quantifier->grouping.has_value();
      for (const Binding& b : f.quantifier->bindings) {
        if (b.range_kind == RangeKind::kNamed &&
            EqualsIgnoreCase(b.relation, name)) {
          sites->push_back(&b);
          if (negated || in_group) *monotone = false;
        }
        if (b.range_kind == RangeKind::kCollection && b.collection) {
          CollectRecursiveSitesInCollection(*b.collection, name, negated,
                                            in_group, sites, monotone);
        }
      }
      if (f.quantifier->body) {
        CollectRecursiveSites(*f.quantifier->body, name, negated, in_group,
                              sites, monotone);
      }
      return;
    }
    default:
      return;
  }
}

/// Collects all aggregate terms syntactically inside `f` (not descending
/// into nested quantifier scopes — their aggregates belong to them).
void CollectAggTerms(const Term& t, std::vector<const Term*>* out) {
  switch (t.kind) {
    case TermKind::kAggregate:
      out->push_back(&t);
      return;
    case TermKind::kArith:
      if (t.lhs) CollectAggTerms(*t.lhs, out);
      if (t.rhs) CollectAggTerms(*t.rhs, out);
      return;
    default:
      return;
  }
}

void CollectAggTerms(const Formula& f, std::vector<const Term*>* out) {
  switch (f.kind) {
    case FormulaKind::kPredicate:
      if (f.lhs) CollectAggTerms(*f.lhs, out);
      if (f.rhs) CollectAggTerms(*f.rhs, out);
      return;
    case FormulaKind::kNullTest:
      if (f.null_arg) CollectAggTerms(*f.null_arg, out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) CollectAggTerms(*c, out);
      return;
    case FormulaKind::kNot:
      if (f.child) CollectAggTerms(*f.child, out);
      return;
    case FormulaKind::kExists:
      return;
  }
}

/// If `f` is `H.attr = term` (or flipped) for head `head`, returns the
/// (attr, value-term) pair.
struct AssignmentShape {
  std::string attr;
  const Term* value = nullptr;
};

std::optional<AssignmentShape> MatchAssignment(const Formula& f,
                                               const std::string& head) {
  if (head.empty()) return std::nullopt;
  if (f.kind != FormulaKind::kPredicate || f.cmp_op != data::CmpOp::kEq) {
    return std::nullopt;
  }
  auto head_ref = [&](const TermPtr& t) {
    return t && t->kind == TermKind::kAttrRef && EqualsIgnoreCase(t->var, head);
  };
  const bool l = head_ref(f.lhs);
  const bool r = head_ref(f.rhs);
  if (l == r) return std::nullopt;
  const Term* value = l ? f.rhs.get() : f.lhs.get();
  if (value == nullptr || value->References(head)) return std::nullopt;
  AssignmentShape shape;
  shape.attr = ToLower(l ? f.lhs->attr : f.rhs->attr);
  shape.value = value;
  return shape;
}

// ---------------------------------------------------------------------------
// EvalImpl
// ---------------------------------------------------------------------------

struct EnvEntry {
  // Borrowed: AST binding/head names and fragment entries outlive the
  // environment stack, so entries never own the name (a per-row copy
  // otherwise dominates enumeration).
  const std::string* var = nullptr;
  const Schema* schema = nullptr;
  const Tuple* tuple = nullptr;
};

/// A self-owning environment fragment (for grouped scopes and join trees,
/// whose member rows must outlive streaming enumeration). `slot` is the
/// frame slot of the binding the entry restores (-1 under string-keyed
/// evaluation).
struct OwnedEntry {
  std::string var;
  const Schema* schema = nullptr;
  Tuple tuple;
  int slot = -1;
};
using Fragment = std::vector<OwnedEntry>;

/// One frame cell: the row currently bound to a slot (nullptr = unbound).
struct FrameEntry {
  const Schema* schema = nullptr;
  const Tuple* tuple = nullptr;
};

enum class ScopeMode { kBoolean, kCollect };

class EvalImpl {
 public:
  /// `plan` carries the slot binder's output (Analysis::term_slots & co.);
  /// nullptr selects the string-keyed reference path.
  EvalImpl(const data::Database& db, const EvalOptions& options,
           const ExternalRegistry& externals, const Analysis* plan,
           EvalStats* stats)
      : db_(db), options_(options), externals_(externals), plan_(plan),
        stats_(stats) {
    if (plan_ != nullptr) {
      frame_.assign(static_cast<size_t>(plan_->frame_slots), FrameEntry{});
    }
  }

  Result<Relation> RunProgram(const Program& program) {
    ARC_RETURN_IF_ERROR(RegisterDefinitions(program));
    if (!program.main.collection) {
      return InvalidArgument(
          "program's main query is a sentence; use EvalSentence");
    }
    return EvalCollection(*program.main.collection);
  }

  Result<TriBool> RunSentence(const Program& program) {
    ARC_RETURN_IF_ERROR(RegisterDefinitions(program));
    if (!program.main.sentence) {
      return InvalidArgument("program's main query is not a sentence");
    }
    return EvalBool(*program.main.sentence, nullptr);
  }

  Result<Relation> EvalCollection(const Collection& c) {
    // Recursive iff the body ranges over the collection's own head (§2.9).
    if (c.body && FormulaHasRangeRef(*c.body, c.head.relation)) {
      return EvalRecursive(c);
    }
    return EvalOnce(c);
  }

 private:

  Status RegisterDefinitions(const Program& program) {
    for (const Definition& def : program.definitions) {
      if (!def.collection) return InvalidArgument("empty definition");
      const std::string key = ToLower(def.collection->head.relation);
      if (def.kind == DefKind::kAbstract) {
        abstract_defs_[key] = def.collection.get();
      } else {
        ARC_ASSIGN_OR_RETURN(Relation rel, EvalCollection(*def.collection));
        defs_.emplace(key, std::move(rel));
      }
    }
    defs_ready_ = true;
    return Status::Ok();
  }

  // ---- collections ---------------------------------------------------------

  /// One pass over the body, emitting rows into `out`. With `unique` the
  /// emitted rows dedup on insert (first occurrence wins, same order the
  /// post-hoc Distinct pass produced); callers decide whether set
  /// semantics apply.
  Status EvalBody(const Collection& c, Relation* out, bool unique = false) {
    heads_.push_back(&c);
    Status status = SpineWalk(*c.body, c, out, unique);
    heads_.pop_back();
    return status;
  }

  /// Innermost collection head in scope (nullptr outside any collection).
  const Collection* HeadCollection() const {
    return heads_.empty() ? nullptr : heads_.back();
  }
  const std::string& HeadName() const {
    return heads_.empty() ? kNoHead : heads_.back()->head.relation;
  }

  /// Stable Schema over a collection's head attributes; doubles as the
  /// position map for head valuations (HeadVals keys).
  const Schema& HeadSchema(const Collection* c) {
    auto it = head_schemas_.find(c);
    if (it == head_schemas_.end()) {
      it = head_schemas_.emplace(c, Schema(c->head.attrs)).first;
    }
    return it->second;
  }

  /// Position of `lowered_attr` in the head of `c`; unknown attributes get
  /// a stable negative id so distinct names never collide.
  int HeadPos(const Collection* c, const std::string& lowered_attr) {
    const int idx = HeadSchema(c).IndexOf(lowered_attr);
    if (idx >= 0) return idx;
    const int next = -2 - static_cast<int>(extra_attr_ids_.size());
    return extra_attr_ids_.emplace(lowered_attr, next).first->second;
  }

  Result<Relation> EvalOnce(const Collection& c) {
    Relation out(Schema{c.head.attrs});
    const bool set_mode = options_.conventions.multiplicity ==
                          Conventions::Multiplicity::kSet;
    ARC_RETURN_IF_ERROR(EvalBody(c, &out, /*unique=*/set_mode));
    return out;
  }

  Result<Relation> EvalRecursive(const Collection& c) {
    std::vector<const Binding*> sites;
    bool monotone = true;
    CollectRecursiveSites(*c.body, c.head.relation, /*negated=*/false,
                          /*grouped=*/false, &sites, &monotone);
    if (options_.recursion_strategy == RecursionStrategy::kSemiNaive &&
        monotone && !sites.empty()) {
      return EvalRecursiveSemiNaive(c, sites);
    }
    return EvalRecursiveNaive(c);
  }

  /// Naive fixpoint: re-evaluate the full body each round against the
  /// accumulated relation. Kept as the differential-testing oracle and as
  /// the fallback for non-monotone self-references.
  Result<Relation> EvalRecursiveNaive(const Collection& c) {
    ++stats_->naive_fixpoints;
    const std::string key = ToLower(c.head.relation);
    Relation current((Schema{c.head.attrs}));
    current.EnableRowIndex();
    overlay_.emplace_back(key, &current);
    Status status = Status::Ok();
    for (int64_t iter = 0;; ++iter) {
      if (iter >= options_.max_fixpoint_iterations) {
        status = EvalError("recursive collection '" + c.head.relation +
                           "' did not reach a fixpoint after " +
                           std::to_string(iter) + " iterations");
        break;
      }
      ++stats_->fixpoint_iterations;
      auto next = EvalOnce(c);
      if (!next.ok()) {
        status = next.status();
        break;
      }
      // Least fixpoint: accumulate and deduplicate (recursion is evaluated
      // under set semantics; the paper's §2.9 semantics). The row index
      // makes the merge a hash probe per tuple instead of a rescan.
      int64_t added = 0;
      for (const Tuple& t : next->rows()) {
        if (current.AddUnique(t)) {
          ++added;
        } else {
          ++stats_->dedup_hits;
        }
      }
      stats_->fixpoint_delta_tuples += added;
      if (added == 0) break;
    }
    overlay_.pop_back();
    // `current` is a stack local: drop its attribute indexes so a later
    // fixpoint reusing the address never sees a stale watermark.
    PurgeIndexes(&current);
    ARC_RETURN_IF_ERROR(status);
    return current;
  }

  /// Semi-naive fixpoint: round 0 evaluates the full body against the
  /// empty relation; every later round evaluates one body variant per
  /// recursive binding site, with that site ranging over the previous
  /// round's delta and the remaining sites over the full accumulated
  /// relation (the delta overlay — mirroring src/datalog/eval.cc's
  /// delta-tag mechanism).
  Result<Relation> EvalRecursiveSemiNaive(
      const Collection& c, const std::vector<const Binding*>& sites) {
    const std::string key = ToLower(c.head.relation);
    const Schema schema{c.head.attrs};
    Relation current(schema);
    current.EnableRowIndex();
    Relation delta(schema);
    overlay_.emplace_back(key, &current);
    // A nested fixpoint may be running inside an enclosing delta round;
    // suspend and restore its site mapping around ours.
    const Binding* saved_site = delta_site_;
    const Relation* saved_rel = delta_rel_;
    Status status = Status::Ok();
    for (int64_t iter = 0;; ++iter) {
      if (iter >= options_.max_fixpoint_iterations) {
        status = EvalError("recursive collection '" + c.head.relation +
                           "' did not reach a fixpoint after " +
                           std::to_string(iter) + " iterations");
        break;
      }
      ++stats_->fixpoint_iterations;
      Relation produced(schema);
      if (iter == 0) {
        status = EvalBody(c, &produced);
      } else {
        for (const Binding* site : sites) {
          delta_site_ = site;
          delta_rel_ = &delta;
          status = EvalBody(c, &produced);
          delta_site_ = saved_site;
          delta_rel_ = saved_rel;
          if (!status.ok()) break;
        }
      }
      if (!status.ok()) break;
      Relation next_delta(schema);
      for (const Tuple& t : produced.rows()) {
        if (current.AddUnique(t)) {
          next_delta.Add(t);
        } else {
          ++stats_->dedup_hits;
        }
      }
      stats_->fixpoint_delta_tuples += next_delta.size();
      if (next_delta.empty()) break;
      // The delta is replaced wholesale each round (unlike the accumulator,
      // which only grows), so its indexes must not be extended incrementally.
      PurgeIndexes(&delta);
      delta = std::move(next_delta);
    }
    overlay_.pop_back();
    // Stack locals: drop their indexes so a later fixpoint reusing these
    // addresses never sees a stale watermark.
    PurgeIndexes(&current);
    PurgeIndexes(&delta);
    ARC_RETURN_IF_ERROR(status);
    return current;
  }

  /// Walks the generating spine: top-level ORs and the top quantifier
  /// scope(s) drive multiplicity; everything else contributes set-style.
  Status SpineWalk(const Formula& f, const Collection& c, Relation* out,
                   bool unique) {
    switch (f.kind) {
      case FormulaKind::kOr:
        for (const FormulaPtr& child : f.children) {
          ARC_RETURN_IF_ERROR(SpineWalk(*child, c, out, unique));
        }
        return Status::Ok();
      case FormulaKind::kExists: {
        auto rows = ScopeCollect(*f.quantifier);
        if (!rows.ok()) return rows.status();
        for (const HeadVals& vals : *rows) {
          ARC_RETURN_IF_ERROR(EmitRow(vals, c, out, unique));
        }
        return Status::Ok();
      }
      default: {
        auto sols = Solutions(f, nullptr);
        if (!sols.ok()) return sols.status();
        for (const HeadVals& vals : *sols) {
          ARC_RETURN_IF_ERROR(EmitRow(vals, c, out, unique));
        }
        return Status::Ok();
      }
    }
  }

  Status EmitRow(const HeadVals& vals, const Collection& c, Relation* out,
                 bool unique) {
    Tuple row;
    const int n = static_cast<int>(c.head.attrs.size());
    for (int i = 0; i < n; ++i) {
      const Value* v = FindHeadVal(vals, i);
      if (v == nullptr) {
        return EvalError("head attribute '" + c.head.relation + "." +
                         c.head.attrs[static_cast<size_t>(i)] +
                         "' was not assigned (unsafe head)");
      }
      row.Append(*v);
    }
    if (unique) {
      out->AddUnique(std::move(row));
    } else {
      out->Add(std::move(row));
    }
    return Status::Ok();
  }

  // ---- environment ---------------------------------------------------------

  const EnvEntry* LookupVar(std::string_view var) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (EqualsIgnoreCase(*it->var, var)) return &*it;
    }
    return nullptr;
  }

  // ---- frame (slot-compiled path) -------------------------------------

  /// Frame slot of a binding / collection head, or -1 when the slot plan is
  /// off (string-keyed mode, or analysis did not cover the node).
  int SlotOfBinding(const Binding* b) const {
    if (plan_ == nullptr) return -1;
    auto it = plan_->binding_slots.find(b);
    return it == plan_->binding_slots.end() ? -1 : it->second;
  }
  int SlotOfHead(const Collection* c) const {
    if (plan_ == nullptr) return -1;
    auto it = plan_->head_slots.find(c);
    return it == plan_->head_slots.end() ? -1 : it->second;
  }

  /// Binds `slot` to a row, returning the previous cell for LIFO restore
  /// (slots rebind on recursive module invocation and shadowing scopes).
  FrameEntry FrameBind(int slot, const Schema* schema, const Tuple* tuple) {
    if (slot < 0) return FrameEntry{};
    FrameEntry prev = frame_[static_cast<size_t>(slot)];
    frame_[static_cast<size_t>(slot)] = FrameEntry{schema, tuple};
    ++stats_->frames_pushed;
    return prev;
  }
  void FrameRestore(int slot, const FrameEntry& prev) {
    if (slot >= 0) frame_[static_cast<size_t>(slot)] = prev;
  }

  void PushFragment(const Fragment& frag) {
    for (const OwnedEntry& e : frag) {
      env_.push_back({&e.var, e.schema, &e.tuple});
      frame_saves_.push_back(FrameBind(e.slot, e.schema, &e.tuple));
    }
  }
  void PopFragment(const Fragment& frag) {
    for (size_t i = frag.size(); i-- > 0;) {
      FrameRestore(frag[i].slot, frame_saves_.back());
      frame_saves_.pop_back();
    }
    env_.resize(env_.size() - frag.size());
  }

  // ---- terms ------------------------------------------------------------

  Result<Value> EvalTerm(const Term& t, const AggCtx* agg) {
    switch (t.kind) {
      case TermKind::kAttrRef: {
        if (plan_ != nullptr) {
          auto it = plan_->term_slots.find(&t);
          if (it != plan_->term_slots.end() && it->second.frame_slot >= 0) {
            const FrameEntry& fe =
                frame_[static_cast<size_t>(it->second.frame_slot)];
            // Unbound slot (e.g. a non-module head reference evaluated as a
            // value) falls through to the dynamic path and its exact errors.
            if (fe.tuple != nullptr) {
              ++stats_->slot_reads;
              int idx = it->second.attr_index;
              if (idx < 0) idx = fe.schema->IndexOf(t.attr);
              if (idx < 0) {
                return EvalError("relation bound to '" + t.var +
                                 "' has no attribute '" + t.attr + "'");
              }
              if (idx >= fe.tuple->size()) {
                return EvalError("tuple width mismatch for '" + t.var + "'");
              }
              return fe.tuple->at(idx);
            }
          }
        }
        const EnvEntry* e = LookupVar(t.var);
        if (e == nullptr) {
          return NotFound("unbound variable '" + t.var + "'");
        }
        const int idx = e->schema->IndexOf(t.attr);
        if (idx < 0) {
          return EvalError("relation bound to '" + t.var +
                           "' has no attribute '" + t.attr + "'");
        }
        if (idx >= e->tuple->size()) {
          return EvalError("tuple width mismatch for '" + t.var + "'");
        }
        return e->tuple->at(idx);
      }
      case TermKind::kLiteral:
        return t.literal;
      case TermKind::kArith: {
        ARC_ASSIGN_OR_RETURN(Value l, EvalTerm(*t.lhs, agg));
        ARC_ASSIGN_OR_RETURN(Value r, EvalTerm(*t.rhs, agg));
        return data::Arith(t.arith_op, l, r);
      }
      case TermKind::kAggregate: {
        if (agg != nullptr) {
          auto it = agg->find(&t);
          if (it != agg->end()) return it->second;
        }
        return EvalError(std::string("aggregate ") + AggFuncName(t.agg_func) +
                         " evaluated outside a grouping scope");
      }
    }
    return EvalError("bad term");
  }

  /// Zero-copy term access: returns a pointer to the value when the term
  /// resolves to storage that outlives the current combination (a bound
  /// attribute, a literal, a cached aggregate), nullptr when the term needs
  /// materialization or would fail — callers fall back to EvalTerm, which
  /// re-derives the exact error. The pointer is valid until the enclosing
  /// binding is popped.
  const Value* EvalTermFast(const Term& t, const AggCtx* agg) {
    switch (t.kind) {
      case TermKind::kAttrRef: {
        if (plan_ != nullptr) {
          auto it = plan_->term_slots.find(&t);
          if (it != plan_->term_slots.end() && it->second.frame_slot >= 0) {
            const FrameEntry& fe =
                frame_[static_cast<size_t>(it->second.frame_slot)];
            if (fe.tuple != nullptr) {
              const int idx = it->second.attr_index;
              if (idx < 0 || idx >= fe.tuple->size()) return nullptr;
              ++stats_->slot_reads;
              return &fe.tuple->at(idx);
            }
          }
        }
        const EnvEntry* e = LookupVar(t.var);
        if (e == nullptr) return nullptr;
        const int idx = e->schema->IndexOf(t.attr);
        if (idx < 0 || idx >= e->tuple->size()) return nullptr;
        return &e->tuple->at(idx);
      }
      case TermKind::kLiteral:
        return &t.literal;
      case TermKind::kAggregate:
        if (agg != nullptr) {
          auto it = agg->find(&t);
          if (it != agg->end()) return &it->second;
        }
        return nullptr;
      default:  // arithmetic needs materialization
        return nullptr;
    }
  }

  // ---- boolean evaluation ---------------------------------------------------

  Result<TriBool> EvalBool(const Formula& f, const AggCtx* agg) {
    switch (f.kind) {
      case FormulaKind::kAnd: {
        TriBool acc = TriBool::kTrue;
        for (const FormulaPtr& c : f.children) {
          ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*c, agg));
          acc = data::TriAnd(acc, v);
          if (acc == TriBool::kFalse) return acc;
        }
        return acc;
      }
      case FormulaKind::kOr: {
        TriBool acc = TriBool::kFalse;
        for (const FormulaPtr& c : f.children) {
          ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*c, agg));
          acc = data::TriOr(acc, v);
          if (acc == TriBool::kTrue) return acc;
        }
        return acc;
      }
      case FormulaKind::kNot: {
        ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*f.child, agg));
        return data::TriNot(v);
      }
      case FormulaKind::kExists: {
        // Quantifiers collapse unknown: the conceptual strategy yields a
        // combination only when the body is true (matches SQL EXISTS).
        bool found = false;
        ARC_RETURN_IF_ERROR(
            ScopeRun(*f.quantifier, ScopeMode::kBoolean, nullptr, &found));
        return data::FromBool(found);
      }
      case FormulaKind::kPredicate: {
        Value lbuf, rbuf;
        const Value* l = EvalTermFast(*f.lhs, agg);
        if (l == nullptr) {
          ARC_ASSIGN_OR_RETURN(lbuf, EvalTerm(*f.lhs, agg));
          l = &lbuf;
        }
        const Value* r = EvalTermFast(*f.rhs, agg);
        if (r == nullptr) {
          ARC_ASSIGN_OR_RETURN(rbuf, EvalTerm(*f.rhs, agg));
          r = &rbuf;
        }
        return data::Compare(f.cmp_op, *l, *r,
                             options_.conventions.null_logic);
      }
      case FormulaKind::kNullTest: {
        const Value* v = EvalTermFast(*f.null_arg, agg);
        Value vbuf;
        if (v == nullptr) {
          ARC_ASSIGN_OR_RETURN(vbuf, EvalTerm(*f.null_arg, agg));
          v = &vbuf;
        }
        return data::FromBool(v->is_null() != f.null_negated);
      }
    }
    return EvalError("bad formula");
  }

  // ---- solutions (head valuations) ----------------------------------------

  /// Assignment-predicate shape compiled against the head's position map.
  struct AssignPlan {
    bool is_assignment = false;
    int pos = -1;
    const Term* value = nullptr;
  };

  /// Resolves whether `f` assigns a head attribute, and to which position.
  /// Slot mode caches per formula (a formula sits under one static head);
  /// string mode re-derives the shape per touch, as the pre-slot evaluator
  /// did.
  AssignPlan AssignPlanFor(const Formula& f, const Collection* head_c) {
    if (plan_ != nullptr) {
      auto it = assign_plans_.find(&f);
      if (it != assign_plans_.end()) return it->second;
    }
    AssignPlan ap;
    if (head_c != nullptr) {
      auto assign = MatchAssignment(f, head_c->head.relation);
      if (assign.has_value()) {
        ap.is_assignment = true;
        ap.pos = HeadPos(head_c, assign->attr);
        ap.value = assign->value;
      }
    }
    if (plan_ != nullptr) assign_plans_.emplace(&f, ap);
    return ap;
  }

  /// Does the quantifier involve the enclosing head (assignments inside)?
  /// Determines whether an EXISTS contributes valuations or is a pure
  /// existence test. Static per quantifier; cached in slot mode.
  bool HeadInvolved(const Quantifier& q, const std::string& head) {
    if (plan_ != nullptr) {
      auto it = head_involved_.find(&q);
      if (it != head_involved_.end()) return it->second;
      const bool involved = QuantifierReferencesVar(q, head);
      head_involved_.emplace(&q, involved);
      return involved;
    }
    return QuantifierReferencesVar(q, head);
  }

  Result<std::vector<HeadVals>> Solutions(const Formula& f, const AggCtx* agg) {
    const Collection* head_c = HeadCollection();
    const std::string& head = HeadName();
    switch (f.kind) {
      case FormulaKind::kPredicate: {
        AssignPlan assign = AssignPlanFor(f, head_c);
        if (assign.is_assignment) {
          std::vector<HeadVals> out;
          const Value* fast = EvalTermFast(*assign.value, agg);
          if (fast != nullptr) {
            out.push_back({{assign.pos, *fast}});
          } else {
            ARC_ASSIGN_OR_RETURN(Value v, EvalTerm(*assign.value, agg));
            out.push_back({{assign.pos, std::move(v)}});
          }
          return out;
        }
        break;  // ordinary predicate: boolean below
      }
      case FormulaKind::kAnd: {
        std::vector<HeadVals> acc;
        acc.emplace_back();  // one empty valuation
        for (const FormulaPtr& c : f.children) {
          ARC_ASSIGN_OR_RETURN(std::vector<HeadVals> next, Solutions(*c, agg));
          acc = MergeProduct(acc, next);
          if (acc.empty()) return acc;
        }
        return acc;
      }
      case FormulaKind::kOr: {
        HeadValsSet acc(stats_);
        for (const FormulaPtr& c : f.children) {
          ARC_ASSIGN_OR_RETURN(std::vector<HeadVals> next, Solutions(*c, agg));
          for (HeadVals& hv : next) acc.Add(std::move(hv));
        }
        return acc.Take();
      }
      case FormulaKind::kExists: {
        // Fast path: no head involvement → pure existence test.
        if (head_c == nullptr || !HeadInvolved(*f.quantifier, head)) {
          break;  // boolean below
        }
        std::vector<HeadVals> acc;
        ARC_RETURN_IF_ERROR(
            ScopeRun(*f.quantifier, ScopeMode::kCollect, &acc, nullptr));
        // Solutions are sets: deduplicate.
        HeadValsSet dedup(stats_);
        for (HeadVals& hv : acc) dedup.Add(std::move(hv));
        return dedup.Take();
      }
      default:
        break;
    }
    ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(f, agg));
    std::vector<HeadVals> out;
    if (data::IsTrue(v)) out.emplace_back();
    return out;
  }

  /// Order-preserving set of head valuations with O(1) membership
  /// (replaces the former quadratic linear-scan accumulation).
  class HeadValsSet {
   public:
    explicit HeadValsSet(EvalStats* stats) : stats_(stats) {}

    void Add(HeadVals hv) {
      auto [it, inserted] = seen_.insert(std::move(hv));
      if (inserted) {
        order_.push_back(&*it);  // unordered_set nodes are address-stable
      } else {
        ++stats_->dedup_hits;
      }
    }

    std::vector<HeadVals> Take() const {
      std::vector<HeadVals> out;
      out.reserve(order_.size());
      for (const HeadVals* hv : order_) out.push_back(*hv);
      return out;
    }

   private:
    std::unordered_set<HeadVals, HeadValsHash, HeadValsEq> seen_;
    std::vector<const HeadVals*> order_;
    EvalStats* stats_;
  };

  /// Cross product of partial valuations; conflicting re-assignments act as
  /// equality constraints (combinations with differing values drop out).
  static std::vector<HeadVals> MergeProduct(const std::vector<HeadVals>& a,
                                            const std::vector<HeadVals>& b) {
    std::vector<HeadVals> out;
    out.reserve(a.size() * b.size());
    for (const HeadVals& x : a) {
      for (const HeadVals& y : b) {
        HeadVals merged = x;
        bool consistent = true;
        for (const auto& [attr, val] : y) {
          const Value* existing = FindHeadVal(merged, attr);
          if (existing != nullptr) {
            if (!(*existing == val)) {
              consistent = false;
              break;
            }
          } else {
            merged.push_back({attr, val});
          }
        }
        if (consistent) out.push_back(std::move(merged));
      }
    }
    return out;
  }

  /// Collect-mode scope evaluation used by the generating spine: one
  /// emission per combination (or per group); within a combination,
  /// solutions form a set.
  Result<std::vector<HeadVals>> ScopeCollect(const Quantifier& q) {
    std::vector<HeadVals> out;
    ARC_RETURN_IF_ERROR(ScopeRun(q, ScopeMode::kCollect, &out, nullptr));
    return out;
  }

  // ---- scope evaluation -----------------------------------------------------

  /// Static shape of one quantifier scope: flattened conjuncts, filter
  /// placement, and the grouped/join-tree conjunct splits. All of it depends
  /// only on the AST and the (static) enclosing head, so slot mode compiles
  /// it once per quantifier; string mode rebuilds it per entry, as the
  /// pre-slot evaluator did.
  struct ScopePlan {
    std::vector<const Formula*> conjuncts;
    /// Plain scopes: pure filters runnable once `i` bindings are bound.
    /// Grouped scopes without a join tree: same, computed over `pre`.
    std::vector<std::vector<const Formula*>> filters_at;
    /// Join-tree scopes: conjuncts to re-run per fragment (head/aggregate).
    std::vector<const Formula*> remaining;
    /// Grouped scopes: pre-grouping filters vs. group-level conjuncts, and
    /// the aggregate terms the group must compute.
    std::vector<const Formula*> pre;
    std::vector<const Formula*> group_level;
    std::vector<const Term*> agg_terms;
    /// Slot mode only: the body (or join-scope remainder) compiled to a
    /// straight-line step sequence — each conjunct is either a head-attr
    /// assignment or a head-free filter, so a combination yields at most
    /// one valuation and needs no MergeProduct/dedup machinery.
    struct FlatStep {
      int pos = -1;                     // head position; -1 → filter
      const Term* value = nullptr;      // assignment RHS
      const Formula* filter = nullptr;  // head-free boolean conjunct
    };
    bool flat = false;
    std::vector<FlatStep> steps;
    bool remaining_flat = false;
    std::vector<FlatStep> remaining_steps;
  };

  void BuildScopePlan(const Quantifier& q, ScopePlan* p) {
    if (q.body) FlattenAnd(*q.body, &p->conjuncts);
    const std::string& head = HeadName();
    if (q.grouping.has_value()) {
      for (const Formula* c : p->conjuncts) {
        const bool has_agg = c->ContainsAggregate();
        const bool touches_head =
            head != kNoHead && FormulaReferencesVar(*c, head);
        if (has_agg || touches_head) {
          p->group_level.push_back(c);
        } else {
          p->pre.push_back(c);
        }
      }
      for (const Formula* c : p->group_level) CollectAggTerms(*c, &p->agg_terms);
      if (!q.join_tree) {
        p->filters_at.resize(q.bindings.size() + 1);
        AssignEagerFilters(q, p->pre, &p->filters_at);
      }
      return;
    }
    if (q.join_tree) {
      for (const Formula* c : p->conjuncts) {
        if (c->ContainsAggregate() ||
            (head != kNoHead && FormulaReferencesVar(*c, head))) {
          p->remaining.push_back(c);
        }
      }
      if (plan_ != nullptr) {
        p->remaining_flat = BuildFlatSteps(p->remaining, &p->remaining_steps);
      }
      return;
    }
    p->filters_at.resize(q.bindings.size() + 1);
    AssignEagerFilters(q, p->conjuncts, &p->filters_at);
    if (plan_ != nullptr) p->flat = BuildFlatSteps(p->conjuncts, &p->steps);
  }

  /// Compiles a conjunct list into ScopePlan::FlatStep form. Succeeds only
  /// when every conjunct is either a head-attribute assignment or provably
  /// head-free (then Solutions() degenerates to EvalBool()), so the flat
  /// walk reproduces the general path's left-to-right evaluation order,
  /// early exits, and equality-constraint semantics exactly.
  bool BuildFlatSteps(const std::vector<const Formula*>& conjuncts,
                      std::vector<ScopePlan::FlatStep>* steps) {
    const Collection* head_c = HeadCollection();
    const std::string& head = HeadName();
    for (const Formula* c : conjuncts) {
      if (c->ContainsAggregate()) return false;
      AssignPlan ap = AssignPlanFor(*c, head_c);
      if (ap.is_assignment) {
        steps->push_back({ap.pos, ap.value, nullptr});
        continue;
      }
      switch (c->kind) {
        case FormulaKind::kPredicate:
        case FormulaKind::kNullTest:
        case FormulaKind::kNot:
        case FormulaKind::kExists:
          break;
        default:  // kOr evaluates all children in Solutions(); keep general
          return false;
      }
      if (head != kNoHead && FormulaReferencesVar(*c, head)) return false;
      steps->push_back({-1, nullptr, c});
    }
    return true;
  }

  /// Evaluates a flat-compiled combination: at most one valuation, written
  /// straight into `collect_out` with no intermediate solution vectors.
  Status EmitFlatSteps(const std::vector<ScopePlan::FlatStep>& steps,
                       std::vector<HeadVals>* collect_out) {
    HeadVals out;
    for (const ScopePlan::FlatStep& s : steps) {
      if (s.filter != nullptr) {
        ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*s.filter, nullptr));
        if (!data::IsTrue(v)) return Status::Ok();
        continue;
      }
      Value vbuf;
      const Value* v = EvalTermFast(*s.value, nullptr);
      if (v == nullptr) {
        ARC_ASSIGN_OR_RETURN(vbuf, EvalTerm(*s.value, nullptr));
        v = &vbuf;
      }
      const Value* existing = FindHeadVal(out, s.pos);
      if (existing != nullptr) {
        // Re-assignment acts as an equality constraint (MergeProduct).
        if (!(*existing == *v)) return Status::Ok();
      } else {
        out.push_back({s.pos, *v});
      }
    }
    collect_out->push_back(std::move(out));
    return Status::Ok();
  }

  const ScopePlan& ScopePlanFor(const Quantifier& q, ScopePlan* local) {
    if (plan_ == nullptr) {
      BuildScopePlan(q, local);
      return *local;
    }
    auto it = scope_plans_.find(&q);
    if (it != scope_plans_.end()) return it->second;
    ScopePlan p;
    BuildScopePlan(q, &p);
    return scope_plans_.emplace(&q, std::move(p)).first->second;
  }

  Status ScopeRun(const Quantifier& q, ScopeMode mode,
                  std::vector<HeadVals>* collect_out, bool* bool_out) {
    ++stats_->scope_evaluations;
    ScopePlan local;
    const ScopePlan& sp = ScopePlanFor(q, &local);
    if (q.grouping.has_value()) {
      return ScopeRunGrouped(q, sp, mode, collect_out, bool_out);
    }
    if (q.join_tree) {
      // Join conditions are consumed by the join plan; re-evaluating them on
      // null-padded rows would wrongly reject outer-join padding, so only the
      // remaining (head/aggregate) conjuncts run per fragment.
      ARC_ASSIGN_OR_RETURN(std::vector<Fragment> frags,
                           EvalJoinScope(q, sp.conjuncts));
      for (const Fragment& frag : frags) {
        PushFragment(frag);
        Status s = mode == ScopeMode::kCollect && sp.remaining_flat
                       ? EmitFlatSteps(sp.remaining_steps, collect_out)
                       : EmitConjuncts(sp.remaining, mode, collect_out,
                                       bool_out);
        PopFragment(frag);
        ARC_RETURN_IF_ERROR(s);
        if (mode == ScopeMode::kBoolean && *bool_out) return Status::Ok();
      }
      return Status::Ok();
    }
    // Plain nested loops with eager filter pushdown.
    bool stop = false;
    return EnumerateBindings(q, sp, 0, mode, collect_out, bool_out, &stop);
  }

  /// Evaluates only the given conjuncts in the current combination (used
  /// for join-annotation scopes, where filters were consumed by the plan).
  Status EmitConjuncts(const std::vector<const Formula*>& conjuncts,
                       ScopeMode mode, std::vector<HeadVals>* collect_out,
                       bool* bool_out) {
    if (mode == ScopeMode::kBoolean) {
      for (const Formula* c : conjuncts) {
        ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*c, nullptr));
        if (!data::IsTrue(v)) return Status::Ok();
      }
      *bool_out = true;
      return Status::Ok();
    }
    std::vector<HeadVals> sols;
    sols.emplace_back();
    for (const Formula* c : conjuncts) {
      ARC_ASSIGN_OR_RETURN(std::vector<HeadVals> next, Solutions(*c, nullptr));
      sols = MergeProduct(sols, next);
      if (sols.empty()) return Status::Ok();
    }
    // A single solution cannot self-duplicate: skip the hashing dedup.
    if (sols.size() == 1) {
      collect_out->push_back(std::move(sols.front()));
      return Status::Ok();
    }
    HeadValsSet dedup(stats_);
    for (HeadVals& hv : sols) dedup.Add(std::move(hv));
    for (HeadVals& hv : dedup.Take()) collect_out->push_back(std::move(hv));
    return Status::Ok();
  }

  /// Evaluates the body in the current (fully bound) combination.
  Status ScopeEmit(const Quantifier& q, const ScopePlan& sp, ScopeMode mode,
                   std::vector<HeadVals>* collect_out, bool* bool_out) {
    if (mode == ScopeMode::kBoolean) {
      ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*q.body, nullptr));
      if (data::IsTrue(v)) *bool_out = true;
      return Status::Ok();
    }
    if (sp.flat) return EmitFlatSteps(sp.steps, collect_out);
    ARC_ASSIGN_OR_RETURN(std::vector<HeadVals> sols, Solutions(*q.body, nullptr));
    // Within one combination, solutions form a set; a single solution
    // cannot self-duplicate, so skip the hashing dedup.
    if (sols.size() == 1) {
      collect_out->push_back(std::move(sols.front()));
      return Status::Ok();
    }
    HeadValsSet dedup(stats_);
    for (HeadVals& hv : sols) dedup.Add(std::move(hv));
    for (HeadVals& hv : dedup.Take()) collect_out->push_back(std::move(hv));
    return Status::Ok();
  }

  /// For a named binding, finds an equality conjunct `b.var.attr = term`
  /// whose other side references neither b.var nor any later binding of the
  /// scope — usable as a hash-index probe.
  struct Probe {
    int attr_index = -1;
    const Term* term = nullptr;
  };

  std::optional<Probe> FindProbe(const Quantifier& q, size_t idx,
                                 const std::vector<const Formula*>& conjuncts,
                                 const Schema& schema) {
    const Binding& b = q.bindings[idx];
    const std::string& head = HeadName();
    for (const Formula* c : conjuncts) {
      if (c->kind != FormulaKind::kPredicate ||
          c->cmp_op != data::CmpOp::kEq) {
        continue;
      }
      auto try_side = [&](const TermPtr& ref,
                          const TermPtr& val) -> std::optional<Probe> {
        if (!ref || ref->kind != TermKind::kAttrRef) return std::nullopt;
        if (!EqualsIgnoreCase(ref->var, b.var)) return std::nullopt;
        const int attr = schema.IndexOf(ref->attr);
        if (attr < 0) return std::nullopt;
        if (!val || val->References(b.var)) return std::nullopt;
        if (head != kNoHead && val->References(head)) return std::nullopt;
        for (size_t j = idx; j < q.bindings.size(); ++j) {
          if (val->References(q.bindings[j].var)) return std::nullopt;
        }
        Probe probe;
        probe.attr_index = attr;
        probe.term = val.get();
        return probe;
      };
      if (auto probe = try_side(c->lhs, c->rhs)) return probe;
      if (auto probe = try_side(c->rhs, c->lhs)) return probe;
    }
    return std::nullopt;
  }

  struct RangeRel {
    const Relation* rel = nullptr;
    std::shared_ptr<Relation> owned;  // for materialized nested collections
    /// True when `rel` has a stable address for as long as its indexes can
    /// live — db relations, materialized definitions, caches — required for
    /// address-keyed hash indexes. In slot mode fixpoint overlay relations
    /// are also indexable (marked `fixpoint`): their indexes are maintained
    /// incrementally and purged when contents are replaced or the fixpoint
    /// exits. The string-keyed reference path keeps them unindexed, as the
    /// pre-slot evaluator did.
    bool indexable = false;
    /// Resolved through a recursion overlay (accumulator or delta).
    bool fixpoint = false;
  };

  using AttrIndex = std::unordered_map<Value, std::vector<int>, data::ValueHash>;

  /// One attribute hash index plus its append watermark: rows past
  /// `rows_indexed` have not been indexed yet. Fixpoint accumulators are
  /// append-only between rounds, so the same table is extended incrementally
  /// across delta rounds instead of rebuilt (tables over relations whose
  /// contents are *replaced* — the delta itself — are purged instead; see
  /// PurgeIndexes).
  struct AttrIndexEntry {
    AttrIndex index;
    size_t rows_indexed = 0;
  };

  /// Hash index over one attribute of a relation, keyed by relation address
  /// (stable for db/defs/cached relations and for fixpoint accumulators
  /// while their fixpoint runs).
  const AttrIndex* GetIndex(const Relation* rel, int attr, bool fixpoint) {
    const auto key = std::make_pair(static_cast<const void*>(rel), attr);
    AttrIndexEntry& e = attr_indexes_[key];
    const auto& rows = rel->rows();
    if (fixpoint && e.rows_indexed > 0 && rows.size() > e.rows_indexed) {
      // A later delta round extends the table built by an earlier round.
      ++stats_->join_table_reuses;
    }
    for (size_t i = e.rows_indexed; i < rows.size(); ++i) {
      const Value& v = rows[i].at(attr);
      if (v.is_null()) continue;  // equality with null never holds
      e.index[v].push_back(static_cast<int>(i));
    }
    e.rows_indexed = rows.size();
    return &e.index;
  }

  /// Drops all attribute indexes over `rel` (stack-allocated fixpoint
  /// relations die or get replaced wholesale; their addresses may be reused).
  void PurgeIndexes(const Relation* rel) {
    auto it = attr_indexes_.lower_bound(
        std::make_pair(static_cast<const void*>(rel), INT_MIN));
    while (it != attr_indexes_.end() && it->first.first == rel) {
      it = attr_indexes_.erase(it);
    }
  }

  /// Rows of the range to visit given an optional probe; nullptr = all
  /// rows. Returns false when the probe proves the binding empty.
  bool ProbeRows(const RangeRel& range, const std::optional<Probe>& probe,
                 const std::vector<int>** out) {
    *out = nullptr;
    if (!probe.has_value() || range.rel->size() < 16) return true;
    Value vbuf;
    const Value* value = EvalTermFast(*probe->term, nullptr);
    if (value == nullptr) {
      auto v = EvalTerm(*probe->term, nullptr);
      if (!v.ok()) return true;  // not evaluable here: fall back to scan
      vbuf = std::move(v).value();
      value = &vbuf;
    }
    ++stats_->index_probes;
    if (value->is_null()) return false;  // eq with null filters everything
    const AttrIndex* index =
        GetIndex(range.rel, probe->attr_index, range.fixpoint);
    auto hit = index->find(*value);
    if (hit == index->end()) return false;
    ++stats_->index_hits;
    *out = &hit->second;
    return true;
  }

  /// Decides at which binding index each pure-filter conjunct can run.
  void AssignEagerFilters(
      const Quantifier& q, const std::vector<const Formula*>& conjuncts,
      std::vector<std::vector<const Formula*>>* filters_at) {
    const std::string& head = HeadName();
    for (const Formula* c : conjuncts) {
      if (c->ContainsAggregate()) continue;
      if (head != kNoHead && FormulaReferencesVar(*c, head)) continue;
      int latest = 0;
      for (size_t i = 0; i < q.bindings.size(); ++i) {
        if (FormulaReferencesVar(*c, q.bindings[i].var)) {
          latest = static_cast<int>(i) + 1;
        }
      }
      (*filters_at)[static_cast<size_t>(latest)].push_back(c);
    }
  }

  Status EnumerateBindings(
      const Quantifier& q, const ScopePlan& sp, size_t idx,
      ScopeMode mode, std::vector<HeadVals>* collect_out, bool* bool_out,
      bool* stop) {
    // Filters runnable once `idx` bindings are bound.
    for (const Formula* f : sp.filters_at[idx]) {
      ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*f, nullptr));
      if (!data::IsTrue(v)) return Status::Ok();
    }
    if (idx == q.bindings.size()) {
      ARC_RETURN_IF_ERROR(ScopeEmit(q, sp, mode, collect_out, bool_out));
      if (mode == ScopeMode::kBoolean && *bool_out) *stop = true;
      return Status::Ok();
    }
    const Binding& b = q.bindings[idx];
    auto recurse = [&]() -> Status {
      return EnumerateBindings(q, sp, idx + 1, mode, collect_out, bool_out,
                               stop);
    };
    if (b.range_kind == RangeKind::kNamed && IsModuleOrExternal(b)) {
      if (binding_class_ == RangeClass::kAbstract) {
        return EnumerateAbstract(b, sp.conjuncts, recurse);
      }
      return EnumerateExternal(b, sp.conjuncts, recurse);
    }
    ARC_ASSIGN_OR_RETURN(RangeRel range, ResolveRange(b));
    std::optional<Probe> probe = CachedProbe(q, idx, sp.conjuncts, range);
    const std::vector<int>* matching = nullptr;
    if (!range.indexable) probe.reset();
    if (!ProbeRows(range, probe, &matching)) return Status::Ok();
    const auto& rows = range.rel->rows();
    const size_t n = matching != nullptr ? matching->size() : rows.size();
    const Schema* schema = &range.rel->schema();
    const int slot = SlotOfBinding(&b);
    for (size_t k = 0; k < n; ++k) {
      const Tuple& row =
          matching != nullptr
              ? rows[static_cast<size_t>((*matching)[k])]
              : rows[k];
      ++stats_->rows_scanned;
      env_.push_back({&b.var, schema, &row});
      const FrameEntry prev = FrameBind(slot, schema, &row);
      Status s = recurse();
      FrameRestore(slot, prev);
      env_.pop_back();
      ARC_RETURN_IF_ERROR(s);
      if (*stop) return Status::Ok();
    }
    return Status::Ok();
  }

  /// Routes named bindings that are abstract modules or externals away from
  /// relation enumeration. Slot mode uses the analyzer's static
  /// classification (one hash lookup, no name lowering); the string path
  /// re-derives it per call as the pre-slot evaluator did. Sets
  /// `binding_class_` to kAbstract/kExternal accordingly.
  bool IsModuleOrExternal(const Binding& b) {
    if (plan_ != nullptr) {
      auto it = plan_->bindings.find(&b);
      binding_class_ =
          it == plan_->bindings.end() ? RangeClass::kUnknown
                                      : it->second.range_class;
      return binding_class_ == RangeClass::kAbstract ||
             binding_class_ == RangeClass::kExternal;
    }
    const std::string key = ToLower(b.relation);
    if (abstract_defs_.contains(key)) {
      binding_class_ = RangeClass::kAbstract;
      return true;
    }
    if (!IsKnownRelation(b.relation) && externals_.Find(b.relation) != nullptr) {
      binding_class_ = RangeClass::kExternal;
      return true;
    }
    binding_class_ = RangeClass::kUnknown;
    return false;
  }

  /// Probe site for a named/collection binding. The probe shape (conjunct +
  /// attribute index) is static per binding; slot mode compiles it once.
  std::optional<Probe> CachedProbe(const Quantifier& q, size_t idx,
                                   const std::vector<const Formula*>& conjuncts,
                                   const RangeRel& range) {
    const Binding& b = q.bindings[idx];
    if (b.range_kind != RangeKind::kNamed &&
        b.range_kind != RangeKind::kCollection) {
      return std::nullopt;
    }
    if (plan_ == nullptr) {
      return FindProbe(q, idx, conjuncts, range.rel->schema());
    }
    auto it = probe_plans_.find(&b);
    if (it == probe_plans_.end()) {
      it = probe_plans_
               .emplace(&b, FindProbe(q, idx, conjuncts, range.rel->schema()))
               .first;
    }
    return it->second;
  }

  bool IsKnownRelation(const std::string& name) const {
    const std::string key = ToLower(name);
    for (const auto& entry : overlay_) {
      if (entry.first == key) return true;
    }
    return defs_.contains(key) || db_.Has(name);
  }

  /// True if the nested collection has no free variables (no correlation):
  /// its extension is environment-independent and can be cached.
  bool IsClosedCollection(const Binding& b) {
    auto it = closed_.find(&b);
    if (it != closed_.end()) return it->second;
    bool closed = true;
    for (const EnvEntry& e : env_) {
      if (CollectionReferencesVar(*b.collection, *e.var)) {
        closed = false;
        break;
      }
    }
    // Heads of enclosing collections act like free variables too.
    for (const Collection* head : heads_) {
      if (CollectionReferencesVar(*b.collection, head->head.relation)) {
        closed = false;
      }
    }
    closed_.emplace(&b, closed);
    return closed;
  }

  Result<RangeRel> ResolveRange(const Binding& b) {
    RangeRel out;
    if (b.range_kind == RangeKind::kCollection) {
      // Cache closed (uncorrelated) nested collections: they evaluate to
      // the same extension for every outer combination. Disabled inside
      // recursion fixpoints, where named extensions change per iteration.
      const bool cacheable = overlay_.empty() && IsClosedCollection(b);
      if (cacheable) {
        auto cached = closed_cache_.find(&b);
        if (cached != closed_cache_.end()) {
          out.owned = cached->second;
          out.rel = out.owned.get();
          out.indexable = true;
          return out;
        }
      }
      ARC_ASSIGN_OR_RETURN(Relation rel, EvalCollection(*b.collection));
      out.owned = std::make_shared<Relation>(std::move(rel));
      out.rel = out.owned.get();
      if (cacheable) {
        closed_cache_.emplace(&b, out.owned);
        out.indexable = true;
      }
      return out;
    }
    if (plan_ != nullptr) return ResolveNamedPlanned(b);
    const std::string key = ToLower(b.relation);
    for (auto it = overlay_.rbegin(); it != overlay_.rend(); ++it) {
      if (it->first == key) {
        out.rel = delta_site_ == &b ? delta_rel_ : it->second;
        return out;  // mutable across fixpoint iterations: not indexable
      }
    }
    return ResolveNamedSlow(b, key);
  }

  /// Compiled named-range site: the lowered key is always precomputed; the
  /// resolved target is cached once definition registration is complete.
  struct RangePlan {
    std::string key;
    RangeRel range;
    bool cached = false;
  };

  /// Slot-mode named-range resolution. The lowered key and the non-overlay
  /// target are static per binding site, so both are computed at most once;
  /// the overlay (fixpoint accumulator / delta) is consulted every call
  /// because fixpoint state changes per round. Overlay hits are marked
  /// `fixpoint` so probes use watermark indexes that survive delta rounds:
  /// the accumulator only ever grows, and the delta is replaced wholesale
  /// with its indexes purged, so incremental extension stays sound.
  Result<RangeRel> ResolveNamedPlanned(const Binding& b) {
    auto it = range_plans_.find(&b);
    if (it == range_plans_.end()) {
      it = range_plans_.emplace(&b, RangePlan{ToLower(b.relation)}).first;
    }
    RangePlan& rp = it->second;
    for (auto o = overlay_.rbegin(); o != overlay_.rend(); ++o) {
      if (o->first == rp.key) {
        RangeRel out;
        out.rel = delta_site_ == &b ? delta_rel_ : o->second;
        out.indexable = true;
        out.fixpoint = true;
        return out;
      }
    }
    if (rp.cached) return rp.range;
    ARC_ASSIGN_OR_RETURN(RangeRel out, ResolveNamedSlow(b, rp.key));
    // Definitions registered later can shadow an earlier base-relation hit,
    // so the resolution is only static once all definitions are in place.
    if (defs_ready_) {
      rp.range = out;
      rp.cached = true;
    }
    return out;
  }

  Result<RangeRel> ResolveNamedSlow(const Binding& b, const std::string& key) {
    RangeRel out;
    auto def = defs_.find(key);
    if (def != defs_.end()) {
      out.rel = &def->second;
      out.indexable = true;
      return out;
    }
    if (const Relation* rel = db_.GetPtr(b.relation)) {
      // Under the set convention, inputs are interpreted as sets (§2.7):
      // deduplicate base relations (cached).
      if (options_.conventions.multiplicity ==
              Conventions::Multiplicity::kSet &&
          rel->size() > 1) {
        auto it = dedup_cache_.find(key);
        if (it == dedup_cache_.end()) {
          it = dedup_cache_.emplace(key, rel->Distinct()).first;
        }
        out.rel = &it->second;
        out.indexable = true;
        return out;
      }
      out.rel = rel;
      out.indexable = true;
      return out;
    }
    return NotFound("unknown relation '" + b.relation + "' for variable '" +
                    b.var + "'");
  }

  // ---- external relations ---------------------------------------------------

  /// Collects equality-bound inputs for `var`'s attributes from the scope's
  /// conjuncts and the current environment.
  Result<BoundPattern> ExtractBoundPattern(
      const std::string& var, const Schema& schema,
      const std::vector<const Formula*>& conjuncts) {
    BoundPattern pattern(static_cast<size_t>(schema.size()));
    for (const Formula* c : conjuncts) {
      if (c->kind != FormulaKind::kPredicate ||
          c->cmp_op != data::CmpOp::kEq) {
        continue;
      }
      auto try_side = [&](const TermPtr& ref_side, const TermPtr& val_side) {
        if (!ref_side || ref_side->kind != TermKind::kAttrRef) return;
        if (!EqualsIgnoreCase(ref_side->var, var)) return;
        if (val_side && val_side->References(var)) return;
        const int idx = schema.IndexOf(ref_side->attr);
        if (idx < 0) return;
        if (pattern[static_cast<size_t>(idx)].has_value()) return;
        auto v = EvalTerm(*val_side, nullptr);
        if (v.ok()) pattern[static_cast<size_t>(idx)] = std::move(v).value();
      };
      try_side(c->lhs, c->rhs);
      try_side(c->rhs, c->lhs);
    }
    return pattern;
  }

  Status EnumerateExternal(const Binding& b,
                           const std::vector<const Formula*>& conjuncts,
                           const std::function<Status()>& recurse) {
    const ExternalRelation* ext = externals_.Find(b.relation);
    ARC_ASSIGN_OR_RETURN(BoundPattern pattern,
                         ExtractBoundPattern(b.var, ext->schema(), conjuncts));
    auto tuples = ext->Enumerate(pattern);
    if (!tuples.ok()) {
      if (tuples.status().code() == StatusCode::kUnsupported) {
        return Unsupported(tuples.status().message() +
                           " (bind its inputs earlier in the scope)");
      }
      return tuples.status();
    }
    const int slot = SlotOfBinding(&b);
    for (const Tuple& row : *tuples) {
      ++stats_->rows_scanned;
      env_.push_back({&b.var, &ext->schema(), &row});
      const FrameEntry prev = FrameBind(slot, &ext->schema(), &row);
      Status s = recurse();
      FrameRestore(slot, prev);
      env_.pop_back();
      ARC_RETURN_IF_ERROR(s);
    }
    return Status::Ok();
  }

  // ---- abstract relations ---------------------------------------------------

  Status EnumerateAbstract(const Binding& b,
                           const std::vector<const Formula*>& conjuncts,
                           const std::function<Status()>& recurse) {
    const Collection* def = abstract_defs_.at(ToLower(b.relation));
    // Stable schema storage: fragments built by grouped scopes may outlive
    // this call.
    auto schema_it =
        nested_schemas_.try_emplace(&b, Schema(def->head.attrs)).first;
    const Schema& param_schema = schema_it->second;
    ARC_ASSIGN_OR_RETURN(BoundPattern pattern,
                         ExtractBoundPattern(b.var, param_schema, conjuncts));
    Tuple params;
    for (int i = 0; i < param_schema.size(); ++i) {
      if (!pattern[static_cast<size_t>(i)].has_value()) {
        return EvalError("abstract relation '" + def->head.relation +
                         "': attribute '" + param_schema.name(i) +
                         "' is not bound by an equality in its scope");
      }
      params.Append(*pattern[static_cast<size_t>(i)]);
    }
    // Evaluate the module body hygienically: only the parameters are
    // visible (plus base/defined relations, which resolve by name). The
    // frame is not swapped: the module body only references slots owned by
    // its own nodes, which are globally unique; the head slot is rebound
    // LIFO-style so recursive invocations nest correctly.
    std::vector<EnvEntry> saved_env;
    saved_env.swap(env_);
    std::vector<const Collection*> saved_heads;
    saved_heads.swap(heads_);
    env_.push_back({&def->head.relation, &param_schema, &params});
    const int head_slot = SlotOfHead(def);
    const FrameEntry head_prev = FrameBind(head_slot, &param_schema, &params);
    auto holds = EvalBool(*def->body, nullptr);
    FrameRestore(head_slot, head_prev);
    env_.clear();
    saved_env.swap(env_);
    saved_heads.swap(heads_);
    ARC_RETURN_IF_ERROR(holds.status());
    if (!data::IsTrue(*holds)) return Status::Ok();
    const int slot = SlotOfBinding(&b);
    env_.push_back({&b.var, &param_schema, &params});
    const FrameEntry prev = FrameBind(slot, &param_schema, &params);
    Status s = recurse();
    FrameRestore(slot, prev);
    env_.pop_back();
    return s;
  }

  // ---- grouping --------------------------------------------------------

  Status ScopeRunGrouped(const Quantifier& q, const ScopePlan& sp,
                         ScopeMode mode, std::vector<HeadVals>* collect_out,
                         bool* bool_out) {
    const std::vector<const Formula*>& group_level = sp.group_level;
    const std::vector<const Term*>& agg_terms = sp.agg_terms;

    // Materialize qualifying combinations as owned fragments.
    std::vector<Fragment> fragments;
    if (q.join_tree) {
      ARC_ASSIGN_OR_RETURN(fragments, EvalJoinScope(q, sp.pre));
    } else {
      ARC_RETURN_IF_ERROR(MaterializeRec(q, sp.filters_at, 0, &fragments));
    }

    // Partition into groups.
    struct Group {
      Tuple key;
      std::vector<size_t> members;
    };
    std::vector<Group> groups;
    const bool group_all = q.grouping->keys.empty();
    if (group_all) {
      groups.push_back(Group{});  // γ∅: exactly one group, even when empty
      for (size_t i = 0; i < fragments.size(); ++i) {
        groups[0].members.push_back(i);
      }
    } else {
      std::unordered_map<Tuple, size_t, data::TupleHash> index;
      for (size_t i = 0; i < fragments.size(); ++i) {
        PushFragment(fragments[i]);
        Tuple key;
        Status key_status = Status::Ok();
        for (const TermPtr& k : q.grouping->keys) {
          auto v = EvalTerm(*k, nullptr);
          if (!v.ok()) {
            key_status = v.status();
            break;
          }
          key.Append(std::move(v).value());
        }
        PopFragment(fragments[i]);
        ARC_RETURN_IF_ERROR(key_status);
        auto [it, inserted] = index.emplace(key, groups.size());
        if (inserted) {
          groups.push_back(Group{std::move(key), {}});
        }
        groups[it->second].members.push_back(i);
      }
    }

    // Evaluate each group.
    for (const Group& group : groups) {
      AggCtx agg;
      for (const Term* t : agg_terms) {
        ARC_ASSIGN_OR_RETURN(Value v,
                             ComputeAggregate(*t, fragments, group.members));
        agg.emplace(t, std::move(v));
      }
      const Fragment* rep =
          group.members.empty() ? nullptr : &fragments[group.members[0]];
      if (rep != nullptr) PushFragment(*rep);
      Status status = Status::Ok();
      if (mode == ScopeMode::kBoolean) {
        bool all_true = true;
        for (const Formula* c : group_level) {
          auto v = EvalBool(*c, &agg);
          if (!v.ok()) {
            status = v.status();
            break;
          }
          if (!data::IsTrue(*v)) {
            all_true = false;
            break;
          }
        }
        if (status.ok() && all_true) *bool_out = true;
      } else {
        std::vector<HeadVals> sols;
        sols.emplace_back();
        for (const Formula* c : group_level) {
          auto next = Solutions(*c, &agg);
          if (!next.ok()) {
            status = next.status();
            break;
          }
          sols = MergeProduct(sols, *next);
          if (sols.empty()) break;
        }
        if (status.ok()) {
          HeadValsSet dedup(stats_);
          for (HeadVals& hv : sols) dedup.Add(std::move(hv));
          for (HeadVals& hv : dedup.Take()) collect_out->push_back(std::move(hv));
        }
      }
      if (rep != nullptr) PopFragment(*rep);
      ARC_RETURN_IF_ERROR(status);
      if (mode == ScopeMode::kBoolean && *bool_out) return Status::Ok();
    }
    return Status::Ok();
  }

  Status MaterializeRec(
      const Quantifier& q,
      const std::vector<std::vector<const Formula*>>& filters_at, size_t idx,
      std::vector<Fragment>* fragments) {
    for (const Formula* f : filters_at[idx]) {
      ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*f, nullptr));
      if (!data::IsTrue(v)) return Status::Ok();
    }
    if (idx == q.bindings.size()) {
      Fragment frag;
      const size_t base = env_.size() - q.bindings.size();
      for (size_t i = 0; i < q.bindings.size(); ++i) {
        const EnvEntry& e = env_[base + i];
        frag.push_back({*e.var, e.schema, *e.tuple,
                        SlotOfBinding(&q.bindings[i])});
      }
      fragments->push_back(std::move(frag));
      return Status::Ok();
    }
    const Binding& b = q.bindings[idx];
    if (b.range_kind == RangeKind::kNamed && IsModuleOrExternal(b)) {
      // Externals/abstract modules inside grouping scopes reuse the
      // streaming enumerator; route through it.
      std::vector<const Formula*> all_pre;
      for (const auto& fs : filters_at) {
        for (const Formula* f : fs) all_pre.push_back(f);
      }
      auto recurse = [&]() -> Status {
        return MaterializeRec(q, filters_at, idx + 1, fragments);
      };
      if (binding_class_ == RangeClass::kAbstract) {
        return EnumerateAbstract(b, all_pre, recurse);
      }
      return EnumerateExternal(b, all_pre, recurse);
    }
    ARC_ASSIGN_OR_RETURN(RangeRel range, ResolveRange(b));
    // Fragments outlive this enumeration, so they must reference a schema
    // with stable storage, not the (possibly temporary) range relation's.
    ARC_ASSIGN_OR_RETURN(const Schema* schema, BindingSchema(b));
    const int slot = SlotOfBinding(&b);
    for (const Tuple& row : range.rel->rows()) {
      ++stats_->rows_scanned;
      env_.push_back({&b.var, schema, &row});
      const FrameEntry prev = FrameBind(slot, schema, &row);
      Status s = MaterializeRec(q, filters_at, idx + 1, fragments);
      FrameRestore(slot, prev);
      env_.pop_back();
      ARC_RETURN_IF_ERROR(s);
    }
    return Status::Ok();
  }

  Result<Value> ComputeAggregate(const Term& t,
                                 const std::vector<Fragment>& fragments,
                                 const std::vector<size_t>& members) {
    if (t.agg_func == AggFunc::kCountStar) {
      return Value::Int(static_cast<int64_t>(members.size()));
    }
    std::vector<Value> values;
    values.reserve(members.size());
    for (size_t m : members) {
      PushFragment(fragments[m]);
      auto v = EvalTerm(*t.agg_arg, nullptr);
      PopFragment(fragments[m]);
      ARC_RETURN_IF_ERROR(v.status());
      if (!v->is_null()) values.push_back(std::move(v).value());
    }
    if (IsDistinctAgg(t.agg_func)) {
      std::vector<Value> dedup;
      for (const Value& v : values) {
        bool seen = false;
        for (const Value& d : dedup) {
          if (d == v) seen = true;
        }
        if (!seen) dedup.push_back(v);
      }
      values = std::move(dedup);
    }
    const bool neutral = options_.conventions.empty_aggregate ==
                         Conventions::EmptyAggregate::kNeutral;
    switch (t.agg_func) {
      case AggFunc::kCount:
      case AggFunc::kCountDistinct:
        return Value::Int(static_cast<int64_t>(values.size()));
      case AggFunc::kSum:
      case AggFunc::kSumDistinct: {
        if (values.empty()) {
          return neutral ? Value::Int(0) : Value::Null();
        }
        for (const Value& v : values) {
          if (!v.is_numeric()) {
            return EvalError("sum over non-numeric value " + v.ToString());
          }
        }
        Value acc = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          ARC_ASSIGN_OR_RETURN(acc,
                               data::Arith(data::ArithOp::kAdd, acc, values[i]));
        }
        return acc;
      }
      case AggFunc::kAvg:
      case AggFunc::kAvgDistinct: {
        if (values.empty()) {
          return neutral ? Value::Int(0) : Value::Null();
        }
        double sum = 0;
        for (const Value& v : values) {
          if (!v.is_numeric()) {
            return EvalError("avg over non-numeric value " + v.ToString());
          }
          sum += v.ToDouble();
        }
        return Value::Double(sum / static_cast<double>(values.size()));
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (values.empty()) return Value::Null();
        Value best = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          const int c = values[i].CompareTotal(best);
          if ((t.agg_func == AggFunc::kMin && c < 0) ||
              (t.agg_func == AggFunc::kMax && c > 0)) {
            best = values[i];
          }
        }
        return best;
      }
      case AggFunc::kCountStar:
        break;
    }
    return EvalError("bad aggregate");
  }

  // ---- join annotation trees ------------------------------------------------

  struct JoinPlan {
    // Conjuncts attached to each join node (by node address).
    std::unordered_map<const JoinNode*, std::vector<const Formula*>> conds;
    std::vector<const Formula*> global;  // no local leaves referenced
  };

  /// Static join-scope shape: the (possibly extended) annotation tree plus
  /// the conjunct attachment plan. Both depend only on the AST and the
  /// static enclosing head, so slot mode builds them once per quantifier.
  struct JoinScopePlan {
    JoinNodePtr extended;  // owns the extension, when one was needed
    const JoinNode* root = nullptr;
    JoinPlan plan;
  };

  void BuildJoinScopePlan(const Quantifier& q,
                          const std::vector<const Formula*>& conjuncts,
                          JoinScopePlan* p) {
    // Bindings not mentioned in the annotation join the root as inner.
    p->root = q.join_tree.get();
    std::vector<std::string> tree_vars;
    p->root->CollectVars(&tree_vars);
    std::vector<const Binding*> missing;
    for (const Binding& b : q.bindings) {
      bool present = false;
      for (const std::string& v : tree_vars) {
        if (EqualsIgnoreCase(v, b.var)) present = true;
      }
      if (!present) missing.push_back(&b);
    }
    if (!missing.empty()) {
      std::vector<JoinNodePtr> children;
      children.push_back(p->root->Clone());
      for (const Binding* b : missing) children.push_back(MakeJoinVar(b->var));
      p->extended = MakeJoinInner(std::move(children));
      p->root = p->extended.get();
    }
    const std::string& head = HeadName();
    for (const Formula* c : conjuncts) {
      if (c->ContainsAggregate()) continue;  // group-level, handled elsewhere
      if (head != kNoHead && FormulaReferencesVar(*c, head)) continue;
      AttachConjunct(*p->root, c, &p->plan);
    }
  }

  Result<std::vector<Fragment>> EvalJoinScope(
      const Quantifier& q, const std::vector<const Formula*>& conjuncts) {
    JoinScopePlan local;
    const JoinScopePlan* jp = nullptr;
    if (plan_ == nullptr) {
      BuildJoinScopePlan(q, conjuncts, &local);
      jp = &local;
    } else {
      auto it = join_plans_.find(&q);
      if (it == join_plans_.end()) {
        JoinScopePlan p;
        BuildJoinScopePlan(q, conjuncts, &p);
        it = join_plans_.emplace(&q, std::move(p)).first;
      }
      jp = &it->second;
    }
    // Global filters run per scope entry (they may reference outer scopes).
    for (const Formula* f : jp->plan.global) {
      ARC_ASSIGN_OR_RETURN(TriBool v, EvalBool(*f, nullptr));
      if (!data::IsTrue(v)) return std::vector<Fragment>{};
    }
    return EvalJoinNode(*jp->root, q, jp->plan);
  }

  /// Leaves of a join node: variable names (lower) and literal-leaf ptrs.
  static void NodeLeaves(const JoinNode& n,
                         std::unordered_set<std::string>* vars,
                         std::unordered_set<const JoinNode*>* lits) {
    if (n.kind == JoinKind::kVarLeaf) {
      vars->insert(ToLower(n.var));
      return;
    }
    if (n.kind == JoinKind::kLiteralLeaf) {
      lits->insert(&n);
      return;
    }
    for (const JoinNodePtr& c : n.children) NodeLeaves(*c, vars, lits);
  }

  void AttachConjunct(const JoinNode& root, const Formula* c, JoinPlan* plan) {
    // Referenced local variables.
    std::unordered_set<std::string> all_vars;
    std::unordered_set<const JoinNode*> all_lits;
    NodeLeaves(root, &all_vars, &all_lits);
    std::unordered_set<std::string> used_vars;
    for (const std::string& v : all_vars) {
      if (FormulaReferencesVar(*c, v)) used_vars.insert(v);
    }
    // Literal anchors: an equality side that is a literal matching a
    // literal leaf anchors the conjunct at that leaf (§2.11, Fig. 12).
    std::unordered_set<const JoinNode*> used_lits;
    if (c->kind == FormulaKind::kPredicate) {
      auto match_literal = [&](const TermPtr& t) {
        if (!t || t->kind != TermKind::kLiteral) return;
        for (const JoinNode* lit : all_lits) {
          if (lit->literal.Equals(t->literal)) {
            used_lits.insert(lit);
            return;
          }
        }
      };
      match_literal(c->lhs);
      match_literal(c->rhs);
    }
    if (used_vars.empty() && used_lits.empty()) {
      plan->global.push_back(c);
      return;
    }
    const JoinNode* best = FindLowestCovering(root, used_vars, used_lits);
    plan->conds[best].push_back(c);
  }

  static const JoinNode* FindLowestCovering(
      const JoinNode& n, const std::unordered_set<std::string>& vars,
      const std::unordered_set<const JoinNode*>& lits) {
    std::unordered_set<std::string> here_vars;
    std::unordered_set<const JoinNode*> here_lits;
    NodeLeaves(n, &here_vars, &here_lits);
    auto covers = [&]() {
      for (const std::string& v : vars) {
        if (!here_vars.contains(v)) return false;
      }
      for (const JoinNode* l : lits) {
        if (!here_lits.contains(l)) return false;
      }
      return true;
    };
    if (!covers()) return nullptr;
    for (const JoinNodePtr& c : n.children) {
      const JoinNode* deeper = FindLowestCovering(*c, vars, lits);
      if (deeper != nullptr) return deeper;
    }
    return &n;
  }

  Result<bool> FragmentSatisfies(const Fragment& frag,
                                 const std::vector<const Formula*>& conds) {
    PushFragment(frag);
    bool ok_all = true;
    Status status = Status::Ok();
    for (const Formula* c : conds) {
      auto v = EvalBool(*c, nullptr);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      if (!data::IsTrue(*v)) {
        ok_all = false;
        break;
      }
    }
    PopFragment(frag);
    ARC_RETURN_IF_ERROR(status);
    return ok_all;
  }

  static Fragment ConcatFragments(const Fragment& a, const Fragment& b) {
    Fragment out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  /// All variable leaves under `n`, null-padded (for outer-join padding).
  Result<Fragment> NullFragment(const JoinNode& n, const Quantifier& q) {
    Fragment out;
    std::vector<std::string> vars;
    n.CollectVars(&vars);
    for (const std::string& v : vars) {
      const Binding* binding = nullptr;
      for (const Binding& b : q.bindings) {
        if (EqualsIgnoreCase(b.var, v)) binding = &b;
      }
      if (binding == nullptr) {
        return EvalError("join annotation references unbound '" + v + "'");
      }
      ARC_ASSIGN_OR_RETURN(const Schema* schema, BindingSchema(*binding));
      Tuple nulls;
      for (int i = 0; i < schema->size(); ++i) nulls.Append(Value::Null());
      out.push_back({binding->var, schema, std::move(nulls),
                     SlotOfBinding(binding)});
    }
    return out;
  }

  /// Schema for a binding, stable for the lifetime of the evaluation.
  Result<const Schema*> BindingSchema(const Binding& b) {
    if (b.range_kind == RangeKind::kCollection) {
      auto it = nested_schemas_.try_emplace(
          &b, Schema(b.collection->head.attrs)).first;
      return &it->second;
    }
    const std::string key = ToLower(b.relation);
    auto cached = named_schemas_.find(key);
    if (cached != named_schemas_.end()) return &cached->second;
    ARC_ASSIGN_OR_RETURN(RangeRel range, ResolveRange(b));
    auto it = named_schemas_.emplace(key, range.rel->schema()).first;
    return &it->second;
  }

  Result<std::vector<Fragment>> EvalJoinNode(const JoinNode& n,
                                             const Quantifier& q,
                                             const JoinPlan& plan) {
    const std::vector<const Formula*>* conds = nullptr;
    auto it = plan.conds.find(&n);
    static const std::vector<const Formula*> kEmpty;
    conds = it == plan.conds.end() ? &kEmpty : &it->second;
    switch (n.kind) {
      case JoinKind::kVarLeaf: {
        const Binding* binding = nullptr;
        for (const Binding& b : q.bindings) {
          if (EqualsIgnoreCase(b.var, n.var)) binding = &b;
        }
        if (binding == nullptr) {
          return EvalError("join annotation references unbound '" + n.var +
                           "'");
        }
        if (binding->range_kind == RangeKind::kNamed &&
            IsModuleOrExternal(*binding)) {
          return Unsupported(
              "external/abstract relations are not supported inside join "
              "annotations");
        }
        ARC_ASSIGN_OR_RETURN(RangeRel range, ResolveRange(*binding));
        // Cache the schema so padded fragments share it.
        ARC_ASSIGN_OR_RETURN(const Schema* schema, BindingSchema(*binding));
        const int slot = SlotOfBinding(binding);
        std::vector<Fragment> out;
        for (const Tuple& row : range.rel->rows()) {
          ++stats_->rows_scanned;
          Fragment frag;
          frag.push_back({binding->var, schema, row, slot});
          ARC_ASSIGN_OR_RETURN(bool pass, FragmentSatisfies(frag, *conds));
          if (pass) out.push_back(std::move(frag));
        }
        return out;
      }
      case JoinKind::kLiteralLeaf: {
        // Contributes no bindings; anchored conditions are evaluated by the
        // parent join node (they mention only other leaves' variables).
        std::vector<Fragment> out;
        out.emplace_back();
        return out;
      }
      case JoinKind::kInner: {
        std::vector<Fragment> acc;
        acc.emplace_back();
        for (const JoinNodePtr& c : n.children) {
          ARC_ASSIGN_OR_RETURN(std::vector<Fragment> child,
                               EvalJoinNode(*c, q, plan));
          std::vector<Fragment> next;
          for (const Fragment& a : acc) {
            for (const Fragment& b : child) {
              next.push_back(ConcatFragments(a, b));
            }
          }
          acc = std::move(next);
          if (acc.empty()) break;
        }
        std::vector<Fragment> out;
        for (Fragment& frag : acc) {
          ARC_ASSIGN_OR_RETURN(bool pass, FragmentSatisfies(frag, *conds));
          if (pass) out.push_back(std::move(frag));
        }
        return out;
      }
      case JoinKind::kLeft: {
        ARC_ASSIGN_OR_RETURN(std::vector<Fragment> left,
                             EvalJoinNode(*n.children[0], q, plan));
        ARC_ASSIGN_OR_RETURN(std::vector<Fragment> right,
                             EvalJoinNode(*n.children[1], q, plan));
        ARC_ASSIGN_OR_RETURN(Fragment null_right,
                             NullFragment(*n.children[1], q));
        std::vector<Fragment> out;
        for (const Fragment& l : left) {
          bool matched = false;
          for (const Fragment& r : right) {
            Fragment joined = ConcatFragments(l, r);
            ARC_ASSIGN_OR_RETURN(bool pass, FragmentSatisfies(joined, *conds));
            if (pass) {
              matched = true;
              out.push_back(std::move(joined));
            }
          }
          if (!matched) out.push_back(ConcatFragments(l, null_right));
        }
        return out;
      }
      case JoinKind::kFull: {
        ARC_ASSIGN_OR_RETURN(std::vector<Fragment> left,
                             EvalJoinNode(*n.children[0], q, plan));
        ARC_ASSIGN_OR_RETURN(std::vector<Fragment> right,
                             EvalJoinNode(*n.children[1], q, plan));
        ARC_ASSIGN_OR_RETURN(Fragment null_left,
                             NullFragment(*n.children[0], q));
        ARC_ASSIGN_OR_RETURN(Fragment null_right,
                             NullFragment(*n.children[1], q));
        std::vector<Fragment> out;
        std::vector<bool> right_matched(right.size(), false);
        for (const Fragment& l : left) {
          bool matched = false;
          for (size_t ri = 0; ri < right.size(); ++ri) {
            Fragment joined = ConcatFragments(l, right[ri]);
            ARC_ASSIGN_OR_RETURN(bool pass, FragmentSatisfies(joined, *conds));
            if (pass) {
              matched = true;
              right_matched[ri] = true;
              out.push_back(std::move(joined));
            }
          }
          if (!matched) out.push_back(ConcatFragments(l, null_right));
        }
        for (size_t ri = 0; ri < right.size(); ++ri) {
          if (!right_matched[ri]) {
            out.push_back(ConcatFragments(null_left, right[ri]));
          }
        }
        return out;
      }
    }
    return EvalError("bad join node");
  }

  // ---- state ------------------------------------------------------------

  static const std::string kNoHead;

  const data::Database& db_;
  const EvalOptions& options_;
  const ExternalRegistry& externals_;

  std::vector<EnvEntry> env_;
  std::vector<const Collection*> heads_;
  std::vector<std::pair<std::string, const Relation*>> overlay_;
  std::unordered_map<std::string, Relation> defs_;
  std::unordered_map<std::string, const Collection*> abstract_defs_;
  bool defs_ready_ = false;
  std::unordered_map<const Binding*, Schema> nested_schemas_;
  std::unordered_map<std::string, Schema> named_schemas_;
  std::unordered_map<std::string, Relation> dedup_cache_;
  std::unordered_map<const Binding*, bool> closed_;
  std::unordered_map<const Binding*, std::shared_ptr<Relation>> closed_cache_;
  std::map<std::pair<const void*, int>, AttrIndexEntry> attr_indexes_;

  /// Slot-compiled plan (null in string-keyed mode or when analysis saw
  /// errors) and the flat frame it indexes into. `frame_saves_` is the LIFO
  /// stack of previous cells for PushFragment/PopFragment.
  const Analysis* plan_;
  std::vector<FrameEntry> frame_;
  std::vector<FrameEntry> frame_saves_;
  /// Stable head schemas (position maps for HeadVals keys) and stable
  /// negative ids for head attributes unknown to the head schema.
  std::unordered_map<const Collection*, Schema> head_schemas_;
  std::unordered_map<std::string, int> extra_attr_ids_;
  /// Per-node compiled shapes, populated lazily in slot mode only.
  std::unordered_map<const Formula*, AssignPlan> assign_plans_;
  std::unordered_map<const Quantifier*, bool> head_involved_;
  std::unordered_map<const Quantifier*, ScopePlan> scope_plans_;
  std::unordered_map<const Binding*, std::optional<Probe>> probe_plans_;
  std::unordered_map<const Binding*, RangePlan> range_plans_;
  std::unordered_map<const Quantifier*, JoinScopePlan> join_plans_;
  /// Range class of the binding most recently tested by IsModuleOrExternal.
  RangeClass binding_class_ = RangeClass::kUnknown;

  /// Telemetry sink (owned by the Evaluator; never null).
  EvalStats* stats_;
  /// Semi-naive delta overlay: while set, the recursive binding site
  /// `delta_site_` resolves to `delta_rel_` (last round's new tuples)
  /// instead of the full overlay relation. Binding addresses are stable
  /// during evaluation, so the AST node identifies the site.
  const Binding* delta_site_ = nullptr;
  const Relation* delta_rel_ = nullptr;
};

const std::string EvalImpl::kNoHead = "";

}  // namespace

std::string EvalStats::ToString() const {
  std::string out;
  auto line = [&out](const char* name, int64_t v) {
    out += "  " + std::string(name) + ": " + std::to_string(v) + "\n";
  };
  line("fixpoint_iterations", fixpoint_iterations);
  line("fixpoint_delta_tuples", fixpoint_delta_tuples);
  line("naive_fixpoints", naive_fixpoints);
  line("rows_scanned", rows_scanned);
  line("index_probes", index_probes);
  line("index_hits", index_hits);
  line("dedup_hits", dedup_hits);
  line("scope_evaluations", scope_evaluations);
  line("frames_pushed", frames_pushed);
  line("slot_reads", slot_reads);
  line("join_table_reuses", join_table_reuses);
  return out;
}

Evaluator::Evaluator(const data::Database& database, EvalOptions options)
    : database_(database), options_(std::move(options)) {
  if (options_.externals == nullptr) {
    default_externals_ = ExternalRegistry::Builtins();
    options_.externals = &default_externals_;
  }
}

namespace {

/// One analysis pass serves both validation and the slot plan. The plan is
/// only used when analysis is clean: an erroneous program (validate=false
/// experiments) falls back to the fully dynamic string-keyed semantics.
Analysis AnalyzeForEval(const Program& program, const data::Database& db,
                        const EvalOptions& options, bool* use_plan) {
  AnalyzeOptions aopts;
  aopts.database = &db;
  aopts.externals = options.externals;
  Analysis analysis = Analyze(program, aopts);
  *use_plan = options.binding_mode == BindingMode::kSlotCompiled &&
              analysis.ok();
  return analysis;
}

}  // namespace

Result<data::Relation> Evaluator::EvalProgram(const Program& program) {
  bool use_plan = false;
  const Analysis analysis =
      AnalyzeForEval(program, database_, options_, &use_plan);
  if (options_.validate && !analysis.ok()) {
    return ValidationError(Join(analysis.ErrorMessages(), "; "));
  }
  stats_.Reset();
  EvalImpl impl(database_, options_, *options_.externals,
                use_plan ? &analysis : nullptr, &stats_);
  return impl.RunProgram(program);
}

Result<data::Relation> Evaluator::EvalCollection(const Collection& collection) {
  Program program;
  program.main.collection = collection.Clone();
  return EvalProgram(program);
}

Result<data::TriBool> Evaluator::EvalSentence(const Program& program) {
  bool use_plan = false;
  const Analysis analysis =
      AnalyzeForEval(program, database_, options_, &use_plan);
  if (options_.validate && !analysis.ok()) {
    return ValidationError(Join(analysis.ErrorMessages(), "; "));
  }
  stats_.Reset();
  EvalImpl impl(database_, options_, *options_.externals,
                use_plan ? &analysis : nullptr, &stats_);
  return impl.RunSentence(program);
}

Result<data::Relation> Eval(const data::Database& database,
                            const Program& program, EvalOptions options) {
  Evaluator evaluator(database, std::move(options));
  return evaluator.EvalProgram(program);
}

Result<data::Relation> Eval(const data::Database& database,
                            const Collection& collection, EvalOptions options) {
  Evaluator evaluator(database, std::move(options));
  return evaluator.EvalCollection(collection);
}

}  // namespace arc::eval
