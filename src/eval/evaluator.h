// The ARC evaluator: a direct implementation of the paper's *conceptual
// evaluation strategy* (§2.3) — nested loops over quantifier bindings,
// lateral re-evaluation of correlated nested collections, grouping scopes
// with parallel multi-aggregates (§2.5), outer-join annotation trees
// (§2.11), least-fixed-point recursion (§2.9), external relations accessed
// through access patterns (§2.13.1), and abstract-relation modules bound
// via parameters (§2.13.2).
//
// Multiplicity semantics. A collection emits rows per *generating
// combination*: the top-level quantifier spine of its body (an ∃ scope, or
// each disjunct of a top-level ∨) drives multiplicity; quantifiers nested
// as conditions are existence tests. This makes the nested and unnested
// forms of §2.7 coincide under set semantics and diverge under bag
// semantics exactly as the paper describes (semijoin-like vs. per-pair).
// Under the set convention every collection result is deduplicated; under
// the bag convention multiplicities are kept.
//
// All convention choices (§2.6/§2.7) are evaluation parameters, never AST
// state: the same ALT can be run under Conventions::Arc(), ::Sql(), or
// ::Souffle().
#ifndef ARC_EVAL_EVALUATOR_H_
#define ARC_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>

#include "arc/analyze.h"
#include "arc/ast.h"
#include "arc/conventions.h"
#include "arc/external.h"
#include "common/status.h"
#include "data/database.h"

namespace arc::eval {

/// How recursive collections (§2.9) reach their least fixed point.
enum class RecursionStrategy {
  /// Delta-driven: after the first round, each round evaluates one body
  /// variant per recursive range reference, with that reference ranging
  /// over the previous round's new tuples only (mirroring the Datalog
  /// engine's delta-tag mechanism). Falls back to kNaive for
  /// non-monotone self-references (under negation or aggregation).
  kSemiNaive,
  /// Re-evaluates the full body each round and merges (the paper's
  /// conceptual strategy). Kept as a differential-testing oracle.
  kNaive,
};

/// Counters describing one evaluation. Reset at the start of every
/// EvalProgram/EvalCollection/EvalSentence call; read via
/// Evaluator::stats().
struct EvalStats {
  /// Fixpoint rounds summed over all recursive collections evaluated.
  int64_t fixpoint_iterations = 0;
  /// New tuples discovered across all fixpoint rounds (delta sizes).
  int64_t fixpoint_delta_tuples = 0;
  /// Recursive collections routed to the naive oracle because a
  /// self-reference was non-monotone (or the strategy requested it).
  int64_t naive_fixpoints = 0;
  /// Rows visited while enumerating quantifier bindings and join leaves.
  int64_t rows_scanned = 0;
  /// Attribute hash-index probes attempted / satisfied.
  int64_t index_probes = 0;
  int64_t index_hits = 0;
  /// Duplicate tuples/valuations rejected by hash-based deduplication.
  int64_t dedup_hits = 0;
  /// Quantifier scopes entered.
  int64_t scope_evaluations = 0;
  /// Slot-compiled path only: frame slots bound while entering rows /
  /// fragments, and attribute reads served from the frame without a name
  /// lookup. Both stay 0 under BindingMode::kStringKeyed.
  int64_t frames_pushed = 0;
  int64_t slot_reads = 0;
  /// Attribute hash-join tables carried over (and incrementally extended)
  /// across fixpoint delta rounds instead of being rebuilt.
  int64_t join_table_reuses = 0;

  void Reset() { *this = EvalStats{}; }
  /// Multi-line "  name: value" listing (for `arctool --stats`).
  std::string ToString() const;
};

/// How variable/attribute references reach their values.
enum class BindingMode {
  /// Default: references compiled to integer frame slots by the slot
  /// binder (Analysis::term_slots); inner loops never hash a name.
  kSlotCompiled,
  /// Pre-slot reference semantics: every attribute touch resolves its
  /// variable by case-insensitive environment scan and its attribute by
  /// schema name lookup. Kept as the differential-testing reference.
  kStringKeyed,
};

struct EvalOptions {
  Conventions conventions = Conventions::Arc();
  /// External relations; the builtins when null.
  const ExternalRegistry* externals = nullptr;
  /// Run Analyze() and refuse evaluation on validation errors. Disable
  /// only for experiments that deliberately evaluate unusual shapes.
  bool validate = true;
  /// Fixpoint iteration guard for recursive collections.
  int64_t max_fixpoint_iterations = 100000;
  /// Fixpoint evaluation strategy for recursive collections (§2.9).
  RecursionStrategy recursion_strategy = RecursionStrategy::kSemiNaive;
  /// Slot-compiled (fast) vs. string-keyed (reference) evaluation. The two
  /// are bit-for-bit result-compatible; the slot plan silently disables
  /// itself when analysis reports errors (validate=false experiments).
  BindingMode binding_mode = BindingMode::kSlotCompiled;
};

class Evaluator {
 public:
  Evaluator(const data::Database& database, EvalOptions options = {});

  /// Evaluates a full program: materializes intensional definitions in
  /// order, registers abstract definitions for inlining, then evaluates the
  /// main collection. Fails if the main query is a sentence (use
  /// EvalSentence).
  Result<data::Relation> EvalProgram(const Program& program);

  /// Evaluates a single collection with no definitions in scope.
  Result<data::Relation> EvalCollection(const Collection& collection);

  /// Evaluates a Boolean sentence (Fig. 9). If `program` carries
  /// definitions they are honored.
  Result<data::TriBool> EvalSentence(const Program& program);

  const Conventions& conventions() const { return options_.conventions; }

  /// Telemetry for the most recent Eval* call on this evaluator.
  const EvalStats& stats() const { return stats_; }

 private:
  friend class EvalImpl;
  const data::Database& database_;
  EvalOptions options_;
  ExternalRegistry default_externals_;
  EvalStats stats_;
};

/// One-shot helpers.
Result<data::Relation> Eval(const data::Database& database,
                            const Program& program, EvalOptions options = {});
Result<data::Relation> Eval(const data::Database& database,
                            const Collection& collection,
                            EvalOptions options = {});

}  // namespace arc::eval

#endif  // ARC_EVAL_EVALUATOR_H_
