#include "datalog/eval.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace arc::datalog {

namespace {

using data::Relation;
using data::Schema;
using data::Tuple;
using data::Value;

/// A relation plus a membership index for O(1) dedup.
struct IndexedRel {
  Relation rel;
  std::unordered_set<Tuple, data::TupleHash> index;

  explicit IndexedRel(Schema schema) : rel(std::move(schema)) {}
  IndexedRel() = default;

  bool Add(Tuple t) {
    auto [it, inserted] = index.insert(t);
    (void)it;
    if (inserted) rel.Add(std::move(t));
    return inserted;
  }
  bool Contains(const Tuple& t) const { return index.count(t) > 0; }
};

/// Variable bindings during rule evaluation.
class Bindings {
 public:
  const Value* Find(const std::string& var) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->first == var) return &it->second;
    }
    return nullptr;
  }
  void Push(const std::string& var, Value v) {
    entries_.emplace_back(var, std::move(v));
  }
  size_t Mark() const { return entries_.size(); }
  void Rewind(size_t mark) { entries_.resize(mark); }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

class DlEvalImpl {
 public:
  DlEvalImpl(const data::Database& edb, const DlEvalOptions& options)
      : edb_(edb), options_(options) {}

  Result<Relation> Run(const DlProgram& program,
                       std::string_view query_predicate) {
    program_ = &program;
    ARC_RETURN_IF_ERROR(CollectPredicates());
    ARC_RETURN_IF_ERROR(Stratify());
    ARC_RETURN_IF_ERROR(EvaluateStrata());
    const std::string key = ToLower(std::string(query_predicate));
    auto it = relations_.find(key);
    if (it == relations_.end()) {
      return NotFound("predicate '" + std::string(query_predicate) +
                      "' is not defined");
    }
    return it->second.rel;
  }

 private:
  // ---- schema & predicate discovery --------------------------------------

  Status CollectPredicates() {
    auto ensure = [&](const std::string& name, int arity) -> Status {
      const std::string key = ToLower(name);
      auto it = arity_.find(key);
      if (it != arity_.end()) {
        if (it->second != arity) {
          return InvalidArgument("predicate '" + name +
                                 "' used with inconsistent arities");
        }
        return Status::Ok();
      }
      arity_[key] = arity;
      display_[key] = name;
      return Status::Ok();
    };
    for (const Declaration& d : program_->decls) {
      ARC_RETURN_IF_ERROR(ensure(d.predicate, static_cast<int>(d.attrs.size())));
    }
    for (const Atom& f : program_->facts) {
      ARC_RETURN_IF_ERROR(ensure(f.predicate, static_cast<int>(f.args.size())));
      idb_.insert(ToLower(f.predicate));
    }
    for (const Rule& r : program_->rules) {
      ARC_RETURN_IF_ERROR(
          ensure(r.head.predicate, static_cast<int>(r.head.args.size())));
      idb_.insert(ToLower(r.head.predicate));
      for (const Literal& l : r.body) {
        if (l.kind == LiteralKind::kAtom || l.kind == LiteralKind::kNegatedAtom) {
          ARC_RETURN_IF_ERROR(
              ensure(l.atom.predicate, static_cast<int>(l.atom.args.size())));
        }
        if (l.kind == LiteralKind::kAggregate) {
          for (const Atom& a : l.aggregate.body_atoms) {
            ARC_RETURN_IF_ERROR(
                ensure(a.predicate, static_cast<int>(a.args.size())));
          }
        }
      }
    }
    // Materialize relations: EDB from the database (deduplicated), IDB
    // empty with declared or positional schemas.
    for (const auto& [key, arity] : arity_) {
      Schema schema;
      if (const Declaration* d = program_->FindDecl(display_[key])) {
        schema = Schema(d->attrs);
      } else if (const Relation* rel = edb_.GetPtr(display_[key])) {
        schema = rel->schema();
      } else {
        std::vector<std::string> names;
        for (int i = 0; i < arity; ++i) {
          names.push_back("$" + std::to_string(i + 1));
        }
        schema = Schema(std::move(names));
      }
      IndexedRel indexed(schema);
      if (const Relation* rel = edb_.GetPtr(display_[key])) {
        if (rel->schema().size() != arity) {
          return InvalidArgument("database relation '" + display_[key] +
                                 "' has arity " +
                                 std::to_string(rel->schema().size()) +
                                 " but the program uses " +
                                 std::to_string(arity));
        }
        for (const Tuple& t : rel->rows()) indexed.Add(t);
      }
      relations_.emplace(key, std::move(indexed));
    }
    for (const Atom& f : program_->facts) {
      Tuple t;
      for (const DlTermPtr& a : f.args) t.Append(a->value);
      relations_.at(ToLower(f.predicate)).Add(std::move(t));
    }
    return Status::Ok();
  }

  // ---- stratification ----------------------------------------------------

  Status Stratify() {
    // stratum[p] via fixpoint: positive deps p ≥ q; negated/aggregate deps
    // p > q.
    for (const auto& [key, arity] : arity_) {
      (void)arity;
      stratum_[key] = 0;
    }
    const int n = static_cast<int>(arity_.size());
    bool changed = true;
    int guard = 0;
    while (changed) {
      changed = false;
      if (++guard > n + 2) {
        return InvalidArgument(
            "program is not stratifiable (negation or aggregation through "
            "recursion)");
      }
      for (const Rule& r : program_->rules) {
        const std::string head = ToLower(r.head.predicate);
        for (const Literal& l : r.body) {
          auto bump = [&](const std::string& dep, bool strict) {
            const int need = stratum_[dep] + (strict ? 1 : 0);
            if (stratum_[head] < need) {
              stratum_[head] = need;
              changed = true;
            }
          };
          switch (l.kind) {
            case LiteralKind::kAtom:
              bump(ToLower(l.atom.predicate), false);
              break;
            case LiteralKind::kNegatedAtom:
              bump(ToLower(l.atom.predicate), true);
              break;
            case LiteralKind::kAggregate:
              for (const Atom& a : l.aggregate.body_atoms) {
                bump(ToLower(a.predicate), true);
              }
              break;
            case LiteralKind::kComparison:
              break;
          }
        }
      }
    }
    max_stratum_ = 0;
    for (const auto& [key, s] : stratum_) {
      (void)key;
      max_stratum_ = std::max(max_stratum_, s);
    }
    return Status::Ok();
  }

  // ---- evaluation --------------------------------------------------------

  Status EvaluateStrata() {
    for (int s = 0; s <= max_stratum_; ++s) {
      std::vector<const Rule*> rules;
      std::unordered_set<std::string> recursive;
      for (const Rule& r : program_->rules) {
        if (stratum_.at(ToLower(r.head.predicate)) == s) {
          rules.push_back(&r);
          recursive.insert(ToLower(r.head.predicate));
        }
      }
      if (rules.empty()) continue;
      if (options_.semi_naive) {
        ARC_RETURN_IF_ERROR(SemiNaive(rules, recursive));
      } else {
        ARC_RETURN_IF_ERROR(Naive(rules));
      }
    }
    return Status::Ok();
  }

  Status Naive(const std::vector<const Rule*>& rules) {
    for (int64_t iter = 0;; ++iter) {
      if (iter >= options_.max_iterations) {
        return EvalError("Datalog fixpoint did not converge");
      }
      bool any_new = false;
      for (const Rule* r : rules) {
        ARC_RETURN_IF_ERROR(EvalRule(*r, nullptr, "", &any_new));
      }
      if (!any_new) return Status::Ok();
    }
  }

  Status SemiNaive(const std::vector<const Rule*>& rules,
                   const std::unordered_set<std::string>& recursive) {
    // Deltas: start as everything currently known for the stratum's heads
    // (facts + lower strata contributions).
    std::unordered_map<std::string, IndexedRel> delta;
    auto fresh_delta = [&](const std::string& key) {
      IndexedRel d(relations_.at(key).rel.schema());
      return d;
    };
    // Initial round: evaluate all rules against full relations.
    std::unordered_map<std::string, IndexedRel> new_delta;
    for (const std::string& key : recursive) {
      new_delta.emplace(key, fresh_delta(key));
    }
    for (const Rule* r : rules) {
      bool any = false;
      ARC_RETURN_IF_ERROR(EvalRuleInto(*r, nullptr, "", &new_delta, &any));
    }
    delta = std::move(new_delta);

    for (int64_t iter = 0;; ++iter) {
      if (iter >= options_.max_iterations) {
        return EvalError("Datalog fixpoint did not converge");
      }
      bool delta_nonempty = false;
      for (const auto& [key, d] : delta) {
        if (!d.rel.empty()) delta_nonempty = true;
      }
      if (!delta_nonempty) return Status::Ok();
      new_delta.clear();
      for (const std::string& key : recursive) {
        new_delta.emplace(key, fresh_delta(key));
      }
      for (const Rule* r : rules) {
        // One variant per positive occurrence of a recursive predicate:
        // that occurrence ranges over the delta, the others over the full
        // relation.
        int occurrence = 0;
        for (size_t i = 0; i < r->body.size(); ++i) {
          const Literal& l = r->body[i];
          if (l.kind != LiteralKind::kAtom) continue;
          const std::string key = ToLower(l.atom.predicate);
          if (recursive.count(key) == 0) continue;
          bool any = false;
          ARC_RETURN_IF_ERROR(EvalRuleInto(
              *r, &delta, key + "#" + std::to_string(i), &new_delta, &any));
          ++occurrence;
        }
        (void)occurrence;
      }
      delta = std::move(new_delta);
    }
  }

  /// Evaluates one rule. When `delta` is provided, the positive body atom
  /// tagged `delta_tag` ("pred#index") ranges over the delta relation.
  Status EvalRule(const Rule& r,
                  const std::unordered_map<std::string, IndexedRel>* delta,
                  const std::string& delta_tag, bool* any_new) {
    std::unordered_map<std::string, IndexedRel>* no_sink = nullptr;
    return EvalRuleImpl(r, delta, delta_tag, no_sink, any_new);
  }

  Status EvalRuleInto(const Rule& r,
                      const std::unordered_map<std::string, IndexedRel>* delta,
                      const std::string& delta_tag,
                      std::unordered_map<std::string, IndexedRel>* sink,
                      bool* any_new) {
    return EvalRuleImpl(r, delta, delta_tag, sink, any_new);
  }

  Status EvalRuleImpl(const Rule& r,
                      const std::unordered_map<std::string, IndexedRel>* delta,
                      const std::string& delta_tag,
                      std::unordered_map<std::string, IndexedRel>* sink,
                      bool* any_new) {
    Bindings bindings;
    return EvalLiterals(r, 0, &bindings, delta, delta_tag, sink, any_new);
  }

  Status EvalLiterals(const Rule& r, size_t idx, Bindings* bindings,
                      const std::unordered_map<std::string, IndexedRel>* delta,
                      const std::string& delta_tag,
                      std::unordered_map<std::string, IndexedRel>* sink,
                      bool* any_new) {
    if (idx == r.body.size()) return DeriveHead(r, *bindings, sink, any_new);
    const Literal& l = r.body[idx];
    switch (l.kind) {
      case LiteralKind::kAtom: {
        const std::string key = ToLower(l.atom.predicate);
        const IndexedRel* source = &relations_.at(key);
        if (delta != nullptr &&
            delta_tag == key + "#" + std::to_string(idx)) {
          auto it = delta->find(key);
          if (it != delta->end()) source = &it->second;
        }
        // Snapshot the size: deriving into the head may grow this very
        // relation (recursive rules); new tuples are picked up next round.
        const size_t n_rows = source->rel.rows().size();
        for (size_t row = 0; row < n_rows; ++row) {
          const Tuple& t = source->rel.rows()[row];
          const size_t mark = bindings->Mark();
          bool ok = true;
          for (size_t i = 0; i < l.atom.args.size() && ok; ++i) {
            ok = UnifyArg(*l.atom.args[i], t.at(static_cast<int>(i)), bindings);
          }
          if (ok) {
            ARC_RETURN_IF_ERROR(EvalLiterals(r, idx + 1, bindings, delta,
                                             delta_tag, sink, any_new));
          }
          bindings->Rewind(mark);
        }
        return Status::Ok();
      }
      case LiteralKind::kNegatedAtom: {
        const std::string key = ToLower(l.atom.predicate);
        const IndexedRel& source = relations_.at(key);
        // All variables must be bound (safety).
        Tuple probe;
        bool simple = true;
        for (const DlTermPtr& a : l.atom.args) {
          ARC_ASSIGN_OR_RETURN(std::optional<Value> v,
                               TryEvalTerm(*a, *bindings));
          if (a->kind == DlTermKind::kUnderscore) {
            simple = false;
            break;
          }
          if (!v.has_value()) {
            return EvalError("unbound variable in negated atom " +
                             l.atom.predicate);
          }
          probe.Append(*v);
        }
        bool matched;
        if (simple) {
          matched = source.Contains(probe);
        } else {
          // Wildcards present: scan.
          matched = false;
          for (const Tuple& t : source.rel.rows()) {
            bool all = true;
            for (size_t i = 0; i < l.atom.args.size() && all; ++i) {
              const DlTerm& a = *l.atom.args[i];
              if (a.kind == DlTermKind::kUnderscore) continue;
              ARC_ASSIGN_OR_RETURN(std::optional<Value> v,
                                   TryEvalTerm(a, *bindings));
              if (!v.has_value() || !(*v == t.at(static_cast<int>(i)))) {
                all = false;
              }
            }
            if (all) {
              matched = true;
              break;
            }
          }
        }
        if (!matched) {
          return EvalLiterals(r, idx + 1, bindings, delta, delta_tag, sink,
                              any_new);
        }
        return Status::Ok();
      }
      case LiteralKind::kComparison: {
        // `x = expr` with unbound x grounds x (Soufflé-style assignment).
        if (l.cmp == data::CmpOp::kEq && l.lhs->kind == DlTermKind::kVar &&
            bindings->Find(l.lhs->var) == nullptr) {
          ARC_ASSIGN_OR_RETURN(std::optional<Value> v,
                               TryEvalTerm(*l.rhs, *bindings));
          if (!v.has_value()) {
            return EvalError("cannot ground variable '" + l.lhs->var + "'");
          }
          const size_t mark = bindings->Mark();
          bindings->Push(l.lhs->var, *v);
          Status s = EvalLiterals(r, idx + 1, bindings, delta, delta_tag,
                                  sink, any_new);
          bindings->Rewind(mark);
          return s;
        }
        ARC_ASSIGN_OR_RETURN(std::optional<Value> lv,
                             TryEvalTerm(*l.lhs, *bindings));
        ARC_ASSIGN_OR_RETURN(std::optional<Value> rv,
                             TryEvalTerm(*l.rhs, *bindings));
        if (!lv.has_value() || !rv.has_value()) {
          return EvalError("unbound variable in comparison");
        }
        ARC_ASSIGN_OR_RETURN(
            data::TriBool v,
            data::Compare(l.cmp, *lv, *rv, data::NullLogic::kTwoValued));
        if (data::IsTrue(v)) {
          return EvalLiterals(r, idx + 1, bindings, delta, delta_tag, sink,
                              any_new);
        }
        return Status::Ok();
      }
      case LiteralKind::kAggregate:
        return EvalAggregate(r, idx, bindings, delta, delta_tag, sink,
                             any_new);
    }
    return Internal("bad literal");
  }

  Status EvalAggregate(const Rule& r, size_t idx, Bindings* bindings,
                       const std::unordered_map<std::string, IndexedRel>* delta,
                       const std::string& delta_tag,
                       std::unordered_map<std::string, IndexedRel>* sink,
                       bool* any_new) {
    const Aggregate& agg = r.body[idx].aggregate;
    // Enumerate the aggregate scope: variables bound outside stay bound;
    // inner variables are existential and do not escape (§2.5 FOI).
    std::vector<Value> values;
    int64_t count = 0;
    ARC_RETURN_IF_ERROR(
        EnumerateAggBody(agg, 0, bindings, &values, &count));
    Value result;
    const bool empty = count == 0;
    switch (agg.func) {
      case AggFunc::kCount:
        result = Value::Int(count);
        break;
      case AggFunc::kSum: {
        if (empty) {
          result = Value::Int(0);  // Soufflé: sum over ∅ = 0 (Eq. 15)
          break;
        }
        Value acc = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          ARC_ASSIGN_OR_RETURN(acc,
                               data::Arith(data::ArithOp::kAdd, acc, values[i]));
        }
        result = acc;
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (empty) return Status::Ok();  // rule does not fire
        Value best = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          const int c = values[i].CompareTotal(best);
          if ((agg.func == AggFunc::kMin && c < 0) ||
              (agg.func == AggFunc::kMax && c > 0)) {
            best = values[i];
          }
        }
        result = best;
        break;
      }
      case AggFunc::kAvg: {
        if (empty) return Status::Ok();  // rule does not fire
        double sum = 0;
        for (const Value& v : values) sum += v.ToDouble();
        result = Value::Double(sum / static_cast<double>(values.size()));
        break;
      }
      default:
        return Unsupported("aggregate not supported in Datalog");
    }
    // Bind or test the result variable.
    const Value* existing = bindings->Find(agg.result_var);
    if (existing != nullptr) {
      if (!(*existing == result)) return Status::Ok();
      return EvalLiterals(r, idx + 1, bindings, delta, delta_tag, sink,
                          any_new);
    }
    const size_t mark = bindings->Mark();
    bindings->Push(agg.result_var, std::move(result));
    Status s =
        EvalLiterals(r, idx + 1, bindings, delta, delta_tag, sink, any_new);
    bindings->Rewind(mark);
    return s;
  }

  Status EnumerateAggBody(const Aggregate& agg, size_t atom_idx,
                          Bindings* bindings, std::vector<Value>* values,
                          int64_t* count) {
    if (atom_idx == agg.body_atoms.size()) {
      // Apply comparisons.
      for (const Aggregate::Comparison& c : agg.body_comparisons) {
        ARC_ASSIGN_OR_RETURN(std::optional<Value> lv,
                             TryEvalTerm(*c.lhs, *bindings));
        ARC_ASSIGN_OR_RETURN(std::optional<Value> rv,
                             TryEvalTerm(*c.rhs, *bindings));
        if (!lv.has_value() || !rv.has_value()) {
          return EvalError("unbound variable in aggregate comparison");
        }
        ARC_ASSIGN_OR_RETURN(
            data::TriBool v,
            data::Compare(c.op, *lv, *rv, data::NullLogic::kTwoValued));
        if (!data::IsTrue(v)) return Status::Ok();
      }
      ++*count;
      if (agg.target) {
        ARC_ASSIGN_OR_RETURN(std::optional<Value> v,
                             TryEvalTerm(*agg.target, *bindings));
        if (!v.has_value()) {
          return EvalError("unbound aggregate target");
        }
        values->push_back(std::move(*v));
      }
      return Status::Ok();
    }
    const Atom& atom = agg.body_atoms[atom_idx];
    const IndexedRel& source = relations_.at(ToLower(atom.predicate));
    for (const Tuple& t : source.rel.rows()) {
      const size_t mark = bindings->Mark();
      bool ok = true;
      for (size_t i = 0; i < atom.args.size() && ok; ++i) {
        ok = UnifyArg(*atom.args[i], t.at(static_cast<int>(i)), bindings);
      }
      if (ok) {
        ARC_RETURN_IF_ERROR(
            EnumerateAggBody(agg, atom_idx + 1, bindings, values, count));
      }
      bindings->Rewind(mark);
    }
    return Status::Ok();
  }

  bool UnifyArg(const DlTerm& arg, const Value& v, Bindings* bindings) {
    switch (arg.kind) {
      case DlTermKind::kUnderscore:
        return true;
      case DlTermKind::kConst:
        return arg.value == v;
      case DlTermKind::kVar: {
        const Value* bound = bindings->Find(arg.var);
        if (bound != nullptr) return *bound == v;
        bindings->Push(arg.var, v);
        return true;
      }
      case DlTermKind::kArith: {
        auto r = TryEvalTerm(arg, *bindings);
        if (!r.ok() || !r->has_value()) return false;
        return **r == v;
      }
    }
    return false;
  }

  /// Evaluates a term; nullopt if it contains unbound variables.
  Result<std::optional<Value>> TryEvalTerm(const DlTerm& t,
                                           const Bindings& bindings) {
    switch (t.kind) {
      case DlTermKind::kConst:
        return std::optional<Value>(t.value);
      case DlTermKind::kVar: {
        const Value* v = bindings.Find(t.var);
        if (v == nullptr) return std::optional<Value>();
        return std::optional<Value>(*v);
      }
      case DlTermKind::kUnderscore:
        return std::optional<Value>();
      case DlTermKind::kArith: {
        ARC_ASSIGN_OR_RETURN(std::optional<Value> l,
                             TryEvalTerm(*t.lhs, bindings));
        ARC_ASSIGN_OR_RETURN(std::optional<Value> r,
                             TryEvalTerm(*t.rhs, bindings));
        if (!l.has_value() || !r.has_value()) return std::optional<Value>();
        ARC_ASSIGN_OR_RETURN(Value v, data::Arith(t.op, *l, *r));
        return std::optional<Value>(std::move(v));
      }
    }
    return std::optional<Value>();
  }

  Status DeriveHead(const Rule& r, const Bindings& bindings,
                    std::unordered_map<std::string, IndexedRel>* sink,
                    bool* any_new) {
    Tuple t;
    for (const DlTermPtr& a : r.head.args) {
      ARC_ASSIGN_OR_RETURN(std::optional<Value> v, TryEvalTerm(*a, bindings));
      if (!v.has_value()) {
        return EvalError("unbound variable in rule head: " +
                         ToDatalog(r));
      }
      t.Append(std::move(*v));
    }
    IndexedRel& target = relations_.at(ToLower(r.head.predicate));
    if (target.Add(t)) {
      *any_new = true;
      if (sink != nullptr) {
        auto it = sink->find(ToLower(r.head.predicate));
        if (it != sink->end()) it->second.Add(std::move(t));
      }
    }
    return Status::Ok();
  }

  const data::Database& edb_;
  const DlEvalOptions& options_;
  const DlProgram* program_ = nullptr;

  std::unordered_map<std::string, int> arity_;
  std::unordered_map<std::string, std::string> display_;
  std::unordered_set<std::string> idb_;
  std::unordered_map<std::string, IndexedRel> relations_;
  std::unordered_map<std::string, int> stratum_;
  int max_stratum_ = 0;
};

}  // namespace

DlEvaluator::DlEvaluator(const data::Database& edb, DlEvalOptions options)
    : edb_(edb), options_(options) {}

Result<data::Relation> DlEvaluator::Eval(const DlProgram& program,
                                         std::string_view query_predicate) {
  DlEvalImpl impl(edb_, options_);
  return impl.Run(program, query_predicate);
}

}  // namespace arc::datalog
