// AST for the Datalog dialect used in the paper's Soufflé examples
// (§2.5/§2.6): rules with positive/negated atoms, comparisons, arithmetic
// terms, and Soufflé-style aggregates `v = sum t : { body }` whose scope
// cannot export variables (the FOI pattern, Eq. 6/15).
//
//   .decl P(s, t)
//   A(x, y) :- P(x, y).
//   A(x, y) :- P(x, z), A(z, y).
//   Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.
//   V(x) :- R(x, _), !S(x, _).
//   P(1, 2).                         -- fact
#ifndef ARC_DATALOG_AST_H_
#define ARC_DATALOG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "arc/ast.h"  // AggFunc
#include "data/value.h"

namespace arc::datalog {

struct DlTerm;
using DlTermPtr = std::unique_ptr<DlTerm>;

enum class DlTermKind { kVar, kConst, kUnderscore, kArith };

struct DlTerm {
  DlTermKind kind = DlTermKind::kVar;
  std::string var;      // kVar
  data::Value value;    // kConst
  data::ArithOp op = data::ArithOp::kAdd;  // kArith
  DlTermPtr lhs;
  DlTermPtr rhs;

  DlTermPtr Clone() const;
  void CollectVars(std::vector<std::string>* out) const;
};

DlTermPtr DlVar(std::string name);
DlTermPtr DlConst(data::Value v);
DlTermPtr DlWildcard();
DlTermPtr DlArith(data::ArithOp op, DlTermPtr lhs, DlTermPtr rhs);

struct Atom {
  std::string predicate;
  std::vector<DlTermPtr> args;

  Atom Clone() const;
};

/// Soufflé-style aggregate: `result_var = func target : { body_atoms,
/// comparisons }`. Variables inside the braces that are not bound outside
/// are existential and cannot escape (§2.5, FOI).
struct Aggregate {
  AggFunc func = AggFunc::kSum;
  std::string result_var;
  DlTermPtr target;  // null for count
  std::vector<Atom> body_atoms;
  struct Comparison {
    data::CmpOp op;
    DlTermPtr lhs;
    DlTermPtr rhs;
  };
  std::vector<Comparison> body_comparisons;

  Aggregate Clone() const;
};

enum class LiteralKind { kAtom, kNegatedAtom, kComparison, kAggregate };

struct Literal {
  LiteralKind kind = LiteralKind::kAtom;
  Atom atom;            // kAtom / kNegatedAtom
  data::CmpOp cmp = data::CmpOp::kEq;  // kComparison
  DlTermPtr lhs;
  DlTermPtr rhs;
  Aggregate aggregate;  // kAggregate

  Literal Clone() const;
};

struct Rule {
  Atom head;
  std::vector<Literal> body;

  Rule Clone() const;
};

struct Declaration {
  std::string predicate;
  std::vector<std::string> attrs;
};

struct DlProgram {
  std::vector<Declaration> decls;
  std::vector<Rule> rules;
  std::vector<Atom> facts;  // ground atoms

  const Declaration* FindDecl(std::string_view predicate) const;
};

/// Renders the program back to Soufflé-like text.
std::string ToDatalog(const DlProgram& program);
std::string ToDatalog(const Rule& rule);

}  // namespace arc::datalog

#endif  // ARC_DATALOG_AST_H_
