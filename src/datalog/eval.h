// Datalog evaluation with Soufflé's conventions: set semantics, no nulls,
// stratified negation and aggregation, `sum`/`count` over an empty scope
// derive 0 (Eq. 15), while `min`/`max`/`mean` over an empty scope simply do
// not fire the rule. Evaluation is semi-naive by default; the naive mode
// exists as the ablation baseline for the recursion benchmarks (E9).
#ifndef ARC_DATALOG_EVAL_H_
#define ARC_DATALOG_EVAL_H_

#include "common/status.h"
#include "data/database.h"
#include "datalog/ast.h"

namespace arc::datalog {

struct DlEvalOptions {
  /// Semi-naive (delta-driven) fixpoints; false = naive re-derivation.
  bool semi_naive = true;
  int64_t max_iterations = 1000000;
};

class DlEvaluator {
 public:
  /// `edb` supplies the extensional relations (deduplicated on load —
  /// Datalog is set-semantics).
  explicit DlEvaluator(const data::Database& edb, DlEvalOptions options = {});

  /// Runs the program to fixpoint and returns the extension of
  /// `query_predicate`.
  Result<data::Relation> Eval(const DlProgram& program,
                              std::string_view query_predicate);

 private:
  const data::Database& edb_;
  DlEvalOptions options_;
};

}  // namespace arc::datalog

#endif  // ARC_DATALOG_EVAL_H_
