// Parser for the Datalog dialect (see datalog/ast.h). Accepts Soufflé-like
// programs: `.decl` declarations (type annotations are accepted and
// ignored), rules, facts, `//`-comments, and Soufflé aggregate syntax.
#ifndef ARC_DATALOG_PARSER_H_
#define ARC_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"

namespace arc::datalog {

Result<DlProgram> ParseDatalog(std::string_view input);

}  // namespace arc::datalog

#endif  // ARC_DATALOG_PARSER_H_
