#include "datalog/ast.h"

#include "common/strings.h"

namespace arc::datalog {

DlTermPtr DlTerm::Clone() const {
  auto out = std::make_unique<DlTerm>();
  out->kind = kind;
  out->var = var;
  out->value = value;
  out->op = op;
  if (lhs) out->lhs = lhs->Clone();
  if (rhs) out->rhs = rhs->Clone();
  return out;
}

void DlTerm::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case DlTermKind::kVar:
      out->push_back(var);
      return;
    case DlTermKind::kArith:
      if (lhs) lhs->CollectVars(out);
      if (rhs) rhs->CollectVars(out);
      return;
    default:
      return;
  }
}

DlTermPtr DlVar(std::string name) {
  auto t = std::make_unique<DlTerm>();
  t->kind = DlTermKind::kVar;
  t->var = std::move(name);
  return t;
}

DlTermPtr DlConst(data::Value v) {
  auto t = std::make_unique<DlTerm>();
  t->kind = DlTermKind::kConst;
  t->value = std::move(v);
  return t;
}

DlTermPtr DlWildcard() {
  auto t = std::make_unique<DlTerm>();
  t->kind = DlTermKind::kUnderscore;
  return t;
}

DlTermPtr DlArith(data::ArithOp op, DlTermPtr lhs, DlTermPtr rhs) {
  auto t = std::make_unique<DlTerm>();
  t->kind = DlTermKind::kArith;
  t->op = op;
  t->lhs = std::move(lhs);
  t->rhs = std::move(rhs);
  return t;
}

Atom Atom::Clone() const {
  Atom out;
  out.predicate = predicate;
  out.args.reserve(args.size());
  for (const DlTermPtr& a : args) out.args.push_back(a->Clone());
  return out;
}

Aggregate Aggregate::Clone() const {
  Aggregate out;
  out.func = func;
  out.result_var = result_var;
  if (target) out.target = target->Clone();
  for (const Atom& a : body_atoms) out.body_atoms.push_back(a.Clone());
  for (const Comparison& c : body_comparisons) {
    out.body_comparisons.push_back({c.op, c.lhs->Clone(), c.rhs->Clone()});
  }
  return out;
}

Literal Literal::Clone() const {
  Literal out;
  out.kind = kind;
  out.atom = atom.Clone();
  out.cmp = cmp;
  if (lhs) out.lhs = lhs->Clone();
  if (rhs) out.rhs = rhs->Clone();
  out.aggregate = aggregate.Clone();
  return out;
}

Rule Rule::Clone() const {
  Rule out;
  out.head = head.Clone();
  for (const Literal& l : body) out.body.push_back(l.Clone());
  return out;
}

const Declaration* DlProgram::FindDecl(std::string_view predicate) const {
  for (const Declaration& d : decls) {
    if (EqualsIgnoreCase(d.predicate, predicate)) return &d;
  }
  return nullptr;
}

namespace {

std::string TermText(const DlTerm& t) {
  switch (t.kind) {
    case DlTermKind::kVar:
      return t.var;
    case DlTermKind::kConst:
      return t.value.ToString();
    case DlTermKind::kUnderscore:
      return "_";
    case DlTermKind::kArith:
      return "(" + TermText(*t.lhs) + " " + data::ArithOpSymbol(t.op) + " " +
             TermText(*t.rhs) + ")";
  }
  return "?";
}

std::string AtomText(const Atom& a) {
  return a.predicate + "(" +
         JoinMapped(a.args, ", ",
                    [](const DlTermPtr& t) { return TermText(*t); }) +
         ")";
}

std::string LiteralText(const Literal& l) {
  switch (l.kind) {
    case LiteralKind::kAtom:
      return AtomText(l.atom);
    case LiteralKind::kNegatedAtom:
      return "!" + AtomText(l.atom);
    case LiteralKind::kComparison:
      return TermText(*l.lhs) + " " + data::CmpOpSymbol(l.cmp) + " " +
             TermText(*l.rhs);
    case LiteralKind::kAggregate: {
      const Aggregate& agg = l.aggregate;
      std::string out = agg.result_var + " = ";
      out += agg.func == AggFunc::kAvg ? "mean" : AggFuncName(agg.func);
      if (agg.target) out += " " + TermText(*agg.target);
      out += " : { ";
      std::vector<std::string> parts;
      for (const Atom& a : agg.body_atoms) parts.push_back(AtomText(a));
      for (const Aggregate::Comparison& c : agg.body_comparisons) {
        parts.push_back(TermText(*c.lhs) + " " +
                        data::CmpOpSymbol(c.op) + " " + TermText(*c.rhs));
      }
      out += Join(parts, ", ");
      out += " }";
      return out;
    }
  }
  return "?";
}

}  // namespace

std::string ToDatalog(const Rule& rule) {
  std::string out = AtomText(rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    out += JoinMapped(rule.body, ", ",
                      [](const Literal& l) { return LiteralText(l); });
  }
  out += ".";
  return out;
}

std::string ToDatalog(const DlProgram& program) {
  std::string out;
  for (const Declaration& d : program.decls) {
    out += ".decl " + d.predicate + "(" + Join(d.attrs, ", ") + ")\n";
  }
  for (const Atom& f : program.facts) {
    out += AtomText(f) + ".\n";
  }
  for (const Rule& r : program.rules) {
    out += ToDatalog(r) + "\n";
  }
  return out;
}

}  // namespace arc::datalog
