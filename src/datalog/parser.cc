#include "datalog/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace arc::datalog {

namespace {

enum class Tok {
  kEnd,
  kIdent,
  kInt,
  kFloat,
  kString,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kColonDash,
  kColon,
  kBang,
  kUnderscore,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
};

struct Token {
  Tok tok = Tok::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int column = 1;
};

Result<std::vector<Token>> LexDatalog(std::string_view input) {
  std::vector<Token> out;
  size_t pos = 0;
  int line = 1;
  int column = 1;
  auto advance = [&]() {
    const char c = input[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  };
  auto peek = [&](size_t ahead = 0) {
    return pos + ahead < input.size() ? input[pos + ahead] : '\0';
  };
  while (true) {
    while (pos < input.size()) {
      if (std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      } else if (peek() == '/' && peek(1) == '/') {
        while (pos < input.size() && peek() != '\n') advance();
      } else if (peek() == '%') {
        while (pos < input.size() && peek() != '\n') advance();
      } else {
        break;
      }
    }
    Token t;
    t.line = line;
    t.column = column;
    if (pos >= input.size()) {
      out.push_back(std::move(t));
      return out;
    }
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c))) {
      while (pos < input.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        t.text += advance();
      }
      t.tok = Tok::kIdent;
    } else if (c == '_' &&
               !std::isalnum(static_cast<unsigned char>(peek(1)))) {
      advance();
      t.tok = Tok::kUnderscore;
    } else if (c == '_') {
      while (pos < input.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        t.text += advance();
      }
      t.tok = Tok::kIdent;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_float = false;
      while (pos < input.size() &&
             std::isdigit(static_cast<unsigned char>(peek()))) {
        num += advance();
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        num += advance();
        while (pos < input.size() &&
               std::isdigit(static_cast<unsigned char>(peek()))) {
          num += advance();
        }
      }
      if (is_float) {
        t.tok = Tok::kFloat;
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.tok = Tok::kInt;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
    } else if (c == '"') {
      advance();
      while (pos < input.size() && peek() != '"') t.text += advance();
      if (pos >= input.size()) {
        return ParseError("unterminated string at " + std::to_string(line) +
                          ":" + std::to_string(column));
      }
      advance();
      t.tok = Tok::kString;
    } else {
      advance();
      switch (c) {
        case '(':
          t.tok = Tok::kLParen;
          break;
        case ')':
          t.tok = Tok::kRParen;
          break;
        case '{':
          t.tok = Tok::kLBrace;
          break;
        case '}':
          t.tok = Tok::kRBrace;
          break;
        case ',':
          t.tok = Tok::kComma;
          break;
        case '.':
          t.tok = Tok::kDot;
          break;
        case ':':
          if (peek() == '-') {
            advance();
            t.tok = Tok::kColonDash;
          } else {
            t.tok = Tok::kColon;
          }
          break;
        case '!':
          if (peek() == '=') {
            advance();
            t.tok = Tok::kNe;
          } else {
            t.tok = Tok::kBang;
          }
          break;
        case '=':
          t.tok = Tok::kEq;
          break;
        case '<':
          if (peek() == '=') {
            advance();
            t.tok = Tok::kLe;
          } else {
            t.tok = Tok::kLt;
          }
          break;
        case '>':
          if (peek() == '=') {
            advance();
            t.tok = Tok::kGe;
          } else {
            t.tok = Tok::kGt;
          }
          break;
        case '+':
          t.tok = Tok::kPlus;
          break;
        case '-':
          t.tok = Tok::kMinus;
          break;
        case '*':
          t.tok = Tok::kStar;
          break;
        case '/':
          t.tok = Tok::kSlash;
          break;
        case '%':
          t.tok = Tok::kPercent;
          break;
        default:
          return ParseError(std::string("unexpected character '") + c +
                            "' at " + std::to_string(line) + ":" +
                            std::to_string(column));
      }
    }
    out.push_back(std::move(t));
  }
}

class DlParser {
 public:
  explicit DlParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<DlProgram> Program() {
    DlProgram program;
    while (!Check(Tok::kEnd)) {
      if (Check(Tok::kDot) && CheckIdent("decl", 1)) {
        ARC_RETURN_IF_ERROR(ParseDecl(&program));
        continue;
      }
      ARC_RETURN_IF_ERROR(ParseClause(&program));
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(Tok t, size_t ahead = 0) const { return Peek(ahead).tok == t; }
  bool CheckIdent(std::string_view text, size_t ahead = 0) const {
    return Check(Tok::kIdent, ahead) &&
           EqualsIgnoreCase(Peek(ahead).text, text);
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(Tok t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ErrorHere(const std::string& message) const {
    const Token& t = Peek();
    return ParseError(message + " at " + std::to_string(t.line) + ":" +
                      std::to_string(t.column));
  }
  Status Expect(Tok t, const std::string& what) {
    if (Match(t)) return Status::Ok();
    return ErrorHere("expected " + what);
  }

  Status ParseDecl(DlProgram* program) {
    Advance();  // '.'
    Advance();  // 'decl'
    Declaration decl;
    if (!Check(Tok::kIdent)) return ErrorHere("expected predicate name");
    decl.predicate = Advance().text;
    ARC_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    while (true) {
      if (!Check(Tok::kIdent)) return ErrorHere("expected attribute name");
      decl.attrs.push_back(Advance().text);
      if (Match(Tok::kColon)) {
        if (!Check(Tok::kIdent)) return ErrorHere("expected a type name");
        Advance();  // type annotation, ignored
      }
      if (!Match(Tok::kComma)) break;
    }
    ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    program->decls.push_back(std::move(decl));
    return Status::Ok();
  }

  Status ParseClause(DlProgram* program) {
    ARC_ASSIGN_OR_RETURN(Atom head, ParseAtom());
    if (Match(Tok::kDot)) {
      // Fact: arguments must be ground.
      for (const DlTermPtr& a : head.args) {
        if (a->kind != DlTermKind::kConst) {
          return ErrorHere("facts must be ground");
        }
      }
      program->facts.push_back(std::move(head));
      return Status::Ok();
    }
    ARC_RETURN_IF_ERROR(Expect(Tok::kColonDash, "':-' or '.'"));
    Rule rule;
    rule.head = std::move(head);
    while (true) {
      ARC_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      rule.body.push_back(std::move(lit));
      if (!Match(Tok::kComma)) break;
    }
    ARC_RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
    program->rules.push_back(std::move(rule));
    return Status::Ok();
  }

  Result<Atom> ParseAtom() {
    if (!Check(Tok::kIdent)) return ErrorHere("expected predicate name");
    Atom atom;
    atom.predicate = Advance().text;
    ARC_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    if (!Check(Tok::kRParen)) {
      while (true) {
        ARC_ASSIGN_OR_RETURN(DlTermPtr term, ParseTerm());
        atom.args.push_back(std::move(term));
        if (!Match(Tok::kComma)) break;
      }
    }
    ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    return atom;
  }

  static std::optional<AggFunc> AggName(const std::string& text) {
    if (EqualsIgnoreCase(text, "sum")) return AggFunc::kSum;
    if (EqualsIgnoreCase(text, "count")) return AggFunc::kCount;
    if (EqualsIgnoreCase(text, "min")) return AggFunc::kMin;
    if (EqualsIgnoreCase(text, "max")) return AggFunc::kMax;
    if (EqualsIgnoreCase(text, "mean")) return AggFunc::kAvg;
    return std::nullopt;
  }

  Result<Literal> ParseLiteral() {
    Literal lit;
    if (Match(Tok::kBang)) {
      lit.kind = LiteralKind::kNegatedAtom;
      ARC_ASSIGN_OR_RETURN(lit.atom, ParseAtom());
      return lit;
    }
    // Aggregate: var '=' aggname [target] ':' '{' ... '}'.
    if (Check(Tok::kIdent) && Check(Tok::kEq, 1) && Check(Tok::kIdent, 2) &&
        AggName(Peek(2).text).has_value()) {
      lit.kind = LiteralKind::kAggregate;
      Aggregate& agg = lit.aggregate;
      agg.result_var = Advance().text;
      Advance();  // '='
      agg.func = *AggName(Advance().text);
      if (!Check(Tok::kColon)) {
        ARC_ASSIGN_OR_RETURN(agg.target, ParseTerm());
      } else if (agg.func != AggFunc::kCount) {
        return ErrorHere("aggregate requires a target term");
      }
      ARC_RETURN_IF_ERROR(Expect(Tok::kColon, "':'"));
      ARC_RETURN_IF_ERROR(Expect(Tok::kLBrace, "'{'"));
      while (true) {
        // Atom or comparison.
        if (Check(Tok::kIdent) && Check(Tok::kLParen, 1)) {
          ARC_ASSIGN_OR_RETURN(Atom a, ParseAtom());
          agg.body_atoms.push_back(std::move(a));
        } else {
          ARC_ASSIGN_OR_RETURN(DlTermPtr lhs, ParseTerm());
          ARC_ASSIGN_OR_RETURN(data::CmpOp op, ParseCmpOp());
          ARC_ASSIGN_OR_RETURN(DlTermPtr rhs, ParseTerm());
          agg.body_comparisons.push_back({op, std::move(lhs), std::move(rhs)});
        }
        if (!Match(Tok::kComma)) break;
      }
      ARC_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}'"));
      return lit;
    }
    // Plain atom.
    if (Check(Tok::kIdent) && Check(Tok::kLParen, 1)) {
      lit.kind = LiteralKind::kAtom;
      ARC_ASSIGN_OR_RETURN(lit.atom, ParseAtom());
      return lit;
    }
    // Comparison.
    lit.kind = LiteralKind::kComparison;
    ARC_ASSIGN_OR_RETURN(lit.lhs, ParseTerm());
    ARC_ASSIGN_OR_RETURN(lit.cmp, ParseCmpOp());
    ARC_ASSIGN_OR_RETURN(lit.rhs, ParseTerm());
    return lit;
  }

  Result<data::CmpOp> ParseCmpOp() {
    switch (Peek().tok) {
      case Tok::kEq:
        Advance();
        return data::CmpOp::kEq;
      case Tok::kNe:
        Advance();
        return data::CmpOp::kNe;
      case Tok::kLt:
        Advance();
        return data::CmpOp::kLt;
      case Tok::kLe:
        Advance();
        return data::CmpOp::kLe;
      case Tok::kGt:
        Advance();
        return data::CmpOp::kGt;
      case Tok::kGe:
        Advance();
        return data::CmpOp::kGe;
      default:
        return ErrorHere("expected a comparison operator");
    }
  }

  Result<DlTermPtr> ParseTerm() { return ParseAdditive(); }

  Result<DlTermPtr> ParseAdditive() {
    ARC_ASSIGN_OR_RETURN(DlTermPtr lhs, ParseMultiplicative());
    while (Check(Tok::kPlus) || Check(Tok::kMinus)) {
      const data::ArithOp op =
          Check(Tok::kPlus) ? data::ArithOp::kAdd : data::ArithOp::kSub;
      Advance();
      ARC_ASSIGN_OR_RETURN(DlTermPtr rhs, ParseMultiplicative());
      lhs = DlArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<DlTermPtr> ParseMultiplicative() {
    ARC_ASSIGN_OR_RETURN(DlTermPtr lhs, ParsePrimary());
    while (Check(Tok::kStar) || Check(Tok::kSlash) || Check(Tok::kPercent)) {
      data::ArithOp op = data::ArithOp::kMul;
      if (Check(Tok::kSlash)) op = data::ArithOp::kDiv;
      if (Check(Tok::kPercent)) op = data::ArithOp::kMod;
      Advance();
      ARC_ASSIGN_OR_RETURN(DlTermPtr rhs, ParsePrimary());
      lhs = DlArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<DlTermPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.tok) {
      case Tok::kInt:
        Advance();
        return DlConst(data::Value::Int(t.int_value));
      case Tok::kFloat:
        Advance();
        return DlConst(data::Value::Double(t.float_value));
      case Tok::kString:
        Advance();
        return DlConst(data::Value::String(t.text));
      case Tok::kUnderscore:
        Advance();
        return DlWildcard();
      case Tok::kIdent:
        Advance();
        return DlVar(t.text);
      case Tok::kMinus: {
        Advance();
        ARC_ASSIGN_OR_RETURN(DlTermPtr inner, ParsePrimary());
        if (inner->kind == DlTermKind::kConst && inner->value.is_numeric()) {
          if (inner->value.kind() == data::ValueKind::kInt) {
            return DlConst(data::Value::Int(-inner->value.as_int()));
          }
          return DlConst(data::Value::Double(-inner->value.as_double()));
        }
        return DlArith(data::ArithOp::kSub, DlConst(data::Value::Int(0)),
                       std::move(inner));
      }
      case Tok::kLParen: {
        Advance();
        ARC_ASSIGN_OR_RETURN(DlTermPtr inner, ParseTerm());
        ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        return inner;
      }
      default:
        return ErrorHere("expected a term");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<DlProgram> ParseDatalog(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexDatalog(input));
  return DlParser(std::move(tokens)).Program();
}

}  // namespace arc::datalog
