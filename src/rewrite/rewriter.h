// Pattern-level rewrites with convention-aware legality — the rewrites the
// paper uses to discuss when surface transformations are and are not
// meaning-preserving:
//
//  * NormalizeConjunctions — flattens nested ANDs/ORs and drops neutral
//    elements; always legal (pure pattern normal form).
//
//  * UnnestExistentialScopes (§2.7) — hoists a purely existential nested
//    scope into its parent: {…∃r∈R[∃s∈S[φ]]…} → {…∃r∈R, s∈S[φ]…}.
//    Legal under the SET convention; under bags it changes multiplicities
//    (semijoin vs per-pair), so the rewriter refuses unless the caller
//    passes set conventions. The legality switch is exactly the paper's
//    point: set-vs-bag is an interpretation, and rewrite validity depends
//    on it.
//
//  * DecorrelateAggregation (§3.2) — rewrites the correlated per-outer-
//    tuple aggregation scope (the FOI / count-bug-prone shape, Eq. 27 /
//    Fig. 5c) into the *correct* decorrelated form with a LEFT JOIN
//    annotation and grouping on the outer key (Eq. 29 / Fig. 21c),
//    avoiding the classic count bug. Like the paper (footnote 12), the
//    rewrite assumes the correlated outer attributes form a key of the
//    outer relation; with duplicates the grouped form double-counts.
//
// Each rewrite reports how many sites it transformed; differential tests
// check execution equivalence under the conventions that make each rewrite
// legal.
#ifndef ARC_REWRITE_REWRITER_H_
#define ARC_REWRITE_REWRITER_H_

#include "arc/ast.h"
#include "arc/conventions.h"
#include "common/status.h"

namespace arc::rewrite {

struct RewriteResult {
  Program program;
  int applications = 0;
};

/// Flattens nested same-kind connectives and removes neutral elements.
RewriteResult NormalizeConjunctions(const Program& program);

/// Hoists purely existential nested condition scopes into their parent
/// scope. Returns InvalidArgument unless `conventions` uses set
/// multiplicity (the rewrite is unsound under bags, §2.7).
Result<RewriteResult> UnnestExistentialScopes(const Program& program,
                                              const Conventions& conventions);

/// Rewrites correlated γ∅ aggregation scopes (boolean form, Eq. 27) into
/// the decorrelated left-join form (Eq. 29). Only sites whose correlation
/// equalities reference exactly one outer *named* binding are transformed.
RewriteResult DecorrelateAggregation(const Program& program);

}  // namespace arc::rewrite

#endif  // ARC_REWRITE_REWRITER_H_
