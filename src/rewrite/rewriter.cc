#include "rewrite/rewriter.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace arc::rewrite {

namespace {

void FlattenAndInto(FormulaPtr f, std::vector<FormulaPtr>* out) {
  if (f->kind == FormulaKind::kAnd) {
    for (FormulaPtr& c : f->children) FlattenAndInto(std::move(c), out);
    return;
  }
  out->push_back(std::move(f));
}

FormulaPtr MakeBody(std::vector<FormulaPtr> conjuncts) {
  if (conjuncts.size() == 1) return std::move(conjuncts[0]);
  return MakeAnd(std::move(conjuncts));
}

bool TermRefs(const Term& t, std::string_view var) { return t.References(var); }

bool FormulaRefs(const Formula& f, std::string_view var);

bool CollectionRefs(const Collection& c, std::string_view var) {
  if (EqualsIgnoreCase(c.head.relation, var)) return false;
  return c.body && FormulaRefs(*c.body, var);
}

bool FormulaRefs(const Formula& f, std::string_view var) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        if (FormulaRefs(*c, var)) return true;
      }
      return false;
    case FormulaKind::kNot:
      return f.child && FormulaRefs(*f.child, var);
    case FormulaKind::kExists: {
      for (const Binding& b : f.quantifier->bindings) {
        if (b.range_kind == RangeKind::kCollection && b.collection &&
            CollectionRefs(*b.collection, var)) {
          return true;
        }
        if (EqualsIgnoreCase(b.var, var)) return false;  // shadowed
      }
      if (f.quantifier->grouping.has_value()) {
        for (const TermPtr& k : f.quantifier->grouping->keys) {
          if (TermRefs(*k, var)) return true;
        }
      }
      return f.quantifier->body && FormulaRefs(*f.quantifier->body, var);
    }
    case FormulaKind::kPredicate:
      return (f.lhs && TermRefs(*f.lhs, var)) ||
             (f.rhs && TermRefs(*f.rhs, var));
    case FormulaKind::kNullTest:
      return f.null_arg && TermRefs(*f.null_arg, var);
  }
  return false;
}

// ---------------------------------------------------------------------------
// NormalizeConjunctions
// ---------------------------------------------------------------------------

class Normalizer {
 public:
  int applications = 0;

  void Program_(Program* p) {
    for (Definition& d : p->definitions) Collection_(d.collection.get());
    if (p->main.collection) Collection_(p->main.collection.get());
    if (p->main.sentence) Formula_(p->main.sentence.get());
  }

 private:
  void Collection_(Collection* c) {
    if (c->body) Formula_(c->body.get());
  }

  void Formula_(Formula* f) {
    switch (f->kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        for (FormulaPtr& c : f->children) Formula_(c.get());
        std::vector<FormulaPtr> flat;
        bool changed = false;
        for (FormulaPtr& c : f->children) {
          if (c->kind == f->kind) {
            for (FormulaPtr& gc : c->children) flat.push_back(std::move(gc));
            changed = true;
          } else if (f->kind == FormulaKind::kAnd &&
                     c->kind == FormulaKind::kAnd && c->children.empty()) {
            changed = true;  // drop `true` conjunct (empty AND)
          } else {
            flat.push_back(std::move(c));
          }
        }
        if (changed) ++applications;
        f->children = std::move(flat);
        return;
      }
      case FormulaKind::kNot:
        Formula_(f->child.get());
        return;
      case FormulaKind::kExists: {
        for (Binding& b : f->quantifier->bindings) {
          if (b.range_kind == RangeKind::kCollection) {
            Collection_(b.collection.get());
          }
        }
        if (f->quantifier->body) Formula_(f->quantifier->body.get());
        return;
      }
      default:
        return;
    }
  }
};

// ---------------------------------------------------------------------------
// UnnestExistentialScopes
// ---------------------------------------------------------------------------

class Unnester {
 public:
  int applications = 0;

  void Program_(Program* p) {
    for (Definition& d : p->definitions) Collection_(d.collection.get());
    if (p->main.collection) Collection_(p->main.collection.get());
    if (p->main.sentence) Formula_(p->main.sentence.get());
  }

 private:
  void Collection_(Collection* c) {
    if (c->body) Formula_(c->body.get());
  }

  void Formula_(Formula* f) {
    switch (f->kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (FormulaPtr& c : f->children) Formula_(c.get());
        return;
      case FormulaKind::kNot:
        Formula_(f->child.get());
        return;
      case FormulaKind::kExists:
        Quantifier_(f->quantifier.get());
        return;
      default:
        return;
    }
  }

  static bool Hoistable(const Formula& f, const Quantifier& parent) {
    if (f.kind != FormulaKind::kExists) return false;
    const Quantifier& q = *f.quantifier;
    if (q.grouping.has_value() || q.join_tree) return false;
    // No variable capture: the inner bindings must not collide with the
    // parent's.
    for (const Binding& inner : q.bindings) {
      for (const Binding& outer : parent.bindings) {
        if (EqualsIgnoreCase(inner.var, outer.var)) return false;
      }
    }
    return true;
  }

  void Quantifier_(Quantifier* q) {
    // Recurse first (bottom-up) so deep nests hoist in one pass per level.
    for (Binding& b : q->bindings) {
      if (b.range_kind == RangeKind::kCollection) {
        Collection_(b.collection.get());
      }
    }
    if (q->body) Formula_(q->body.get());
    if (q->grouping.has_value() || q->join_tree) return;

    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<FormulaPtr> conjuncts;
      FlattenAndInto(std::move(q->body), &conjuncts);
      std::vector<FormulaPtr> next;
      for (FormulaPtr& c : conjuncts) {
        if (Hoistable(*c, *q)) {
          Quantifier* inner = c->quantifier.get();
          for (Binding& b : inner->bindings) {
            q->bindings.push_back(std::move(b));
          }
          FlattenAndInto(std::move(inner->body), &next);
          ++applications;
          changed = true;
        } else {
          next.push_back(std::move(c));
        }
      }
      q->body = MakeBody(std::move(next));
    }
  }
};

// ---------------------------------------------------------------------------
// DecorrelateAggregation (Eq. 27 → Eq. 29)
// ---------------------------------------------------------------------------

class Decorrelator {
 public:
  int applications = 0;

  void Program_(Program* p) {
    for (Definition& d : p->definitions) Collection_(d.collection.get());
    if (p->main.collection) Collection_(p->main.collection.get());
    if (p->main.sentence) Formula_(p->main.sentence.get());
  }

 private:
  int fresh_ = 0;

  void Collection_(Collection* c) {
    if (c->body) Formula_(c->body.get());
  }

  void Formula_(Formula* f) {
    switch (f->kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (FormulaPtr& c : f->children) Formula_(c.get());
        return;
      case FormulaKind::kNot:
        Formula_(f->child.get());
        return;
      case FormulaKind::kExists:
        Quantifier_(f->quantifier.get());
        return;
      default:
        return;
    }
  }

  /// The correlated-aggregation site (Eq. 27 shape), decomposed.
  struct Site {
    const Binding* outer;                 // r ∈ R (named) in the parent
    std::vector<std::pair<std::string, std::string>>
        correlations;                     // (inner attr of s, outer attr of r)
    std::vector<FormulaPtr> local;        // filters over s only
    FormulaPtr agg_conjunct;              // <outer-term> OP agg(s.*)
    std::string inner_var;                // s
    std::string inner_relation;           // S
  };

  /// Tries to decompose conjunct `c` (inside quantifier `parent`) as a
  /// correlated γ∅ aggregation scope. Non-destructive analysis first; the
  /// inner body is only consumed when the pattern fully matches.
  bool MatchSite(Formula* c, Quantifier* parent, Site* site) {
    if (c->kind != FormulaKind::kExists) return false;
    Quantifier& q = *c->quantifier;
    if (!q.grouping.has_value() || !q.grouping->keys.empty()) return false;
    if (q.join_tree) return false;
    if (q.bindings.size() != 1 ||
        q.bindings[0].range_kind != RangeKind::kNamed) {
      return false;
    }
    const std::string& s = q.bindings[0].var;

    // Flattened read-only view of the inner conjunction.
    std::vector<const Formula*> view;
    CollectConjuncts(*q.body, &view);

    enum class Tag { kAgg, kCorrelation, kLocal };
    std::vector<Tag> tags(view.size());
    const Binding* outer = nullptr;
    int agg_count = 0;
    int correlation_count = 0;
    for (size_t i = 0; i < view.size(); ++i) {
      const Formula& f = *view[i];
      if (f.ContainsAggregate()) {
        if (++agg_count > 1) return false;
        if (f.kind != FormulaKind::kPredicate) return false;
        const Term* agg_side =
            f.lhs->ContainsAggregate() ? f.lhs.get() : f.rhs.get();
        const Term* other_side =
            f.lhs->ContainsAggregate() ? f.rhs.get() : f.lhs.get();
        if (other_side->References(s) ||
            agg_side->kind != TermKind::kAggregate || !agg_side->agg_arg ||
            !agg_side->agg_arg->References(s)) {
          return false;
        }
        tags[i] = Tag::kAgg;
        continue;
      }
      // Correlation equality s.b = outer.a?
      const Term* inner_ref = nullptr;
      const Term* outer_ref = nullptr;
      if (f.kind == FormulaKind::kPredicate && f.cmp_op == data::CmpOp::kEq &&
          f.lhs->kind == TermKind::kAttrRef &&
          f.rhs->kind == TermKind::kAttrRef) {
        if (EqualsIgnoreCase(f.lhs->var, s) &&
            !EqualsIgnoreCase(f.rhs->var, s)) {
          inner_ref = f.lhs.get();
          outer_ref = f.rhs.get();
        } else if (EqualsIgnoreCase(f.rhs->var, s) &&
                   !EqualsIgnoreCase(f.lhs->var, s)) {
          inner_ref = f.rhs.get();
          outer_ref = f.lhs.get();
        }
      }
      if (outer_ref != nullptr) {
        const Binding* candidate = nullptr;
        for (const Binding& b : parent->bindings) {
          if (EqualsIgnoreCase(b.var, outer_ref->var) &&
              b.range_kind == RangeKind::kNamed) {
            candidate = &b;
          }
        }
        if (candidate == nullptr) return false;
        if (outer != nullptr && outer != candidate) return false;
        outer = candidate;
        (void)inner_ref;
        ++correlation_count;
        tags[i] = Tag::kCorrelation;
        continue;
      }
      // Local filter: may reference only s.
      if (FormulaRefsAnyOther(f, s)) return false;
      tags[i] = Tag::kLocal;
    }
    if (outer == nullptr || agg_count != 1 || correlation_count == 0) {
      return false;
    }

    // Extraction (the flatten order matches the view order).
    std::vector<FormulaPtr> conjuncts;
    FlattenAndInto(std::move(q.body), &conjuncts);
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      switch (tags[i]) {
        case Tag::kAgg:
          site->agg_conjunct = std::move(conjuncts[i]);
          break;
        case Tag::kCorrelation: {
          const Formula& f = *conjuncts[i];
          const bool lhs_inner = EqualsIgnoreCase(f.lhs->var, s);
          site->correlations.emplace_back(
              lhs_inner ? f.lhs->attr : f.rhs->attr,
              lhs_inner ? f.rhs->attr : f.lhs->attr);
          break;
        }
        case Tag::kLocal:
          site->local.push_back(std::move(conjuncts[i]));
          break;
      }
    }
    site->outer = outer;
    site->inner_var = s;
    site->inner_relation = q.bindings[0].relation;
    return true;
  }

  static void CollectConjuncts(const Formula& f,
                               std::vector<const Formula*>* out) {
    if (f.kind == FormulaKind::kAnd) {
      for (const FormulaPtr& c : f.children) CollectConjuncts(*c, out);
      return;
    }
    out->push_back(&f);
  }

  static bool FormulaRefsAnyOther(const Formula& f, const std::string& only) {
    // True if the formula references any attribute variable other than
    // `only` (literals are fine).
    switch (f.kind) {
      case FormulaKind::kPredicate:
        return TermRefsOther(f.lhs.get(), only) ||
               TermRefsOther(f.rhs.get(), only);
      case FormulaKind::kNullTest:
        return TermRefsOther(f.null_arg.get(), only);
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) {
          if (FormulaRefsAnyOther(*c, only)) return true;
        }
        return false;
      case FormulaKind::kNot:
        return f.child && FormulaRefsAnyOther(*f.child, only);
      case FormulaKind::kExists:
        return true;  // conservative
    }
    return true;
  }

  static bool TermRefsOther(const Term* t, const std::string& only) {
    if (t == nullptr) return false;
    switch (t->kind) {
      case TermKind::kAttrRef:
        return !EqualsIgnoreCase(t->var, only);
      case TermKind::kLiteral:
        return false;
      case TermKind::kArith:
        return TermRefsOther(t->lhs.get(), only) ||
               TermRefsOther(t->rhs.get(), only);
      case TermKind::kAggregate:
        return TermRefsOther(t->agg_arg.get(), only);
    }
    return false;
  }

  /// Replaces a term's aggregate node by a reference to x.ct.
  static TermPtr SubstituteAggregate(const Term& t, const std::string& x) {
    if (t.kind == TermKind::kAggregate) return MakeAttrRef(x, "ct");
    TermPtr out = t.Clone();
    if (out->lhs) out->lhs = SubstituteAggregate(*t.lhs, x);
    if (out->rhs) out->rhs = SubstituteAggregate(*t.rhs, x);
    return out;
  }

  void Quantifier_(Quantifier* q) {
    for (Binding& b : q->bindings) {
      if (b.range_kind == RangeKind::kCollection) {
        Collection_(b.collection.get());
      }
    }
    if (q->body) Formula_(q->body.get());

    std::vector<FormulaPtr> conjuncts;
    FlattenAndInto(std::move(q->body), &conjuncts);
    std::vector<FormulaPtr> out_conjuncts;
    std::vector<Binding> new_bindings;
    for (FormulaPtr& c : conjuncts) {
      Site site;
      if (!MatchSite(c.get(), q, &site)) {
        out_conjuncts.push_back(std::move(c));
        continue;
      }
      ++applications;
      // Build the Eq. 29 inner collection:
      //   {X(k1..km, ct) | ∃ s∈S, r2∈R, γ_{r2.a*}, left(r2, s)
      //       [X.k_i = r2.a_i ∧ X.ct = agg ∧ s.b_i = r2.a_i ∧ locals]}
      const std::string x = "_dx" + std::to_string(++fresh_);
      const std::string r2 = "_dr" + std::to_string(fresh_);
      const std::string head = "_DX" + std::to_string(fresh_);
      const std::string r3 = "_dj" + std::to_string(fresh_);
      const std::string khead = "_DK" + std::to_string(fresh_);

      // Distinct correlation keys in first-appearance order, with their
      // k1..km slot names.
      std::vector<std::string> key_attrs;
      std::unordered_map<std::string, std::string> key_slot;
      for (const auto& [inner_attr, outer_attr] : site.correlations) {
        (void)inner_attr;
        if (key_slot
                .emplace(ToLower(outer_attr),
                         "k" + std::to_string(key_attrs.size() + 1))
                .second) {
          key_attrs.push_back(outer_attr);
        }
      }

      // The key projection {_DK(k1..km) | ∃ r3∈R, γ_{r3.a*} [k_i = r3.a_i]}.
      // γ emits exactly one row per distinct key combination under both
      // set and bag conventions, so duplicated keys in R cannot multiply
      // the aggregate below. (The previous form ranged r2 over R itself
      // and over-counted: with two R rows sharing a key, every matching s
      // row joined the group twice. ArcVerify's bounded check found the
      // minimal counterexample — R = {(0,0),(0,1)}, S = {(0,0)}.)
      auto key_q = std::make_unique<Quantifier>();
      Binding kb;
      kb.var = r3;
      kb.range_kind = RangeKind::kNamed;
      kb.relation = site.outer->relation;
      key_q->bindings.push_back(std::move(kb));
      Grouping key_grouping;
      Head key_head;
      key_head.relation = khead;
      std::vector<FormulaPtr> key_conjuncts;
      for (const std::string& attr : key_attrs) {
        const std::string& slot = key_slot[ToLower(attr)];
        key_grouping.keys.push_back(MakeAttrRef(r3, attr));
        key_head.attrs.push_back(slot);
        key_conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                              MakeAttrRef(khead, slot),
                                              MakeAttrRef(r3, attr)));
      }
      key_q->grouping = std::move(key_grouping);
      key_q->body = MakeBody(std::move(key_conjuncts));
      CollectionPtr key_coll =
          MakeCollection(std::move(key_head), MakeExists(std::move(key_q)));

      auto inner_q = std::make_unique<Quantifier>();
      Binding sb;
      sb.var = site.inner_var;
      sb.range_kind = RangeKind::kNamed;
      sb.relation = site.inner_relation;
      Binding rb;
      rb.var = r2;
      rb.range_kind = RangeKind::kCollection;
      rb.collection = std::move(key_coll);
      inner_q->bindings.push_back(std::move(sb));
      inner_q->bindings.push_back(std::move(rb));
      Grouping grouping;
      Head inner_head;
      inner_head.relation = head;
      std::vector<FormulaPtr> inner_conjuncts;
      for (const std::string& attr : key_attrs) {
        const std::string& slot = key_slot[ToLower(attr)];
        grouping.keys.push_back(MakeAttrRef(r2, slot));
        inner_head.attrs.push_back(slot);
        inner_conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                                MakeAttrRef(head, slot),
                                                MakeAttrRef(r2, slot)));
      }
      for (const auto& [inner_attr, outer_attr] : site.correlations) {
        inner_conjuncts.push_back(MakePredicate(
            data::CmpOp::kEq, MakeAttrRef(site.inner_var, inner_attr),
            MakeAttrRef(r2, key_slot[ToLower(outer_attr)])));
      }
      inner_head.attrs.push_back("ct");
      // X.ct = agg(...): reuse the aggregate term from the matched conjunct.
      const Term* agg_side = site.agg_conjunct->lhs->ContainsAggregate()
                                 ? site.agg_conjunct->lhs.get()
                                 : site.agg_conjunct->rhs.get();
      inner_conjuncts.push_back(MakePredicate(
          data::CmpOp::kEq, MakeAttrRef(head, "ct"), agg_side->Clone()));
      for (FormulaPtr& l : site.local) {
        inner_conjuncts.push_back(std::move(l));
      }
      inner_q->grouping = std::move(grouping);
      inner_q->join_tree =
          MakeJoinLeft(MakeJoinVar(r2), MakeJoinVar(site.inner_var));
      inner_q->body = MakeBody(std::move(inner_conjuncts));
      CollectionPtr inner = MakeCollection(
          std::move(inner_head), MakeExists(std::move(inner_q)));

      Binding xb;
      xb.var = x;
      xb.range_kind = RangeKind::kCollection;
      xb.collection = std::move(inner);
      new_bindings.push_back(std::move(xb));

      // Outer conjuncts: the rejoin on each key and the comparison on x.ct.
      for (const std::string& attr : key_attrs) {
        const std::string& slot = key_slot[ToLower(attr)];
        // Null-safe rejoin. A bare r.a = x.k drops outer rows whose key
        // is NULL (null = null is unknown under 3VL), but the original
        // correlated form keeps them: the correlation filter admits no
        // inner row, the γ∅ group is empty, and the aggregate compares
        // against its empty-group value. The grouped subquery carries
        // exactly one row for the null key, so match it explicitly with
        // (r.a = x.k or (r.a is null and x.k is null)). Found by
        // ArcVerify's bounded check: R with a single null-keyed row is a
        // one-tuple counterexample for the bare-equality form.
        std::vector<FormulaPtr> both_null;
        both_null.push_back(
            MakeNullTest(MakeAttrRef(site.outer->var, attr), false));
        both_null.push_back(MakeNullTest(MakeAttrRef(x, slot), false));
        std::vector<FormulaPtr> rejoin;
        rejoin.push_back(MakePredicate(data::CmpOp::kEq,
                                       MakeAttrRef(site.outer->var, attr),
                                       MakeAttrRef(x, slot)));
        rejoin.push_back(MakeAnd(std::move(both_null)));
        out_conjuncts.push_back(MakeOr(std::move(rejoin)));
      }
      const Formula& agg_f = *site.agg_conjunct;
      out_conjuncts.push_back(MakePredicate(
          agg_f.cmp_op, SubstituteAggregate(*agg_f.lhs, x),
          SubstituteAggregate(*agg_f.rhs, x)));
    }
    for (Binding& b : new_bindings) q->bindings.push_back(std::move(b));
    q->body = MakeBody(std::move(out_conjuncts));
  }
};

}  // namespace

RewriteResult NormalizeConjunctions(const Program& program) {
  RewriteResult result;
  result.program = program.Clone();
  Normalizer normalizer;
  normalizer.Program_(&result.program);
  result.applications = normalizer.applications;
  return result;
}

Result<RewriteResult> UnnestExistentialScopes(const Program& program,
                                              const Conventions& conventions) {
  if (conventions.multiplicity != Conventions::Multiplicity::kSet) {
    return InvalidArgument(
        "existential unnesting is only meaning-preserving under set "
        "semantics (§2.7): the nested form is semijoin-like, the unnested "
        "form multiplies multiplicities");
  }
  RewriteResult result;
  result.program = program.Clone();
  Unnester unnester;
  unnester.Program_(&result.program);
  result.applications = unnester.applications;
  return result;
}

RewriteResult DecorrelateAggregation(const Program& program) {
  RewriteResult result;
  result.program = program.Clone();
  Decorrelator decorrelator;
  decorrelator.Program_(&result.program);
  result.applications = decorrelator.applications;
  return result;
}

}  // namespace arc::rewrite
