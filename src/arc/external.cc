#include "arc/external.h"

#include <cmath>

#include "common/strings.h"

namespace arc {

namespace {

using data::Tuple;
using data::Value;
using data::ValueKind;

bool IsOperatorName(std::string_view name) {
  return !name.empty() && !std::isalpha(static_cast<unsigned char>(name[0])) &&
         name[0] != '_';
}

// Solves one slot of a ternary arithmetic relation out = a ⊗ b given the
// other two. Returns nullopt when no (unique) solution exists.
std::optional<Value> SolveTernary(data::ArithOp op, int free_slot,
                                  const Value& x, const Value& y) {
  // Slots: 0 = a, 1 = b, 2 = out. For free_slot 2: out = x ⊗ y with
  // (x, y) = (a, b). For free_slot 0: a from (b, out) = (x, y). For
  // free_slot 1: b from (a, out) = (x, y).
  auto arith = [](data::ArithOp o, const Value& p,
                  const Value& q) -> std::optional<Value> {
    auto r = data::Arith(o, p, q);
    if (!r.ok()) return std::nullopt;
    return std::move(r).value();
  };
  if (x.is_null() || y.is_null()) return std::nullopt;
  if (!x.is_numeric() || !y.is_numeric()) return std::nullopt;
  switch (op) {
    case data::ArithOp::kAdd:
      // a + b = out.
      if (free_slot == 2) return arith(data::ArithOp::kAdd, x, y);
      // free a: a = out - b, with (x, y) = (b, out); free b symmetric.
      return arith(data::ArithOp::kSub, y, x);
    case data::ArithOp::kSub:
      // a - b = out.
      if (free_slot == 2) return arith(data::ArithOp::kSub, x, y);
      if (free_slot == 0) return arith(data::ArithOp::kAdd, y, x);  // a = b+out
      return arith(data::ArithOp::kSub, x, y);                      // b = a-out
    case data::ArithOp::kMul: {
      // a * b = out.
      if (free_slot == 2) return arith(data::ArithOp::kMul, x, y);
      // free a: a = out / b with (x, y) = (b, out); free b symmetric.
      const Value& divisor = x;
      const Value& dividend = y;
      if (divisor.ToDouble() == 0) return std::nullopt;  // 0 * a = out
      if (divisor.kind() == ValueKind::kInt &&
          dividend.kind() == ValueKind::kInt) {
        if (dividend.as_int() % divisor.as_int() != 0) return std::nullopt;
        return Value::Int(dividend.as_int() / divisor.as_int());
      }
      return Value::Double(dividend.ToDouble() / divisor.ToDouble());
    }
    case data::ArithOp::kDiv: {
      // a / b = out.
      if (free_slot == 2) return arith(data::ArithOp::kDiv, x, y);
      if (free_slot == 0) {
        // a = b * out — exact only for real division; accept it (ints may
        // round-trip incorrectly under truncation, so verify).
        auto a = arith(data::ArithOp::kMul, x, y);
        if (!a.has_value()) return std::nullopt;
        auto check = arith(data::ArithOp::kDiv, *a, x);
        if (!check.has_value() || !(check->Equals(y))) return std::nullopt;
        return a;
      }
      // free b: b = a / out (verified).
      if (y.ToDouble() == 0) return std::nullopt;
      auto b = arith(data::ArithOp::kDiv, x, y);
      if (!b.has_value()) return std::nullopt;
      auto check = arith(data::ArithOp::kDiv, x, *b);
      if (!check.has_value() || !(check->Equals(y))) return std::nullopt;
      return b;
    }
    case data::ArithOp::kMod:
      if (free_slot == 2) return arith(data::ArithOp::kMod, x, y);
      return std::nullopt;
  }
  return std::nullopt;
}

ExternalRelation MakeTernaryArith(std::string name, data::Schema schema,
                                  data::ArithOp op) {
  auto fn = [op, name](const BoundPattern& bound)
      -> Result<std::vector<Tuple>> {
    int free_slot = -1;
    int n_free = 0;
    for (int i = 0; i < 3; ++i) {
      if (!bound[static_cast<size_t>(i)].has_value()) {
        free_slot = i;
        ++n_free;
      }
    }
    if (n_free > 1) {
      return Unsupported("external relation '" + name +
                         "' requires at least two bound attributes");
    }
    if (n_free == 0) {
      // Fully bound: membership test.
      auto out = SolveTernary(op, 2, *bound[0], *bound[1]);
      if (out.has_value() && out->Equals(*bound[2])) {
        return std::vector<Tuple>{Tuple({*bound[0], *bound[1], *bound[2]})};
      }
      return std::vector<Tuple>{};
    }
    const Value& x = free_slot == 0 ? *bound[1] : *bound[0];
    const Value& y = free_slot == 2 ? *bound[1] : *bound[2];
    auto solved = SolveTernary(op, free_slot, x, y);
    if (!solved.has_value()) return std::vector<Tuple>{};
    std::vector<Value> vals(3);
    for (int i = 0; i < 3; ++i) {
      vals[static_cast<size_t>(i)] =
          i == free_slot ? *solved : *bound[static_cast<size_t>(i)];
    }
    return std::vector<Tuple>{Tuple(std::move(vals))};
  };
  return ExternalRelation(std::move(name), std::move(schema), std::move(fn));
}

ExternalRelation MakeComparison(std::string name, data::CmpOp op) {
  auto fn = [op, name](const BoundPattern& bound)
      -> Result<std::vector<Tuple>> {
    if (!bound[0].has_value() || !bound[1].has_value()) {
      return Unsupported("external relation '" + name +
                         "' requires both attributes bound");
    }
    auto cmp = data::Compare(op, *bound[0], *bound[1],
                             data::NullLogic::kThreeValued);
    if (!cmp.ok()) return cmp.status();
    if (data::IsTrue(*cmp)) {
      return std::vector<Tuple>{Tuple({*bound[0], *bound[1]})};
    }
    return std::vector<Tuple>{};
  };
  return ExternalRelation(std::move(name), data::Schema{"left", "right"},
                          std::move(fn));
}

}  // namespace

void ExternalRegistry::Register(ExternalRelation relation) {
  relations_.push_back(std::move(relation));
}

std::vector<std::string> ExternalRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const ExternalRelation& r : relations_) out.push_back(r.name());
  return out;
}

const ExternalRelation* ExternalRegistry::Find(std::string_view name) const {
  for (const ExternalRelation& r : relations_) {
    const bool match = IsOperatorName(r.name())
                           ? r.name() == name
                           : EqualsIgnoreCase(r.name(), name);
    if (match) return &r;
  }
  return nullptr;
}

ExternalRegistry ExternalRegistry::Builtins() {
  ExternalRegistry reg;
  const data::Schema named{"left", "right", "out"};
  const data::Schema positional{"$1", "$2", "out"};
  reg.Register(MakeTernaryArith("Minus", named, data::ArithOp::kSub));
  reg.Register(MakeTernaryArith("Add", named, data::ArithOp::kAdd));
  reg.Register(MakeTernaryArith("+", positional, data::ArithOp::kAdd));
  reg.Register(MakeTernaryArith("-", positional, data::ArithOp::kSub));
  reg.Register(MakeTernaryArith("*", positional, data::ArithOp::kMul));
  reg.Register(MakeTernaryArith("/", positional, data::ArithOp::kDiv));
  reg.Register(MakeComparison("Bigger", data::CmpOp::kGt));
  reg.Register(MakeComparison(">", data::CmpOp::kGt));
  reg.Register(MakeComparison("<", data::CmpOp::kLt));
  return reg;
}

}  // namespace arc
