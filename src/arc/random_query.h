// Random well-formed ARC query generation. Used for property-based and
// fuzz-differential testing: every generated collection passes the
// validator by construction, can be rendered to SQL, and can be evaluated
// under any conventions. Generation is deterministic in the seed.
#ifndef ARC_ARC_RANDOM_QUERY_H_
#define ARC_ARC_RANDOM_QUERY_H_

#include <cstdint>

#include "arc/ast.h"
#include "common/status.h"
#include "data/database.h"

namespace arc {

struct RandomQueryOptions {
  uint64_t seed = 1;
  /// Maximum nesting depth of condition scopes (NOT EXISTS / EXISTS).
  int max_depth = 2;
  /// Maximum bindings in the top scope.
  int max_bindings = 3;
  /// Probability knobs in [0,1].
  double grouped_probability = 0.4;
  double negation_probability = 0.5;
  double disjunction_probability = 0.3;
  double nested_collection_probability = 0.3;
  double arithmetic_probability = 0.3;
  /// Probability of adding a correlated γ∅ scalar-aggregate condition (the
  /// count-bug shape of Fig. 21a) to an ungrouped scope. Default 0 keeps
  /// the RNG stream (and thus every seeded corpus) identical to before the
  /// option existed.
  double scalar_agg_probability = 0.0;
  /// Probability of wrapping a filter conjunct in NOT(...) — the shape
  /// whose truth value diverges between three- and two-valued logic on
  /// NULLs (§2.10). Default 0: RNG-stream preserving, like above.
  double negated_filter_probability = 0.0;
};

/// Generates a random collection named "Q" ranging over the base relations
/// of `db` (which must contain at least one relation whose attributes hold
/// numeric values). The result is guaranteed to validate against `db`.
Result<CollectionPtr> GenerateRandomCollection(const data::Database& db,
                                               const RandomQueryOptions& opts);

}  // namespace arc

#endif  // ARC_ARC_RANDOM_QUERY_H_
