// The Abstract Language Tree (ALT): ARC's machine-facing representation of
// a relational query (§2.2 of the paper). The ALT is deliberately close to
// the comprehension syntax: a COLLECTION has a HEAD and a body formula; a
// QUANTIFIER introduces bindings (range variables over base relations,
// defined relations, or nested collections), an optional GROUPING operator
// γ, and an optional outer-join annotation tree; predicates are equality /
// comparison / null-test atoms whose classification (assignment vs.
// comparison vs. aggregation predicate) is *derived* by the resolver, not
// stated in the surface syntax.
//
// Ownership: all child nodes are owned via std::unique_ptr; `Clone()`
// performs a deep copy. Nodes are plain data (struct-style) because every
// module in the library (printer, parser, evaluator, validator, higraph
// builder, pattern canonicalizer, translators) needs to traverse and build
// them freely.
#ifndef ARC_ARC_AST_H_
#define ARC_ARC_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/value.h"

namespace arc {

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

enum class AggFunc {
  kCount,          // count(t): number of tuples where t is non-null
  kCountStar,      // count(*): number of tuples (SQL interop)
  kSum,
  kAvg,
  kMin,
  kMax,
  kCountDistinct,  // deduplicating variants (§2.5 "countdistinct")
  kSumDistinct,
  kAvgDistinct,
};

/// Canonical lower-case name, e.g. "sum", "countdistinct", "count*".
const char* AggFuncName(AggFunc f);
/// Inverse of AggFuncName (case-insensitive); nullopt if unknown.
std::optional<AggFunc> AggFuncFromName(std::string_view name);
/// True for the *Distinct variants.
bool IsDistinctAgg(AggFunc f);

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

struct Term;
using TermPtr = std::unique_ptr<Term>;

enum class TermKind {
  kAttrRef,    // var.attr — range variable (or head relation) attribute
  kLiteral,    // constant value
  kArith,      // lhs ⊗ rhs
  kAggregate,  // f(arg) — aggregation term; only legal in grouping scopes
};

struct Term {
  TermKind kind = TermKind::kLiteral;
  /// 1-based source line when the node came from a parser that tracks
  /// positions (the ALT format); 0 = unknown. Copied by Clone().
  int line = 0;

  // kAttrRef
  std::string var;   // range variable name, or the head relation name
  std::string attr;  // attribute name

  // kLiteral
  data::Value literal;

  // kArith
  data::ArithOp arith_op = data::ArithOp::kAdd;
  TermPtr lhs;
  TermPtr rhs;

  // kAggregate
  AggFunc agg_func = AggFunc::kCount;
  TermPtr agg_arg;  // null only for kCountStar

  TermPtr Clone() const;
  /// True if this term or any subterm is an aggregate.
  bool ContainsAggregate() const;
  /// True if this term or any subterm references `var`.
  bool References(std::string_view var_name) const;
};

TermPtr MakeAttrRef(std::string var, std::string attr);
TermPtr MakeLiteral(data::Value v);
TermPtr MakeArith(data::ArithOp op, TermPtr lhs, TermPtr rhs);
TermPtr MakeAggregate(AggFunc f, TermPtr arg);  // arg may be null for count*

// ---------------------------------------------------------------------------
// Join annotation tree (§2.11)
// ---------------------------------------------------------------------------

struct JoinNode;
using JoinNodePtr = std::unique_ptr<JoinNode>;

enum class JoinKind {
  kVarLeaf,      // a binding's range variable
  kLiteralLeaf,  // a literal anchor, e.g. the 11 in left(r, inner(11, s))
  kInner,        // k-ary
  kLeft,         // binary; children[0] preserved, children[1] optional
  kFull,         // binary; both sides preserved
};

struct JoinNode {
  JoinKind kind = JoinKind::kInner;
  std::string var;              // kVarLeaf
  data::Value literal;          // kLiteralLeaf
  std::vector<JoinNodePtr> children;

  JoinNodePtr Clone() const;
  /// Collects the variable names of all kVarLeaf descendants, in order.
  void CollectVars(std::vector<std::string>* out) const;
};

JoinNodePtr MakeJoinVar(std::string var);
JoinNodePtr MakeJoinLiteral(data::Value v);
JoinNodePtr MakeJoinInner(std::vector<JoinNodePtr> children);
JoinNodePtr MakeJoinLeft(JoinNodePtr preserved, JoinNodePtr optional);
JoinNodePtr MakeJoinFull(JoinNodePtr a, JoinNodePtr b);

// ---------------------------------------------------------------------------
// Formulas
// ---------------------------------------------------------------------------

struct Formula;
using FormulaPtr = std::unique_ptr<Formula>;
struct Collection;
using CollectionPtr = std::unique_ptr<Collection>;

enum class RangeKind {
  kNamed,       // r ∈ R where R is a base / defined / external relation
  kCollection,  // z ∈ { Z(..) | ... } — nested comprehension (lateral)
};

/// One range-variable binding introduced by a quantifier.
struct Binding {
  std::string var;
  int line = 0;  // 1-based source line; 0 = unknown
  RangeKind range_kind = RangeKind::kNamed;
  std::string relation;      // kNamed
  CollectionPtr collection;  // kCollection

  Binding Clone() const;
};

/// The grouping operator γ (§2.5). `keys` lists grouping-key attribute
/// references; an empty list is γ∅ ("group by true": exactly one group,
/// even over an empty input — the semantics the count bug hinges on).
struct Grouping {
  std::vector<TermPtr> keys;

  Grouping Clone() const;
};

/// A quantifier scope: ∃ bindings [, γ keys] [, join annotations] [ body ].
struct Quantifier {
  std::vector<Binding> bindings;
  std::optional<Grouping> grouping;
  JoinNodePtr join_tree;  // nullptr ⇒ default k-ary inner join
  FormulaPtr body;

  std::unique_ptr<Quantifier> Clone() const;
};

enum class FormulaKind {
  kAnd,
  kOr,
  kNot,
  kExists,     // quantifier scope
  kPredicate,  // comparison / assignment / aggregation predicate
  kNullTest,   // t IS [NOT] NULL (§2.10)
};

struct Formula {
  FormulaKind kind = FormulaKind::kAnd;
  int line = 0;  // 1-based source line; 0 = unknown

  // kAnd / kOr
  std::vector<FormulaPtr> children;
  // kNot
  FormulaPtr child;
  // kExists
  std::unique_ptr<Quantifier> quantifier;
  // kPredicate
  data::CmpOp cmp_op = data::CmpOp::kEq;
  TermPtr lhs;
  TermPtr rhs;
  // kNullTest
  TermPtr null_arg;
  bool null_negated = false;  // true ⇒ IS NOT NULL

  FormulaPtr Clone() const;
  bool ContainsAggregate() const;
};

FormulaPtr MakeAnd(std::vector<FormulaPtr> children);
FormulaPtr MakeOr(std::vector<FormulaPtr> children);
FormulaPtr MakeNot(FormulaPtr child);
FormulaPtr MakeExists(std::unique_ptr<Quantifier> q);
FormulaPtr MakePredicate(data::CmpOp op, TermPtr lhs, TermPtr rhs);
FormulaPtr MakeNullTest(TermPtr arg, bool negated);

// ---------------------------------------------------------------------------
// Collections, definitions, programs
// ---------------------------------------------------------------------------

/// The head of a collection: output relation name and attribute list.
struct Head {
  std::string relation;
  std::vector<std::string> attrs;
};

/// A comprehension { Head | body }. The body is typically a quantifier
/// scope or a disjunction of quantifier scopes (the latter encodes
/// Datalog-style multiple rules, §2.9).
struct Collection {
  Head head;
  int line = 0;  // 1-based source line; 0 = unknown
  FormulaPtr body;

  CollectionPtr Clone() const;
};

CollectionPtr MakeCollection(Head head, FormulaPtr body);

/// Defined-relation kinds (§2.13, Fig. 14).
enum class DefKind {
  kIntensional,  // view/CTE/IDB: safe, materializable
  kAbstract,     // module: possibly unsafe standalone; inlined at use sites
};

struct Definition {
  DefKind kind = DefKind::kIntensional;
  CollectionPtr collection;

  Definition Clone() const;
};

/// The main query: either a collection or a Boolean sentence (Fig. 9).
struct Query {
  CollectionPtr collection;  // exactly one of collection…
  FormulaPtr sentence;       // …or sentence is set

  bool is_sentence() const { return sentence != nullptr; }
  Query Clone() const;
};

/// A full ARC program: named definitions followed by the main query.
struct Program {
  std::vector<Definition> definitions;
  Query main;

  Program Clone() const;
  /// Finds the definition whose head relation is `name` (case-insensitive);
  /// nullptr if absent.
  const Definition* FindDefinition(std::string_view name) const;
};

/// Convenience: wraps a single collection into a Program.
Program MakeProgram(CollectionPtr collection);
/// Convenience: wraps a Boolean sentence into a Program.
Program MakeSentenceProgram(FormulaPtr sentence);

}  // namespace arc

#endif  // ARC_ARC_AST_H_
