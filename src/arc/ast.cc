#include "arc/ast.h"

#include "common/strings.h"

namespace arc {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountStar:
      return "count*";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCountDistinct:
      return "countdistinct";
    case AggFunc::kSumDistinct:
      return "sumdistinct";
    case AggFunc::kAvgDistinct:
      return "avgdistinct";
  }
  return "?";
}

std::optional<AggFunc> AggFuncFromName(std::string_view name) {
  static constexpr std::pair<const char*, AggFunc> kTable[] = {
      {"count", AggFunc::kCount},
      {"count*", AggFunc::kCountStar},
      {"sum", AggFunc::kSum},
      {"avg", AggFunc::kAvg},
      {"average", AggFunc::kAvg},
      {"min", AggFunc::kMin},
      {"max", AggFunc::kMax},
      {"countdistinct", AggFunc::kCountDistinct},
      {"sumdistinct", AggFunc::kSumDistinct},
      {"avgdistinct", AggFunc::kAvgDistinct},
  };
  for (const auto& [n, f] : kTable) {
    if (EqualsIgnoreCase(name, n)) return f;
  }
  return std::nullopt;
}

bool IsDistinctAgg(AggFunc f) {
  return f == AggFunc::kCountDistinct || f == AggFunc::kSumDistinct ||
         f == AggFunc::kAvgDistinct;
}

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

TermPtr Term::Clone() const {
  auto out = std::make_unique<Term>();
  out->kind = kind;
  out->line = line;
  out->var = var;
  out->attr = attr;
  out->literal = literal;
  out->arith_op = arith_op;
  if (lhs) out->lhs = lhs->Clone();
  if (rhs) out->rhs = rhs->Clone();
  out->agg_func = agg_func;
  if (agg_arg) out->agg_arg = agg_arg->Clone();
  return out;
}

bool Term::ContainsAggregate() const {
  switch (kind) {
    case TermKind::kAggregate:
      return true;
    case TermKind::kArith:
      return (lhs && lhs->ContainsAggregate()) ||
             (rhs && rhs->ContainsAggregate());
    default:
      return false;
  }
}

bool Term::References(std::string_view var_name) const {
  switch (kind) {
    case TermKind::kAttrRef:
      return EqualsIgnoreCase(var, var_name);
    case TermKind::kLiteral:
      return false;
    case TermKind::kArith:
      return (lhs && lhs->References(var_name)) ||
             (rhs && rhs->References(var_name));
    case TermKind::kAggregate:
      return agg_arg && agg_arg->References(var_name);
  }
  return false;
}

TermPtr MakeAttrRef(std::string var, std::string attr) {
  auto t = std::make_unique<Term>();
  t->kind = TermKind::kAttrRef;
  t->var = std::move(var);
  t->attr = std::move(attr);
  return t;
}

TermPtr MakeLiteral(data::Value v) {
  auto t = std::make_unique<Term>();
  t->kind = TermKind::kLiteral;
  t->literal = std::move(v);
  return t;
}

TermPtr MakeArith(data::ArithOp op, TermPtr lhs, TermPtr rhs) {
  auto t = std::make_unique<Term>();
  t->kind = TermKind::kArith;
  t->arith_op = op;
  t->lhs = std::move(lhs);
  t->rhs = std::move(rhs);
  return t;
}

TermPtr MakeAggregate(AggFunc f, TermPtr arg) {
  auto t = std::make_unique<Term>();
  t->kind = TermKind::kAggregate;
  t->agg_func = f;
  t->agg_arg = std::move(arg);
  return t;
}

// ---------------------------------------------------------------------------
// Join trees
// ---------------------------------------------------------------------------

JoinNodePtr JoinNode::Clone() const {
  auto out = std::make_unique<JoinNode>();
  out->kind = kind;
  out->var = var;
  out->literal = literal;
  out->children.reserve(children.size());
  for (const JoinNodePtr& c : children) out->children.push_back(c->Clone());
  return out;
}

void JoinNode::CollectVars(std::vector<std::string>* out) const {
  if (kind == JoinKind::kVarLeaf) {
    out->push_back(var);
    return;
  }
  for (const JoinNodePtr& c : children) c->CollectVars(out);
}

JoinNodePtr MakeJoinVar(std::string var) {
  auto n = std::make_unique<JoinNode>();
  n->kind = JoinKind::kVarLeaf;
  n->var = std::move(var);
  return n;
}

JoinNodePtr MakeJoinLiteral(data::Value v) {
  auto n = std::make_unique<JoinNode>();
  n->kind = JoinKind::kLiteralLeaf;
  n->literal = std::move(v);
  return n;
}

JoinNodePtr MakeJoinInner(std::vector<JoinNodePtr> children) {
  auto n = std::make_unique<JoinNode>();
  n->kind = JoinKind::kInner;
  n->children = std::move(children);
  return n;
}

JoinNodePtr MakeJoinLeft(JoinNodePtr preserved, JoinNodePtr optional) {
  auto n = std::make_unique<JoinNode>();
  n->kind = JoinKind::kLeft;
  n->children.push_back(std::move(preserved));
  n->children.push_back(std::move(optional));
  return n;
}

JoinNodePtr MakeJoinFull(JoinNodePtr a, JoinNodePtr b) {
  auto n = std::make_unique<JoinNode>();
  n->kind = JoinKind::kFull;
  n->children.push_back(std::move(a));
  n->children.push_back(std::move(b));
  return n;
}

// ---------------------------------------------------------------------------
// Formulas
// ---------------------------------------------------------------------------

Binding Binding::Clone() const {
  Binding out;
  out.var = var;
  out.line = line;
  out.range_kind = range_kind;
  out.relation = relation;
  if (collection) out.collection = collection->Clone();
  return out;
}

Grouping Grouping::Clone() const {
  Grouping out;
  out.keys.reserve(keys.size());
  for (const TermPtr& k : keys) out.keys.push_back(k->Clone());
  return out;
}

std::unique_ptr<Quantifier> Quantifier::Clone() const {
  auto out = std::make_unique<Quantifier>();
  out->bindings.reserve(bindings.size());
  for (const Binding& b : bindings) out->bindings.push_back(b.Clone());
  if (grouping.has_value()) out->grouping = grouping->Clone();
  if (join_tree) out->join_tree = join_tree->Clone();
  if (body) out->body = body->Clone();
  return out;
}

FormulaPtr Formula::Clone() const {
  auto out = std::make_unique<Formula>();
  out->kind = kind;
  out->line = line;
  out->children.reserve(children.size());
  for (const FormulaPtr& c : children) out->children.push_back(c->Clone());
  if (child) out->child = child->Clone();
  if (quantifier) out->quantifier = quantifier->Clone();
  out->cmp_op = cmp_op;
  if (lhs) out->lhs = lhs->Clone();
  if (rhs) out->rhs = rhs->Clone();
  if (null_arg) out->null_arg = null_arg->Clone();
  out->null_negated = null_negated;
  return out;
}

bool Formula::ContainsAggregate() const {
  switch (kind) {
    case FormulaKind::kPredicate:
      return (lhs && lhs->ContainsAggregate()) ||
             (rhs && rhs->ContainsAggregate());
    case FormulaKind::kNullTest:
      return null_arg && null_arg->ContainsAggregate();
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : children) {
        if (c->ContainsAggregate()) return true;
      }
      return false;
    case FormulaKind::kNot:
      return child && child->ContainsAggregate();
    case FormulaKind::kExists:
      // Aggregates belong to the scope they appear in; a nested scope's
      // aggregates are not *this* formula's aggregates.
      return false;
  }
  return false;
}

FormulaPtr MakeAnd(std::vector<FormulaPtr> children) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kAnd;
  f->children = std::move(children);
  return f;
}

FormulaPtr MakeOr(std::vector<FormulaPtr> children) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kOr;
  f->children = std::move(children);
  return f;
}

FormulaPtr MakeNot(FormulaPtr child) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kNot;
  f->child = std::move(child);
  return f;
}

FormulaPtr MakeExists(std::unique_ptr<Quantifier> q) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kExists;
  f->quantifier = std::move(q);
  return f;
}

FormulaPtr MakePredicate(data::CmpOp op, TermPtr lhs, TermPtr rhs) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kPredicate;
  f->cmp_op = op;
  f->lhs = std::move(lhs);
  f->rhs = std::move(rhs);
  return f;
}

FormulaPtr MakeNullTest(TermPtr arg, bool negated) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kNullTest;
  f->null_arg = std::move(arg);
  f->null_negated = negated;
  return f;
}

// ---------------------------------------------------------------------------
// Collections, definitions, programs
// ---------------------------------------------------------------------------

CollectionPtr Collection::Clone() const {
  auto out = std::make_unique<Collection>();
  out->head = head;
  out->line = line;
  if (body) out->body = body->Clone();
  return out;
}

CollectionPtr MakeCollection(Head head, FormulaPtr body) {
  auto c = std::make_unique<Collection>();
  c->head = std::move(head);
  c->body = std::move(body);
  return c;
}

Definition Definition::Clone() const {
  Definition out;
  out.kind = kind;
  if (collection) out.collection = collection->Clone();
  return out;
}

Query Query::Clone() const {
  Query out;
  if (collection) out.collection = collection->Clone();
  if (sentence) out.sentence = sentence->Clone();
  return out;
}

Program Program::Clone() const {
  Program out;
  out.definitions.reserve(definitions.size());
  for (const Definition& d : definitions) out.definitions.push_back(d.Clone());
  out.main = main.Clone();
  return out;
}

const Definition* Program::FindDefinition(std::string_view name) const {
  for (const Definition& d : definitions) {
    if (d.collection && EqualsIgnoreCase(d.collection->head.relation, name)) {
      return &d;
    }
  }
  return nullptr;
}

Program MakeProgram(CollectionPtr collection) {
  Program p;
  p.main.collection = std::move(collection);
  return p;
}

Program MakeSentenceProgram(FormulaPtr sentence) {
  Program p;
  p.main.sentence = std::move(sentence);
  return p;
}

}  // namespace arc
