// Resolution ("linking", §2.2) and validation of an ARC program.
//
// The resolver performs the step that turns the ALT into the hierarchical
// graph the paper calls an Abstract Language Higraph: every attribute
// reference is linked to the binding (or enclosing collection head) that
// declares it, every named range is classified (base / intensional /
// abstract / external / recursive self-reference / nested collection), and
// every predicate is classified (filter, assignment predicate, aggregation
// predicate, §2.1/§2.5).
//
// The validator enforces ARC's structural rules — the checks the paper
// proposes for validating machine-generated queries (§4 "well-scoped
// variables, grouping legality, correlation shape"):
//   * every referenced variable is bound in an enclosing scope,
//   * heads are clean: every head attribute is assigned in every disjunct,
//     and never under negation (except for abstract-relation parameters),
//   * an aggregation predicate requires a grouping operator in its scope,
//     and its non-aggregate inputs are grouping keys or outer references,
//   * join-annotation trees mention each bound variable at most once,
//   * recursive self-references are positive (stratified) and not inside
//     grouping scopes.
#ifndef ARC_ARC_ANALYZE_H_
#define ARC_ARC_ANALYZE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arc/ast.h"
#include "arc/external.h"
#include "common/status.h"
#include "data/database.h"

namespace arc {

/// Classification of what a named (or nested) range refers to (Fig. 14).
enum class RangeClass {
  kBase,              // extensional relation in the database
  kIntensional,       // program definition, safe (view/CTE/IDB)
  kAbstract,          // program definition, abstract module (§2.13.2)
  kExternal,          // built-in with access patterns (§2.13.1)
  kSelf,              // recursion: the collection's own head (§2.9)
  kNestedCollection,  // inline comprehension binding
  kUnknown,           // not resolvable against the provided context
};
const char* RangeClassName(RangeClass c);

/// Predicate classification (derived, never part of the surface syntax).
enum class PredClass {
  kFilter,         // ordinary comparison predicate
  kAssignment,     // Q.attr = term (assignment predicate, §2.1)
  kAggAssignment,  // Q.attr = agg(...) (aggregation-as-value, §2.5)
  kAggFilter,      // aggregate used as a test, e.g. r.q <= count(s.d)
  kNullFilter,     // IS [NOT] NULL test
  kHeadParameter,  // head attr used as module parameter (abstract relations)
};
const char* PredClassName(PredClass c);

/// Where an attribute reference points after linking.
enum class AttrTarget { kBinding, kHead };

struct AttrInfo {
  AttrTarget target = AttrTarget::kBinding;
  const Binding* binding = nullptr;      // kBinding
  const Collection* head_of = nullptr;   // kHead
  /// Number of quantifier scopes between the use and the declaration
  /// (0 = same scope). Nonzero distances are correlations.
  int scope_distance = 0;
};

struct BindingInfo {
  RangeClass range_class = RangeClass::kUnknown;
  /// Attribute names of the bound relation when known (schema of the base
  /// relation, head attrs of a definition / nested collection, schema of an
  /// external relation). Empty when unknown.
  std::vector<std::string> attrs;
};

struct CollectionInfo {
  bool is_recursive = false;
  bool is_abstract = false;
};

/// One structured finding. Produced by the analyzer (structural rules,
/// codes ARC-E0##/ARC-W0##) and by the lint passes layered on top
/// (semantic traps, codes ARC-W1##; see arc/lint.h and LINTS.md).
struct Diagnostic {
  enum class Severity { kError, kWarning, kNote };
  Severity severity = Severity::kError;
  /// Stable machine-readable code, e.g. "ARC-E001", "ARC-W101".
  std::string code;
  std::string message;
  /// 1-based source line of the provenance node when the program came from
  /// a position-tracking parser (the ALT format); 0 = unknown.
  int line = 0;
  /// Address of the AST node the finding anchors to (a Term, Formula,
  /// Binding, or Collection); valid while the analyzed Program is alive.
  /// nullptr for program-level findings.
  const void* node = nullptr;
};

const char* SeverityName(Diagnostic::Severity s);

/// Compiled location of one attribute reference: which frame slot holds the
/// tuple the reference resolves to, and (when the target's attribute list is
/// known statically) the index of the attribute inside that tuple. Produced
/// by the slot binder that piggybacks on resolution; consumed by the
/// slot-compiled evaluator (see DESIGN.md "Compiled evaluation").
struct TermSlot {
  /// Frame slot of the resolved binding or enclosing collection head.
  int frame_slot = -1;
  /// Attribute index inside the bound tuple; -1 = resolve at runtime
  /// (target attribute list unknown to the analyzer).
  int attr_index = -1;
};

/// The side tables produced by analysis, keyed by node address (valid while
/// the analyzed Program is alive and unmodified).
struct Analysis {
  std::unordered_map<const Term*, AttrInfo> attrs;
  std::unordered_map<const Binding*, BindingInfo> bindings;
  std::unordered_map<const Formula*, PredClass> predicates;
  std::unordered_map<const Collection*, CollectionInfo> collections;
  /// Slot binder output: every Binding and every Collection head owns one
  /// frame slot (globally unique across the program), and every resolved
  /// attribute reference compiles to a TermSlot. `frame_slots` is the frame
  /// size to allocate. Attribute indexes are computed with the same
  /// case-insensitive first-occurrence rule as data::Schema::IndexOf, so the
  /// compiled index always equals what a runtime name lookup would find.
  std::unordered_map<const Term*, TermSlot> term_slots;
  std::unordered_map<const Binding*, int> binding_slots;
  std::unordered_map<const Collection*, int> head_slots;
  int frame_slots = 0;
  std::vector<Diagnostic> diagnostics;

  bool ok() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Diagnostic::Severity::kError) return false;
    }
    return true;
  }
  std::vector<std::string> ErrorMessages() const;
  std::string DiagnosticsToString() const;
};

/// Renders one diagnostic as "error[ARC-E001] line 3: message" (the line
/// part is omitted when unknown).
std::string DiagnosticToString(const Diagnostic& d);

/// Collapses diagnostics that agree on severity, code, message, and source
/// line so one defect is reported once (node identity intentionally
/// ignored; disjunctive bodies analyze shared structure once per disjunct).
/// Order-preserving. Used by both Analyze() and Lint().
void DeduplicateDiagnostics(std::vector<Diagnostic>* diagnostics);

struct AnalyzeOptions {
  /// Optional: resolve base relations (and their attributes) against this
  /// database. Without it, unknown names produce warnings, not errors.
  const data::Database* database = nullptr;
  /// Optional: resolve external relations. Defaults to the builtins when
  /// null.
  const ExternalRegistry* externals = nullptr;
  /// Treat unresolvable relation names as errors (on by default when a
  /// database is provided).
  std::optional<bool> unknown_relation_is_error;
};

/// Runs resolution + validation. The returned Analysis always carries the
/// (partial) resolution and all diagnostics; check `ok()`.
Analysis Analyze(const Program& program, const AnalyzeOptions& options = {});

/// Convenience: OK iff Analyze reports no error diagnostics; the Status
/// message concatenates the errors otherwise.
Status Validate(const Program& program, const AnalyzeOptions& options = {});

}  // namespace arc

#endif  // ARC_ARC_ANALYZE_H_
