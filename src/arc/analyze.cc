#include "arc/analyze.h"

#include <set>
#include <tuple>

#include "common/strings.h"

namespace arc {

namespace {

using Severity = Diagnostic::Severity;

struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const {
    return ToLower(a) < ToLower(b);
  }
};
using NameSet = std::set<std::string, CaseInsensitiveLess>;

/// If `f` is an assignment-shaped predicate for head `head_name`
/// (H.attr = term or term = H.attr, term not referencing H), returns the
/// assigned attribute name.
std::optional<std::string> AssignmentAttr(const Formula& f,
                                          const std::string& head_name) {
  if (f.kind != FormulaKind::kPredicate || f.cmp_op != data::CmpOp::kEq) {
    return std::nullopt;
  }
  auto is_head_ref = [&](const TermPtr& t) {
    return t && t->kind == TermKind::kAttrRef &&
           EqualsIgnoreCase(t->var, head_name);
  };
  const bool l = is_head_ref(f.lhs);
  const bool r = is_head_ref(f.rhs);
  if (l == r) return std::nullopt;  // both or neither
  const TermPtr& head_side = l ? f.lhs : f.rhs;
  const TermPtr& value_side = l ? f.rhs : f.lhs;
  if (value_side && value_side->References(head_name)) return std::nullopt;
  return head_side->attr;
}

/// Head attributes guaranteed to be assigned by `f` in every disjunct.
void GuaranteedAssigned(const Formula& f, const std::string& head_name,
                        NameSet* out) {
  switch (f.kind) {
    case FormulaKind::kPredicate: {
      auto attr = AssignmentAttr(f, head_name);
      if (attr.has_value()) out->insert(*attr);
      return;
    }
    case FormulaKind::kAnd:
      for (const FormulaPtr& c : f.children) {
        GuaranteedAssigned(*c, head_name, out);
      }
      return;
    case FormulaKind::kOr: {
      bool first = true;
      NameSet acc;
      for (const FormulaPtr& c : f.children) {
        NameSet child;
        GuaranteedAssigned(*c, head_name, &child);
        if (first) {
          acc = std::move(child);
          first = false;
        } else {
          NameSet merged;
          for (const std::string& a : acc) {
            if (child.contains(a)) merged.insert(a);
          }
          acc = std::move(merged);
        }
      }
      for (const std::string& a : acc) out->insert(a);
      return;
    }
    case FormulaKind::kExists:
      if (f.quantifier && f.quantifier->body) {
        GuaranteedAssigned(*f.quantifier->body, head_name, out);
      }
      return;
    case FormulaKind::kNot:
    case FormulaKind::kNullTest:
      return;
  }
}

class Analyzer {
 public:
  Analyzer(const Program& program, const AnalyzeOptions& options)
      : program_(program), options_(options) {
    if (options.externals == nullptr) {
      default_externals_ = ExternalRegistry::Builtins();
      externals_ = &default_externals_;
    } else {
      externals_ = options.externals;
    }
    unknown_is_error_ = options.unknown_relation_is_error.value_or(
        options.database != nullptr);
  }

  Analysis Run() {
    for (const Definition& def : program_.definitions) {
      if (!def.collection) {
        Error("ARC-E009", "definition without a collection");
        continue;
      }
      AnalyzeCollection(*def.collection, def.kind == DefKind::kAbstract);
      defs_.push_back(&def);
    }
    if (program_.main.collection) {
      AnalyzeCollection(*program_.main.collection, /*is_abstract=*/false);
    } else if (program_.main.sentence) {
      Ctx ctx;
      AnalyzeFormula(*program_.main.sentence, ctx);
    } else {
      Error("ARC-E009", "program has no main query");
    }
    DeduplicateDiagnostics(&analysis_.diagnostics);
    return std::move(analysis_);
  }

 private:
  struct Layer {
    enum class Kind { kHead, kVars };
    Kind kind = Kind::kVars;
    // kHead
    const Collection* collection = nullptr;
    bool is_abstract = false;
    int negation_depth_at_push = 0;
    // kVars
    const Quantifier* quantifier = nullptr;
    bool has_grouping = false;
    std::vector<std::pair<std::string, const Binding*>> vars;
  };

  struct Ctx {
    const Quantifier* innermost_quant = nullptr;
    bool innermost_has_grouping = false;
    bool under_or_in_scope = false;
  };

  void Report(Severity severity, const char* code, std::string message,
              const void* node, int line) {
    Diagnostic d;
    d.severity = severity;
    d.code = code;
    d.message = std::move(message);
    d.node = node;
    d.line = line;
    analysis_.diagnostics.push_back(std::move(d));
  }
  void Error(const char* code, std::string message) {
    Report(Severity::kError, code, std::move(message), nullptr, 0);
  }
  template <typename Node>
  void Error(const char* code, std::string message, const Node* node) {
    Report(Severity::kError, code, std::move(message), node,
           node != nullptr ? node->line : 0);
  }
  void Warn(const char* code, std::string message) {
    Report(Severity::kWarning, code, std::move(message), nullptr, 0);
  }
  template <typename Node>
  void Warn(const char* code, std::string message, const Node* node) {
    Report(Severity::kWarning, code, std::move(message), node,
           node != nullptr ? node->line : 0);
  }

  // ---- lookups -----------------------------------------------------------

  const Layer* InnermostHeadLayer() const {
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      if (it->kind == Layer::Kind::kHead) return &*it;
    }
    return nullptr;
  }

  /// Resolves a variable name: bindings shadow heads which shadow outer
  /// bindings, innermost first. Fills `info` on success.
  bool LookupVar(const std::string& name, AttrInfo* info) const {
    int distance = 0;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      if (it->kind == Layer::Kind::kVars) {
        for (const auto& [var, binding] : it->vars) {
          if (EqualsIgnoreCase(var, name)) {
            info->target = AttrTarget::kBinding;
            info->binding = binding;
            info->head_of = nullptr;
            info->scope_distance = distance;
            return true;
          }
        }
        ++distance;
      } else if (EqualsIgnoreCase(it->collection->head.relation, name)) {
        info->target = AttrTarget::kHead;
        info->binding = nullptr;
        info->head_of = it->collection;
        info->scope_distance = distance;
        return true;
      }
    }
    return false;
  }

  /// Classifies a named range. Order: enclosing heads (recursion), program
  /// definitions, database, externals. `site` anchors diagnostics.
  BindingInfo ClassifyNamedRange(const std::string& name, const Binding* site) {
    BindingInfo info;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      if (it->kind == Layer::Kind::kHead &&
          EqualsIgnoreCase(it->collection->head.relation, name)) {
        info.range_class = RangeClass::kSelf;
        info.attrs = it->collection->head.attrs;
        analysis_.collections[it->collection].is_recursive = true;
        // Stratification: the self-reference must be positive and outside
        // grouping scopes of the recursive collection.
        if (negation_depth_ > it->negation_depth_at_push) {
          Error("ARC-E006", "recursive reference to '" + name +
                "' under negation", site);
        }
        for (auto jt = layers_.rbegin(); jt != it; ++jt) {
          if (jt->kind == Layer::Kind::kVars && jt->has_grouping) {
            Error("ARC-E006", "recursive reference to '" + name +
                  "' inside a grouping scope", site);
            break;
          }
        }
        return info;
      }
    }
    for (const Definition* def : defs_) {
      if (EqualsIgnoreCase(def->collection->head.relation, name)) {
        info.range_class = def->kind == DefKind::kAbstract
                               ? RangeClass::kAbstract
                               : RangeClass::kIntensional;
        info.attrs = def->collection->head.attrs;
        return info;
      }
    }
    if (options_.database != nullptr && options_.database->Has(name)) {
      info.range_class = RangeClass::kBase;
      auto rel = options_.database->Get(name);
      if (rel.ok()) info.attrs = rel->schema().names();
      return info;
    }
    if (const ExternalRelation* ext = externals_->Find(name)) {
      info.range_class = RangeClass::kExternal;
      info.attrs = ext->schema().names();
      return info;
    }
    info.range_class = RangeClass::kUnknown;
    if (unknown_is_error_) {
      Error("ARC-E010", "unknown relation '" + name + "'", site);
    } else {
      Warn("ARC-W002",
           "relation '" + name + "' not resolvable against the given context",
           site);
    }
    return info;
  }

  // ---- slot binder -----------------------------------------------------

  /// Allocates the next frame slot.
  int NewSlot() { return analysis_.frame_slots++; }

  /// Schema view of a target's attribute list, cached per target so every
  /// reference compiles against the same index map. Going through
  /// data::Schema (rather than an ad-hoc scan) guarantees the compiled
  /// attribute index equals what the evaluator's runtime IndexOf finds,
  /// including the first-occurrence rule for case-duplicate names.
  const data::Schema& SlotSchema(const void* owner,
                                 const std::vector<std::string>& attrs) {
    auto it = slot_schemas_.find(owner);
    if (it == slot_schemas_.end()) {
      it = slot_schemas_.emplace(owner, data::Schema(attrs)).first;
    }
    return it->second;
  }

  void BindSlot(const Term& t, const Binding* owner,
                const std::vector<std::string>& attrs) {
    auto slot = analysis_.binding_slots.find(owner);
    if (slot == analysis_.binding_slots.end()) return;
    RecordSlot(t, slot->second, owner, attrs);
  }

  void BindSlot(const Term& t, const Collection* owner,
                const std::vector<std::string>& attrs) {
    auto slot = analysis_.head_slots.find(owner);
    if (slot == analysis_.head_slots.end()) return;
    RecordSlot(t, slot->second, owner, attrs);
  }

  void RecordSlot(const Term& t, int frame_slot, const void* owner,
                  const std::vector<std::string>& attrs) {
    TermSlot ts;
    ts.frame_slot = frame_slot;
    if (!attrs.empty()) {
      ts.attr_index = SlotSchema(owner, attrs).IndexOf(t.attr);
    }
    analysis_.term_slots[&t] = ts;
  }

  // ---- term resolution -----------------------------------------------

  /// Resolves all attribute references in `t`. `in_agg_arg` marks subterms
  /// inside an aggregate argument.
  void ResolveTerm(const Term& t, const Ctx& ctx, bool in_agg_arg) {
    switch (t.kind) {
      case TermKind::kAttrRef: {
        AttrInfo info;
        if (!LookupVar(t.var, &info)) {
          Error("ARC-E001", "unbound variable '" + t.var + "' in reference " +
                t.var + "." + t.attr, &t);
          return;
        }
        if (info.target == AttrTarget::kBinding) {
          const auto& battrs = analysis_.bindings[info.binding].attrs;
          if (!battrs.empty()) {
            bool found = false;
            for (const std::string& a : battrs) {
              if (EqualsIgnoreCase(a, t.attr)) found = true;
            }
            if (!found) {
              Error("ARC-E002", "relation bound to '" + t.var +
                    "' has no attribute '" + t.attr + "'", &t);
            }
          }
          BindSlot(t, info.binding, battrs);
        } else {
          bool found = false;
          for (const std::string& a : info.head_of->head.attrs) {
            if (EqualsIgnoreCase(a, t.attr)) found = true;
          }
          if (!found) {
            Error("ARC-E002", "head '" + info.head_of->head.relation +
                  "' has no attribute '" + t.attr + "'", &t);
          }
          if (in_agg_arg) {
            Error("ARC-E004", "head attribute " + t.var + "." + t.attr +
                  " cannot appear inside an aggregate argument", &t);
          }
          BindSlot(t, info.head_of, info.head_of->head.attrs);
        }
        analysis_.attrs[&t] = info;
        return;
      }
      case TermKind::kLiteral:
        return;
      case TermKind::kArith:
        if (t.lhs) ResolveTerm(*t.lhs, ctx, in_agg_arg);
        if (t.rhs) ResolveTerm(*t.rhs, ctx, in_agg_arg);
        return;
      case TermKind::kAggregate:
        if (in_agg_arg) {
          Error("ARC-E005", "nested aggregates are not allowed", &t);
        }
        if (ctx.innermost_quant == nullptr || !ctx.innermost_has_grouping) {
          Error("ARC-E005",
                std::string("aggregation predicate requires a grouping "
                            "operator in its scope (saw ") +
                AggFuncName(t.agg_func) + " outside a grouping scope)", &t);
        }
        if (t.agg_arg) {
          ResolveTerm(*t.agg_arg, ctx, /*in_agg_arg=*/true);
          // The aggregate should consume this scope's bindings.
          bool touches_scope = false;
          if (ctx.innermost_quant != nullptr) {
            for (const Binding& b : ctx.innermost_quant->bindings) {
              if (t.agg_arg->References(b.var)) touches_scope = true;
            }
          }
          if (!touches_scope) {
            Warn("ARC-W003", std::string(AggFuncName(t.agg_func)) +
                 " argument references no binding of its grouping scope", &t);
          }
        } else if (t.agg_func != AggFunc::kCountStar) {
          Error("ARC-E005", std::string(AggFuncName(t.agg_func)) +
                " requires an argument", &t);
        }
        return;
    }
  }

  // ---- formulas ---------------------------------------------------------

  void AnalyzeFormula(const Formula& f, Ctx ctx) {
    switch (f.kind) {
      case FormulaKind::kAnd:
        for (const FormulaPtr& c : f.children) AnalyzeFormula(*c, ctx);
        return;
      case FormulaKind::kOr: {
        Ctx child_ctx = ctx;
        child_ctx.under_or_in_scope = true;
        for (const FormulaPtr& c : f.children) AnalyzeFormula(*c, child_ctx);
        return;
      }
      case FormulaKind::kNot:
        ++negation_depth_;
        if (f.child) AnalyzeFormula(*f.child, ctx);
        --negation_depth_;
        return;
      case FormulaKind::kExists:
        AnalyzeQuantifier(*f.quantifier, ctx);
        return;
      case FormulaKind::kPredicate:
        AnalyzePredicate(f, ctx);
        return;
      case FormulaKind::kNullTest:
        if (f.null_arg) {
          ResolveTerm(*f.null_arg, ctx, /*in_agg_arg=*/false);
          if (ReferencesInnermostHead(*f.null_arg)) {
            ClassifyHeadUse(f, ctx, /*is_assignment_shape=*/false);
            return;
          }
        }
        analysis_.predicates[&f] = PredClass::kNullFilter;
        return;
    }
  }

  bool ReferencesInnermostHead(const Term& t) const {
    const Layer* head = InnermostHeadLayer();
    return head != nullptr && t.References(head->collection->head.relation);
  }

  /// Handles predicates that touch the enclosing head in a non-assignment
  /// way: legal as module parameters of abstract relations, errors
  /// otherwise.
  void ClassifyHeadUse(const Formula& f, const Ctx& /*ctx*/,
                       bool /*is_assignment_shape*/) {
    const Layer* head = InnermostHeadLayer();
    if (head != nullptr && head->is_abstract) {
      analysis_.predicates[&f] = PredClass::kHeadParameter;
      return;
    }
    analysis_.predicates[&f] = PredClass::kFilter;
    Error("ARC-E004", "head attribute of '" +
          (head != nullptr ? head->collection->head.relation
                           : std::string("?")) +
          "' used outside an assignment predicate", &f);
  }

  void AnalyzePredicate(const Formula& f, const Ctx& ctx) {
    if (f.lhs) ResolveTerm(*f.lhs, ctx, /*in_agg_arg=*/false);
    if (f.rhs) ResolveTerm(*f.rhs, ctx, /*in_agg_arg=*/false);

    const Layer* head = InnermostHeadLayer();
    const bool contains_agg = f.ContainsAggregate();
    if (head != nullptr) {
      const std::string& head_name = head->collection->head.relation;
      auto attr = AssignmentAttr(f, head_name);
      if (attr.has_value()) {
        const bool positive = negation_depth_ == head->negation_depth_at_push;
        if (!positive) {
          if (head->is_abstract) {
            analysis_.predicates[&f] = PredClass::kHeadParameter;
            return;
          }
          analysis_.predicates[&f] = PredClass::kAssignment;
          Error("ARC-E004", "assignment to head attribute '" + *attr +
                "' under negation", &f);
          return;
        }
        if (ctx.under_or_in_scope) {
          // Legal: disjunctive definitions assign per disjunct (§2.9).
        }
        analysis_.predicates[&f] =
            contains_agg ? PredClass::kAggAssignment : PredClass::kAssignment;
        // In a grouping scope, every assignment's non-aggregate inputs must
        // be grouping keys or outer references (§2.5).
        if (ctx.innermost_has_grouping) {
          CheckAggAssignmentInputs(f, ctx, head_name);
        }
        return;
      }
      const bool touches_head =
          (f.lhs && f.lhs->References(head_name)) ||
          (f.rhs && f.rhs->References(head_name));
      if (touches_head) {
        ClassifyHeadUse(f, ctx, /*is_assignment_shape=*/false);
        return;
      }
    }
    analysis_.predicates[&f] =
        contains_agg ? PredClass::kAggFilter : PredClass::kFilter;
  }

  /// For Q.x = <term with aggregates>: non-aggregate attribute references
  /// in the value term must be grouping keys or outer references.
  void CheckAggAssignmentInputs(const Formula& f, const Ctx& ctx,
                                const std::string& head_name) {
    if (ctx.innermost_quant == nullptr ||
        !ctx.innermost_quant->grouping.has_value()) {
      return;  // already reported by ResolveTerm
    }
    const Grouping& grouping = *ctx.innermost_quant->grouping;
    // Only check when every key is a plain attribute reference.
    for (const TermPtr& k : grouping.keys) {
      if (k->kind != TermKind::kAttrRef) return;
    }
    auto is_key = [&](const Term& t) {
      for (const TermPtr& k : grouping.keys) {
        if (EqualsIgnoreCase(k->var, t.var) &&
            EqualsIgnoreCase(k->attr, t.attr)) {
          return true;
        }
      }
      return false;
    };
    auto is_scope_var = [&](const std::string& var) {
      for (const Binding& b : ctx.innermost_quant->bindings) {
        if (EqualsIgnoreCase(b.var, var)) return true;
      }
      return false;
    };
    // Walk the value side, skipping aggregate arguments and head refs.
    std::vector<const Term*> stack;
    auto push = [&](const TermPtr& t) {
      if (t) stack.push_back(t.get());
    };
    push(f.lhs);
    push(f.rhs);
    while (!stack.empty()) {
      const Term* t = stack.back();
      stack.pop_back();
      switch (t->kind) {
        case TermKind::kAttrRef:
          if (EqualsIgnoreCase(t->var, head_name)) break;
          if (!is_key(*t) && is_scope_var(t->var)) {
            Error("ARC-E005", "attribute " + t->var + "." + t->attr +
                  " used in an aggregation scope but is not a grouping key",
                  t);
          }
          break;
        case TermKind::kArith:
          push(t->lhs);
          push(t->rhs);
          break;
        case TermKind::kAggregate:
        case TermKind::kLiteral:
          break;
      }
    }
  }

  // ---- quantifiers --------------------------------------------------------

  void AnalyzeQuantifier(const Quantifier& q, const Ctx& /*outer_ctx*/) {
    Layer layer;
    layer.kind = Layer::Kind::kVars;
    layer.quantifier = &q;
    layer.has_grouping = q.grouping.has_value();
    layers_.push_back(std::move(layer));
    const size_t layer_index = layers_.size() - 1;

    if (q.bindings.empty()) {
      Error("ARC-E009", "quantifier scope with no bindings");
    }

    for (const Binding& b : q.bindings) {
      // Duplicate variables within the scope.
      for (const auto& entry : layers_[layer_index].vars) {
        if (EqualsIgnoreCase(entry.first, b.var)) {
          Error("ARC-E008", "duplicate range variable '" + b.var +
                "' in one quantifier", &b);
        }
      }
      // Shadowing checks.
      AttrInfo shadow;
      if (LookupVar(b.var, &shadow)) {
        if (shadow.target == AttrTarget::kHead) {
          Error("ARC-E008", "range variable '" + b.var +
                "' shadows the head of its collection", &b);
        } else {
          Warn("ARC-W001", "range variable '" + b.var +
               "' shadows an outer binding", &b);
        }
      }
      BindingInfo info;
      if (b.range_kind == RangeKind::kNamed) {
        info = ClassifyNamedRange(b.relation, &b);
      } else {
        info.range_class = RangeClass::kNestedCollection;
        if (b.collection) {
          info.attrs = b.collection->head.attrs;
          // Analyzed with already-introduced siblings visible (lateral).
          AnalyzeCollection(*b.collection, /*is_abstract=*/false);
        } else {
          Error("ARC-E009", "collection binding '" + b.var +
                "' without a collection", &b);
        }
      }
      analysis_.bindings[&b] = std::move(info);
      analysis_.binding_slots.emplace(&b, NewSlot());
      layers_[layer_index].vars.emplace_back(b.var, &b);
    }

    Ctx ctx;
    ctx.innermost_quant = &q;
    ctx.innermost_has_grouping = q.grouping.has_value();
    ctx.under_or_in_scope = false;

    if (q.grouping.has_value()) {
      for (const TermPtr& k : q.grouping->keys) {
        ResolveTerm(*k, ctx, /*in_agg_arg=*/false);
        if (k->ContainsAggregate()) {
          Error("ARC-E005", "grouping key contains an aggregate", k.get());
        }
      }
    }

    if (q.join_tree) CheckJoinTree(*q.join_tree, q);

    if (q.body) {
      AnalyzeFormula(*q.body, ctx);
    } else {
      Error("ARC-E009", "quantifier scope with no body");
    }

    layers_.pop_back();
  }

  void CheckJoinTree(const JoinNode& tree, const Quantifier& q) {
    NameSet seen;
    CheckJoinNode(tree, q, &seen);
  }

  void CheckJoinNode(const JoinNode& n, const Quantifier& q, NameSet* seen) {
    switch (n.kind) {
      case JoinKind::kVarLeaf: {
        bool found = false;
        for (const Binding& b : q.bindings) {
          if (EqualsIgnoreCase(b.var, n.var)) found = true;
        }
        if (!found) {
          Error("ARC-E007", "join annotation references '" + n.var +
                "', which is not bound in its scope");
        }
        if (!seen->insert(n.var).second) {
          Error("ARC-E007", "join annotation mentions '" + n.var + "' twice");
        }
        return;
      }
      case JoinKind::kLiteralLeaf:
        return;
      case JoinKind::kInner:
        if (n.children.empty()) {
          Error("ARC-E007", "inner join annotation with no children");
        }
        break;
      case JoinKind::kLeft:
      case JoinKind::kFull:
        if (n.children.size() != 2) {
          Error("ARC-E007", "left/full join annotations are binary");
        }
        break;
    }
    for (const JoinNodePtr& c : n.children) CheckJoinNode(*c, q, seen);
  }

  // ---- collections ---------------------------------------------------------

  void AnalyzeCollection(const Collection& c, bool is_abstract) {
    CollectionInfo& cinfo = analysis_.collections[&c];
    cinfo.is_abstract = is_abstract;
    analysis_.head_slots.emplace(&c, NewSlot());

    if (c.head.relation.empty()) {
      Error("ARC-E009", "collection head has no relation name", &c);
    }
    if (c.head.attrs.empty()) {
      Error("ARC-E009", "collection head '" + c.head.relation +
            "' has no attributes", &c);
    }
    NameSet attr_names;
    for (const std::string& a : c.head.attrs) {
      if (!attr_names.insert(a).second) {
        Error("ARC-E009", "duplicate head attribute '" + a + "' in '" +
              c.head.relation + "'", &c);
      }
    }

    Layer layer;
    layer.kind = Layer::Kind::kHead;
    layer.collection = &c;
    layer.is_abstract = is_abstract;
    layer.negation_depth_at_push = negation_depth_;
    layers_.push_back(std::move(layer));

    if (c.body) {
      Ctx ctx;
      AnalyzeFormula(*c.body, ctx);
      if (!is_abstract) {
        NameSet assigned;
        GuaranteedAssigned(*c.body, c.head.relation, &assigned);
        for (const std::string& a : c.head.attrs) {
          if (!assigned.contains(a)) {
            Error("ARC-E003", "head attribute '" + c.head.relation + "." + a +
                  "' is not assigned in every disjunct (unsafe head)", &c);
          }
        }
      }
    } else {
      Error("ARC-E009", "collection '" + c.head.relation + "' has no body",
            &c);
    }

    layers_.pop_back();
  }

  const Program& program_;
  const AnalyzeOptions& options_;
  ExternalRegistry default_externals_;
  const ExternalRegistry* externals_ = nullptr;
  bool unknown_is_error_ = false;

  Analysis analysis_;
  /// Slot-binder schema cache: target node → Schema over its attribute list.
  std::unordered_map<const void*, data::Schema> slot_schemas_;
  std::vector<Layer> layers_;
  std::vector<const Definition*> defs_;
  int negation_depth_ = 0;
};

}  // namespace

const char* RangeClassName(RangeClass c) {
  switch (c) {
    case RangeClass::kBase:
      return "base";
    case RangeClass::kIntensional:
      return "intensional";
    case RangeClass::kAbstract:
      return "abstract";
    case RangeClass::kExternal:
      return "external";
    case RangeClass::kSelf:
      return "self";
    case RangeClass::kNestedCollection:
      return "nested";
    case RangeClass::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* PredClassName(PredClass c) {
  switch (c) {
    case PredClass::kFilter:
      return "filter";
    case PredClass::kAssignment:
      return "assignment";
    case PredClass::kAggAssignment:
      return "agg-assignment";
    case PredClass::kAggFilter:
      return "agg-filter";
    case PredClass::kNullFilter:
      return "null-filter";
    case PredClass::kHeadParameter:
      return "head-parameter";
  }
  return "?";
}

void DeduplicateDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::set<std::tuple<int, std::string, std::string, int>> seen;
  std::vector<Diagnostic> unique;
  unique.reserve(diagnostics->size());
  for (Diagnostic& d : *diagnostics) {
    if (seen.emplace(static_cast<int>(d.severity), d.code, d.message, d.line)
            .second) {
      unique.push_back(std::move(d));
    }
  }
  *diagnostics = std::move(unique);
}

const char* SeverityName(Diagnostic::Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

std::string DiagnosticToString(const Diagnostic& d) {
  std::string out = SeverityName(d.severity);
  if (!d.code.empty()) {
    out += "[";
    out += d.code;
    out += "]";
  }
  if (d.line > 0) {
    out += " line ";
    out += std::to_string(d.line);
  }
  out += ": ";
  out += d.message;
  return out;
}

std::vector<std::string> Analysis::ErrorMessages() const {
  std::vector<std::string> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) out.push_back(d.message);
  }
  return out;
}

std::string Analysis::DiagnosticsToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += DiagnosticToString(d);
    out += "\n";
  }
  return out;
}

Analysis Analyze(const Program& program, const AnalyzeOptions& options) {
  return Analyzer(program, options).Run();
}

Status Validate(const Program& program, const AnalyzeOptions& options) {
  Analysis analysis = Analyze(program, options);
  if (analysis.ok()) return Status::Ok();
  return ValidationError(Join(analysis.ErrorMessages(), "; "));
}

}  // namespace arc
