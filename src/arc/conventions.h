// Conventions (§2.6, §2.7): orthogonal, environment-level semantic
// parameters under which a relational core is interpreted. They change the
// observable result but never the relational pattern, so they are passed to
// the evaluator rather than stored in the ALT.
#ifndef ARC_ARC_CONVENTIONS_H_
#define ARC_ARC_CONVENTIONS_H_

#include <string>

#include "data/value.h"

namespace arc {

struct Conventions {
  /// Set vs. bag interpretation (§2.7). Under kSet every collection's
  /// result is deduplicated; under kBag multiplicities are kept ("once per
  /// generating combination").
  enum class Multiplicity { kSet, kBag };

  /// What sum/avg/min/max return over zero qualifying input rows (§2.6).
  /// kNull is SQL's choice; kNeutral is Soufflé's (sum → 0, avg → 0;
  /// min/max stay null — they have no neutral element in our domain).
  enum class EmptyAggregate { kNull, kNeutral };

  Multiplicity multiplicity = Multiplicity::kSet;
  data::NullLogic null_logic = data::NullLogic::kThreeValued;
  EmptyAggregate empty_aggregate = EmptyAggregate::kNull;

  /// ARC reference conventions: set semantics, three-valued logic, SQL-style
  /// null-on-empty aggregates.
  static Conventions Arc() { return Conventions{}; }

  /// SQL conventions: bag semantics, 3VL, null-on-empty aggregates.
  static Conventions Sql() {
    Conventions c;
    c.multiplicity = Multiplicity::kBag;
    return c;
  }

  /// Soufflé conventions: set semantics, two-valued logic (Soufflé has no
  /// NULL), neutral-element aggregates (sum over ∅ = 0, Eq. (15)).
  static Conventions Souffle() {
    Conventions c;
    c.null_logic = data::NullLogic::kTwoValued;
    c.empty_aggregate = EmptyAggregate::kNeutral;
    return c;
  }

  std::string ToString() const {
    std::string out = multiplicity == Multiplicity::kSet ? "set" : "bag";
    out += null_logic == data::NullLogic::kThreeValued ? ",3VL" : ",2VL";
    out += empty_aggregate == EmptyAggregate::kNull ? ",empty-agg=null"
                                                    : ",empty-agg=neutral";
    return out;
  }

  bool operator==(const Conventions& o) const {
    return multiplicity == o.multiplicity && null_logic == o.null_logic &&
           empty_aggregate == o.empty_aggregate;
  }
};

}  // namespace arc

#endif  // ARC_ARC_CONVENTIONS_H_
