// ArcLint: a static-analysis pass framework layered on the resolved
// Analysis. Where Analyze() enforces ARC's *structural* rules (unbound
// variables, unsafe heads, grouping legality — hard errors), the lint
// passes detect *semantic traps*: query shapes that are well-formed but
// historically produce wrong results when rewritten, ported between
// engines, or run under a different interpretation convention (§2.6/§2.7,
// §3.2 of the paper).
//
// Every pass emits structured Diagnostics with a stable ARC-W1## code and
// node provenance. Passes fall into categories:
//   * trap shapes      — the count-bug family (Fig. 21),
//   * convention       — results diverge under set/bag, 3VL/2VL, or
//                        empty-aggregate conventions; these warnings are
//                        differentially validated (see
//                        translate/differential.h): each one must be
//                        realizable on a concrete instance,
//   * hygiene          — unused bindings, cartesian products, vacuous
//                        predicates,
//   * informational    — typo suggestions, evaluation-strategy notes.
//
// The full catalog with examples lives in LINTS.md.
#ifndef ARC_ARC_LINT_H_
#define ARC_ARC_LINT_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "arc/analyze.h"
#include "arc/ast.h"
#include "arc/external.h"

namespace arc {

/// The orthogonal convention axis (§2.6/§2.7) a finding is sensitive to.
enum class ConventionDimension {
  kMultiplicity,    // set vs. bag
  kNullLogic,       // three-valued vs. two-valued
  kEmptyAggregate,  // aggregate over ∅: NULL vs. neutral element
};
const char* ConventionDimensionName(ConventionDimension d);

enum class LintCategory {
  kTrapShape,   // count-bug family shapes (Fig. 21)
  kConvention,  // convention-sensitive; differentially validated
  kHygiene,     // unused / cartesian / vacuous
  kInfo,        // suggestions and evaluation notes
};
const char* LintCategoryName(LintCategory c);

/// Everything a pass sees. The analysis side tables may be partial when the
/// analyzer reported errors; passes look nodes up defensively.
struct LintContext {
  const Program& program;
  const Analysis& analysis;
  const AnalyzeOptions& options;
  const ExternalRegistry& externals;
};

struct LintPass {
  const char* code;     // "ARC-W101"
  const char* name;     // short kebab-case identifier, e.g. "count-bug-shape"
  const char* summary;  // one line for `arctool lint --list`
  LintCategory category = LintCategory::kHygiene;
  /// Set for kConvention passes: the axis whose choice changes the result.
  std::optional<ConventionDimension> dimension;
  /// Appends findings (with code == this->code) to `out`.
  std::function<void(const LintContext&, std::vector<Diagnostic>*)> run;
};

/// The registered passes, in code order.
const std::vector<LintPass>& LintPasses();

/// Finds a pass by its diagnostic code ("ARC-W101"); nullptr if unknown.
const LintPass* FindLintPass(std::string_view code);

struct LintOptions {
  AnalyzeOptions analyze;
  /// Diagnostic codes of passes to skip ("ARC-W106", ...).
  std::vector<std::string> disabled;
};

struct LintResult {
  /// Resolution + structural diagnostics (Analyze output).
  Analysis analysis;
  /// Lint findings only (ARC-W1## codes).
  std::vector<Diagnostic> findings;

  /// Structural diagnostics followed by lint findings.
  std::vector<Diagnostic> All() const;
  /// True when neither the analyzer nor any pass reported an error.
  bool ok() const;
};

/// Runs Analyze() and then every enabled pass. Passes run even when the
/// analyzer reported errors (the typo-suggestion pass depends on it).
LintResult Lint(const Program& program, const LintOptions& options = {});

// ---------------------------------------------------------------------------
// Auto-fixes
// ---------------------------------------------------------------------------

/// How an auto-fix is *allowed* to change program meaning. Every proposed
/// fix is a candidate only: callers must gate it through ArcVerify
/// (verify/bounded_eq.h VerifyFixes), which proves the relation documented
/// here up to a bound before the fix may be offered or applied.
enum class FixEffect {
  /// The fixed program must be equivalent under the reference (3VL)
  /// conventions; under the two-valued flip it intentionally diverges in
  /// one direction only (fixed ⊆ original). W102's IS NOT NULL guards:
  /// they pin the 3VL meaning so a 2VL port can no longer *add* rows.
  kPinsMeaning,
  /// The fixed program intentionally broadens the result: original ⊆ fixed
  /// under every convention. W109's left-join annotation: it restores
  /// rows that the unannotated inner join silently dropped (the count
  /// bug), with NULL-extended subquery attributes.
  kBroadens,
};
const char* FixEffectName(FixEffect e);

/// One mechanical repair: the warning it addresses and the full program
/// with exactly that repair applied (AST-level; the printer renders it).
struct FixIt {
  std::string code;         // diagnostic code, e.g. "ARC-W102"
  std::string name;         // kebab-case, e.g. "insert-is-not-null-guard"
  std::string description;  // one line, names the guarded attributes etc.
  int line = 0;             // source line of the finding being fixed
  FixEffect effect = FixEffect::kPinsMeaning;
  Program fixed;
};

/// Proposes auto-fixes for the fixable findings of Lint(program, options)
/// — currently W102 (null-guard insertion at the innermost enclosing NOT)
/// and W109 (explicit left-join annotation for the grouped-subquery join).
/// Each FixIt is independent: its `fixed` program is `program` with that
/// one repair. Purely syntactic — run the fixes through
/// verify::VerifyFixes before offering them.
std::vector<FixIt> ProposeFixes(const Program& program,
                                const LintOptions& options = {});

/// "error[ARC-E001] line 3: message" lines, analyzer first; ends with a
/// one-line summary ("2 errors, 1 warning").
std::string LintToText(const LintResult& result);

/// Machine-readable rendering:
///   {"diagnostics": [{"severity": "...", "code": "...", "line": N,
///     "category": "...", "message": "..."}, ...],
///    "errors": N, "warnings": N, "notes": N}
std::string LintToJson(const LintResult& result);

}  // namespace arc

#endif  // ARC_ARC_LINT_H_
