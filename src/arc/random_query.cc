#include "arc/random_query.h"

#include <string>
#include <vector>

#include "arc/dsl.h"
#include "data/generators.h"

namespace arc {

namespace {

using data::Value;

struct BoundVar {
  std::string var;
  std::vector<std::string> attrs;
};

class Generator {
 public:
  Generator(const data::Database& db, const RandomQueryOptions& opts)
      : db_(db), opts_(opts), rng_(opts.seed) {}

  Result<CollectionPtr> Run() {
    names_ = db_.Names();
    if (names_.empty()) {
      return InvalidArgument("random query generation needs base relations");
    }
    return GenCollection("Q", opts_.max_depth, /*outer=*/{});
  }

 private:
  bool Coin(double p) { return rng_.NextDouble() < p; }

  const std::string& RandomRelation() {
    return names_[static_cast<size_t>(rng_.Below(
        static_cast<int64_t>(names_.size())))];
  }

  std::vector<std::string> AttrsOf(const std::string& relation) {
    return db_.GetPtr(relation)->schema().names();
  }

  std::string FreshVar() { return "g" + std::to_string(++var_counter_); }
  std::string FreshHead() { return "G" + std::to_string(++head_counter_); }

  const std::string& RandomAttr(const BoundVar& v) {
    return v.attrs[static_cast<size_t>(
        rng_.Below(static_cast<int64_t>(v.attrs.size())))];
  }

  const BoundVar& RandomVar(const std::vector<BoundVar>& vars) {
    return vars[static_cast<size_t>(
        rng_.Below(static_cast<int64_t>(vars.size())))];
  }

  TermPtr RandomLiteral() { return dsl::Int(rng_.Below(16)); }

  data::CmpOp RandomCmp() {
    constexpr data::CmpOp kOps[] = {data::CmpOp::kEq, data::CmpOp::kNe,
                                    data::CmpOp::kLt, data::CmpOp::kLe,
                                    data::CmpOp::kGt, data::CmpOp::kGe};
    return kOps[rng_.Below(6)];
  }

  AggFunc RandomAgg() {
    constexpr AggFunc kAggs[] = {AggFunc::kSum, AggFunc::kCount,
                                 AggFunc::kMin, AggFunc::kMax,
                                 AggFunc::kCountStar};
    return kAggs[rng_.Below(5)];
  }

  /// A simple filter conjunct over the given vars (attribute/literal or
  /// attribute/attribute comparison, optionally wrapped in a disjunction).
  FormulaPtr RandomFilter(const std::vector<BoundVar>& vars) {
    auto one = [&]() -> FormulaPtr {
      const BoundVar& v = RandomVar(vars);
      TermPtr lhs = dsl::Attr(v.var, RandomAttr(v));
      if (Coin(opts_.arithmetic_probability)) {
        lhs = MakeArith(Coin(0.5) ? data::ArithOp::kAdd : data::ArithOp::kSub,
                        std::move(lhs), dsl::Int(1 + rng_.Below(3)));
      }
      TermPtr rhs;
      if (Coin(0.5)) {
        const BoundVar& w = RandomVar(vars);
        rhs = dsl::Attr(w.var, RandomAttr(w));
      } else {
        rhs = RandomLiteral();
      }
      return MakePredicate(RandomCmp(), std::move(lhs), std::move(rhs));
    };
    if (Coin(opts_.disjunction_probability)) {
      std::vector<FormulaPtr> disjuncts;
      disjuncts.push_back(one());
      disjuncts.push_back(one());
      return MakeOr(std::move(disjuncts));
    }
    return one();
  }

  /// NOT EXISTS scope correlated with the outer vars.
  FormulaPtr RandomNegation(const std::vector<BoundVar>& vars, int depth) {
    const std::string relation = RandomRelation();
    BoundVar inner{FreshVar(), AttrsOf(relation)};
    auto q = std::make_unique<Quantifier>();
    Binding b;
    b.var = inner.var;
    b.range_kind = RangeKind::kNamed;
    b.relation = relation;
    q->bindings.push_back(std::move(b));
    std::vector<FormulaPtr> conjuncts;
    // Correlate with an outer variable.
    const BoundVar& outer = RandomVar(vars);
    conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                      dsl::Attr(inner.var, RandomAttr(inner)),
                                      dsl::Attr(outer.var, RandomAttr(outer))));
    std::vector<BoundVar> inner_vars = vars;
    inner_vars.push_back(inner);
    if (Coin(0.5)) conjuncts.push_back(RandomFilter(inner_vars));
    if (depth > 1 && Coin(opts_.negation_probability)) {
      conjuncts.push_back(RandomNegation(inner_vars, depth - 1));
    }
    q->body = conjuncts.size() == 1 ? std::move(conjuncts[0])
                                    : MakeAnd(std::move(conjuncts));
    return MakeNot(MakeExists(std::move(q)));
  }

  /// Correlated γ∅ scalar-aggregate condition — the count-bug shape of
  /// Fig. 21a: ∃ h ∈ R, γ∅ [ h.a = v.b ∧ agg(h.c) ⊗ k ].
  FormulaPtr RandomScalarAggCondition(const std::vector<BoundVar>& vars) {
    const std::string relation = RandomRelation();
    BoundVar inner{FreshVar(), AttrsOf(relation)};
    auto q = std::make_unique<Quantifier>();
    Binding b;
    b.var = inner.var;
    b.range_kind = RangeKind::kNamed;
    b.relation = relation;
    q->bindings.push_back(std::move(b));
    q->grouping = Grouping{};  // γ∅: one group, even over empty input
    std::vector<FormulaPtr> conjuncts;
    const BoundVar& outer = RandomVar(vars);
    conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                      dsl::Attr(inner.var, RandomAttr(inner)),
                                      dsl::Attr(outer.var, RandomAttr(outer))));
    TermPtr agg = Coin(0.5)
                      ? MakeAggregate(AggFunc::kCountStar, nullptr)
                      : MakeAggregate(AggFunc::kSum,
                                      dsl::Attr(inner.var, RandomAttr(inner)));
    conjuncts.push_back(MakePredicate(Coin(0.5) ? data::CmpOp::kGe
                                                : data::CmpOp::kLe,
                                      std::move(agg),
                                      dsl::Int(1 + rng_.Below(8))));
    q->body = MakeAnd(std::move(conjuncts));
    return MakeExists(std::move(q));
  }

  Result<CollectionPtr> GenCollection(const std::string& head_name, int depth,
                                      const std::vector<BoundVar>& outer) {
    auto q = std::make_unique<Quantifier>();
    std::vector<BoundVar> vars;
    const int n_bindings =
        1 + static_cast<int>(rng_.Below(opts_.max_bindings));
    for (int i = 0; i < n_bindings; ++i) {
      Binding b;
      b.var = FreshVar();
      if (depth > 0 && Coin(opts_.nested_collection_probability)) {
        // Uncorrelated nested collection.
        ARC_ASSIGN_OR_RETURN(CollectionPtr nested,
                             GenCollection(FreshHead(), depth - 1, {}));
        BoundVar v{b.var, nested->head.attrs};
        b.range_kind = RangeKind::kCollection;
        b.collection = std::move(nested);
        vars.push_back(std::move(v));
      } else {
        const std::string relation = RandomRelation();
        b.range_kind = RangeKind::kNamed;
        b.relation = relation;
        vars.push_back({b.var, AttrsOf(relation)});
      }
      q->bindings.push_back(std::move(b));
    }

    std::vector<FormulaPtr> conjuncts;
    // Join equalities between consecutive bindings keep selectivity sane.
    for (size_t i = 1; i < vars.size(); ++i) {
      if (Coin(0.8)) {
        conjuncts.push_back(MakePredicate(
            data::CmpOp::kEq, dsl::Attr(vars[i - 1].var, RandomAttr(vars[i - 1])),
            dsl::Attr(vars[i].var, RandomAttr(vars[i]))));
      }
    }
    if (Coin(0.7)) {
      std::vector<BoundVar> all = vars;
      for (const BoundVar& o : outer) all.push_back(o);
      FormulaPtr filter = RandomFilter(all);
      // Guarded so the default (0) consumes no RNG.
      if (opts_.negated_filter_probability > 0 &&
          Coin(opts_.negated_filter_probability)) {
        filter = MakeNot(std::move(filter));
      }
      conjuncts.push_back(std::move(filter));
    }
    if (depth > 0 && Coin(opts_.negation_probability)) {
      conjuncts.push_back(RandomNegation(vars, depth));
    }

    Head head;
    head.relation = head_name;
    const bool grouped = Coin(opts_.grouped_probability);
    if (grouped) {
      Grouping grouping;
      // 1-2 grouping keys.
      std::vector<std::pair<std::string, std::string>> keys;
      const int n_keys = 1 + static_cast<int>(rng_.Below(2));
      for (int i = 0; i < n_keys; ++i) {
        const BoundVar& v = RandomVar(vars);
        keys.emplace_back(v.var, RandomAttr(v));
        grouping.keys.push_back(dsl::Attr(keys.back().first,
                                          keys.back().second));
      }
      q->grouping = std::move(grouping);
      int attr_index = 0;
      for (const auto& [var, attr] : keys) {
        const std::string out = "a" + std::to_string(++attr_index);
        head.attrs.push_back(out);
        conjuncts.push_back(MakePredicate(data::CmpOp::kEq,
                                          MakeAttrRef(head_name, out),
                                          dsl::Attr(var, attr)));
      }
      // 1-2 aggregates.
      const int n_aggs = 1 + static_cast<int>(rng_.Below(2));
      for (int i = 0; i < n_aggs; ++i) {
        const std::string out = "a" + std::to_string(++attr_index);
        head.attrs.push_back(out);
        const AggFunc f = RandomAgg();
        const BoundVar& source = RandomVar(vars);
        TermPtr agg =
            f == AggFunc::kCountStar
                ? MakeAggregate(AggFunc::kCountStar, nullptr)
                : MakeAggregate(f, dsl::Attr(source.var, RandomAttr(source)));
        conjuncts.push_back(MakePredicate(
            data::CmpOp::kEq, MakeAttrRef(head_name, out), std::move(agg)));
      }
      // Optional aggregate group filter.
      if (Coin(0.3)) {
        const BoundVar& v = RandomVar(vars);
        conjuncts.push_back(MakePredicate(
            data::CmpOp::kGe, MakeAggregate(AggFunc::kCountStar, nullptr),
            dsl::Int(rng_.Below(3))));
        (void)v;
      }
    } else {
      const int n_out = 1 + static_cast<int>(rng_.Below(2));
      for (int i = 0; i < n_out; ++i) {
        const std::string out = "a" + std::to_string(i + 1);
        head.attrs.push_back(out);
        const BoundVar& v = RandomVar(vars);
        TermPtr value = dsl::Attr(v.var, RandomAttr(v));
        if (Coin(opts_.arithmetic_probability)) {
          value = MakeArith(data::ArithOp::kAdd, std::move(value),
                            dsl::Int(rng_.Below(4)));
        }
        conjuncts.push_back(MakePredicate(
            data::CmpOp::kEq, MakeAttrRef(head_name, out), std::move(value)));
      }
      // Guarded so the default (0) consumes no RNG and seeded corpora stay
      // byte-identical to before the option existed.
      if (opts_.scalar_agg_probability > 0 &&
          Coin(opts_.scalar_agg_probability)) {
        conjuncts.push_back(RandomScalarAggCondition(vars));
      }
    }

    q->body = conjuncts.size() == 1 ? std::move(conjuncts[0])
                                    : MakeAnd(std::move(conjuncts));
    return MakeCollection(std::move(head), MakeExists(std::move(q)));
  }

  const data::Database& db_;
  const RandomQueryOptions& opts_;
  data::Rng rng_;
  std::vector<std::string> names_;
  int var_counter_ = 0;
  int head_counter_ = 0;
};

}  // namespace

Result<CollectionPtr> GenerateRandomCollection(const data::Database& db,
                                               const RandomQueryOptions& opts) {
  return Generator(db, opts).Run();
}

}  // namespace arc
