#include "arc/lint.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "common/strings.h"

namespace arc {

namespace {

using Severity = Diagnostic::Severity;

struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const {
    return ToLower(a) < ToLower(b);
  }
};
using NameSet = std::set<std::string, CaseInsensitiveLess>;

void Finding(std::vector<Diagnostic>* out, Severity severity, const char* code,
             std::string message, const void* node, int line) {
  Diagnostic d;
  d.severity = severity;
  d.code = code;
  d.message = std::move(message);
  d.node = node;
  d.line = line;
  out->push_back(std::move(d));
}

template <typename Node>
void Finding(std::vector<Diagnostic>* out, Severity severity, const char* code,
             std::string message, const Node* node) {
  Finding(out, severity, code, std::move(message), node,
          node != nullptr ? node->line : 0);
}

// ---------------------------------------------------------------------------
// Rendering (minimal; the lint layer cannot depend on arc_text)
// ---------------------------------------------------------------------------

std::string RenderTerm(const Term& t) {
  switch (t.kind) {
    case TermKind::kAttrRef:
      return t.var + "." + t.attr;
    case TermKind::kLiteral:
      return t.literal.ToString();
    case TermKind::kArith:
      return (t.lhs ? RenderTerm(*t.lhs) : "?") +
             std::string(" ") + data::ArithOpSymbol(t.arith_op) + " " +
             (t.rhs ? RenderTerm(*t.rhs) : "?");
    case TermKind::kAggregate:
      return std::string(AggFuncName(t.agg_func)) + "(" +
             (t.agg_arg ? RenderTerm(*t.agg_arg) : "*") + ")";
  }
  return "?";
}

std::string RenderPredicate(const Formula& f) {
  if (f.kind == FormulaKind::kNullTest) {
    return (f.null_arg ? RenderTerm(*f.null_arg) : "?") +
           (f.null_negated ? " is not null" : " is null");
  }
  return (f.lhs ? RenderTerm(*f.lhs) : "?") + " " +
         data::CmpOpSymbol(f.cmp_op) + " " +
         (f.rhs ? RenderTerm(*f.rhs) : "?");
}

// ---------------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------------

/// Attribute-reference terms in `t`, including inside aggregate arguments.
void CollectRefs(const Term& t, std::vector<const Term*>* out) {
  switch (t.kind) {
    case TermKind::kAttrRef:
      out->push_back(&t);
      return;
    case TermKind::kLiteral:
      return;
    case TermKind::kArith:
      if (t.lhs) CollectRefs(*t.lhs, out);
      if (t.rhs) CollectRefs(*t.rhs, out);
      return;
    case TermKind::kAggregate:
      if (t.agg_arg) CollectRefs(*t.agg_arg, out);
      return;
  }
}

/// Aggregate terms in `t` (outermost; aggregates never nest legally).
void CollectAggs(const Term& t, std::vector<const Term*>* out) {
  switch (t.kind) {
    case TermKind::kAggregate:
      out->push_back(&t);
      return;
    case TermKind::kArith:
      if (t.lhs) CollectAggs(*t.lhs, out);
      if (t.rhs) CollectAggs(*t.rhs, out);
      return;
    default:
      return;
  }
}

void CollectAggsInPredicate(const Formula& f, std::vector<const Term*>* out) {
  if (f.lhs) CollectAggs(*f.lhs, out);
  if (f.rhs) CollectAggs(*f.rhs, out);
  if (f.null_arg) CollectAggs(*f.null_arg, out);
}

void CollectVarNamesDeepColl(const Collection& c, NameSet* out);

/// Every range-variable name referenced anywhere under `f`, descending into
/// nested quantifier scopes and nested collections (for correlation and
/// connectivity analysis).
void CollectVarNamesDeep(const Formula& f, NameSet* out) {
  auto from_term = [&](const TermPtr& t) {
    if (!t) return;
    std::vector<const Term*> refs;
    CollectRefs(*t, &refs);
    for (const Term* r : refs) out->insert(r->var);
  };
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) CollectVarNamesDeep(*c, out);
      return;
    case FormulaKind::kNot:
      if (f.child) CollectVarNamesDeep(*f.child, out);
      return;
    case FormulaKind::kExists:
      if (!f.quantifier) return;
      for (const Binding& b : f.quantifier->bindings) {
        if (b.collection) CollectVarNamesDeepColl(*b.collection, out);
      }
      if (f.quantifier->grouping.has_value()) {
        for (const TermPtr& k : f.quantifier->grouping->keys) from_term(k);
      }
      if (f.quantifier->body) CollectVarNamesDeep(*f.quantifier->body, out);
      return;
    case FormulaKind::kPredicate:
      from_term(f.lhs);
      from_term(f.rhs);
      return;
    case FormulaKind::kNullTest:
      from_term(f.null_arg);
      return;
  }
}

void CollectVarNamesDeepColl(const Collection& c, NameSet* out) {
  if (c.body) CollectVarNamesDeep(*c.body, out);
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

/// Visits every collection of the program: definitions, the main query, and
/// collections nested inside bindings, in source order.
void ForEachCollection(
    const Program& p,
    const std::function<void(const Collection&)>& fn) {
  std::function<void(const Collection&)> visit_coll;
  std::function<void(const Formula&)> visit_formula = [&](const Formula& f) {
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) visit_formula(*c);
        return;
      case FormulaKind::kNot:
        if (f.child) visit_formula(*f.child);
        return;
      case FormulaKind::kExists:
        if (!f.quantifier) return;
        for (const Binding& b : f.quantifier->bindings) {
          if (b.collection) visit_coll(*b.collection);
        }
        if (f.quantifier->body) visit_formula(*f.quantifier->body);
        return;
      default:
        return;
    }
  };
  visit_coll = [&](const Collection& c) {
    fn(c);
    if (c.body) visit_formula(*c.body);
  };
  for (const Definition& d : p.definitions) {
    if (d.collection) visit_coll(*d.collection);
  }
  if (p.main.collection) visit_coll(*p.main.collection);
  if (p.main.sentence) visit_formula(*p.main.sentence);
}

struct ScopeVisit {
  const Collection* coll = nullptr;  // enclosing collection; null in sentences
  const Formula* exists = nullptr;   // the kExists node
  const Quantifier* q = nullptr;
  /// Number of kNot nodes crossed between the collection root (or sentence
  /// root) and this scope. Odd parity flips truth values.
  int negations = 0;
};

/// Visits every quantifier scope under `root` (not descending into nested
/// collections — they are separate collections with their own roots).
void ForEachScopeUnder(const Collection* coll, const Formula& root,
                       const std::function<void(const ScopeVisit&)>& fn) {
  std::function<void(const Formula&, int)> walk = [&](const Formula& f,
                                                      int negations) {
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) walk(*c, negations);
        return;
      case FormulaKind::kNot:
        if (f.child) walk(*f.child, negations + 1);
        return;
      case FormulaKind::kExists: {
        if (!f.quantifier) return;
        ScopeVisit v;
        v.coll = coll;
        v.exists = &f;
        v.q = f.quantifier.get();
        v.negations = negations;
        fn(v);
        if (f.quantifier->body) walk(*f.quantifier->body, negations);
        return;
      }
      default:
        return;
    }
  };
  walk(root, 0);
}

/// Visits every quantifier scope of every collection (and the sentence).
void ForEachScope(const Program& p,
                  const std::function<void(const ScopeVisit&)>& fn) {
  ForEachCollection(p, [&](const Collection& c) {
    if (c.body) ForEachScopeUnder(&c, *c.body, fn);
  });
  if (p.main.sentence) ForEachScopeUnder(nullptr, *p.main.sentence, fn);
}

/// Predicates (kPredicate / kNullTest) syntactically inside `f`, not
/// descending into nested quantifier scopes.
void CollectScopePredicates(const Formula& f,
                            std::vector<const Formula*>* out) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) CollectScopePredicates(*c, out);
      return;
    case FormulaKind::kNot:
      if (f.child) CollectScopePredicates(*f.child, out);
      return;
    case FormulaKind::kPredicate:
    case FormulaKind::kNullTest:
      out->push_back(&f);
      return;
    case FormulaKind::kExists:
      return;
  }
}

/// Flattens the top-level conjunction of `f` (no OR/NOT/EXISTS descent):
/// the conjuncts that hold on every path through the formula.
void TopLevelConjuncts(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind == FormulaKind::kAnd) {
    for (const FormulaPtr& c : f.children) TopLevelConjuncts(*c, out);
  } else {
    out->push_back(&f);
  }
}

NameSet ScopeVarSet(const Quantifier& q) {
  NameSet vars;
  for (const Binding& b : q.bindings) vars.insert(b.var);
  return vars;
}

/// Head relation names of every collection enclosing nodes of the program —
/// approximated as all collection heads (head names are near-unique in
/// practice and this is only used to exclude refs from correlation checks).
NameSet AllHeadNames(const Program& p) {
  NameSet heads;
  ForEachCollection(p, [&](const Collection& c) {
    heads.insert(c.head.relation);
  });
  return heads;
}

PredClass ClassOf(const LintContext& ctx, const Formula& f) {
  auto it = ctx.analysis.predicates.find(&f);
  return it == ctx.analysis.predicates.end() ? PredClass::kFilter : it->second;
}

RangeClass RangeOf(const LintContext& ctx, const Binding& b) {
  auto it = ctx.analysis.bindings.find(&b);
  return it == ctx.analysis.bindings.end() ? RangeClass::kUnknown
                                           : it->second.range_class;
}

bool IsGammaEmpty(const Quantifier& q) {
  return q.grouping.has_value() && q.grouping->keys.empty();
}

/// True when `q`'s body references a variable bound outside the scope
/// (ignoring collection-head names): the scope is correlated.
bool ScopeIsCorrelated(const Program& p, const Quantifier& q) {
  if (!q.body) return false;
  NameSet used;
  CollectVarNamesDeep(*q.body, &used);
  NameSet own = ScopeVarSet(q);
  // Nested collections introduce their own bindings; gather every binding
  // var under this scope so only genuinely outer names remain.
  std::function<void(const Formula&)> add_inner = [&](const Formula& f) {
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) add_inner(*c);
        return;
      case FormulaKind::kNot:
        if (f.child) add_inner(*f.child);
        return;
      case FormulaKind::kExists:
        if (!f.quantifier) return;
        for (const Binding& b : f.quantifier->bindings) {
          own.insert(b.var);
          if (b.collection && b.collection->body) add_inner(*b.collection->body);
        }
        if (f.quantifier->body) add_inner(*f.quantifier->body);
        return;
      default:
        return;
    }
  };
  add_inner(*q.body);
  NameSet heads = AllHeadNames(p);
  for (const std::string& v : used) {
    if (own.count(v) == 0 && heads.count(v) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Duplicate-sensitivity of aggregate inputs (W103 support)
// ---------------------------------------------------------------------------

bool CollectionMultiplicityVaries(const LintContext& ctx, const Collection& c,
                                  std::set<const Collection*>* visiting);

/// True when duplicating input rows can change the multiset of valuations a
/// scope's bindings enumerate (and therefore what a duplicate-sensitive
/// aggregate over the scope observes).
bool BindingDupSensitive(const LintContext& ctx, const Binding& b,
                         std::set<const Collection*>* visiting) {
  switch (RangeOf(ctx, b)) {
    case RangeClass::kBase:
    case RangeClass::kSelf:
      return true;
    case RangeClass::kNestedCollection:
      return b.collection != nullptr &&
             CollectionMultiplicityVaries(ctx, *b.collection, visiting);
    case RangeClass::kIntensional:
    case RangeClass::kAbstract: {
      const Definition* def = ctx.program.FindDefinition(b.relation);
      return def != nullptr && def->collection != nullptr &&
             CollectionMultiplicityVaries(ctx, *def->collection, visiting);
    }
    case RangeClass::kExternal:
    case RangeClass::kUnknown:
      return false;
  }
  return false;
}

/// True when `c` can emit output multiplicities that change under input-row
/// duplication: its generating spine is not collapsed by grouping and at
/// least one spine binding ranges over duplicate-carrying input.
bool CollectionMultiplicityVaries(const LintContext& ctx, const Collection& c,
                                  std::set<const Collection*>* visiting) {
  if (!visiting->insert(&c).second) return false;  // recursion guard
  bool varies = false;
  std::function<void(const Formula&)> spine = [&](const Formula& f) {
    switch (f.kind) {
      case FormulaKind::kOr:
        for (const FormulaPtr& child : f.children) spine(*child);
        return;
      case FormulaKind::kExists: {
        if (!f.quantifier) return;
        if (f.quantifier->grouping.has_value()) return;  // one row per group
        for (const Binding& b : f.quantifier->bindings) {
          if (BindingDupSensitive(ctx, b, visiting)) varies = true;
        }
        return;
      }
      default:
        return;
    }
  };
  if (c.body) spine(*c.body);
  visiting->erase(&c);
  return varies;
}

bool ScopeDupSensitive(const LintContext& ctx, const Quantifier& q) {
  std::set<const Collection*> visiting;
  for (const Binding& b : q.bindings) {
    if (BindingDupSensitive(ctx, b, &visiting)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Aggregate-threshold probing (W103 / W110 support)
// ---------------------------------------------------------------------------

/// If `f` compares a count-family aggregate against an integer literal,
/// returns the truth values of the comparison for counts `lo..hi`
/// (inclusive); nullopt when the predicate has a different shape.
std::optional<std::vector<bool>> ProbeCountThreshold(const Formula& f,
                                                     int64_t lo, int64_t hi) {
  if (f.kind != FormulaKind::kPredicate || !f.lhs || !f.rhs) {
    return std::nullopt;
  }
  const Term* agg = nullptr;
  const Term* other = nullptr;
  bool agg_on_left = true;
  if (f.lhs->kind == TermKind::kAggregate) {
    agg = f.lhs.get();
    other = f.rhs.get();
  } else if (f.rhs->kind == TermKind::kAggregate) {
    agg = f.rhs.get();
    other = f.lhs.get();
    agg_on_left = false;
  }
  if (agg == nullptr ||
      (agg->agg_func != AggFunc::kCount &&
       agg->agg_func != AggFunc::kCountStar &&
       agg->agg_func != AggFunc::kCountDistinct)) {
    return std::nullopt;
  }
  if (other->kind != TermKind::kLiteral ||
      other->literal.kind() != data::ValueKind::kInt) {
    return std::nullopt;
  }
  const int64_t k = other->literal.as_int();
  std::vector<bool> truth;
  for (int64_t n = lo; n <= hi; ++n) {
    const int64_t a = agg_on_left ? n : k;
    const int64_t b = agg_on_left ? k : n;
    bool v = false;
    switch (f.cmp_op) {
      case data::CmpOp::kEq: v = a == b; break;
      case data::CmpOp::kNe: v = a != b; break;
      case data::CmpOp::kLt: v = a < b; break;
      case data::CmpOp::kLe: v = a <= b; break;
      case data::CmpOp::kGt: v = a > b; break;
      case data::CmpOp::kGe: v = a >= b; break;
    }
    truth.push_back(v);
  }
  return truth;
}

bool AllEqual(const std::vector<bool>& v) {
  for (bool b : v) {
    if (b != v.front()) return false;
  }
  return true;
}

/// Truth of the predicate `f` — which must compare an aggregate against an
/// integer literal — when the aggregate evaluates to `v`. nullopt for any
/// other predicate shape.
std::optional<bool> TruthWithAggValue(const Formula& f, int64_t v) {
  if (f.kind != FormulaKind::kPredicate || !f.lhs || !f.rhs) {
    return std::nullopt;
  }
  const bool agg_on_left = f.lhs->kind == TermKind::kAggregate;
  const Term* other = agg_on_left ? f.rhs.get() : f.lhs.get();
  if (!agg_on_left && f.rhs->kind != TermKind::kAggregate) return std::nullopt;
  if (other->kind != TermKind::kLiteral ||
      other->literal.kind() != data::ValueKind::kInt) {
    return std::nullopt;
  }
  const int64_t k = other->literal.as_int();
  const int64_t a = agg_on_left ? v : k;
  const int64_t b = agg_on_left ? k : v;
  switch (f.cmp_op) {
    case data::CmpOp::kEq: return a == b;
    case data::CmpOp::kNe: return a != b;
    case data::CmpOp::kLt: return a < b;
    case data::CmpOp::kLe: return a <= b;
    case data::CmpOp::kGt: return a > b;
    case data::CmpOp::kGe: return a >= b;
  }
  return std::nullopt;
}

/// Predicates inside `f` (not descending into nested scopes) together with
/// the number of NOT nodes crossed on the way — the parity that decides
/// whether an unknown-vs-definite truth value flips tuple inclusion.
void CollectScopePredicatesWithParity(
    const Formula& f, int negations,
    std::vector<std::pair<const Formula*, int>>* out) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        CollectScopePredicatesWithParity(*c, negations, out);
      }
      return;
    case FormulaKind::kNot:
      if (f.child) CollectScopePredicatesWithParity(*f.child, negations + 1, out);
      return;
    case FormulaKind::kPredicate:
    case FormulaKind::kNullTest:
      out->push_back({&f, negations});
      return;
    case FormulaKind::kExists:
      return;
  }
}

// ---------------------------------------------------------------------------
// Null-observability machinery (W102 / W104 support)
// ---------------------------------------------------------------------------

/// Every attribute-reference term under `f`, descending into nested
/// quantifier scopes, nested collections, and grouping keys.
void CollectRefsDeep(const Formula& f, std::vector<const Term*>* out) {
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) CollectRefsDeep(*c, out);
      return;
    case FormulaKind::kNot:
      if (f.child) CollectRefsDeep(*f.child, out);
      return;
    case FormulaKind::kExists:
      if (!f.quantifier) return;
      for (const Binding& b : f.quantifier->bindings) {
        if (b.collection && b.collection->body) {
          CollectRefsDeep(*b.collection->body, out);
        }
      }
      if (f.quantifier->grouping.has_value()) {
        for (const TermPtr& k : f.quantifier->grouping->keys) {
          if (k) CollectRefs(*k, out);
        }
      }
      if (f.quantifier->body) CollectRefsDeep(*f.quantifier->body, out);
      return;
    case FormulaKind::kPredicate:
      if (f.lhs) CollectRefs(*f.lhs, out);
      if (f.rhs) CollectRefs(*f.rhs, out);
      return;
    case FormulaKind::kNullTest:
      if (f.null_arg) CollectRefs(*f.null_arg, out);
      return;
  }
}

using HeadAttrSet = std::set<std::pair<const Collection*, std::string>>;

/// Head attributes of nested collections that an always-holding positive
/// comparison at the (single) use site forces non-null: a NULL value in
/// such an attribute removes the row under both logics before it can be
/// observed, so NULLs flowing into the attribute from inside the
/// collection cannot surface a convention divergence. (A nested collection
/// is owned by exactly one binding, so one use site is all of them.)
HeadAttrSet KilledHeads(const LintContext& ctx) {
  HeadAttrSet killed;
  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    if (!v.q->body) return;
    std::vector<const Formula*> conjuncts;
    TopLevelConjuncts(*v.q->body, &conjuncts);
    for (const Formula* cj : conjuncts) {
      if (cj->kind != FormulaKind::kPredicate) continue;
      if (ClassOf(ctx, *cj) != PredClass::kFilter) continue;
      std::vector<const Term*> refs;
      if (cj->lhs) CollectRefs(*cj->lhs, &refs);
      if (cj->rhs) CollectRefs(*cj->rhs, &refs);
      for (const Term* r : refs) {
        auto it = ctx.analysis.attrs.find(r);
        if (it == ctx.analysis.attrs.end() ||
            it->second.target != AttrTarget::kBinding ||
            it->second.binding == nullptr) {
          continue;
        }
        const Binding* b = it->second.binding;
        if (b->range_kind != RangeKind::kCollection || !b->collection) {
          continue;
        }
        killed.insert({b->collection.get(), ToLower(r->attr)});
      }
    }
  });
  return killed;
}

/// True when the γ∅ scope visited by `v` provably aggregates a non-empty
/// group whenever the outer row's inclusion is observable, so empty-group
/// initialization (NULL vs. neutral) can never matter.
///
/// Shape: a single binding `inner ∈ Rel` whose only non-aggregate
/// conditions are self-join correlations `inner.X = outer.X` against one
/// outer binding over the *same* relation and attribute — the outer row
/// itself then witnesses the group whenever outer.X is non-null. The NULL
/// case (empty group: NULL = NULL is unknown) is discharged separately:
/// every other use of outer.X must either kill the row outright (a
/// positive comparison at even parity excludes a NULL under both
/// conventions) or feed a head attribute that a positive comparison kills
/// at the collection's use site — then the row the neutral convention
/// would admit is indistinguishable downstream.
bool SelfJoinGuaranteesGroup(const LintContext& ctx, const ScopeVisit& v,
                             const HeadAttrSet& killed_heads) {
  const Quantifier& q = *v.q;
  if (q.bindings.size() != 1 || !q.body) return false;
  const Binding& inner = q.bindings.front();
  if (inner.range_kind != RangeKind::kNamed) return false;

  std::vector<const Formula*> conjuncts;
  TopLevelConjuncts(*q.body, &conjuncts);
  const Binding* outer_binding = nullptr;
  std::vector<const Term*> outer_refs;
  for (const Formula* cj : conjuncts) {
    if (cj->kind == FormulaKind::kPredicate) {
      std::vector<const Term*> aggs;
      CollectAggsInPredicate(*cj, &aggs);
      if (!aggs.empty()) continue;  // the aggregate condition under scrutiny
    }
    if (cj->kind != FormulaKind::kPredicate ||
        cj->cmp_op != data::CmpOp::kEq || !cj->lhs || !cj->rhs ||
        cj->lhs->kind != TermKind::kAttrRef ||
        cj->rhs->kind != TermKind::kAttrRef) {
      return false;  // any other condition could empty the group
    }
    auto la = ctx.analysis.attrs.find(cj->lhs.get());
    auto ra = ctx.analysis.attrs.find(cj->rhs.get());
    if (la == ctx.analysis.attrs.end() || ra == ctx.analysis.attrs.end() ||
        la->second.target != AttrTarget::kBinding ||
        ra->second.target != AttrTarget::kBinding) {
      return false;
    }
    const Term* in_ref = nullptr;
    const Term* out_ref = nullptr;
    const Binding* out_b = nullptr;
    if (la->second.binding == &inner && ra->second.binding != &inner) {
      in_ref = cj->lhs.get();
      out_ref = cj->rhs.get();
      out_b = ra->second.binding;
    } else if (ra->second.binding == &inner && la->second.binding != &inner) {
      in_ref = cj->rhs.get();
      out_ref = cj->lhs.get();
      out_b = la->second.binding;
    } else {
      return false;
    }
    if (out_b == nullptr || out_b->range_kind != RangeKind::kNamed ||
        ToLower(out_b->relation) != ToLower(inner.relation) ||
        ToLower(in_ref->attr) != ToLower(out_ref->attr)) {
      return false;
    }
    // All correlations must target the same outer row for it to witness
    // every equation simultaneously.
    if (outer_binding != nullptr && outer_binding != out_b) return false;
    outer_binding = out_b;
    outer_refs.push_back(out_ref);
  }
  if (outer_binding == nullptr) return false;

  // NULL-escape check. Terms whose NULL cannot be observed:
  //   * refs inside this scope's own subtree (they only decide membership
  //     in the group whose emptiness is exactly the case being discharged),
  //   * refs in a positive even-parity filter conjunct (a NULL operand
  //     excludes the row under both conventions),
  //   * refs feeding an assignment to a killed head attribute (arithmetic
  //     is strict, so the NULL reaches the head and dies at the use site).
  std::set<const Term*> safe;
  {
    std::vector<const Term*> subtree;
    if (v.exists != nullptr) CollectRefsDeep(*v.exists, &subtree);
    safe.insert(subtree.begin(), subtree.end());
  }
  ForEachScope(ctx.program, [&](const ScopeVisit& sv) {
    if (!sv.q->body || sv.negations % 2 != 0) return;
    std::vector<const Formula*> cjs;
    TopLevelConjuncts(*sv.q->body, &cjs);
    for (const Formula* cj : cjs) {
      if (cj->kind != FormulaKind::kPredicate) continue;
      const PredClass cls = ClassOf(ctx, *cj);
      if (cls == PredClass::kFilter) {
        std::vector<const Term*> refs;
        if (cj->lhs) CollectRefs(*cj->lhs, &refs);
        if (cj->rhs) CollectRefs(*cj->rhs, &refs);
        safe.insert(refs.begin(), refs.end());
      } else if (cls == PredClass::kAssignment && sv.coll != nullptr) {
        auto head_side = [&](const Term* t) -> const Term* {
          if (t == nullptr || t->kind != TermKind::kAttrRef) return nullptr;
          auto it = ctx.analysis.attrs.find(t);
          if (it == ctx.analysis.attrs.end() ||
              it->second.target != AttrTarget::kHead ||
              it->second.head_of != sv.coll) {
            return nullptr;
          }
          return t;
        };
        const Term* h = head_side(cj->lhs.get());
        const Term* value = h != nullptr ? cj->rhs.get() : cj->lhs.get();
        if (h == nullptr) h = head_side(cj->rhs.get());
        if (h == nullptr || value == nullptr) continue;
        if (killed_heads.find({sv.coll, ToLower(h->attr)}) ==
            killed_heads.end()) {
          continue;
        }
        std::vector<const Term*> refs;
        CollectRefs(*value, &refs);
        safe.insert(refs.begin(), refs.end());
      }
    }
  });
  for (const Term* out_ref : outer_refs) {
    const std::string attr = ToLower(out_ref->attr);
    for (const auto& [term, info] : ctx.analysis.attrs) {
      if (info.target != AttrTarget::kBinding ||
          info.binding != outer_binding || ToLower(term->attr) != attr) {
        continue;
      }
      if (safe.find(term) == safe.end()) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// W101 — count-bug shape (Fig. 21a)
// ---------------------------------------------------------------------------

void PassCountBugShape(const LintContext& ctx, std::vector<Diagnostic>* out) {
  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    if (!IsGammaEmpty(*v.q) || !v.q->body) return;
    if (!ScopeIsCorrelated(ctx.program, *v.q)) return;
    std::vector<const Formula*> preds;
    CollectScopePredicates(*v.q->body, &preds);
    for (const Formula* p : preds) {
      if (ClassOf(ctx, *p) != PredClass::kAggFilter) continue;
      Finding(out, Severity::kWarning, "ARC-W101",
              "aggregate comparison '" + RenderPredicate(*p) +
                  "' inside a correlated gamma() scope (count-bug shape, "
                  "Fig. 21a): correct as written, but decorrelating by "
                  "grouping over the inner key drops empty groups — "
                  "decorrelate with a left-join annotation (Fig. 21c)",
              p);
    }
  });
}

// ---------------------------------------------------------------------------
// W102 — comparison under negation vs. nullable inputs (NOT-IN trap)
// ---------------------------------------------------------------------------

void PassNullNegation(const LintContext& ctx, std::vector<Diagnostic>* out) {
  // Guarded (var, attr) pairs: `x.a is not null` conjuncts seen on the
  // current conjunction path.
  std::vector<std::string> guards;
  auto guard_key = [](const Term& t) {
    return ToLower(t.var) + "." + ToLower(t.attr);
  };

  const HeadAttrSet killed_heads = KilledHeads(ctx);

  // Attrs inside collection `c` whose NULLs only reach the output through a
  // killed head attribute: assignments `c.head.h = term` make every
  // attribute mentioned by `term` null-kill-guarded when `h` is killed
  // (arithmetic is strict, so a NULL operand nulls the whole term). Only
  // single-scope bodies qualify — with disjuncts, another disjunct could
  // assign the head attribute a non-null value for the same base row.
  auto seed_guards = [&](const Collection& c) {
    if (killed_heads.empty()) return;
    if (!c.body || c.body->kind != FormulaKind::kExists ||
        !c.body->quantifier || !c.body->quantifier->body) {
      return;
    }
    std::vector<const Formula*> conjuncts;
    TopLevelConjuncts(*c.body->quantifier->body, &conjuncts);
    auto head_ref = [&](const Term* t) -> const Term* {
      if (t == nullptr || t->kind != TermKind::kAttrRef) return nullptr;
      auto it = ctx.analysis.attrs.find(t);
      if (it == ctx.analysis.attrs.end() ||
          it->second.target != AttrTarget::kHead ||
          it->second.head_of != &c) {
        return nullptr;
      }
      return t;
    };
    for (const Formula* cj : conjuncts) {
      if (cj->kind != FormulaKind::kPredicate) continue;
      if (ClassOf(ctx, *cj) != PredClass::kAssignment) continue;
      const Term* h = head_ref(cj->lhs.get());
      const Term* value = h != nullptr ? cj->rhs.get() : cj->lhs.get();
      if (h == nullptr) h = head_ref(cj->rhs.get());
      if (h == nullptr || value == nullptr) continue;
      if (killed_heads.find({&c, ToLower(h->attr)}) == killed_heads.end()) {
        continue;
      }
      std::vector<const Term*> refs;
      CollectRefs(*value, &refs);
      for (const Term* r : refs) guards.push_back(guard_key(*r));
    }
  };

  // A negated comparison only matters through the rows its truth flips —
  // inside a keyed grouping scope those rows are further masked by the
  // aggregates: the flipped row always carries a NULL in one of the
  // compared attributes, which min/max skip. When every aggregate of the
  // scope draws from a grouping key (constant per group) or from the sole
  // possible NULL channel (skipped), the divergence can only surface as a
  // whole group appearing or vanishing — a shape we accept missing in
  // exchange for warnings that the differential harness can realize.
  auto masked_by_grouping = [&](const Quantifier* scope,
                                const std::vector<std::string>& nullable) {
    if (scope == nullptr || !scope->grouping.has_value() ||
        scope->grouping->keys.empty() || !scope->body) {
      return false;
    }
    std::vector<std::string> keys;
    for (const TermPtr& k : scope->grouping->keys) {
      if (!k || k->kind != TermKind::kAttrRef) return false;
      keys.push_back(guard_key(*k));
    }
    auto is_key = [&](const std::string& g) {
      return std::find(keys.begin(), keys.end(), g) != keys.end();
    };
    // A NULL in a grouping key would spawn a NULL-keyed group — visible.
    for (const std::string& g : nullable) {
      if (is_key(g)) return false;
    }
    std::vector<const Formula*> preds;
    CollectScopePredicates(*scope->body, &preds);
    std::vector<const Term*> aggs;
    for (const Formula* p : preds) CollectAggsInPredicate(*p, &aggs);
    if (aggs.empty()) return false;
    for (const Term* agg : aggs) {
      if (agg->agg_func != AggFunc::kMin && agg->agg_func != AggFunc::kMax) {
        return false;  // count/sum/avg see the flipped row directly
      }
      if (!agg->agg_arg || agg->agg_arg->kind != TermKind::kAttrRef) {
        return false;
      }
      const std::string g = guard_key(*agg->agg_arg);
      if (is_key(g)) continue;
      if (nullable.size() == 1 && g == nullable.front()) continue;
      return false;
    }
    return true;
  };

  std::function<void(const Formula&, int, const Quantifier*)> walk =
      [&](const Formula& f, int negations, const Quantifier* scope) {
    switch (f.kind) {
      case FormulaKind::kAnd: {
        const size_t mark = guards.size();
        for (const FormulaPtr& c : f.children) {
          if (c->kind == FormulaKind::kNullTest && c->null_negated &&
              c->null_arg && c->null_arg->kind == TermKind::kAttrRef) {
            guards.push_back(guard_key(*c->null_arg));
          }
        }
        // A positively-conjoined comparison kills a NULL-carrying row under
        // both logics (unknown and false both exclude), so any attribute it
        // mentions is effectively non-null for every sibling conjunct — a
        // negated comparison over it cannot be the source of a divergence.
        // Only sound at even parity: under an odd NOT, the sibling itself
        // diverges instead of filtering.
        if (negations % 2 == 0) {
          for (const FormulaPtr& c : f.children) {
            if (c->kind != FormulaKind::kPredicate) continue;
            if (ClassOf(ctx, *c) != PredClass::kFilter) continue;
            std::vector<const Term*> refs;
            if (c->lhs) CollectRefs(*c->lhs, &refs);
            if (c->rhs) CollectRefs(*c->rhs, &refs);
            for (const Term* r : refs) guards.push_back(guard_key(*r));
          }
        }
        for (const FormulaPtr& c : f.children) walk(*c, negations, scope);
        guards.resize(mark);
        return;
      }
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) walk(*c, negations, scope);
        return;
      case FormulaKind::kNot:
        if (f.child) walk(*f.child, negations + 1, scope);
        return;
      case FormulaKind::kExists:
        // EXISTS is never unknown (SQL semantics): an unknown body excludes
        // the tuple under both logics, so crossing a quantifier resets the
        // divergence-relevant negation parity.
        if (f.quantifier && f.quantifier->body) {
          walk(*f.quantifier->body, 0, f.quantifier.get());
        }
        return;
      case FormulaKind::kPredicate: {
        if (negations % 2 == 0) return;  // even parity cannot diverge
        if (ClassOf(ctx, f) != PredClass::kFilter) return;
        std::vector<const Term*> refs;
        if (f.lhs) CollectRefs(*f.lhs, &refs);
        if (f.rhs) CollectRefs(*f.rhs, &refs);
        std::vector<std::string> nullable;
        for (const Term* r : refs) {
          const std::string g = guard_key(*r);
          if (std::find(guards.begin(), guards.end(), g) != guards.end()) {
            continue;
          }
          auto it = ctx.analysis.attrs.find(r);
          if (it == ctx.analysis.attrs.end() ||
              it->second.target != AttrTarget::kBinding ||
              it->second.binding == nullptr) {
            continue;
          }
          if (RangeOf(ctx, *it->second.binding) == RangeClass::kBase &&
              std::find(nullable.begin(), nullable.end(), g) ==
                  nullable.end()) {
            nullable.push_back(g);
          }
        }
        if (nullable.empty()) return;
        if (masked_by_grouping(scope, nullable)) return;
        Finding(out, Severity::kWarning, "ARC-W102",
                "comparison '" + RenderPredicate(f) +
                    "' under negation: a NULL operand keeps the enclosing "
                    "NOT satisfied under two-valued logic but makes it "
                    "unknown under three-valued logic (the NOT-IN trap, "
                    "§2.10) — guard the operands with IS NOT NULL to pin "
                    "the meaning",
                &f);
        return;
      }
      case FormulaKind::kNullTest:
        return;  // IS [NOT] NULL has the same value under both logics
    }
  };

  ForEachCollection(ctx.program, [&](const Collection& c) {
    guards.clear();
    seed_guards(c);
    if (c.body) walk(*c.body, 0, nullptr);
  });
  guards.clear();
  if (ctx.program.main.sentence) {
    walk(*ctx.program.main.sentence, 0, nullptr);
  }
}

// ---------------------------------------------------------------------------
// W103 — duplicate-sensitive aggregates (set vs. bag)
// ---------------------------------------------------------------------------

void PassDuplicateSensitiveAggregate(const LintContext& ctx,
                                     std::vector<Diagnostic>* out) {
  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    if (!v.q->grouping.has_value() || !v.q->body) return;
    if (!ScopeDupSensitive(ctx, *v.q)) return;
    std::vector<const Formula*> preds;
    CollectScopePredicates(*v.q->body, &preds);
    for (const Formula* p : preds) {
      std::vector<const Term*> aggs;
      CollectAggsInPredicate(*p, &aggs);
      if (aggs.empty()) continue;
      // Count-vs-threshold filters that only test emptiness are
      // duplicate-insensitive (count >= 1 ⇔ exists).
      auto probe = ProbeCountThreshold(*p, 1, 17);
      if (probe.has_value() && AllEqual(*probe)) continue;
      for (const Term* agg : aggs) {
        switch (agg->agg_func) {
          case AggFunc::kCount:
          case AggFunc::kCountStar:
          case AggFunc::kSum:
          case AggFunc::kAvg:
            break;
          default:
            continue;  // min/max and *distinct ignore multiplicity
        }
        Finding(out, Severity::kWarning, "ARC-W103",
                std::string(AggFuncName(agg->agg_func)) +
                    " in '" + RenderPredicate(*p) +
                    "' observes input multiplicities: the result diverges "
                    "between set and bag interpretation (§2.7) when its "
                    "scope enumerates duplicate rows — use " +
                    (agg->agg_func == AggFunc::kCount ||
                             agg->agg_func == AggFunc::kCountStar
                         ? "countdistinct"
                         : "a *distinct aggregate") +
                    " if duplicates must not count",
                agg);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// W104 — empty-group aggregate initialization (Eq. 15)
// ---------------------------------------------------------------------------

void PassEmptyAggregateSensitivity(const LintContext& ctx,
                                   std::vector<Diagnostic>* out) {
  const HeadAttrSet killed_heads = KilledHeads(ctx);
  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    if (!IsGammaEmpty(*v.q) || !v.q->body) return;
    if (SelfJoinGuaranteesGroup(ctx, v, killed_heads)) return;
    std::vector<std::pair<const Formula*, int>> preds;
    CollectScopePredicatesWithParity(*v.q->body, 0, &preds);
    for (const auto& [p, parity] : preds) {
      std::vector<const Term*> aggs;
      CollectAggsInPredicate(*p, &aggs);
      for (const Term* agg : aggs) {
        switch (agg->agg_func) {
          case AggFunc::kSum:
          case AggFunc::kAvg:
          case AggFunc::kSumDistinct:
          case AggFunc::kAvgDistinct:
            break;
          default:
            continue;  // count → 0 either way; min/max stay null
        }
        // Aggregate-vs-literal *filters* only diverge when the neutral
        // element (0) makes the comparison definite-included where NULL's
        // unknown excluded — i.e. truth(0 ⊗ k) must be true at even NOT
        // parity (false at odd). A filter like sum(…) >= 3 excludes the
        // empty group under both conventions: no divergence.
        auto truth_at_zero = TruthWithAggValue(*p, 0);
        if (truth_at_zero.has_value() &&
            *truth_at_zero == (parity % 2 == 1)) {
          continue;
        }
        Finding(out, Severity::kWarning, "ARC-W104",
                std::string(AggFuncName(agg->agg_func)) + " in '" +
                    RenderPredicate(*p) +
                    "' sits in a gamma() scope, which produces one group "
                    "even over empty input: the aggregate is NULL under "
                    "SQL conventions but the neutral element (0) under "
                    "Soufflé conventions (Eq. 15) — results diverge when "
                    "the input can be empty",
                agg);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// W105 — non-monotone self-reference → naive fixpoint (note)
// ---------------------------------------------------------------------------

void PassNonMonotoneRecursion(const LintContext& ctx,
                              std::vector<Diagnostic>* out) {
  ForEachCollection(ctx.program, [&](const Collection& c) {
    auto it = ctx.analysis.collections.find(&c);
    if (it == ctx.analysis.collections.end() || !it->second.is_recursive) {
      return;
    }
    // Mirror the evaluator's monotonicity test: a self-reference under
    // negation or inside a grouped scope defeats delta-driven evaluation.
    bool monotone = true;
    const Binding* bad_site = nullptr;
    std::function<void(const Formula&, bool, bool)> scan =
        [&](const Formula& f, bool negated, bool grouped) {
          switch (f.kind) {
            case FormulaKind::kAnd:
            case FormulaKind::kOr:
              for (const FormulaPtr& ch : f.children) {
                scan(*ch, negated, grouped);
              }
              return;
            case FormulaKind::kNot:
              if (f.child) scan(*f.child, true, grouped);
              return;
            case FormulaKind::kExists: {
              if (!f.quantifier) return;
              const bool in_group =
                  grouped || f.quantifier->grouping.has_value();
              for (const Binding& b : f.quantifier->bindings) {
                if (b.range_kind == RangeKind::kNamed &&
                    EqualsIgnoreCase(b.relation, c.head.relation) &&
                    (negated || in_group)) {
                  monotone = false;
                  if (bad_site == nullptr) bad_site = &b;
                }
                if (b.collection && b.collection->body &&
                    !EqualsIgnoreCase(b.collection->head.relation,
                                      c.head.relation)) {
                  scan(*b.collection->body, negated, in_group);
                }
              }
              if (f.quantifier->body) {
                scan(*f.quantifier->body, negated, in_group);
              }
              return;
            }
            default:
              return;
          }
        };
    if (c.body) scan(*c.body, false, false);
    if (!monotone) {
      Finding(out, Severity::kNote, "ARC-W105",
              "recursive collection '" + c.head.relation +
                  "' has a non-monotone self-reference (under negation or "
                  "aggregation): delta-driven (semi-naive) fixpoint "
                  "evaluation is unsound here and the evaluator falls back "
                  "to the naive oracle (§2.9)",
              bad_site != nullptr ? static_cast<const void*>(bad_site)
                                  : static_cast<const void*>(&c),
              bad_site != nullptr ? bad_site->line : c.line);
    }
  });
}

// ---------------------------------------------------------------------------
// W106 — unused bindings
// ---------------------------------------------------------------------------

void PassUnusedBinding(const LintContext& ctx, std::vector<Diagnostic>* out) {
  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    if (!v.q->body) return;
    // count(*) makes every binding's cardinality observable.
    std::vector<const Formula*> preds;
    CollectScopePredicates(*v.q->body, &preds);
    for (const Formula* p : preds) {
      std::vector<const Term*> aggs;
      CollectAggsInPredicate(*p, &aggs);
      for (const Term* agg : aggs) {
        if (agg->agg_func == AggFunc::kCountStar) return;
      }
    }
    NameSet used;
    CollectVarNamesDeep(*v.q->body, &used);
    if (v.q->grouping.has_value()) {
      for (const TermPtr& k : v.q->grouping->keys) {
        std::vector<const Term*> refs;
        CollectRefs(*k, &refs);
        for (const Term* r : refs) used.insert(r->var);
      }
    }
    if (v.q->join_tree) {
      std::vector<std::string> jvars;
      v.q->join_tree->CollectVars(&jvars);
      for (std::string& j : jvars) used.insert(std::move(j));
    }
    // Later sibling bindings' nested collections may reference earlier
    // bindings laterally; CollectVarNamesDeep over the body does not see
    // them, so add them here.
    for (const Binding& b : v.q->bindings) {
      if (b.collection) CollectVarNamesDeepColl(*b.collection, &used);
    }
    for (const Binding& b : v.q->bindings) {
      if (used.count(b.var) > 0) continue;
      Finding(out, Severity::kWarning, "ARC-W106",
              "binding '" + b.var + "'" +
                  (b.range_kind == RangeKind::kNamed
                       ? " over '" + b.relation + "'"
                       : "") +
                  " is never referenced: it acts as a pure existence / "
                  "multiplicity factor (under bag interpretation it still "
                  "multiplies row counts)",
              &b);
    }
  });
}

// ---------------------------------------------------------------------------
// W107 — disconnected join graph (cartesian product)
// ---------------------------------------------------------------------------

void PassCartesianJoin(const LintContext& ctx, std::vector<Diagnostic>* out) {
  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    if (v.q->bindings.size() < 2 || v.q->join_tree != nullptr || !v.q->body) {
      return;
    }
    NameSet scope_vars = ScopeVarSet(*v.q);
    NameSet heads = AllHeadNames(ctx.program);
    // Union-find over lowercased binding vars.
    std::unordered_map<std::string, std::string> parent;
    std::function<std::string(const std::string&)> find =
        [&](const std::string& x) -> std::string {
      auto it = parent.find(x);
      if (it == parent.end() || it->second == x) return x;
      return it->second = find(it->second);
    };
    auto unite = [&](const std::string& a, const std::string& b) {
      parent[find(a)] = find(b);
    };
    for (const Binding& b : v.q->bindings) parent[ToLower(b.var)] = ToLower(b.var);

    // A conjunct (or any non-conjunctive unit) referencing several scope
    // vars connects them; shared correlation anchors (two bindings tied to
    // the same outer variable) connect too.
    std::unordered_map<std::string, std::string> outer_anchor;
    auto connect_unit = [&](const Formula& unit) {
      NameSet used;
      CollectVarNamesDeep(unit, &used);
      std::vector<std::string> in_scope;
      std::vector<std::string> outer;
      for (const std::string& u : used) {
        if (scope_vars.count(u) > 0) {
          in_scope.push_back(ToLower(u));
        } else if (heads.count(u) == 0) {
          outer.push_back(ToLower(u));
        }
      }
      for (size_t i = 1; i < in_scope.size(); ++i) {
        unite(in_scope[0], in_scope[i]);
      }
      if (in_scope.size() == 1) {
        for (const std::string& o : outer) {
          auto [it, inserted] = outer_anchor.emplace(o, in_scope[0]);
          if (!inserted) unite(it->second, in_scope[0]);
        }
      }
    };
    std::function<void(const Formula&)> units = [&](const Formula& f) {
      if (f.kind == FormulaKind::kAnd) {
        for (const FormulaPtr& c : f.children) units(*c);
        return;
      }
      connect_unit(f);
    };
    units(*v.q->body);
    // Lateral correlation: a nested collection referencing a sibling.
    for (const Binding& b : v.q->bindings) {
      if (!b.collection) continue;
      NameSet used;
      CollectVarNamesDeepColl(*b.collection, &used);
      for (const std::string& u : used) {
        if (scope_vars.count(u) > 0 && !EqualsIgnoreCase(u, b.var)) {
          unite(ToLower(b.var), ToLower(u));
        }
      }
    }
    NameSet roots;
    for (const Binding& b : v.q->bindings) roots.insert(find(ToLower(b.var)));
    if (roots.size() < 2) return;
    std::vector<std::string> names;
    for (const Binding& b : v.q->bindings) names.push_back(b.var);
    Finding(out, Severity::kWarning, "ARC-W107",
            "bindings " +
                JoinMapped(names, ", ",
                           [](const std::string& n) { return "'" + n + "'"; }) +
                " split into " + std::to_string(roots.size()) +
                " unconnected groups: the scope enumerates their cartesian "
                "product — add join predicates or a join annotation if "
                "intended",
            &v.q->bindings.front());
  });
}

// ---------------------------------------------------------------------------
// W108 — unknown relation typo suggestions
// ---------------------------------------------------------------------------

int EditDistance(const std::string& a, const std::string& b) {
  const std::string x = ToLower(a);
  const std::string y = ToLower(b);
  std::vector<int> prev(y.size() + 1);
  std::vector<int> cur(y.size() + 1);
  for (size_t j = 0; j <= y.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= x.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= y.size(); ++j) {
      const int sub = prev[j - 1] + (x[i - 1] == y[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[y.size()];
}

void PassUnknownRelationSuggestion(const LintContext& ctx,
                                   std::vector<Diagnostic>* out) {
  std::vector<std::string> candidates;
  if (ctx.options.database != nullptr) {
    for (const std::string& n : ctx.options.database->Names()) {
      candidates.push_back(n);
    }
  }
  for (const Definition& d : ctx.program.definitions) {
    if (d.collection) candidates.push_back(d.collection->head.relation);
  }
  if (ctx.program.main.collection) {
    candidates.push_back(ctx.program.main.collection->head.relation);
  }
  for (const std::string& n : ctx.externals.Names()) candidates.push_back(n);
  if (candidates.empty()) return;

  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    for (const Binding& b : v.q->bindings) {
      if (b.range_kind != RangeKind::kNamed) continue;
      if (RangeOf(ctx, b) != RangeClass::kUnknown) continue;
      const std::string* best = nullptr;
      int best_d = 3;  // suggest within edit distance 2
      for (const std::string& cand : candidates) {
        if (EqualsIgnoreCase(cand, b.relation)) continue;
        const int d = EditDistance(cand, b.relation);
        if (d < best_d &&
            d < static_cast<int>(std::max(cand.size(), b.relation.size()))) {
          best_d = d;
          best = &cand;
        }
      }
      if (best == nullptr) continue;
      Finding(out, Severity::kNote, "ARC-W108",
              "unknown relation '" + b.relation + "'; did you mean '" +
                  *best + "'?",
              &b);
    }
  });
}

// ---------------------------------------------------------------------------
// W109 — count-bug decorrelation (Fig. 21b)
// ---------------------------------------------------------------------------

bool HasOuterJoinAnnotation(const JoinNode& n) {
  if (n.kind == JoinKind::kLeft || n.kind == JoinKind::kFull) return true;
  for (const JoinNodePtr& c : n.children) {
    if (HasOuterJoinAnnotation(*c)) return true;
  }
  return false;
}

/// Head attributes of `c` assigned directly from one of its grouping keys
/// (the group identity carried into the output).
NameSet GroupKeyOutputs(const Collection& c) {
  NameSet outs;
  if (!c.body || c.body->kind != FormulaKind::kExists ||
      !c.body->quantifier || !c.body->quantifier->grouping.has_value()) {
    return outs;
  }
  const Quantifier& q = *c.body->quantifier;
  auto is_key = [&](const Term& t) {
    for (const TermPtr& k : q.grouping->keys) {
      if (k->kind == TermKind::kAttrRef &&
          EqualsIgnoreCase(k->var, t.var) &&
          EqualsIgnoreCase(k->attr, t.attr)) {
        return true;
      }
    }
    return false;
  };
  std::vector<const Formula*> preds;
  if (q.body) CollectScopePredicates(*q.body, &preds);
  for (const Formula* p : preds) {
    if (p->kind != FormulaKind::kPredicate ||
        p->cmp_op != data::CmpOp::kEq || !p->lhs || !p->rhs) {
      continue;
    }
    for (bool head_left : {true, false}) {
      const Term& h = head_left ? *p->lhs : *p->rhs;
      const Term& val = head_left ? *p->rhs : *p->lhs;
      if (h.kind == TermKind::kAttrRef &&
          EqualsIgnoreCase(h.var, c.head.relation) &&
          val.kind == TermKind::kAttrRef && is_key(val)) {
        outs.insert(h.attr);
      }
    }
  }
  return outs;
}

bool CollectionHasAggregate(const Collection& c) {
  bool found = false;
  std::function<void(const Formula&)> walk = [&](const Formula& f) {
    if (found) return;
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& ch : f.children) walk(*ch);
        return;
      case FormulaKind::kNot:
        if (f.child) walk(*f.child);
        return;
      case FormulaKind::kExists:
        if (f.quantifier && f.quantifier->body) walk(*f.quantifier->body);
        return;
      default:
        if (f.ContainsAggregate()) found = true;
        return;
    }
  };
  if (c.body) walk(*c.body);
  return found;
}

void PassCountBugDecorrelation(const LintContext& ctx,
                               std::vector<Diagnostic>* out) {
  ForEachScope(ctx.program, [&](const ScopeVisit& v) {
    if (!v.q->body) return;
    if (v.q->join_tree != nullptr && HasOuterJoinAnnotation(*v.q->join_tree)) {
      return;  // the outer scope already preserves partners
    }
    for (const Binding& x : v.q->bindings) {
      if (x.range_kind != RangeKind::kCollection || !x.collection) continue;
      const Collection& c = *x.collection;
      if (!c.body || c.body->kind != FormulaKind::kExists ||
          !c.body->quantifier) {
        continue;
      }
      const Quantifier& qc = *c.body->quantifier;
      if (!qc.grouping.has_value() || qc.grouping->keys.empty()) continue;
      if (qc.join_tree != nullptr && HasOuterJoinAnnotation(*qc.join_tree)) {
        continue;  // Fig. 21c: empty groups restored by the left join
      }
      if (!CollectionHasAggregate(c)) continue;
      NameSet key_outs = GroupKeyOutputs(c);
      if (key_outs.empty()) continue;
      // An equi-join between x.<key output> and a sibling binding re-joins
      // the grouped result: partners whose group is empty are dropped.
      std::vector<const Formula*> preds;
      CollectScopePredicates(*v.q->body, &preds);
      for (const Formula* p : preds) {
        if (p->kind != FormulaKind::kPredicate ||
            p->cmp_op != data::CmpOp::kEq || !p->lhs || !p->rhs) {
          continue;
        }
        for (bool x_left : {true, false}) {
          const Term& xs = x_left ? *p->lhs : *p->rhs;
          const Term& other = x_left ? *p->rhs : *p->lhs;
          if (xs.kind != TermKind::kAttrRef ||
              !EqualsIgnoreCase(xs.var, x.var) ||
              key_outs.count(xs.attr) == 0) {
            continue;
          }
          if (other.kind != TermKind::kAttrRef) continue;
          bool other_is_sibling = false;
          for (const Binding& w : v.q->bindings) {
            if (&w != &x && EqualsIgnoreCase(w.var, other.var)) {
              other_is_sibling = true;
            }
          }
          if (!other_is_sibling) continue;
          Finding(out, Severity::kWarning, "ARC-W109",
                  "'" + RenderPredicate(*p) +
                      "' joins the grouped subquery '" + c.head.relation +
                      "' back on its grouping key: rows of '" + other.var +
                      "' with no group (empty input) silently disappear "
                      "(count-bug decorrelation, Fig. 21b) — preserve them "
                      "with a left-join annotation inside the subquery "
                      "(Fig. 21c)",
                  p);
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// W110 — constant / vacuous predicates
// ---------------------------------------------------------------------------

void PassVacuousPredicate(const LintContext& ctx,
                          std::vector<Diagnostic>* out) {
  std::function<void(const Formula&)> walk = [&](const Formula& f) {
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) walk(*c);
        return;
      case FormulaKind::kNot:
        if (f.child) walk(*f.child);
        return;
      case FormulaKind::kExists:
        if (f.quantifier && f.quantifier->body) walk(*f.quantifier->body);
        return;
      case FormulaKind::kPredicate: {
        if (f.lhs && f.rhs && f.lhs->kind == TermKind::kLiteral &&
            f.rhs->kind == TermKind::kLiteral) {
          Finding(out, Severity::kNote, "ARC-W110",
                  "predicate '" + RenderPredicate(f) +
                      "' compares two literals: its value is constant",
                  &f);
          return;
        }
        // count ⊗ literal thresholds that hold for every count 0..17 (e.g.
        // count(*) >= 0) never filter anything.
        auto probe = ProbeCountThreshold(f, 0, 17);
        if (probe.has_value() && AllEqual(*probe)) {
          Finding(out, Severity::kNote, "ARC-W110",
                  "aggregate threshold '" + RenderPredicate(f) + "' is " +
                      (probe->front() ? "always true" : "never true") +
                      " for any group size: the predicate is vacuous",
                  &f);
        }
        return;
      }
      case FormulaKind::kNullTest:
        return;
    }
  };
  ForEachCollection(ctx.program, [&](const Collection& c) {
    if (c.body) walk(*c.body);
  });
  if (ctx.program.main.sentence) walk(*ctx.program.main.sentence);
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry and driver
// ---------------------------------------------------------------------------

const char* ConventionDimensionName(ConventionDimension d) {
  switch (d) {
    case ConventionDimension::kMultiplicity:
      return "multiplicity";
    case ConventionDimension::kNullLogic:
      return "null-logic";
    case ConventionDimension::kEmptyAggregate:
      return "empty-aggregate";
  }
  return "?";
}

const char* LintCategoryName(LintCategory c) {
  switch (c) {
    case LintCategory::kTrapShape:
      return "trap-shape";
    case LintCategory::kConvention:
      return "convention";
    case LintCategory::kHygiene:
      return "hygiene";
    case LintCategory::kInfo:
      return "info";
  }
  return "?";
}

const std::vector<LintPass>& LintPasses() {
  static const std::vector<LintPass>* passes = new std::vector<LintPass>{
      {"ARC-W101", "count-bug-shape",
       "correlated gamma() aggregate comparison (Fig. 21a)",
       LintCategory::kTrapShape, std::nullopt, PassCountBugShape},
      {"ARC-W102", "null-comparison-under-negation",
       "comparison under negation diverges between 3VL and 2VL on NULLs",
       LintCategory::kConvention, ConventionDimension::kNullLogic,
       PassNullNegation},
      {"ARC-W103", "duplicate-sensitive-aggregate",
       "aggregate observes multiplicities: set vs. bag results diverge",
       LintCategory::kConvention, ConventionDimension::kMultiplicity,
       PassDuplicateSensitiveAggregate},
      {"ARC-W104", "empty-aggregate-initialization",
       "sum/avg over a possibly-empty gamma() group: NULL vs. 0 (Eq. 15)",
       LintCategory::kConvention, ConventionDimension::kEmptyAggregate,
       PassEmptyAggregateSensitivity},
      {"ARC-W105", "non-monotone-recursion",
       "self-reference under negation/aggregation forces the naive fixpoint",
       LintCategory::kInfo, std::nullopt, PassNonMonotoneRecursion},
      {"ARC-W106", "unused-binding",
       "range variable never referenced (pure multiplicity factor)",
       LintCategory::kHygiene, std::nullopt, PassUnusedBinding},
      {"ARC-W107", "cartesian-join",
       "bindings with no connecting predicate form a cartesian product",
       LintCategory::kHygiene, std::nullopt, PassCartesianJoin},
      {"ARC-W108", "unknown-relation-suggestion",
       "unknown relation name close to a known one (typo suggestion)",
       LintCategory::kInfo, std::nullopt, PassUnknownRelationSuggestion},
      {"ARC-W109", "count-bug-decorrelation",
       "inner join with a grouped subquery on its key drops empty groups "
       "(Fig. 21b)",
       LintCategory::kTrapShape, std::nullopt, PassCountBugDecorrelation},
      {"ARC-W110", "vacuous-predicate",
       "predicate whose truth value is constant",
       LintCategory::kHygiene, std::nullopt, PassVacuousPredicate},
  };
  return *passes;
}

const LintPass* FindLintPass(std::string_view code) {
  for (const LintPass& p : LintPasses()) {
    if (code == p.code) return &p;
  }
  return nullptr;
}

std::vector<Diagnostic> LintResult::All() const {
  std::vector<Diagnostic> all = analysis.diagnostics;
  all.insert(all.end(), findings.begin(), findings.end());
  return all;
}

bool LintResult::ok() const {
  if (!analysis.ok()) return false;
  for (const Diagnostic& d : findings) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

LintResult Lint(const Program& program, const LintOptions& options) {
  LintResult result;
  result.analysis = Analyze(program, options.analyze);
  ExternalRegistry default_externals;
  const ExternalRegistry* externals = options.analyze.externals;
  if (externals == nullptr) {
    default_externals = ExternalRegistry::Builtins();
    externals = &default_externals;
  }
  LintContext ctx{program, result.analysis, options.analyze, *externals};
  for (const LintPass& pass : LintPasses()) {
    bool disabled = false;
    for (const std::string& code : options.disabled) {
      if (code == pass.code) disabled = true;
    }
    if (disabled) continue;
    pass.run(ctx, &result.findings);
  }
  DeduplicateDiagnostics(&result.findings);
  return result;
}

namespace {

void CountBySeverity(const std::vector<Diagnostic>& ds, int* errors,
                     int* warnings, int* notes) {
  for (const Diagnostic& d : ds) {
    switch (d.severity) {
      case Severity::kError:
        ++*errors;
        break;
      case Severity::kWarning:
        ++*warnings;
        break;
      case Severity::kNote:
        ++*notes;
        break;
    }
  }
}

std::string Plural(int n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string LintToText(const LintResult& result) {
  std::string out;
  for (const Diagnostic& d : result.All()) {
    out += DiagnosticToString(d);
    out += "\n";
  }
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  CountBySeverity(result.All(), &errors, &warnings, &notes);
  out += Plural(errors, "error") + ", " + Plural(warnings, "warning") + ", " +
         Plural(notes, "note") + "\n";
  return out;
}

std::string LintToJson(const LintResult& result) {
  std::string out = "{\"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : result.All()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"severity\": \"";
    out += SeverityName(d.severity);
    out += "\", \"code\": \"" + JsonEscape(d.code) + "\"";
    if (d.line > 0) out += ", \"line\": " + std::to_string(d.line);
    const LintPass* pass = FindLintPass(d.code);
    if (pass != nullptr) {
      out += ", \"category\": \"";
      out += LintCategoryName(pass->category);
      out += "\"";
      out += ", \"pass\": \"" + JsonEscape(pass->name) + "\"";
    }
    out += ", \"message\": \"" + JsonEscape(d.message) + "\"}";
  }
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  CountBySeverity(result.All(), &errors, &warnings, &notes);
  out += "], \"errors\": " + std::to_string(errors) +
         ", \"warnings\": " + std::to_string(warnings) +
         ", \"notes\": " + std::to_string(notes) + "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Auto-fixes
// ---------------------------------------------------------------------------

namespace {

/// Mutable path from a program's formula roots down to `target` (a Formula
/// address from a Lint run over the same program object). The path holds
/// the ancestors of `target`, outermost first; `target` itself is returned
/// separately. Crosses EXISTS scopes and nested-collection bindings.
Formula* FindFormulaPath(Program* program, const void* target,
                         std::vector<Formula*>* path) {
  Formula* found = nullptr;
  std::function<bool(Formula*)> walk = [&](Formula* f) {
    if (f == target) {
      found = f;
      return true;
    }
    path->push_back(f);
    switch (f->kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (FormulaPtr& c : f->children) {
          if (walk(c.get())) return true;
        }
        break;
      case FormulaKind::kNot:
        if (f->child && walk(f->child.get())) return true;
        break;
      case FormulaKind::kExists:
        if (f->quantifier) {
          for (Binding& b : f->quantifier->bindings) {
            if (b.collection && b.collection->body &&
                walk(b.collection->body.get())) {
              return true;
            }
          }
          if (f->quantifier->body && walk(f->quantifier->body.get())) {
            return true;
          }
        }
        break;
      default:
        break;
    }
    path->pop_back();
    return false;
  };
  for (Definition& d : program->definitions) {
    if (d.collection && d.collection->body && walk(d.collection->body.get())) {
      return found;
    }
  }
  if (program->main.collection && program->main.collection->body &&
      walk(program->main.collection->body.get())) {
    return found;
  }
  if (program->main.sentence && walk(program->main.sentence.get())) {
    return found;
  }
  path->clear();
  return nullptr;
}

/// Structural ordinal of `node` among all formulas of the program (same
/// value across clones — used to key duplicate fix proposals).
int FormulaOrdinal(Program* program, const Formula* node) {
  int ordinal = -1;
  int counter = 0;
  std::function<void(Formula*)> walk = [&](Formula* f) {
    if (f == node) ordinal = counter;
    ++counter;
    switch (f->kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (FormulaPtr& c : f->children) walk(c.get());
        return;
      case FormulaKind::kNot:
        if (f->child) walk(f->child.get());
        return;
      case FormulaKind::kExists:
        if (f->quantifier) {
          for (Binding& b : f->quantifier->bindings) {
            if (b.collection && b.collection->body) {
              walk(b.collection->body.get());
            }
          }
          if (f->quantifier->body) walk(f->quantifier->body.get());
        }
        return;
      default:
        return;
    }
  };
  for (Definition& d : program->definitions) {
    if (d.collection && d.collection->body) walk(d.collection->body.get());
  }
  if (program->main.collection && program->main.collection->body) {
    walk(program->main.collection->body.get());
  }
  if (program->main.sentence) walk(program->main.sentence.get());
  return ordinal;
}

const Diagnostic* NthFinding(const LintResult& lr, const char* code, int n) {
  int seen = 0;
  for (const Diagnostic& d : lr.findings) {
    if (d.code != code) continue;
    if (seen == n) return &d;
    ++seen;
  }
  return nullptr;
}

struct BuiltFix {
  FixIt fix;
  std::string dedup_key;
};

/// W102: wrap the innermost enclosing NOT of the flagged comparison with
/// IS NOT NULL guards on every base-relation attribute the comparison
/// reads: NOT(φ) becomes (x.a IS NOT NULL AND ... AND NOT(φ)). Under 3VL
/// the guard is redundant exactly when the NOT's unknown never surfaces
/// (ArcVerify checks this); under 2VL it pins the NOT-IN trap shut.
std::optional<BuiltFix> BuildNullGuardFix(const Program& original,
                                          const LintOptions& options,
                                          int index) {
  Program clone = original.Clone();
  LintResult lr = Lint(clone, options);
  const Diagnostic* diag = NthFinding(lr, "ARC-W102", index);
  if (diag == nullptr || diag->node == nullptr) return std::nullopt;

  std::vector<Formula*> path;
  Formula* pred = FindFormulaPath(&clone, diag->node, &path);
  if (pred == nullptr || pred->kind != FormulaKind::kPredicate) {
    return std::nullopt;
  }
  Formula* not_node = nullptr;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if ((*it)->kind == FormulaKind::kExists) break;
    if ((*it)->kind == FormulaKind::kNot) {
      not_node = *it;
      break;
    }
  }
  if (not_node == nullptr || !not_node->child) return std::nullopt;

  // Guard every base-relation attribute the comparison reads (guarding an
  // already-guarded one is redundant but harmless).
  std::vector<const Term*> refs;
  if (pred->lhs) CollectRefs(*pred->lhs, &refs);
  if (pred->rhs) CollectRefs(*pred->rhs, &refs);
  std::vector<std::pair<std::string, std::string>> guarded;
  for (const Term* r : refs) {
    auto it = lr.analysis.attrs.find(r);
    if (it == lr.analysis.attrs.end() ||
        it->second.target != AttrTarget::kBinding ||
        it->second.binding == nullptr) {
      continue;
    }
    auto bit = lr.analysis.bindings.find(it->second.binding);
    if (bit == lr.analysis.bindings.end() ||
        bit->second.range_class != RangeClass::kBase) {
      continue;
    }
    bool dup = false;
    for (const auto& [v, a] : guarded) {
      dup |= EqualsIgnoreCase(v, r->var) && EqualsIgnoreCase(a, r->attr);
    }
    if (!dup) guarded.emplace_back(r->var, r->attr);
  }
  if (guarded.empty()) return std::nullopt;

  const int ordinal = FormulaOrdinal(&clone, not_node);
  FormulaPtr inner = std::move(not_node->child);
  not_node->kind = FormulaKind::kAnd;
  not_node->children.clear();
  std::string guard_list;
  for (auto& [var, attr] : guarded) {
    if (!guard_list.empty()) guard_list += ", ";
    guard_list += var + "." + attr;
    FormulaPtr guard = MakeNullTest(MakeAttrRef(var, attr), /*negated=*/true);
    guard->line = not_node->line;
    not_node->children.push_back(std::move(guard));
  }
  FormulaPtr renot = MakeNot(std::move(inner));
  renot->line = not_node->line;
  not_node->children.push_back(std::move(renot));

  BuiltFix built;
  built.fix.code = "ARC-W102";
  built.fix.name = "insert-is-not-null-guard";
  built.fix.description =
      "guard the negated comparison with IS NOT NULL on " + guard_list;
  built.fix.line = diag->line;
  built.fix.effect = FixEffect::kPinsMeaning;
  built.fix.fixed = std::move(clone);
  built.dedup_key = "W102#" + std::to_string(ordinal) + "#" + guard_list;
  return built;
}

/// W109: annotate the scope that re-joins a grouped subquery on its
/// grouping key with left(siblings..., x), so partner rows whose group is
/// empty survive (null-extended) instead of silently disappearing.
std::optional<BuiltFix> BuildLeftJoinFix(const Program& original,
                                         const LintOptions& options,
                                         int index) {
  Program clone = original.Clone();
  LintResult lr = Lint(clone, options);
  const Diagnostic* diag = NthFinding(lr, "ARC-W109", index);
  if (diag == nullptr || diag->node == nullptr) return std::nullopt;

  std::vector<Formula*> path;
  Formula* pred = FindFormulaPath(&clone, diag->node, &path);
  if (pred == nullptr || pred->kind != FormulaKind::kPredicate ||
      !pred->lhs || !pred->rhs) {
    return std::nullopt;
  }
  Formula* exists = nullptr;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if ((*it)->kind == FormulaKind::kExists) {
      exists = *it;
      break;
    }
  }
  if (exists == nullptr || !exists->quantifier) return std::nullopt;
  Quantifier* q = exists->quantifier.get();
  // Only the annotation-free default join is rewritten: merging into an
  // existing (inner) annotation tree could reorder its semantics.
  if (q->join_tree != nullptr) return std::nullopt;

  const Binding* subquery = nullptr;
  for (const Term* side : {pred->lhs.get(), pred->rhs.get()}) {
    if (side->kind != TermKind::kAttrRef) continue;
    for (const Binding& b : q->bindings) {
      if (b.range_kind == RangeKind::kCollection &&
          EqualsIgnoreCase(b.var, side->var)) {
        subquery = &b;
      }
    }
  }
  if (subquery == nullptr) return std::nullopt;

  std::vector<JoinNodePtr> preserved_leaves;
  std::string preserved_desc;
  for (const Binding& b : q->bindings) {
    if (&b == subquery) continue;
    if (!preserved_desc.empty()) preserved_desc += ", ";
    preserved_desc += b.var;
    preserved_leaves.push_back(MakeJoinVar(b.var));
  }
  if (preserved_leaves.empty()) return std::nullopt;
  JoinNodePtr preserved =
      preserved_leaves.size() == 1
          ? std::move(preserved_leaves.front())
          : MakeJoinInner(std::move(preserved_leaves));

  const int ordinal = FormulaOrdinal(&clone, exists);
  const std::string annotation = "left(" +
                                 (preserved_desc.find(',') != std::string::npos
                                      ? "inner(" + preserved_desc + ")"
                                      : preserved_desc) +
                                 ", " + subquery->var + ")";
  q->join_tree = MakeJoinLeft(std::move(preserved), MakeJoinVar(subquery->var));

  BuiltFix built;
  built.fix.code = "ARC-W109";
  built.fix.name = "left-join-grouped-subquery";
  built.fix.description = "annotate the scope with " + annotation +
                          " so rows without a matching group survive "
                          "(null-extended)";
  built.fix.line = diag->line;
  built.fix.effect = FixEffect::kBroadens;
  built.fix.fixed = std::move(clone);
  built.dedup_key = "W109#" + std::to_string(ordinal);
  return built;
}

}  // namespace

const char* FixEffectName(FixEffect e) {
  switch (e) {
    case FixEffect::kPinsMeaning:
      return "pins-meaning";
    case FixEffect::kBroadens:
      return "broadens";
  }
  return "?";
}

std::vector<FixIt> ProposeFixes(const Program& program,
                                const LintOptions& options) {
  std::vector<FixIt> out;
  LintResult base = Lint(program, options);
  int w102 = 0;
  int w109 = 0;
  for (const Diagnostic& d : base.findings) {
    if (d.code == "ARC-W102") ++w102;
    if (d.code == "ARC-W109") ++w109;
  }
  std::set<std::string> seen;
  for (int i = 0; i < w102; ++i) {
    auto built = BuildNullGuardFix(program, options, i);
    if (built.has_value() && seen.insert(built->dedup_key).second) {
      out.push_back(std::move(built->fix));
    }
  }
  for (int i = 0; i < w109; ++i) {
    auto built = BuildLeftJoinFix(program, options, i);
    if (built.has_value() && seen.insert(built->dedup_key).second) {
      out.push_back(std::move(built->fix));
    }
  }
  return out;
}

}  // namespace arc
