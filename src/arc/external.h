// External relations (§2.13.1): relations whose semantics come from
// outside the relational core — arithmetic ("+", "-", "*", "Minus"),
// comparisons ("Bigger") — possibly with infinite extension. They are
// accessed through *access patterns*: given a subset of bound attributes,
// an external relation enumerates the (finitely many) completions, or
// reports that the pattern is unsupported.
#ifndef ARC_ARC_EXTERNAL_H_
#define ARC_ARC_EXTERNAL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/relation.h"

namespace arc {

/// The bound-attribute vector handed to an access-pattern function: one
/// slot per schema attribute; nullopt means "free".
using BoundPattern = std::vector<std::optional<data::Value>>;

class ExternalRelation {
 public:
  /// `enumerate` receives a BoundPattern of schema width and returns all
  /// full tuples consistent with the bound slots. It must return
  /// Unsupported(...) for patterns it cannot enumerate finitely.
  using EnumerateFn =
      std::function<Result<std::vector<data::Tuple>>(const BoundPattern&)>;

  ExternalRelation(std::string name, data::Schema schema, EnumerateFn enumerate)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        enumerate_(std::move(enumerate)) {}

  const std::string& name() const { return name_; }
  const data::Schema& schema() const { return schema_; }

  Result<std::vector<data::Tuple>> Enumerate(const BoundPattern& bound) const {
    return enumerate_(bound);
  }

 private:
  std::string name_;
  data::Schema schema_;
  EnumerateFn enumerate_;
};

class ExternalRegistry {
 public:
  ExternalRegistry() = default;

  void Register(ExternalRelation relation);
  /// Case-sensitive for operator names ("+", "*"), case-insensitive for
  /// identifier names ("Minus"). nullptr if absent.
  const ExternalRelation* Find(std::string_view name) const;

  /// Registered relation names, in registration order (typo suggestions).
  std::vector<std::string> Names() const;

  /// The built-in externals the paper uses:
  ///   Minus(left, right, out), Add(left, right, out), Bigger(left, right),
  ///   "+"($1, $2, out), "-"($1, $2, out), "*"($1, $2, out), "/"($1, $2, out).
  /// The ternary arithmetic relations support every access pattern with at
  /// least two bound slots (e.g. Minus(5, x, 2) solves x = 3, §2.13.1 ③).
  static ExternalRegistry Builtins();

 private:
  std::vector<ExternalRelation> relations_;
};

}  // namespace arc

#endif  // ARC_ARC_EXTERNAL_H_
