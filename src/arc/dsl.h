// A small embedded DSL for constructing ALTs programmatically. The
// examples, tests, and benchmarks build the paper's queries with it; the
// comprehension-text parser (text/parser.h) is the other entry point.
//
//   using namespace arc::dsl;
//   // Eq. (3):  {Q(A,sm) | ∃r∈R, γ_{r.A} [Q.A = r.A ∧ Q.sm = sum(r.B)]}
//   CollectionPtr q = Coll("Q", {"A", "sm"},
//       Scope()
//           .Bind("r", "R")
//           .GroupBy(Keys(Attr("r", "A")))
//           .Where(Eq(Attr("Q", "A"), Attr("r", "A")))
//           .Where(Eq(Attr("Q", "sm"), Sum(Attr("r", "B"))))
//           .Exists());
#ifndef ARC_ARC_DSL_H_
#define ARC_ARC_DSL_H_

#include <string>
#include <utility>
#include <vector>

#include "arc/ast.h"

namespace arc::dsl {

// ---- Terms ------------------------------------------------------------

inline TermPtr Attr(std::string var, std::string attr) {
  return MakeAttrRef(std::move(var), std::move(attr));
}
inline TermPtr Lit(data::Value v) { return MakeLiteral(std::move(v)); }
inline TermPtr Int(int64_t v) { return MakeLiteral(data::Value::Int(v)); }
inline TermPtr Dbl(double v) { return MakeLiteral(data::Value::Double(v)); }
inline TermPtr Str(std::string v) {
  return MakeLiteral(data::Value::String(std::move(v)));
}
inline TermPtr Null() { return MakeLiteral(data::Value::Null()); }

inline TermPtr Add(TermPtr a, TermPtr b) {
  return MakeArith(data::ArithOp::kAdd, std::move(a), std::move(b));
}
inline TermPtr Sub(TermPtr a, TermPtr b) {
  return MakeArith(data::ArithOp::kSub, std::move(a), std::move(b));
}
inline TermPtr Mul(TermPtr a, TermPtr b) {
  return MakeArith(data::ArithOp::kMul, std::move(a), std::move(b));
}
inline TermPtr Div(TermPtr a, TermPtr b) {
  return MakeArith(data::ArithOp::kDiv, std::move(a), std::move(b));
}

inline TermPtr Sum(TermPtr arg) {
  return MakeAggregate(AggFunc::kSum, std::move(arg));
}
inline TermPtr Count(TermPtr arg) {
  return MakeAggregate(AggFunc::kCount, std::move(arg));
}
inline TermPtr CountStar() {
  return MakeAggregate(AggFunc::kCountStar, nullptr);
}
inline TermPtr Avg(TermPtr arg) {
  return MakeAggregate(AggFunc::kAvg, std::move(arg));
}
inline TermPtr Min(TermPtr arg) {
  return MakeAggregate(AggFunc::kMin, std::move(arg));
}
inline TermPtr Max(TermPtr arg) {
  return MakeAggregate(AggFunc::kMax, std::move(arg));
}
inline TermPtr CountDistinct(TermPtr arg) {
  return MakeAggregate(AggFunc::kCountDistinct, std::move(arg));
}

// ---- Predicates and connectives ----------------------------------------

inline FormulaPtr Eq(TermPtr a, TermPtr b) {
  return MakePredicate(data::CmpOp::kEq, std::move(a), std::move(b));
}
inline FormulaPtr Ne(TermPtr a, TermPtr b) {
  return MakePredicate(data::CmpOp::kNe, std::move(a), std::move(b));
}
inline FormulaPtr Lt(TermPtr a, TermPtr b) {
  return MakePredicate(data::CmpOp::kLt, std::move(a), std::move(b));
}
inline FormulaPtr Le(TermPtr a, TermPtr b) {
  return MakePredicate(data::CmpOp::kLe, std::move(a), std::move(b));
}
inline FormulaPtr Gt(TermPtr a, TermPtr b) {
  return MakePredicate(data::CmpOp::kGt, std::move(a), std::move(b));
}
inline FormulaPtr Ge(TermPtr a, TermPtr b) {
  return MakePredicate(data::CmpOp::kGe, std::move(a), std::move(b));
}
inline FormulaPtr IsNull(TermPtr t) {
  return MakeNullTest(std::move(t), /*negated=*/false);
}
inline FormulaPtr IsNotNull(TermPtr t) {
  return MakeNullTest(std::move(t), /*negated=*/true);
}
inline FormulaPtr Not(FormulaPtr f) { return MakeNot(std::move(f)); }

namespace internal {
inline void AppendAll(std::vector<FormulaPtr>*) {}
template <typename... Rest>
void AppendAll(std::vector<FormulaPtr>* out, FormulaPtr first, Rest... rest) {
  out->push_back(std::move(first));
  AppendAll(out, std::move(rest)...);
}
}  // namespace internal

template <typename... Fs>
FormulaPtr And(Fs... fs) {
  std::vector<FormulaPtr> children;
  internal::AppendAll(&children, std::move(fs)...);
  return MakeAnd(std::move(children));
}

template <typename... Fs>
FormulaPtr Or(Fs... fs) {
  std::vector<FormulaPtr> children;
  internal::AppendAll(&children, std::move(fs)...);
  return MakeOr(std::move(children));
}

// ---- Grouping keys and join annotations ---------------------------------

namespace internal {
inline void AppendTerms(std::vector<TermPtr>*) {}
template <typename... Rest>
void AppendTerms(std::vector<TermPtr>* out, TermPtr first, Rest... rest) {
  out->push_back(std::move(first));
  AppendTerms(out, std::move(rest)...);
}
}  // namespace internal

/// Grouping key list; Keys() with no arguments is γ∅.
template <typename... Ts>
std::vector<TermPtr> Keys(Ts... ts) {
  std::vector<TermPtr> keys;
  internal::AppendTerms(&keys, std::move(ts)...);
  return keys;
}

inline JoinNodePtr JVar(std::string var) { return MakeJoinVar(std::move(var)); }
inline JoinNodePtr JLit(data::Value v) { return MakeJoinLiteral(std::move(v)); }
inline JoinNodePtr JLit(int64_t v) {
  return MakeJoinLiteral(data::Value::Int(v));
}

namespace internal {
inline void AppendJoins(std::vector<JoinNodePtr>*) {}
template <typename... Rest>
void AppendJoins(std::vector<JoinNodePtr>* out, JoinNodePtr first,
                 Rest... rest) {
  out->push_back(std::move(first));
  AppendJoins(out, std::move(rest)...);
}
}  // namespace internal

template <typename... Js>
JoinNodePtr Inner(Js... js) {
  std::vector<JoinNodePtr> children;
  internal::AppendJoins(&children, std::move(js)...);
  return MakeJoinInner(std::move(children));
}
inline JoinNodePtr Left(JoinNodePtr preserved, JoinNodePtr optional) {
  return MakeJoinLeft(std::move(preserved), std::move(optional));
}
inline JoinNodePtr Full(JoinNodePtr a, JoinNodePtr b) {
  return MakeJoinFull(std::move(a), std::move(b));
}

// ---- Scopes and collections ---------------------------------------------

/// Builds a quantifier scope (∃ formula). `Where` calls accumulate into a
/// single conjunction.
class Scope {
 public:
  Scope() = default;
  Scope(Scope&&) = default;
  Scope& operator=(Scope&&) = default;

  Scope&& Bind(std::string var, std::string relation) && {
    Binding b;
    b.var = std::move(var);
    b.range_kind = RangeKind::kNamed;
    b.relation = std::move(relation);
    bindings_.push_back(std::move(b));
    return std::move(*this);
  }

  Scope&& Bind(std::string var, CollectionPtr collection) && {
    Binding b;
    b.var = std::move(var);
    b.range_kind = RangeKind::kCollection;
    b.collection = std::move(collection);
    bindings_.push_back(std::move(b));
    return std::move(*this);
  }

  Scope&& GroupBy(std::vector<TermPtr> keys) && {
    Grouping g;
    g.keys = std::move(keys);
    grouping_ = std::move(g);
    return std::move(*this);
  }

  Scope&& Join(JoinNodePtr tree) && {
    join_tree_ = std::move(tree);
    return std::move(*this);
  }

  Scope&& Where(FormulaPtr f) && {
    conjuncts_.push_back(std::move(f));
    return std::move(*this);
  }

  /// Finalizes into an ∃ formula. A single conjunct becomes the body
  /// directly; several become an AND.
  FormulaPtr Exists() && {
    auto q = std::make_unique<Quantifier>();
    q->bindings = std::move(bindings_);
    q->grouping = std::move(grouping_);
    q->join_tree = std::move(join_tree_);
    if (conjuncts_.size() == 1) {
      q->body = std::move(conjuncts_[0]);
    } else {
      q->body = MakeAnd(std::move(conjuncts_));
    }
    return MakeExists(std::move(q));
  }

 private:
  std::vector<Binding> bindings_;
  std::optional<Grouping> grouping_;
  JoinNodePtr join_tree_;
  std::vector<FormulaPtr> conjuncts_;
};

inline CollectionPtr Coll(std::string relation, std::vector<std::string> attrs,
                          FormulaPtr body) {
  Head h;
  h.relation = std::move(relation);
  h.attrs = std::move(attrs);
  return MakeCollection(std::move(h), std::move(body));
}

}  // namespace arc::dsl

#endif  // ARC_ARC_DSL_H_
