#include "sql/eval.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"

namespace arc::sql {

namespace {

using data::Relation;
using data::Schema;
using data::TriBool;
using data::Tuple;
using data::Value;

/// One bound table: alias → current row. Owns the tuple copy so rows can be
/// materialized for grouping and outer-join padding.
struct Bound {
  std::string alias;
  const Schema* schema = nullptr;
  Tuple tuple;
};
using Row = std::vector<Bound>;

Row ConcatRows(const Row& a, const Row& b) {
  Row out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

class SqlEvalImpl {
 public:
  SqlEvalImpl(const data::Database& db, const SqlEvalOptions& options)
      : db_(db), options_(options) {}

  Result<Relation> Eval(const SelectStmt& stmt) {
    return EvalSelect(stmt);
  }

 private:
  // ---- name resolution / expression evaluation ---------------------------

  /// Scopes, innermost last. Each scope is the current row of one SELECT.
  std::vector<const Row*> scopes_;

  Result<Value> LookupColumn(const std::string& table,
                             const std::string& column) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const Row& row = **it;
      if (!table.empty()) {
        for (const Bound& b : row) {
          if (EqualsIgnoreCase(b.alias, table)) {
            const int idx = b.schema->IndexOf(column);
            if (idx < 0) {
              return EvalError("column " + table + "." + column +
                               " does not exist");
            }
            return b.tuple.at(idx);
          }
        }
        continue;  // alias not in this scope; look outward
      }
      // Unqualified: search all bindings of this scope.
      const Bound* found = nullptr;
      int found_idx = -1;
      for (const Bound& b : row) {
        const int idx = b.schema->IndexOf(column);
        if (idx >= 0) {
          if (found != nullptr) {
            return EvalError("ambiguous column '" + column + "'");
          }
          found = &b;
          found_idx = idx;
        }
      }
      if (found != nullptr) return found->tuple.at(found_idx);
    }
    return EvalError("unknown column " +
                     (table.empty() ? column : table + "." + column));
  }

  /// Aggregate context: group rows to aggregate over (null when not in a
  /// grouped projection).
  const std::vector<Row>* agg_rows_ = nullptr;

  Result<Value> EvalExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kColumnRef:
        return LookupColumn(e.table, e.column);
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kArith: {
        ARC_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.lhs));
        ARC_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.rhs));
        return data::Arith(e.arith_op, l, r);
      }
      case ExprKind::kAggCall:
        return EvalAggregate(e);
      case ExprKind::kScalarSubquery: {
        ARC_ASSIGN_OR_RETURN(Relation rel, EvalSelect(*e.subquery));
        if (rel.schema().size() != 1) {
          return EvalError("scalar subquery must return one column");
        }
        if (rel.size() > 1) {
          return EvalError("scalar subquery returned more than one row");
        }
        if (rel.empty()) return Value::Null();
        return rel.rows()[0].at(0);
      }
      // Boolean-valued expressions used as values.
      default: {
        ARC_ASSIGN_OR_RETURN(TriBool t, EvalPredicate(e));
        if (t == TriBool::kUnknown) return Value::Null();
        return Value::Bool(t == TriBool::kTrue);
      }
    }
  }

  Result<TriBool> EvalPredicate(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kCmp: {
        ARC_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.lhs));
        ARC_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.rhs));
        return data::Compare(e.cmp_op, l, r, data::NullLogic::kThreeValued);
      }
      case ExprKind::kAnd: {
        TriBool acc = TriBool::kTrue;
        for (const ExprPtr& c : e.children) {
          ARC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*c));
          acc = data::TriAnd(acc, v);
          if (acc == TriBool::kFalse) return acc;
        }
        return acc;
      }
      case ExprKind::kOr: {
        TriBool acc = TriBool::kFalse;
        for (const ExprPtr& c : e.children) {
          ARC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*c));
          acc = data::TriOr(acc, v);
          if (acc == TriBool::kTrue) return acc;
        }
        return acc;
      }
      case ExprKind::kNot: {
        ARC_ASSIGN_OR_RETURN(TriBool v, EvalPredicate(*e.lhs));
        return data::TriNot(v);
      }
      case ExprKind::kIsNull: {
        ARC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs));
        return data::FromBool(v.is_null() != e.negated);
      }
      case ExprKind::kExists: {
        ARC_ASSIGN_OR_RETURN(Relation rel, EvalSelect(*e.subquery));
        const bool exists = !rel.empty();
        return data::FromBool(exists != e.negated);
      }
      case ExprKind::kInSubquery: {
        ARC_ASSIGN_OR_RETURN(Value tested, EvalExpr(*e.lhs));
        ARC_ASSIGN_OR_RETURN(Relation rel, EvalSelect(*e.subquery));
        if (rel.schema().size() != 1) {
          return EvalError("IN subquery must return one column");
        }
        // SQL 3VL membership: true on a match; unknown if no match but the
        // tested value or any member is null; false otherwise.
        bool saw_null = tested.is_null();
        bool matched = false;
        for (const Tuple& row : rel.rows()) {
          const Value& member = row.at(0);
          if (member.is_null()) {
            saw_null = true;
            continue;
          }
          if (tested.is_null()) continue;
          auto eq = data::Compare(data::CmpOp::kEq, tested, member,
                                  data::NullLogic::kThreeValued);
          if (!eq.ok()) return eq.status();
          if (data::IsTrue(*eq)) matched = true;
        }
        TriBool result = matched ? TriBool::kTrue
                                 : (saw_null ? TriBool::kUnknown
                                             : TriBool::kFalse);
        return e.negated ? data::TriNot(result) : result;
      }
      default: {
        // Value expression in boolean position: nonzero/true semantics.
        ARC_ASSIGN_OR_RETURN(Value v, EvalExpr(e));
        if (v.is_null()) return TriBool::kUnknown;
        if (v.kind() == data::ValueKind::kBool) {
          return data::FromBool(v.as_bool());
        }
        return EvalError("expression is not a predicate");
      }
    }
  }

  Result<Value> EvalAggregate(const Expr& e) {
    if (agg_rows_ == nullptr) {
      return EvalError("aggregate used outside of a grouped projection");
    }
    const std::vector<Row>& rows = *agg_rows_;
    if (e.agg_func == AggFunc::kCountStar) {
      return Value::Int(static_cast<int64_t>(rows.size()));
    }
    // Evaluate the argument per group row; inner aggregates are illegal.
    const std::vector<Row>* saved = agg_rows_;
    agg_rows_ = nullptr;
    std::vector<Value> values;
    Status status = Status::Ok();
    for (const Row& row : rows) {
      scopes_.push_back(&row);
      auto v = EvalExpr(*e.agg_arg);
      scopes_.pop_back();
      if (!v.ok()) {
        status = v.status();
        break;
      }
      if (!v->is_null()) values.push_back(std::move(v).value());
    }
    agg_rows_ = saved;
    ARC_RETURN_IF_ERROR(status);
    if (IsDistinctAgg(e.agg_func)) {
      std::vector<Value> dedup;
      for (const Value& v : values) {
        bool seen = false;
        for (const Value& d : dedup) {
          if (d == v) seen = true;
        }
        if (!seen) dedup.push_back(v);
      }
      values = std::move(dedup);
    }
    switch (e.agg_func) {
      case AggFunc::kCount:
      case AggFunc::kCountDistinct:
        return Value::Int(static_cast<int64_t>(values.size()));
      case AggFunc::kSum:
      case AggFunc::kSumDistinct: {
        if (values.empty()) return Value::Null();
        for (const Value& v : values) {
          if (!v.is_numeric()) {
            return EvalError("sum over non-numeric value " + v.ToString());
          }
        }
        Value acc = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          ARC_ASSIGN_OR_RETURN(
              acc, data::Arith(data::ArithOp::kAdd, acc, values[i]));
        }
        return acc;
      }
      case AggFunc::kAvg:
      case AggFunc::kAvgDistinct: {
        if (values.empty()) return Value::Null();
        double sum = 0;
        for (const Value& v : values) {
          if (!v.is_numeric()) {
            return EvalError("avg over non-numeric value");
          }
          sum += v.ToDouble();
        }
        return Value::Double(sum / static_cast<double>(values.size()));
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (values.empty()) return Value::Null();
        Value best = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          const int c = values[i].CompareTotal(best);
          if ((e.agg_func == AggFunc::kMin && c < 0) ||
              (e.agg_func == AggFunc::kMax && c > 0)) {
            best = values[i];
          }
        }
        return best;
      }
      case AggFunc::kCountStar:
        break;
    }
    return EvalError("bad aggregate");
  }

  // ---- FROM --------------------------------------------------------------

  /// CTE relations, visible by name (innermost last).
  std::vector<std::pair<std::string, const Relation*>> ctes_;

  const Relation* LookupRelation(const std::string& name) {
    for (auto it = ctes_.rbegin(); it != ctes_.rend(); ++it) {
      if (EqualsIgnoreCase(it->first, name)) return it->second;
    }
    return db_.GetPtr(name);
  }

  /// Schemas materialized for subqueries / padded rows; stable addresses.
  std::vector<std::unique_ptr<Schema>> owned_schemas_;
  std::vector<std::unique_ptr<Relation>> owned_relations_;

  const Schema* OwnSchema(Schema s) {
    owned_schemas_.push_back(std::make_unique<Schema>(std::move(s)));
    return owned_schemas_.back().get();
  }

  /// Evaluates one FROM item into rows. `current` is the partial row of
  /// already-evaluated siblings (for LATERAL).
  Result<std::vector<Row>> EvalFromItem(const FromItem& f, const Row& current) {
    switch (f.kind) {
      case FromKind::kTable: {
        const Relation* rel = LookupRelation(f.table);
        if (rel == nullptr) {
          return NotFound("unknown table '" + f.table + "'");
        }
        std::vector<Row> out;
        out.reserve(static_cast<size_t>(rel->size()));
        for (const Tuple& t : rel->rows()) {
          Row row;
          row.push_back({f.BindingName(), &rel->schema(), t});
          out.push_back(std::move(row));
        }
        return out;
      }
      case FromKind::kSubquery: {
        if (f.lateral) scopes_.push_back(&current);
        auto rel = EvalSelect(*f.subquery);
        if (f.lateral) scopes_.pop_back();
        ARC_RETURN_IF_ERROR(rel.status());
        owned_relations_.push_back(
            std::make_unique<Relation>(std::move(rel).value()));
        const Relation* stored = owned_relations_.back().get();
        std::vector<Row> out;
        for (const Tuple& t : stored->rows()) {
          Row row;
          row.push_back({f.alias, &stored->schema(), t});
          out.push_back(std::move(row));
        }
        return out;
      }
      case FromKind::kJoin:
        return EvalJoin(f, current);
    }
    return EvalError("bad FROM item");
  }

  /// Null-padded row for all leaves of a FROM subtree.
  Result<Row> NullRow(const FromItem& f) {
    switch (f.kind) {
      case FromKind::kTable: {
        const Relation* rel = LookupRelation(f.table);
        if (rel == nullptr) {
          return NotFound("unknown table '" + f.table + "'");
        }
        Tuple nulls;
        for (int i = 0; i < rel->schema().size(); ++i) {
          nulls.Append(Value::Null());
        }
        Row row;
        row.push_back({f.BindingName(), &rel->schema(), std::move(nulls)});
        return row;
      }
      case FromKind::kSubquery: {
        ARC_ASSIGN_OR_RETURN(Schema schema, OutputSchema(*f.subquery));
        const Schema* stored = OwnSchema(std::move(schema));
        Tuple nulls;
        for (int i = 0; i < stored->size(); ++i) nulls.Append(Value::Null());
        Row row;
        row.push_back({f.alias, stored, std::move(nulls)});
        return row;
      }
      case FromKind::kJoin: {
        ARC_ASSIGN_OR_RETURN(Row l, NullRow(*f.left));
        ARC_ASSIGN_OR_RETURN(Row r, NullRow(*f.right));
        return ConcatRows(l, r);
      }
    }
    return EvalError("bad FROM item");
  }

  Result<std::vector<Row>> EvalJoin(const FromItem& f, const Row& current) {
    ARC_ASSIGN_OR_RETURN(std::vector<Row> left, EvalFromItem(*f.left, current));
    // A lateral right side re-evaluates per left row.
    const bool lateral_right =
        f.right->kind == FromKind::kSubquery && f.right->lateral;
    std::vector<Row> right;
    if (!lateral_right) {
      ARC_ASSIGN_OR_RETURN(right, EvalFromItem(*f.right, current));
    }
    auto on_true = [&](const Row& joined) -> Result<bool> {
      if (!f.on) return true;
      scopes_.push_back(&joined);
      auto v = EvalPredicate(*f.on);
      scopes_.pop_back();
      ARC_RETURN_IF_ERROR(v.status());
      return data::IsTrue(*v);
    };
    std::vector<Row> out;
    std::vector<bool> right_matched(right.size(), false);
    for (const Row& l : left) {
      std::vector<Row>* right_rows = &right;
      std::vector<Row> lateral_rows;
      if (lateral_right) {
        Row ctx = ConcatRows(current, l);
        ARC_ASSIGN_OR_RETURN(lateral_rows, EvalFromItem(*f.right, ctx));
        right_rows = &lateral_rows;
      }
      bool matched = false;
      for (size_t ri = 0; ri < right_rows->size(); ++ri) {
        Row joined = ConcatRows(l, (*right_rows)[ri]);
        ARC_ASSIGN_OR_RETURN(bool pass, on_true(joined));
        if (pass) {
          matched = true;
          if (!lateral_right) right_matched[ri] = true;
          out.push_back(std::move(joined));
        }
      }
      if (!matched && (f.join_type == JoinType::kLeft ||
                       f.join_type == JoinType::kFull)) {
        ARC_ASSIGN_OR_RETURN(Row nulls, NullRow(*f.right));
        out.push_back(ConcatRows(l, nulls));
      }
    }
    if (f.join_type == JoinType::kFull && !lateral_right) {
      for (size_t ri = 0; ri < right.size(); ++ri) {
        if (!right_matched[ri]) {
          ARC_ASSIGN_OR_RETURN(Row nulls, NullRow(*f.left));
          out.push_back(ConcatRows(nulls, right[ri]));
        }
      }
    }
    return out;
  }

  /// Cross product of the comma-separated FROM list, honoring LATERAL
  /// visibility of earlier items.
  Result<std::vector<Row>> EvalFromList(const SelectStmt& stmt) {
    std::vector<Row> acc;
    acc.emplace_back();
    for (const FromItemPtr& f : stmt.from) {
      std::vector<Row> next;
      const bool needs_lateral = ContainsLateral(*f);
      if (!needs_lateral) {
        ARC_ASSIGN_OR_RETURN(std::vector<Row> rows, EvalFromItem(*f, Row{}));
        for (const Row& a : acc) {
          for (const Row& b : rows) next.push_back(ConcatRows(a, b));
        }
      } else {
        for (const Row& a : acc) {
          ARC_ASSIGN_OR_RETURN(std::vector<Row> rows, EvalFromItem(*f, a));
          for (const Row& b : rows) next.push_back(ConcatRows(a, b));
        }
      }
      acc = std::move(next);
      if (acc.empty()) break;
    }
    return acc;
  }

  static bool ContainsLateral(const FromItem& f) {
    switch (f.kind) {
      case FromKind::kTable:
        return false;
      case FromKind::kSubquery:
        return f.lateral;
      case FromKind::kJoin:
        return ContainsLateral(*f.left) || ContainsLateral(*f.right);
    }
    return false;
  }

  // ---- SELECT ---------------------------------------------------------

  /// Output schema (column names) of a select, without evaluating it.
  Result<Schema> OutputSchema(const SelectStmt& stmt) {
    std::vector<std::string> names;
    int anon = 0;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        ARC_RETURN_IF_ERROR(ExpandStarNames(stmt, &names));
        continue;
      }
      if (!item.alias.empty()) {
        names.push_back(item.alias);
      } else if (item.expr->kind == ExprKind::kColumnRef) {
        names.push_back(item.expr->column);
      } else {
        names.push_back("col" + std::to_string(++anon));
      }
    }
    return Schema(std::move(names));
  }

  Status ExpandStarNames(const SelectStmt& stmt,
                         std::vector<std::string>* names) {
    for (const FromItemPtr& f : stmt.from) {
      ARC_RETURN_IF_ERROR(ExpandStarNamesItem(*f, names));
    }
    return Status::Ok();
  }

  Status ExpandStarNamesItem(const FromItem& f,
                             std::vector<std::string>* names) {
    switch (f.kind) {
      case FromKind::kTable: {
        const Relation* rel = LookupRelation(f.table);
        if (rel == nullptr) return NotFound("unknown table '" + f.table + "'");
        for (const std::string& n : rel->schema().names()) {
          names->push_back(n);
        }
        return Status::Ok();
      }
      case FromKind::kSubquery: {
        ARC_ASSIGN_OR_RETURN(Schema s, OutputSchema(*f.subquery));
        for (const std::string& n : s.names()) names->push_back(n);
        return Status::Ok();
      }
      case FromKind::kJoin:
        ARC_RETURN_IF_ERROR(ExpandStarNamesItem(*f.left, names));
        return ExpandStarNamesItem(*f.right, names);
    }
    return Status::Ok();
  }

  Result<Relation> EvalSelect(const SelectStmt& stmt) {
    // CTEs.
    std::vector<std::unique_ptr<Relation>> cte_storage;
    const size_t cte_base = ctes_.size();
    for (const CommonTableExpr& cte : stmt.ctes) {
      Result<Relation> rel = stmt.with_recursive && IsSelfReferential(cte)
                                 ? EvalRecursiveCte(cte)
                                 : EvalSelect(*cte.query);
      ARC_RETURN_IF_ERROR(rel.status());
      cte_storage.push_back(std::make_unique<Relation>(std::move(rel).value()));
      ctes_.emplace_back(cte.name, cte_storage.back().get());
    }
    auto result = EvalSelectCore(stmt);
    ctes_.resize(cte_base);
    // Keep CTE storage alive past core evaluation only; results are copies.
    ARC_RETURN_IF_ERROR(result.status());
    Relation out = std::move(result).value();
    // UNION chain.
    if (stmt.union_next) {
      ARC_ASSIGN_OR_RETURN(Relation next, EvalSelect(*stmt.union_next));
      ARC_RETURN_IF_ERROR(out.Append(next));
      if (!stmt.union_all) out = out.Distinct();
    }
    if (!stmt.order_by.empty()) {
      ARC_ASSIGN_OR_RETURN(out, ApplyOrderBy(stmt, std::move(out)));
    }
    return out;
  }

  /// ORDER BY over the result: a column reference resolves against the
  /// output schema by column name (qualified or not); other expressions
  /// are evaluated against the output row. NULLs sort first ascending
  /// (CompareTotal's total order).
  Result<Relation> ApplyOrderBy(const SelectStmt& stmt, Relation out) {
    // Pre-resolve keys that are direct output columns.
    std::vector<int> direct(stmt.order_by.size(), -1);
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      const Expr& e = *stmt.order_by[i].expr;
      if (e.kind == ExprKind::kColumnRef) {
        direct[i] = out.schema().IndexOf(e.column);
        if (direct[i] < 0) {
          return EvalError("ORDER BY column '" + e.column +
                           "' is not in the output");
        }
      }
    }
    struct Keyed {
      Tuple keys;
      Tuple row;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(static_cast<size_t>(out.size()));
    for (const Tuple& row : out.rows()) {
      Row scope_row;
      scope_row.push_back(Bound{"", &out.schema(), row});
      scopes_.push_back(&scope_row);
      Tuple keys;
      Status status = Status::Ok();
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        if (direct[i] >= 0) {
          keys.Append(row.at(direct[i]));
          continue;
        }
        auto v = EvalExpr(*stmt.order_by[i].expr);
        if (!v.ok()) {
          status = v.status();
          break;
        }
        keys.Append(std::move(v).value());
      }
      scopes_.pop_back();
      ARC_RETURN_IF_ERROR(status);
      keyed.push_back({std::move(keys), row});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         int c = a.keys.at(static_cast<int>(i))
                                     .CompareTotal(b.keys.at(static_cast<int>(i)));
                         if (stmt.order_by[i].descending) c = -c;
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    Relation sorted(out.schema());
    for (Keyed& k : keyed) sorted.Add(std::move(k.row));
    return sorted;
  }

  bool IsSelfReferential(const CommonTableExpr& cte) {
    return SelectMentionsTable(*cte.query, cte.name);
  }

  static bool ExprMentionsTable(const Expr& e, const std::string& name) {
    if (e.subquery && SelectMentionsTable(*e.subquery, name)) return true;
    if (e.lhs && ExprMentionsTable(*e.lhs, name)) return true;
    if (e.rhs && ExprMentionsTable(*e.rhs, name)) return true;
    if (e.agg_arg && ExprMentionsTable(*e.agg_arg, name)) return true;
    for (const ExprPtr& c : e.children) {
      if (ExprMentionsTable(*c, name)) return true;
    }
    return false;
  }

  static bool FromMentionsTable(const FromItem& f, const std::string& name) {
    switch (f.kind) {
      case FromKind::kTable:
        return EqualsIgnoreCase(f.table, name);
      case FromKind::kSubquery:
        return SelectMentionsTable(*f.subquery, name);
      case FromKind::kJoin:
        return FromMentionsTable(*f.left, name) ||
               FromMentionsTable(*f.right, name) ||
               (f.on && ExprMentionsTable(*f.on, name));
    }
    return false;
  }

  static bool SelectMentionsTable(const SelectStmt& s,
                                  const std::string& name) {
    for (const FromItemPtr& f : s.from) {
      if (FromMentionsTable(*f, name)) return true;
    }
    for (const SelectItem& item : s.items) {
      if (item.expr && ExprMentionsTable(*item.expr, name)) return true;
    }
    if (s.where && ExprMentionsTable(*s.where, name)) return true;
    if (s.having && ExprMentionsTable(*s.having, name)) return true;
    for (const ExprPtr& g : s.group_by) {
      if (ExprMentionsTable(*g, name)) return true;
    }
    if (s.union_next && SelectMentionsTable(*s.union_next, name)) return true;
    return false;
  }

  Result<Relation> EvalRecursiveCte(const CommonTableExpr& cte) {
    ARC_ASSIGN_OR_RETURN(Schema schema, OutputSchema(*cte.query));
    Relation current(std::move(schema));
    for (int64_t iter = 0;; ++iter) {
      if (iter >= options_.max_recursion_iterations) {
        return EvalError("recursive CTE '" + cte.name +
                         "' did not converge");
      }
      ctes_.emplace_back(cte.name, &current);
      auto next = EvalSelect(*cte.query);
      ctes_.pop_back();
      ARC_RETURN_IF_ERROR(next.status());
      Relation merged = current;
      ARC_RETURN_IF_ERROR(merged.Append(*next));
      merged = merged.Distinct();
      if (merged.size() == current.size()) break;
      current = std::move(merged);
    }
    return current;
  }

  Result<Relation> EvalSelectCore(const SelectStmt& stmt) {
    ARC_ASSIGN_OR_RETURN(std::vector<Row> rows, EvalFromList(stmt));
    // WHERE.
    if (stmt.where) {
      std::vector<Row> kept;
      for (Row& row : rows) {
        scopes_.push_back(&row);
        auto v = EvalPredicate(*stmt.where);
        scopes_.pop_back();
        ARC_RETURN_IF_ERROR(v.status());
        if (data::IsTrue(*v)) kept.push_back(std::move(row));
      }
      rows = std::move(kept);
    }
    ARC_ASSIGN_OR_RETURN(Schema out_schema, OutputSchema(stmt));
    Relation out(out_schema);

    const bool grouped =
        !stmt.group_by.empty() || stmt.having != nullptr || HasAggregate(stmt);
    if (!grouped) {
      for (const Row& row : rows) {
        scopes_.push_back(&row);
        auto tuple = ProjectRow(stmt);
        scopes_.pop_back();
        ARC_RETURN_IF_ERROR(tuple.status());
        out.Add(std::move(tuple).value());
      }
    } else {
      // Group rows.
      std::vector<std::pair<Tuple, std::vector<Row>>> groups;
      if (stmt.group_by.empty()) {
        groups.emplace_back(Tuple{}, std::move(rows));
      } else {
        std::unordered_map<Tuple, size_t, data::TupleHash> index;
        for (Row& row : rows) {
          scopes_.push_back(&row);
          Tuple key;
          Status status = Status::Ok();
          for (const ExprPtr& g : stmt.group_by) {
            auto v = EvalExpr(*g);
            if (!v.ok()) {
              status = v.status();
              break;
            }
            key.Append(std::move(v).value());
          }
          scopes_.pop_back();
          ARC_RETURN_IF_ERROR(status);
          auto [it, inserted] = index.emplace(key, groups.size());
          if (inserted) groups.emplace_back(key, std::vector<Row>{});
          groups[it->second].second.push_back(std::move(row));
        }
      }
      for (auto& [key, group_rows] : groups) {
        (void)key;
        const Row* rep = group_rows.empty() ? nullptr : &group_rows[0];
        static const Row kEmptyRow;
        scopes_.push_back(rep != nullptr ? rep : &kEmptyRow);
        agg_rows_ = &group_rows;
        Status status = Status::Ok();
        bool keep = true;
        if (stmt.having) {
          auto h = EvalPredicate(*stmt.having);
          if (!h.ok()) {
            status = h.status();
          } else {
            keep = data::IsTrue(*h);
          }
        }
        Tuple tuple;
        if (status.ok() && keep) {
          auto t = ProjectRow(stmt);
          if (!t.ok()) {
            status = t.status();
          } else {
            tuple = std::move(t).value();
          }
        }
        agg_rows_ = nullptr;
        scopes_.pop_back();
        ARC_RETURN_IF_ERROR(status);
        if (keep) out.Add(std::move(tuple));
      }
    }
    if (stmt.distinct) out = out.Distinct();
    return out;
  }

  static bool HasAggregate(const SelectStmt& stmt) {
    for (const SelectItem& item : stmt.items) {
      if (item.expr && item.expr->ContainsAggregate()) return true;
    }
    return false;
  }

  Result<Tuple> ProjectRow(const SelectStmt& stmt) {
    Tuple tuple;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        // Append every column of the current scope's bindings.
        const Row& row = *scopes_.back();
        for (const Bound& b : row) {
          for (int i = 0; i < b.schema->size(); ++i) {
            tuple.Append(b.tuple.at(i));
          }
        }
        continue;
      }
      ARC_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr));
      tuple.Append(std::move(v));
    }
    return tuple;
  }

  const data::Database& db_;
  const SqlEvalOptions& options_;
};

}  // namespace

SqlEvaluator::SqlEvaluator(const data::Database& database,
                           SqlEvalOptions options)
    : database_(database), options_(options) {}

Result<data::Relation> SqlEvaluator::Eval(const SelectStmt& stmt) {
  SqlEvalImpl impl(database_, options_);
  return impl.Eval(stmt);
}

Result<data::Relation> SqlEvaluator::EvalQuery(std::string_view sql) {
  ARC_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSelect(sql));
  return Eval(*stmt);
}

Result<data::Database> ExecuteSetupScript(std::string_view script) {
  ARC_ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseScript(script));
  data::Database db;
  for (const Statement& stmt : statements) {
    if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
      db.Create(create->name, Schema(create->columns));
      continue;
    }
    if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
      Relation* rel = db.GetMutable(insert->table);
      if (rel == nullptr) {
        return NotFound("INSERT into unknown table '" + insert->table + "'");
      }
      for (const std::vector<Value>& row : insert->rows) {
        if (static_cast<int>(row.size()) != rel->schema().size()) {
          return InvalidArgument("INSERT width mismatch for '" +
                                 insert->table + "'");
        }
        rel->Add(Tuple(row));
      }
      continue;
    }
    // SELECTs in setup scripts are evaluated and discarded.
    const SelectPtr& select = std::get<SelectPtr>(stmt);
    SqlEvaluator ev(db);
    ARC_RETURN_IF_ERROR(ev.Eval(*select).status());
  }
  return db;
}

}  // namespace arc::sql
