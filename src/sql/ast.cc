#include "sql/ast.h"

#include "common/strings.h"

namespace arc::sql {

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->table = table;
  out->column = column;
  out->literal = literal;
  out->arith_op = arith_op;
  out->cmp_op = cmp_op;
  if (lhs) out->lhs = lhs->Clone();
  if (rhs) out->rhs = rhs->Clone();
  out->children.reserve(children.size());
  for (const ExprPtr& c : children) out->children.push_back(c->Clone());
  out->negated = negated;
  out->agg_func = agg_func;
  if (agg_arg) out->agg_arg = agg_arg->Clone();
  if (subquery) out->subquery = subquery->Clone();
  return out;
}

bool Expr::ContainsAggregate() const {
  switch (kind) {
    case ExprKind::kAggCall:
      return true;
    case ExprKind::kArith:
    case ExprKind::kCmp:
      return (lhs && lhs->ContainsAggregate()) ||
             (rhs && rhs->ContainsAggregate());
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const ExprPtr& c : children) {
        if (c->ContainsAggregate()) return true;
      }
      return false;
    case ExprKind::kNot:
    case ExprKind::kIsNull:
      return lhs && lhs->ContainsAggregate();
    case ExprKind::kInSubquery:
      return lhs && lhs->ContainsAggregate();
    default:
      return false;
  }
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeSqlLiteral(data::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeSqlArith(data::ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArith;
  e->arith_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeSqlCmp(data::CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCmp;
  e->cmp_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeSqlAnd(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAnd;
  e->children = std::move(children);
  return e;
}

ExprPtr MakeSqlOr(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOr;
  e->children = std::move(children);
  return e;
}

ExprPtr MakeSqlNot(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->lhs = std::move(child);
  return e;
}

ExprPtr MakeSqlIsNull(ExprPtr arg, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->lhs = std::move(arg);
  e->negated = negated;
  return e;
}

ExprPtr MakeSqlAgg(AggFunc f, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggCall;
  e->agg_func = f;
  e->agg_arg = std::move(arg);
  return e;
}

ExprPtr MakeSqlExists(SelectPtr subquery, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kExists;
  e->subquery = std::move(subquery);
  e->negated = negated;
  return e;
}

ExprPtr MakeSqlIn(ExprPtr tested, SelectPtr subquery, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInSubquery;
  e->lhs = std::move(tested);
  e->subquery = std::move(subquery);
  e->negated = negated;
  return e;
}

ExprPtr MakeSqlScalarSubquery(SelectPtr subquery) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kScalarSubquery;
  e->subquery = std::move(subquery);
  return e;
}

FromItemPtr FromItem::Clone() const {
  auto out = std::make_unique<FromItem>();
  out->kind = kind;
  out->table = table;
  if (subquery) out->subquery = subquery->Clone();
  out->lateral = lateral;
  out->alias = alias;
  out->join_type = join_type;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  if (on) out->on = on->Clone();
  return out;
}

FromItemPtr MakeFromTable(std::string table, std::string alias) {
  auto f = std::make_unique<FromItem>();
  f->kind = FromKind::kTable;
  f->table = std::move(table);
  f->alias = std::move(alias);
  return f;
}

FromItemPtr MakeFromSubquery(SelectPtr subquery, std::string alias,
                             bool lateral) {
  auto f = std::make_unique<FromItem>();
  f->kind = FromKind::kSubquery;
  f->subquery = std::move(subquery);
  f->alias = std::move(alias);
  f->lateral = lateral;
  return f;
}

FromItemPtr MakeFromJoin(JoinType type, FromItemPtr left, FromItemPtr right,
                         ExprPtr on) {
  auto f = std::make_unique<FromItem>();
  f->kind = FromKind::kJoin;
  f->join_type = type;
  f->left = std::move(left);
  f->right = std::move(right);
  f->on = std::move(on);
  return f;
}

SelectPtr SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->with_recursive = with_recursive;
  for (const CommonTableExpr& cte : ctes) {
    out->ctes.push_back({cte.name, cte.query->Clone()});
  }
  out->distinct = distinct;
  for (const SelectItem& item : items) {
    SelectItem copy;
    copy.star = item.star;
    copy.alias = item.alias;
    if (item.expr) copy.expr = item.expr->Clone();
    out->items.push_back(std::move(copy));
  }
  for (const FromItemPtr& f : from) out->from.push_back(f->Clone());
  if (where) out->where = where->Clone();
  for (const ExprPtr& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  if (union_next) out->union_next = union_next->Clone();
  out->union_all = union_all;
  for (const OrderItem& item : order_by) {
    OrderItem copy;
    copy.expr = item.expr->Clone();
    copy.descending = item.descending;
    out->order_by.push_back(std::move(copy));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

namespace {

int SqlExprPrecedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kOr:
      return 1;
    case ExprKind::kAnd:
      return 2;
    case ExprKind::kNot:
      return 3;
    case ExprKind::kCmp:
    case ExprKind::kIsNull:
    case ExprKind::kInSubquery:
      return 4;
    case ExprKind::kArith:
      switch (e.arith_op) {
        case data::ArithOp::kMul:
        case data::ArithOp::kDiv:
        case data::ArithOp::kMod:
          return 6;
        default:
          return 5;
      }
    default:
      return 7;
  }
}

std::string ExprToSql(const Expr& e);

std::string Child(const Expr& parent, const Expr& child, bool right_side) {
  std::string s = ExprToSql(child);
  const int pp = SqlExprPrecedence(parent);
  const int cp = SqlExprPrecedence(child);
  if (cp < pp || (right_side && cp == pp &&
                  (child.kind == ExprKind::kArith ||
                   child.kind == ExprKind::kCmp))) {
    return "(" + s + ")";
  }
  return s;
}

std::string ExprToSql(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return e.table.empty() ? e.column : e.table + "." + e.column;
    case ExprKind::kLiteral:
      if (e.literal.kind() == data::ValueKind::kNull) return "NULL";
      if (e.literal.kind() == data::ValueKind::kBool) {
        return e.literal.as_bool() ? "TRUE" : "FALSE";
      }
      return e.literal.ToString();
    case ExprKind::kArith:
      return Child(e, *e.lhs, false) + " " + data::ArithOpSymbol(e.arith_op) +
             " " + Child(e, *e.rhs, true);
    case ExprKind::kCmp:
      return Child(e, *e.lhs, false) + " " + data::CmpOpSymbol(e.cmp_op) +
             " " + Child(e, *e.rhs, true);
    case ExprKind::kAnd:
      return JoinMapped(e.children, " AND ", [&](const ExprPtr& c) {
        return Child(e, *c, false);
      });
    case ExprKind::kOr:
      return JoinMapped(e.children, " OR ", [&](const ExprPtr& c) {
        return Child(e, *c, false);
      });
    case ExprKind::kNot:
      return "NOT (" + ExprToSql(*e.lhs) + ")";
    case ExprKind::kIsNull:
      return Child(e, *e.lhs, false) +
             (e.negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kAggCall: {
      switch (e.agg_func) {
        case AggFunc::kCountStar:
          return "count(*)";
        case AggFunc::kCountDistinct:
          return "count(DISTINCT " + ExprToSql(*e.agg_arg) + ")";
        case AggFunc::kSumDistinct:
          return "sum(DISTINCT " + ExprToSql(*e.agg_arg) + ")";
        case AggFunc::kAvgDistinct:
          return "avg(DISTINCT " + ExprToSql(*e.agg_arg) + ")";
        default:
          return std::string(AggFuncName(e.agg_func)) + "(" +
                 ExprToSql(*e.agg_arg) + ")";
      }
    }
    case ExprKind::kExists:
      return std::string(e.negated ? "NOT " : "") + "EXISTS (" +
             ToSql(*e.subquery) + ")";
    case ExprKind::kInSubquery:
      return Child(e, *e.lhs, false) + (e.negated ? " NOT IN (" : " IN (") +
             ToSql(*e.subquery) + ")";
    case ExprKind::kScalarSubquery:
      return "(" + ToSql(*e.subquery) + ")";
  }
  return "?";
}

std::string FromToSql(const FromItem& f) {
  switch (f.kind) {
    case FromKind::kTable:
      return f.alias.empty() || EqualsIgnoreCase(f.alias, f.table)
                 ? f.table
                 : f.table + " AS " + f.alias;
    case FromKind::kSubquery:
      return std::string(f.lateral ? "LATERAL " : "") + "(" +
             ToSql(*f.subquery) + ") AS " + f.alias;
    case FromKind::kJoin: {
      const char* kw = "JOIN";
      switch (f.join_type) {
        case JoinType::kInner:
          kw = "JOIN";
          break;
        case JoinType::kLeft:
          kw = "LEFT JOIN";
          break;
        case JoinType::kFull:
          kw = "FULL JOIN";
          break;
        case JoinType::kCross:
          kw = "CROSS JOIN";
          break;
      }
      std::string out = FromToSql(*f.left);
      // Parenthesize a join on the right side (nesting precedence).
      std::string rhs = FromToSql(*f.right);
      if (f.right->kind == FromKind::kJoin) rhs = "(" + rhs + ")";
      out += " ";
      out += kw;
      out += " ";
      out += rhs;
      if (f.on) out += " ON " + ExprToSql(*f.on);
      return out;
    }
  }
  return "?";
}

}  // namespace

std::string ToSql(const Expr& expr) { return ExprToSql(expr); }

std::string ToSql(const SelectStmt& stmt) {
  std::string out;
  if (!stmt.ctes.empty()) {
    out += stmt.with_recursive ? "WITH RECURSIVE " : "WITH ";
    out += JoinMapped(stmt.ctes, ", ", [](const CommonTableExpr& cte) {
      return cte.name + " AS (" + ToSql(*cte.query) + ")";
    });
    out += " ";
  }
  out += "SELECT ";
  if (stmt.distinct) out += "DISTINCT ";
  out += JoinMapped(stmt.items, ", ", [](const SelectItem& item) {
    if (item.star) return std::string("*");
    std::string s = ExprToSql(*item.expr);
    if (!item.alias.empty()) s += " AS " + item.alias;
    return s;
  });
  if (!stmt.from.empty()) {
    out += " FROM ";
    out += JoinMapped(stmt.from, ", ",
                      [](const FromItemPtr& f) { return FromToSql(*f); });
  }
  if (stmt.where) out += " WHERE " + ExprToSql(*stmt.where);
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    out += JoinMapped(stmt.group_by, ", ",
                      [](const ExprPtr& e) { return ExprToSql(*e); });
  }
  if (stmt.having) out += " HAVING " + ExprToSql(*stmt.having);
  if (stmt.union_next) {
    out += stmt.union_all ? " UNION ALL " : " UNION ";
    out += ToSql(*stmt.union_next);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    out += JoinMapped(stmt.order_by, ", ", [](const SelectStmt::OrderItem& o) {
      return ExprToSql(*o.expr) + (o.descending ? " DESC" : "");
    });
  }
  return out;
}

}  // namespace arc::sql
