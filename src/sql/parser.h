// Recursive-descent parser for the SQL subset (see sql/ast.h). Also parses
// small scripts (CREATE TABLE / INSERT INTO … VALUES / SELECT) so examples
// can load data through SQL.
#ifndef ARC_SQL_PARSER_H_
#define ARC_SQL_PARSER_H_

#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace arc::sql {

Result<SelectPtr> ParseSelect(std::string_view input);
Result<ExprPtr> ParseExpr(std::string_view input);

struct CreateTableStmt {
  std::string name;
  std::vector<std::string> columns;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<data::Value>> rows;
};

using Statement = std::variant<SelectPtr, CreateTableStmt, InsertStmt>;

/// Parses a ';'-separated script of CREATE TABLE / INSERT / SELECT.
Result<std::vector<Statement>> ParseScript(std::string_view input);

}  // namespace arc::sql

#endif  // ARC_SQL_PARSER_H_
