// A direct, independent evaluator for the SQL subset — deliberately *not*
// built on the ARC evaluator, so SQL→ARC translation can be validated by
// differential testing. Implements SQL semantics: bag multiplicity,
// three-valued logic, NULL-on-empty aggregates, EXISTS/IN/scalar
// subqueries with correlation, LATERAL, LEFT/FULL/CROSS joins, GROUP
// BY/HAVING, DISTINCT, UNION [ALL], WITH [RECURSIVE].
#ifndef ARC_SQL_EVAL_H_
#define ARC_SQL_EVAL_H_

#include "common/status.h"
#include "data/database.h"
#include "sql/parser.h"

namespace arc::sql {

struct SqlEvalOptions {
  /// Guard for WITH RECURSIVE fixpoints.
  int64_t max_recursion_iterations = 100000;
};

class SqlEvaluator {
 public:
  explicit SqlEvaluator(const data::Database& database,
                        SqlEvalOptions options = {});

  Result<data::Relation> Eval(const SelectStmt& stmt);

  /// Parses and evaluates one SELECT.
  Result<data::Relation> EvalQuery(std::string_view sql);

 private:
  const data::Database& database_;
  SqlEvalOptions options_;
};

/// Runs a setup script (CREATE TABLE / INSERT) into a fresh database;
/// SELECT statements in the script are evaluated and their results
/// discarded. Useful for examples and tests.
Result<data::Database> ExecuteSetupScript(std::string_view script);

}  // namespace arc::sql

#endif  // ARC_SQL_EVAL_H_
