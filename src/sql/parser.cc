#include "sql/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace arc::sql {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kEnd,
  kIdent,
  kInt,
  kFloat,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  Tok tok = Tok::kEnd;
  std::string text;  // identifier (original case) or string payload
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int column = 1;

  bool IsKeyword(std::string_view kw) const {
    return tok == Tok::kIdent && EqualsIgnoreCase(text, kw);
  }
};

Result<std::vector<Token>> LexSql(std::string_view input) {
  std::vector<Token> out;
  size_t pos = 0;
  int line = 1;
  int column = 1;
  auto advance = [&]() {
    const char c = input[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  };
  auto peek = [&](size_t ahead = 0) {
    return pos + ahead < input.size() ? input[pos + ahead] : '\0';
  };
  while (true) {
    // Skip whitespace and -- comments.
    while (pos < input.size()) {
      if (std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      } else if (peek() == '-' && peek(1) == '-') {
        while (pos < input.size() && peek() != '\n') advance();
      } else {
        break;
      }
    }
    Token t;
    t.line = line;
    t.column = column;
    if (pos >= input.size()) {
      out.push_back(std::move(t));
      return out;
    }
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos < input.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_' || peek() == '$')) {
        ident += advance();
      }
      t.tok = Tok::kIdent;
      t.text = std::move(ident);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_float = false;
      while (pos < input.size() &&
             std::isdigit(static_cast<unsigned char>(peek()))) {
        num += advance();
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        num += advance();
        while (pos < input.size() &&
               std::isdigit(static_cast<unsigned char>(peek()))) {
          num += advance();
        }
      }
      if (is_float) {
        t.tok = Tok::kFloat;
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.tok = Tok::kInt;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
    } else if (c == '\'') {
      advance();
      std::string payload;
      while (pos < input.size() && peek() != '\'') payload += advance();
      if (pos >= input.size()) {
        return ParseError("unterminated string at " + std::to_string(line) +
                          ":" + std::to_string(column));
      }
      advance();
      t.tok = Tok::kString;
      t.text = std::move(payload);
    } else if (c == '"') {
      advance();
      std::string payload;
      while (pos < input.size() && peek() != '"') payload += advance();
      if (pos >= input.size()) {
        return ParseError("unterminated identifier at " +
                          std::to_string(line) + ":" + std::to_string(column));
      }
      advance();
      t.tok = Tok::kIdent;
      t.text = std::move(payload);
    } else {
      advance();
      switch (c) {
        case '(':
          t.tok = Tok::kLParen;
          break;
        case ')':
          t.tok = Tok::kRParen;
          break;
        case ',':
          t.tok = Tok::kComma;
          break;
        case '.':
          t.tok = Tok::kDot;
          break;
        case ';':
          t.tok = Tok::kSemicolon;
          break;
        case '*':
          t.tok = Tok::kStar;
          break;
        case '+':
          t.tok = Tok::kPlus;
          break;
        case '-':
          t.tok = Tok::kMinus;
          break;
        case '/':
          t.tok = Tok::kSlash;
          break;
        case '%':
          t.tok = Tok::kPercent;
          break;
        case '=':
          t.tok = Tok::kEq;
          break;
        case '<':
          if (peek() == '=') {
            advance();
            t.tok = Tok::kLe;
          } else if (peek() == '>') {
            advance();
            t.tok = Tok::kNe;
          } else {
            t.tok = Tok::kLt;
          }
          break;
        case '>':
          if (peek() == '=') {
            advance();
            t.tok = Tok::kGe;
          } else {
            t.tok = Tok::kGt;
          }
          break;
        case '!':
          if (peek() == '=') {
            advance();
            t.tok = Tok::kNe;
            break;
          }
          return ParseError("unexpected '!' at " + std::to_string(line) + ":" +
                            std::to_string(column));
        default:
          return ParseError(std::string("unexpected character '") + c +
                            "' at " + std::to_string(line) + ":" +
                            std::to_string(column));
      }
    }
    out.push_back(std::move(t));
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class SqlParser {
 public:
  explicit SqlParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectPtr> SelectOnly() {
    ARC_ASSIGN_OR_RETURN(SelectPtr s, SelectWithCtes());
    (void)Match(Tok::kSemicolon);
    ARC_RETURN_IF_ERROR(Expect(Tok::kEnd, "end of input"));
    return s;
  }

  Result<ExprPtr> ExprOnly() {
    ARC_ASSIGN_OR_RETURN(ExprPtr e, Expr_());
    ARC_RETURN_IF_ERROR(Expect(Tok::kEnd, "end of input"));
    return e;
  }

  Result<std::vector<Statement>> Script() {
    std::vector<Statement> out;
    while (!Check(Tok::kEnd)) {
      if (CheckKeyword("create")) {
        ARC_ASSIGN_OR_RETURN(CreateTableStmt s, CreateTable_());
        out.emplace_back(std::move(s));
      } else if (CheckKeyword("insert")) {
        ARC_ASSIGN_OR_RETURN(InsertStmt s, Insert_());
        out.emplace_back(std::move(s));
      } else if (CheckKeyword("select") || CheckKeyword("with")) {
        ARC_ASSIGN_OR_RETURN(SelectPtr s, SelectWithCtes());
        out.emplace_back(std::move(s));
      } else {
        return ErrorHere("expected CREATE, INSERT, SELECT, or WITH");
      }
      while (Match(Tok::kSemicolon)) {
      }
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(Tok t, size_t ahead = 0) const { return Peek(ahead).tok == t; }
  bool CheckKeyword(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).IsKeyword(kw);
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(Tok t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(std::string_view kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ErrorHere(const std::string& message) const {
    const Token& t = Peek();
    return ParseError(message + " at " + std::to_string(t.line) + ":" +
                      std::to_string(t.column));
  }

  Status Expect(Tok t, const std::string& what) {
    if (Match(t)) return Status::Ok();
    return ErrorHere("expected " + what);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::Ok();
    return ErrorHere("expected '" + std::string(kw) + "'");
  }

  Result<std::string> Identifier(const std::string& what) {
    if (!Check(Tok::kIdent) || IsReserved(Peek().text)) {
      return ErrorHere("expected " + what);
    }
    return Advance().text;
  }

  static bool IsReserved(const std::string& word) {
    static constexpr const char* kReserved[] = {
        "select", "distinct", "from",  "where",   "group",     "by",
        "having", "as",       "on",    "join",    "inner",     "left",
        "right",  "full",     "outer", "cross",   "lateral",   "exists",
        "in",     "not",      "null",  "is",      "and",       "or",
        "union",  "all",      "with",  "recursive", "true",    "false",
        "create", "table",    "insert", "into",   "values",  "order",
        "asc",    "desc",
    };
    for (const char* r : kReserved) {
      if (EqualsIgnoreCase(word, r)) return true;
    }
    return false;
  }

  /// An identifier usable as a table/column alias (not a reserved word).
  bool CheckNonReservedIdent(size_t ahead = 0) const {
    return Check(Tok::kIdent, ahead) && !IsReserved(Peek(ahead).text);
  }

  // ---- statements -----------------------------------------------------

  Result<CreateTableStmt> CreateTable_() {
    ARC_RETURN_IF_ERROR(ExpectKeyword("create"));
    ARC_RETURN_IF_ERROR(ExpectKeyword("table"));
    CreateTableStmt stmt;
    ARC_ASSIGN_OR_RETURN(stmt.name, Identifier("table name"));
    ARC_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    while (true) {
      ARC_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
      // Optional type name, ignored (untyped storage).
      if (CheckNonReservedIdent()) Advance();
      stmt.columns.push_back(std::move(col));
      if (!Match(Tok::kComma)) break;
    }
    ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
    return stmt;
  }

  Result<InsertStmt> Insert_() {
    ARC_RETURN_IF_ERROR(ExpectKeyword("insert"));
    ARC_RETURN_IF_ERROR(ExpectKeyword("into"));
    InsertStmt stmt;
    ARC_ASSIGN_OR_RETURN(stmt.table, Identifier("table name"));
    ARC_RETURN_IF_ERROR(ExpectKeyword("values"));
    while (true) {
      ARC_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      std::vector<data::Value> row;
      while (true) {
        ARC_ASSIGN_OR_RETURN(data::Value v, LiteralValue());
        row.push_back(std::move(v));
        if (!Match(Tok::kComma)) break;
      }
      ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      stmt.rows.push_back(std::move(row));
      if (!Match(Tok::kComma)) break;
    }
    return stmt;
  }

  Result<data::Value> LiteralValue() {
    bool negate = Match(Tok::kMinus);
    const Token& t = Peek();
    switch (t.tok) {
      case Tok::kInt:
        Advance();
        return data::Value::Int(negate ? -t.int_value : t.int_value);
      case Tok::kFloat:
        Advance();
        return data::Value::Double(negate ? -t.float_value : t.float_value);
      case Tok::kString:
        Advance();
        return data::Value::String(t.text);
      case Tok::kIdent:
        if (t.IsKeyword("null")) {
          Advance();
          return data::Value::Null();
        }
        if (t.IsKeyword("true")) {
          Advance();
          return data::Value::Bool(true);
        }
        if (t.IsKeyword("false")) {
          Advance();
          return data::Value::Bool(false);
        }
        [[fallthrough]];
      default:
        return ErrorHere("expected a literal");
    }
  }

  // ---- SELECT ------------------------------------------------------------

  Result<SelectPtr> SelectWithCtes() {
    auto stmt = std::make_unique<SelectStmt>();
    if (MatchKeyword("with")) {
      stmt->with_recursive = MatchKeyword("recursive");
      while (true) {
        CommonTableExpr cte;
        ARC_ASSIGN_OR_RETURN(cte.name, Identifier("CTE name"));
        ARC_RETURN_IF_ERROR(ExpectKeyword("as"));
        ARC_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
        ARC_ASSIGN_OR_RETURN(cte.query, SelectWithCtes());
        ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        stmt->ctes.push_back(std::move(cte));
        if (!Match(Tok::kComma)) break;
      }
    }
    ARC_ASSIGN_OR_RETURN(SelectPtr core, SelectCore());
    core->with_recursive = stmt->with_recursive;
    core->ctes = std::move(stmt->ctes);
    return core;
  }

  Result<SelectPtr> SelectCore() {
    ARC_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = MatchKeyword("distinct");
    while (true) {
      SelectItem item;
      if (Match(Tok::kStar)) {
        item.star = true;
      } else {
        ARC_ASSIGN_OR_RETURN(item.expr, Expr_());
        if (MatchKeyword("as")) {
          ARC_ASSIGN_OR_RETURN(item.alias, Identifier("column alias"));
        } else if (CheckNonReservedIdent()) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
      if (!Match(Tok::kComma)) break;
    }
    if (MatchKeyword("from")) {
      while (true) {
        ARC_ASSIGN_OR_RETURN(FromItemPtr item, FromItem_());
        stmt->from.push_back(std::move(item));
        if (!Match(Tok::kComma)) break;
      }
    }
    if (MatchKeyword("where")) {
      ARC_ASSIGN_OR_RETURN(stmt->where, Expr_());
    }
    if (CheckKeyword("group")) {
      Advance();
      ARC_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        ARC_ASSIGN_OR_RETURN(ExprPtr key, Expr_());
        stmt->group_by.push_back(std::move(key));
        if (!Match(Tok::kComma)) break;
      }
    }
    if (MatchKeyword("having")) {
      ARC_ASSIGN_OR_RETURN(stmt->having, Expr_());
    }
    if (MatchKeyword("union")) {
      stmt->union_all = MatchKeyword("all");
      ARC_ASSIGN_OR_RETURN(stmt->union_next, SelectCore());
    }
    if (CheckKeyword("order")) {
      Advance();
      ARC_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        SelectStmt::OrderItem item;
        ARC_ASSIGN_OR_RETURN(item.expr, Expr_());
        if (MatchKeyword("desc")) {
          item.descending = true;
        } else {
          (void)MatchKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
        if (!Match(Tok::kComma)) break;
      }
    }
    return stmt;
  }

  // ---- FROM ----------------------------------------------------------------

  Result<FromItemPtr> FromItem_() {
    ARC_ASSIGN_OR_RETURN(FromItemPtr item, FromPrimary());
    while (true) {
      JoinType type;
      bool has_on = true;
      if (MatchKeyword("join")) {
        type = JoinType::kInner;
      } else if (CheckKeyword("inner") && CheckKeyword("join", 1)) {
        Advance();
        Advance();
        type = JoinType::kInner;
      } else if (CheckKeyword("left")) {
        Advance();
        (void)MatchKeyword("outer");
        ARC_RETURN_IF_ERROR(ExpectKeyword("join"));
        type = JoinType::kLeft;
      } else if (CheckKeyword("full")) {
        Advance();
        (void)MatchKeyword("outer");
        ARC_RETURN_IF_ERROR(ExpectKeyword("join"));
        type = JoinType::kFull;
      } else if (CheckKeyword("cross")) {
        Advance();
        ARC_RETURN_IF_ERROR(ExpectKeyword("join"));
        type = JoinType::kCross;
        has_on = false;
      } else {
        break;
      }
      ARC_ASSIGN_OR_RETURN(FromItemPtr right, FromPrimary());
      ExprPtr on;
      if (has_on) {
        ARC_RETURN_IF_ERROR(ExpectKeyword("on"));
        ARC_ASSIGN_OR_RETURN(on, Expr_());
      }
      item = MakeFromJoin(type, std::move(item), std::move(right),
                          std::move(on));
    }
    return item;
  }

  Result<FromItemPtr> FromPrimary() {
    const bool lateral = MatchKeyword("lateral");
    if (Match(Tok::kLParen)) {
      if (CheckKeyword("select") || CheckKeyword("with")) {
        ARC_ASSIGN_OR_RETURN(SelectPtr sub, SelectWithCtes());
        ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        std::string alias;
        (void)MatchKeyword("as");
        if (CheckNonReservedIdent()) {
          alias = Advance().text;
        } else {
          return ErrorHere("subquery in FROM requires an alias");
        }
        return MakeFromSubquery(std::move(sub), std::move(alias), lateral);
      }
      // Parenthesized join tree.
      ARC_ASSIGN_OR_RETURN(FromItemPtr inner, FromItem_());
      ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return inner;
    }
    if (lateral) return ErrorHere("LATERAL requires a subquery");
    ARC_ASSIGN_OR_RETURN(std::string table, Identifier("table name"));
    std::string alias;
    if (MatchKeyword("as")) {
      ARC_ASSIGN_OR_RETURN(alias, Identifier("table alias"));
    } else if (CheckNonReservedIdent()) {
      alias = Advance().text;
    }
    return MakeFromTable(std::move(table), std::move(alias));
  }

  // ---- expressions -----------------------------------------------------

  Result<ExprPtr> Expr_() { return OrExpr(); }

  Result<ExprPtr> OrExpr() {
    ARC_ASSIGN_OR_RETURN(ExprPtr first, AndExpr());
    if (!CheckKeyword("or")) return first;
    std::vector<ExprPtr> children;
    children.push_back(std::move(first));
    while (MatchKeyword("or")) {
      ARC_ASSIGN_OR_RETURN(ExprPtr next, AndExpr());
      children.push_back(std::move(next));
    }
    return MakeSqlOr(std::move(children));
  }

  Result<ExprPtr> AndExpr() {
    ARC_ASSIGN_OR_RETURN(ExprPtr first, NotExpr());
    if (!CheckKeyword("and")) return first;
    std::vector<ExprPtr> children;
    children.push_back(std::move(first));
    while (MatchKeyword("and")) {
      ARC_ASSIGN_OR_RETURN(ExprPtr next, NotExpr());
      children.push_back(std::move(next));
    }
    return MakeSqlAnd(std::move(children));
  }

  Result<ExprPtr> NotExpr() {
    if (CheckKeyword("not") && !CheckKeyword("exists", 1)) {
      Advance();
      ARC_ASSIGN_OR_RETURN(ExprPtr inner, NotExpr());
      return MakeSqlNot(std::move(inner));
    }
    return Comparison();
  }

  Result<ExprPtr> Comparison() {
    if (CheckKeyword("exists") || (CheckKeyword("not") &&
                                   CheckKeyword("exists", 1))) {
      const bool negated = MatchKeyword("not");
      ARC_RETURN_IF_ERROR(ExpectKeyword("exists"));
      ARC_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      ARC_ASSIGN_OR_RETURN(SelectPtr sub, SelectWithCtes());
      ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return MakeSqlExists(std::move(sub), negated);
    }
    ARC_ASSIGN_OR_RETURN(ExprPtr lhs, Additive());
    // IS [NOT] NULL.
    if (MatchKeyword("is")) {
      const bool negated = MatchKeyword("not");
      ARC_RETURN_IF_ERROR(ExpectKeyword("null"));
      return MakeSqlIsNull(std::move(lhs), negated);
    }
    // [NOT] IN (subquery).
    if (CheckKeyword("in") ||
        (CheckKeyword("not") && CheckKeyword("in", 1))) {
      const bool negated = MatchKeyword("not");
      ARC_RETURN_IF_ERROR(ExpectKeyword("in"));
      ARC_RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      ARC_ASSIGN_OR_RETURN(SelectPtr sub, SelectWithCtes());
      ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return MakeSqlIn(std::move(lhs), std::move(sub), negated);
    }
    data::CmpOp op;
    switch (Peek().tok) {
      case Tok::kEq:
        op = data::CmpOp::kEq;
        break;
      case Tok::kNe:
        op = data::CmpOp::kNe;
        break;
      case Tok::kLt:
        op = data::CmpOp::kLt;
        break;
      case Tok::kLe:
        op = data::CmpOp::kLe;
        break;
      case Tok::kGt:
        op = data::CmpOp::kGt;
        break;
      case Tok::kGe:
        op = data::CmpOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    ARC_ASSIGN_OR_RETURN(ExprPtr rhs, Additive());
    return MakeSqlCmp(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> Additive() {
    ARC_ASSIGN_OR_RETURN(ExprPtr lhs, Multiplicative());
    while (Check(Tok::kPlus) || Check(Tok::kMinus)) {
      const data::ArithOp op =
          Check(Tok::kPlus) ? data::ArithOp::kAdd : data::ArithOp::kSub;
      Advance();
      ARC_ASSIGN_OR_RETURN(ExprPtr rhs, Multiplicative());
      lhs = MakeSqlArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> Multiplicative() {
    ARC_ASSIGN_OR_RETURN(ExprPtr lhs, Primary());
    while (Check(Tok::kStar) || Check(Tok::kSlash) || Check(Tok::kPercent)) {
      data::ArithOp op = data::ArithOp::kMul;
      if (Check(Tok::kSlash)) op = data::ArithOp::kDiv;
      if (Check(Tok::kPercent)) op = data::ArithOp::kMod;
      Advance();
      ARC_ASSIGN_OR_RETURN(ExprPtr rhs, Primary());
      lhs = MakeSqlArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> Primary() {
    const Token& t = Peek();
    switch (t.tok) {
      case Tok::kInt:
        Advance();
        return MakeSqlLiteral(data::Value::Int(t.int_value));
      case Tok::kFloat:
        Advance();
        return MakeSqlLiteral(data::Value::Double(t.float_value));
      case Tok::kString:
        Advance();
        return MakeSqlLiteral(data::Value::String(t.text));
      case Tok::kMinus: {
        Advance();
        ARC_ASSIGN_OR_RETURN(ExprPtr inner, Primary());
        if (inner->kind == ExprKind::kLiteral && inner->literal.is_numeric()) {
          if (inner->literal.kind() == data::ValueKind::kInt) {
            return MakeSqlLiteral(data::Value::Int(-inner->literal.as_int()));
          }
          return MakeSqlLiteral(
              data::Value::Double(-inner->literal.as_double()));
        }
        return MakeSqlArith(data::ArithOp::kSub,
                            MakeSqlLiteral(data::Value::Int(0)),
                            std::move(inner));
      }
      case Tok::kLParen: {
        Advance();
        if (CheckKeyword("select") || CheckKeyword("with")) {
          ARC_ASSIGN_OR_RETURN(SelectPtr sub, SelectWithCtes());
          ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          return MakeSqlScalarSubquery(std::move(sub));
        }
        ARC_ASSIGN_OR_RETURN(ExprPtr inner, Expr_());
        ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        return inner;
      }
      case Tok::kIdent: {
        if (t.IsKeyword("null")) {
          Advance();
          return MakeSqlLiteral(data::Value::Null());
        }
        if (t.IsKeyword("true")) {
          Advance();
          return MakeSqlLiteral(data::Value::Bool(true));
        }
        if (t.IsKeyword("false")) {
          Advance();
          return MakeSqlLiteral(data::Value::Bool(false));
        }
        // Aggregate call?
        auto agg = AggFuncFromName(t.text);
        if (agg.has_value() && Check(Tok::kLParen, 1)) {
          Advance();
          Advance();
          if (Match(Tok::kStar)) {
            ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
            if (*agg != AggFunc::kCount && *agg != AggFunc::kCountStar) {
              return ErrorHere("only count accepts '*'");
            }
            return MakeSqlAgg(AggFunc::kCountStar, nullptr);
          }
          const bool distinct = MatchKeyword("distinct");
          ARC_ASSIGN_OR_RETURN(ExprPtr arg, Expr_());
          ARC_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          AggFunc f = *agg;
          if (distinct) {
            switch (f) {
              case AggFunc::kCount:
                f = AggFunc::kCountDistinct;
                break;
              case AggFunc::kSum:
                f = AggFunc::kSumDistinct;
                break;
              case AggFunc::kAvg:
                f = AggFunc::kAvgDistinct;
                break;
              case AggFunc::kMin:
              case AggFunc::kMax:
                break;  // DISTINCT is a no-op for min/max
              default:
                return ErrorHere("DISTINCT not supported for this aggregate");
            }
          }
          return MakeSqlAgg(f, std::move(arg));
        }
        if (IsReserved(t.text)) return ErrorHere("expected an expression");
        // Column reference.
        Advance();
        if (Match(Tok::kDot)) {
          if (!Check(Tok::kIdent)) return ErrorHere("expected a column name");
          const std::string column = Advance().text;
          return MakeColumnRef(t.text, column);
        }
        return MakeColumnRef("", t.text);
      }
      default:
        return ErrorHere("expected an expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectPtr> ParseSelect(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(input));
  return SqlParser(std::move(tokens)).SelectOnly();
}

Result<ExprPtr> ParseExpr(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(input));
  return SqlParser(std::move(tokens)).ExprOnly();
}

Result<std::vector<Statement>> ParseScript(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(input));
  return SqlParser(std::move(tokens)).Script();
}

}  // namespace arc::sql
