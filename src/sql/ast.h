// AST for the SQL subset the paper's figures use: SELECT [DISTINCT] …
// FROM (tables, subqueries, INNER/LEFT/FULL/CROSS joins, LATERAL) …
// WHERE … GROUP BY … HAVING …, UNION [ALL], scalar subqueries,
// [NOT] EXISTS, [NOT] IN, IS [NOT] NULL, WITH [RECURSIVE] CTEs.
//
// This is deliberately a *surface* syntax tree (what the paper contrasts
// with an ALT): joins live under the select's FROM list, name resolution is
// implicit, and aggregation is attached to the projection — exactly the
// shape the SQL→ARC translator must abstract away from.
#ifndef ARC_SQL_AST_H_
#define ARC_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arc/ast.h"  // AggFunc
#include "data/value.h"

namespace arc::sql {

struct SelectStmt;
using SelectPtr = std::unique_ptr<SelectStmt>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kColumnRef,       // [table.]column
  kLiteral,
  kArith,           // lhs ⊗ rhs
  kCmp,             // lhs op rhs
  kAnd,
  kOr,
  kNot,
  kIsNull,          // arg IS [NOT] NULL
  kAggCall,         // sum(expr), count(*), count(DISTINCT expr)
  kExists,          // [NOT] EXISTS (subquery)
  kInSubquery,      // expr [NOT] IN (subquery)
  kScalarSubquery,  // (subquery) used as a value
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef
  std::string table;  // may be empty (unqualified)
  std::string column;

  // kLiteral
  data::Value literal;

  // kArith / kCmp / binary connectives
  data::ArithOp arith_op = data::ArithOp::kAdd;
  data::CmpOp cmp_op = data::CmpOp::kEq;
  ExprPtr lhs;
  ExprPtr rhs;

  // kAnd / kOr
  std::vector<ExprPtr> children;

  // kNot / kIsNull (arg in lhs)
  bool negated = false;  // IS NOT NULL / NOT EXISTS / NOT IN

  // kAggCall
  AggFunc agg_func = AggFunc::kCount;
  ExprPtr agg_arg;  // null for count(*)

  // kExists / kInSubquery / kScalarSubquery (tested expr in lhs for IN)
  SelectPtr subquery;

  ExprPtr Clone() const;
  bool ContainsAggregate() const;  // not descending into subqueries
};

ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeSqlLiteral(data::Value v);
ExprPtr MakeSqlArith(data::ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeSqlCmp(data::CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeSqlAnd(std::vector<ExprPtr> children);
ExprPtr MakeSqlOr(std::vector<ExprPtr> children);
ExprPtr MakeSqlNot(ExprPtr child);
ExprPtr MakeSqlIsNull(ExprPtr arg, bool negated);
ExprPtr MakeSqlAgg(AggFunc f, ExprPtr arg);
ExprPtr MakeSqlExists(SelectPtr subquery, bool negated);
ExprPtr MakeSqlIn(ExprPtr tested, SelectPtr subquery, bool negated);
ExprPtr MakeSqlScalarSubquery(SelectPtr subquery);

// ---------------------------------------------------------------------------
// FROM items
// ---------------------------------------------------------------------------

struct FromItem;
using FromItemPtr = std::unique_ptr<FromItem>;

enum class FromKind { kTable, kSubquery, kJoin };
enum class JoinType { kInner, kLeft, kFull, kCross };

struct FromItem {
  FromKind kind = FromKind::kTable;

  // kTable
  std::string table;

  // kSubquery
  SelectPtr subquery;
  bool lateral = false;

  // kTable / kSubquery
  std::string alias;  // empty ⇒ table name is the alias

  // kJoin
  JoinType join_type = JoinType::kInner;
  FromItemPtr left;
  FromItemPtr right;
  ExprPtr on;  // null for CROSS

  FromItemPtr Clone() const;
  /// The name this item is referenced by (alias or table name); empty for
  /// joins.
  const std::string& BindingName() const {
    return alias.empty() ? table : alias;
  }
};

FromItemPtr MakeFromTable(std::string table, std::string alias);
FromItemPtr MakeFromSubquery(SelectPtr subquery, std::string alias,
                             bool lateral);
FromItemPtr MakeFromJoin(JoinType type, FromItemPtr left, FromItemPtr right,
                         ExprPtr on);

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;       // null when star
  std::string alias;  // output column name; may be empty
  bool star = false;  // SELECT *
};

struct CommonTableExpr {
  std::string name;
  SelectPtr query;
};

struct SelectStmt {
  // WITH [RECURSIVE] name AS (…) — attached to the outermost select.
  bool with_recursive = false;
  std::vector<CommonTableExpr> ctes;

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<FromItemPtr> from;  // comma list (cross product)
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;

  // UNION [ALL] chained select.
  SelectPtr union_next;
  bool union_all = false;

  // ORDER BY (presentation-level, §5: ordering is outside the relational
  // core; the SQL substrate supports it, the ARC translator rejects it).
  struct OrderItem {
    ExprPtr expr;
    bool descending = false;
  };
  std::vector<OrderItem> order_by;

  SelectPtr Clone() const;
};

/// Renders the statement back to SQL text (parseable by the parser).
std::string ToSql(const SelectStmt& stmt);
std::string ToSql(const Expr& expr);

}  // namespace arc::sql

#endif  // ARC_SQL_AST_H_
