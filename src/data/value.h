// Value: the scalar domain of the library (null, bool, int64, double,
// string), together with three-valued-logic booleans (TriBool) and the
// comparison/arithmetic semantics that the evaluators share.
//
// Equality vs. SQL-equality. `operator==` / `Equals` is *structural*
// equality in which null == null holds; this is the notion used for
// grouping, deduplication, and result comparison (matching SQL's GROUP BY /
// DISTINCT treatment of nulls). Query *predicates* instead go through
// `Compare`, which is parameterized by the null-logic convention and
// returns a TriBool (§2.6, §2.10 of the paper).
#ifndef ARC_DATA_VALUE_H_
#define ARC_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace arc::data {

enum class ValueKind { kNull, kBool, kInt, kDouble, kString };

/// Three-valued logic truth value (SQL's true/false/unknown).
enum class TriBool { kFalse = 0, kUnknown = 1, kTrue = 2 };

TriBool TriAnd(TriBool a, TriBool b);
TriBool TriOr(TriBool a, TriBool b);
TriBool TriNot(TriBool a);
inline TriBool FromBool(bool b) { return b ? TriBool::kTrue : TriBool::kFalse; }
/// Collapses unknown to false (the final WHERE-clause filter rule).
inline bool IsTrue(TriBool t) { return t == TriBool::kTrue; }
const char* TriBoolName(TriBool t);

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpSymbol(CmpOp op);
CmpOp FlipCmpOp(CmpOp op);    // argument order swap: a < b  ==  b > a
CmpOp NegateCmpOp(CmpOp op);  // logical negation: !(a < b)  ==  a >= b

enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
const char* ArithOpSymbol(ArithOp op);

/// How comparisons involving null behave (a *convention*, §2.6).
enum class NullLogic {
  kThreeValued,  // SQL: any comparison with null yields unknown
  kTwoValued,    // collapse: any comparison with null yields false
};

class Value {
 public:
  /// Default-constructs the null value.
  Value() : rep_(NullRep{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }

  ValueKind kind() const;
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_numeric() const {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }

  // Accessors assert the kind in debug builds.
  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric value widened to double (int or double kinds only).
  double ToDouble() const;

  /// Structural equality; null equals null. Ints and doubles representing
  /// the same number are equal (2 == 2.0).
  bool Equals(const Value& other) const;
  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }

  /// Total order for canonical sorting (null < bool < numeric < string).
  /// Returns <0, 0, >0. Not a query-level comparison.
  int CompareTotal(const Value& other) const;

  /// Structural hash consistent with Equals.
  size_t Hash() const;

  /// Display form: null, true/false, 42, 2.5, 'text'.
  std::string ToString() const;

 private:
  struct NullRep {};
  using Rep = std::variant<NullRep, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

/// Query-level comparison under the given null-logic convention. Comparing
/// a string with a number is an error; numeric kinds inter-compare.
Result<TriBool> Compare(CmpOp op, const Value& a, const Value& b,
                        NullLogic logic);

/// Arithmetic. Any null operand yields null (both conventions). int⊗int
/// stays int (kDiv truncates, as in SQL integer division); any double
/// operand widens to double. Division or modulo by zero is an error.
Result<Value> Arith(ArithOp op, const Value& a, const Value& b);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace arc::data

#endif  // ARC_DATA_VALUE_H_
