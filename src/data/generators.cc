#include "data/generators.h"

#include <algorithm>
#include <vector>

namespace arc::data {

uint64_t Rng::Next() {
  // splitmix64
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Rng::Below(int64_t bound) {
  if (bound <= 0) return 0;
  return static_cast<int64_t>(Next() % static_cast<uint64_t>(bound));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

Database CountBugInstance() {
  Database db;
  Relation r(Schema{"id", "q"});
  r.Add({Value::Int(9), Value::Int(0)});
  db.Put("R", std::move(r));
  db.Put("S", Relation(Schema{"id", "d"}));
  return db;
}

Database ConventionInstance() {
  Database db;
  Relation r(Schema{"ak", "b"});
  r.Add({Value::Int(1), Value::Int(2)});
  db.Put("R", std::move(r));
  db.Put("S", Relation(Schema{"a", "b"}));
  return db;
}

Database TrcInstance(int64_t rows, int64_t domain, double c_zero_fraction,
                     uint64_t seed) {
  Rng rng(seed);
  Database db;
  Relation r(Schema{"A", "B"});
  for (int64_t i = 0; i < rows; ++i) {
    r.Add({Value::Int(rng.Below(domain)), Value::Int(rng.Below(domain))});
  }
  Relation s(Schema{"B", "C"});
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t c = rng.NextDouble() < c_zero_fraction ? 0 : 1 + rng.Below(9);
    s.Add({Value::Int(rng.Below(domain)), Value::Int(c)});
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  return db;
}

Database EmployeeInstance(int64_t n_empl, int64_t n_depts, int64_t sal_lo,
                          int64_t sal_hi, uint64_t seed) {
  Rng rng(seed);
  Database db;
  Relation r(Schema{"empl", "dept"});
  Relation s(Schema{"empl", "sal"});
  for (int64_t e = 0; e < n_empl; ++e) {
    r.Add({Value::Int(e), Value::Int(rng.Below(n_depts))});
    const int64_t span = sal_hi > sal_lo ? sal_hi - sal_lo + 1 : 1;
    s.Add({Value::Int(e), Value::Int(sal_lo + rng.Below(span))});
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  return db;
}

Database LikesInstance(int64_t n_drinkers, int64_t n_beers, double p,
                       double clone_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> sets(static_cast<size_t>(n_drinkers));
  for (int64_t d = 0; d < n_drinkers; ++d) {
    const bool clone = d > 0 && rng.NextDouble() < clone_fraction;
    if (clone) {
      sets[static_cast<size_t>(d)] = sets[static_cast<size_t>(rng.Below(d))];
      continue;
    }
    for (int64_t b = 0; b < n_beers; ++b) {
      if (rng.NextDouble() < p) sets[static_cast<size_t>(d)].push_back(b);
    }
    // Guarantee non-empty sets so every drinker appears in Likes.
    if (sets[static_cast<size_t>(d)].empty()) {
      sets[static_cast<size_t>(d)].push_back(rng.Below(n_beers));
    }
  }
  Relation likes(Schema{"drinker", "beer"});
  for (int64_t d = 0; d < n_drinkers; ++d) {
    for (int64_t b : sets[static_cast<size_t>(d)]) {
      likes.Add({Value::Int(d), Value::Int(b)});
    }
  }
  Database db;
  db.Put("Likes", std::move(likes));
  return db;
}

Database ParentChain(int64_t n) {
  Relation p(Schema{"s", "t"});
  for (int64_t i = 0; i + 1 < n; ++i) {
    p.Add({Value::Int(i), Value::Int(i + 1)});
  }
  Database db;
  db.Put("P", std::move(p));
  return db;
}

Database ParentTree(int64_t n, int64_t fanout) {
  Relation p(Schema{"s", "t"});
  for (int64_t child = 1; child < n; ++child) {
    p.Add({Value::Int((child - 1) / fanout), Value::Int(child)});
  }
  Database db;
  db.Put("P", std::move(p));
  return db;
}

Database ParentRandom(int64_t n, int64_t edges, uint64_t seed) {
  Rng rng(seed);
  Relation p(Schema{"s", "t"});
  for (int64_t i = 0; i < edges; ++i) {
    // Edges only go from smaller to larger ids: acyclic by construction.
    const int64_t a = rng.Below(n - 1);
    const int64_t b = a + 1 + rng.Below(n - a - 1);
    p.Add({Value::Int(a), Value::Int(b)});
  }
  Database db;
  db.Put("P", p.Distinct());
  return db;
}

Relation SparseMatrix(int64_t n, double density, uint64_t seed) {
  Rng rng(seed);
  Relation m(Schema{"row", "col", "val"});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (rng.NextDouble() < density) {
        m.Add({Value::Int(i), Value::Int(j), Value::Int(1 + rng.Below(9))});
      }
    }
  }
  return m;
}

Relation RandomBinary(int64_t rows, int64_t domain, double duplicate_fraction,
                      double null_fraction, uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema{"A", "B"});
  for (int64_t i = 0; i < rows; ++i) {
    if (i > 0 && rng.NextDouble() < duplicate_fraction) {
      r.Add(r.rows()[static_cast<size_t>(rng.Below(i))]);
      continue;
    }
    Value b = rng.NextDouble() < null_fraction ? Value::Null()
                                               : Value::Int(rng.Below(domain));
    r.Add({Value::Int(rng.Below(domain)), std::move(b)});
  }
  return r;
}

Relation RandomUnary(int64_t rows, int64_t domain, double null_fraction,
                     uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema{"A"});
  for (int64_t i = 0; i < rows; ++i) {
    Value a = rng.NextDouble() < null_fraction ? Value::Null()
                                               : Value::Int(rng.Below(domain));
    r.Add({std::move(a)});
  }
  return r;
}

Database InventoryInstance(int64_t n, int64_t per_id, bool satisfy_all,
                           uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema{"id", "q"});
  Relation s(Schema{"id", "d"});
  for (int64_t id = 0; id < n; ++id) {
    int64_t deliveries = per_id > 0 ? 1 + rng.Below(2 * per_id) : 0;
    int64_t q = deliveries;
    if (!satisfy_all && rng.NextDouble() < 0.5) q = deliveries + 1 + rng.Below(3);
    r.Add({Value::Int(id), Value::Int(q)});
    for (int64_t d = 0; d < deliveries; ++d) {
      s.Add({Value::Int(id), Value::Int(rng.Below(1000))});
    }
  }
  Database db;
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  return db;
}

}  // namespace arc::data
