// Schema, Tuple, Relation: the flat relational substrate (1NF). A Relation
// is physically a bag (ordered vector of rows); whether it denotes a set or
// a bag is decided by the interpretation convention (§2.7), so set-oriented
// operations (Distinct, set-equality) are provided alongside bag ones.
#ifndef ARC_DATA_RELATION_H_
#define ARC_DATA_RELATION_H_

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace arc::data {

/// Named attributes in declaration order (the named perspective, §2.1).
/// Attribute lookup is case-insensitive; display preserves original case.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {
    BuildIndex();
  }
  Schema(std::initializer_list<const char*> names);

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(int i) const { return names_[static_cast<size_t>(i)]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of `attr` (case-insensitive) or -1.
  int IndexOf(std::string_view attr) const;
  bool Has(std::string_view attr) const { return IndexOf(attr) >= 0; }

  /// Slot projection: for each of `names`, the index of that attribute in
  /// this schema (-1 when absent). Compiled once by the slot binder /
  /// callers and applied per row, so hot loops never re-resolve names.
  std::vector<int> Projection(const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const;

  /// "(A, B, C)"
  std::string ToString() const;

 private:
  void BuildIndex();

  std::vector<std::string> names_;
  /// Lowered attribute name → index, built at construction so that hot-path
  /// lookups avoid a case-insensitive linear scan. First occurrence wins,
  /// matching the scan order IndexOf used to have.
  std::unordered_map<std::string, int> lower_index_;
};

/// A row of values. Width must match the owning relation's schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int size() const { return static_cast<int>(values_.size()); }
  const Value& at(int i) const { return values_[static_cast<size_t>(i)]; }
  Value& at(int i) {
    hash_valid_ = false;  // caller may mutate through the reference
    return values_[static_cast<size_t>(i)];
  }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) {
    hash_valid_ = false;
    values_.push_back(std::move(v));
  }

  bool operator==(const Tuple& other) const;
  /// Lexicographic total order (uses Value::CompareTotal).
  int CompareTotal(const Tuple& other) const;
  /// Structural hash, cached after the first call (tuples are hashed many
  /// times by row indexes, dedup sets, and group partitioning; the cache is
  /// invalidated by Append and mutable at()).
  size_t Hash() const;

  /// "(1, 'a', null)"
  std::string ToString() const;

 private:
  std::vector<Value> values_;
  mutable size_t hash_ = 0;
  mutable bool hash_valid_ = false;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  int64_t size() const { return static_cast<int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  void Add(Tuple row);
  /// Convenience for tests/generators; widths are checked in debug builds.
  void Add(std::initializer_list<Value> row) { Add(Tuple(row)); }

  /// Appends all rows of `other` (schemas must be union-compatible in
  /// width; attribute names of *this win).
  Status Append(const Relation& other);

  /// Enables a maintained whole-row hash index. Subsequent Add/Append keep
  /// it current, Contains becomes an O(1) probe, and AddUnique is available.
  /// Used for fixpoint accumulators and other set-like relations.
  void EnableRowIndex();
  bool has_row_index() const { return row_indexed_; }

  /// Adds `row` unless an equal row is already present; returns true when
  /// inserted. Enables the row index on first use.
  bool AddUnique(Tuple row);

  /// True if `row` occurs at least once (structural equality). O(1) when
  /// the row index is enabled, linear otherwise.
  bool Contains(const Tuple& row) const;

  /// Deduplicated copy (first occurrence order preserved).
  Relation Distinct() const;

  /// Copy with rows in canonical total order (for stable printing/diffing).
  Relation Sorted() const;

  /// Bag equality: same multiset of rows (schema widths must match; names
  /// are ignored, as positional output comparison is what query results
  /// need).
  bool EqualsBag(const Relation& other) const;
  /// Set equality: same set of rows ignoring multiplicity.
  bool EqualsSet(const Relation& other) const;

  /// ASCII table: header, separator, rows (canonical order not applied).
  std::string ToString() const;

 private:
  bool IndexedContains(const Tuple& row) const;

  Schema schema_;
  std::vector<Tuple> rows_;
  /// Optional maintained hash index: tuple hash → ids of rows with that
  /// hash (collisions resolved by structural comparison).
  std::unordered_map<size_t, std::vector<uint32_t>> row_index_;
  bool row_indexed_ = false;
};

}  // namespace arc::data

#endif  // ARC_DATA_RELATION_H_
