#include "data/value.h"

#include <cmath>
#include <functional>

#include "common/strings.h"

namespace arc::data {

TriBool TriAnd(TriBool a, TriBool b) {
  // Kleene conjunction = minimum under false < unknown < true.
  return a < b ? a : b;
}

TriBool TriOr(TriBool a, TriBool b) {
  // Kleene disjunction = maximum.
  return a > b ? a : b;
}

TriBool TriNot(TriBool a) {
  switch (a) {
    case TriBool::kFalse:
      return TriBool::kTrue;
    case TriBool::kTrue:
      return TriBool::kFalse;
    case TriBool::kUnknown:
      return TriBool::kUnknown;
  }
  return TriBool::kUnknown;
}

const char* TriBoolName(TriBool t) {
  switch (t) {
    case TriBool::kFalse:
      return "false";
    case TriBool::kUnknown:
      return "unknown";
    case TriBool::kTrue:
      return "true";
  }
  return "?";
}

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp FlipCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

CmpOp NegateCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

const char* ArithOpSymbol(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

ValueKind Value::kind() const {
  switch (rep_.index()) {
    case 0:
      return ValueKind::kNull;
    case 1:
      return ValueKind::kBool;
    case 2:
      return ValueKind::kInt;
    case 3:
      return ValueKind::kDouble;
    default:
      return ValueKind::kString;
  }
}

double Value::ToDouble() const {
  if (kind() == ValueKind::kInt) return static_cast<double>(as_int());
  return as_double();
}

bool Value::Equals(const Value& other) const {
  const ValueKind k1 = kind();
  const ValueKind k2 = other.kind();
  if (k1 == ValueKind::kNull || k2 == ValueKind::kNull) return k1 == k2;
  if (is_numeric() && other.is_numeric()) {
    if (k1 == ValueKind::kInt && k2 == ValueKind::kInt)
      return as_int() == other.as_int();
    return ToDouble() == other.ToDouble();
  }
  if (k1 != k2) return false;
  if (k1 == ValueKind::kBool) return as_bool() == other.as_bool();
  return as_string() == other.as_string();
}

int Value::CompareTotal(const Value& other) const {
  auto rank = [](const Value& v) {
    switch (v.kind()) {
      case ValueKind::kNull:
        return 0;
      case ValueKind::kBool:
        return 1;
      case ValueKind::kInt:
      case ValueKind::kDouble:
        return 2;
      case ValueKind::kString:
        return 3;
    }
    return 4;
  };
  const int r1 = rank(*this);
  const int r2 = rank(other);
  if (r1 != r2) return r1 < r2 ? -1 : 1;
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool: {
      const int a = as_bool() ? 1 : 0;
      const int b = other.as_bool() ? 1 : 0;
      return a - b;
    }
    case ValueKind::kInt:
    case ValueKind::kDouble: {
      if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
        const int64_t a = as_int();
        const int64_t b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = ToDouble();
      const double b = other.ToDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueKind::kString:
      return as_string().compare(other.as_string());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueKind::kBool:
      return as_bool() ? 0x7f4a7c15 : 0x15c47f4a;
    case ValueKind::kInt:
      // Hash ints through double when losslessly representable so that
      // 2 and 2.0 (which are Equals) share a hash.
      if (static_cast<int64_t>(static_cast<double>(as_int())) == as_int()) {
        return std::hash<double>()(static_cast<double>(as_int()));
      }
      return std::hash<int64_t>()(as_int());
    case ValueKind::kDouble:
      return std::hash<double>()(as_double());
    case ValueKind::kString:
      return std::hash<std::string>()(as_string());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return as_bool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(as_int());
    case ValueKind::kDouble:
      return FormatDouble(as_double());
    case ValueKind::kString:
      return "'" + as_string() + "'";
  }
  return "?";
}

namespace {

// Comparison of two non-null values of compatible kinds; <0 / 0 / >0.
Result<int> CompareNonNull(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.kind() == ValueKind::kInt && b.kind() == ValueKind::kInt) {
      const int64_t x = a.as_int();
      const int64_t y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.ToDouble();
    const double y = b.ToDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.kind() == ValueKind::kString && b.kind() == ValueKind::kString) {
    const int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.kind() == ValueKind::kBool && b.kind() == ValueKind::kBool) {
    const int x = a.as_bool() ? 1 : 0;
    const int y = b.as_bool() ? 1 : 0;
    return x - y;
  }
  return EvalError("cannot compare " + a.ToString() + " with " + b.ToString());
}

}  // namespace

Result<TriBool> Compare(CmpOp op, const Value& a, const Value& b,
                        NullLogic logic) {
  if (a.is_null() || b.is_null()) {
    return logic == NullLogic::kThreeValued ? TriBool::kUnknown
                                            : TriBool::kFalse;
  }
  ARC_ASSIGN_OR_RETURN(int c, CompareNonNull(a, b));
  switch (op) {
    case CmpOp::kEq:
      return FromBool(c == 0);
    case CmpOp::kNe:
      return FromBool(c != 0);
    case CmpOp::kLt:
      return FromBool(c < 0);
    case CmpOp::kLe:
      return FromBool(c <= 0);
    case CmpOp::kGt:
      return FromBool(c > 0);
    case CmpOp::kGe:
      return FromBool(c >= 0);
  }
  return EvalError("bad comparison operator");
}

Result<Value> Arith(ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return EvalError("arithmetic requires numeric operands, got " +
                     a.ToString() + " " + std::string(ArithOpSymbol(op)) +
                     " " + b.ToString());
  }
  const bool both_int =
      a.kind() == ValueKind::kInt && b.kind() == ValueKind::kInt;
  if (both_int) {
    const int64_t x = a.as_int();
    const int64_t y = b.as_int();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int(x + y);
      case ArithOp::kSub:
        return Value::Int(x - y);
      case ArithOp::kMul:
        return Value::Int(x * y);
      case ArithOp::kDiv:
        if (y == 0) return EvalError("integer division by zero");
        return Value::Int(x / y);
      case ArithOp::kMod:
        if (y == 0) return EvalError("modulo by zero");
        return Value::Int(x % y);
    }
  }
  const double x = a.ToDouble();
  const double y = b.ToDouble();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(x + y);
    case ArithOp::kSub:
      return Value::Double(x - y);
    case ArithOp::kMul:
      return Value::Double(x * y);
    case ArithOp::kDiv:
      if (y == 0) return EvalError("division by zero");
      return Value::Double(x / y);
    case ArithOp::kMod:
      if (y == 0) return EvalError("modulo by zero");
      return Value::Double(std::fmod(x, y));
  }
  return EvalError("bad arithmetic operator");
}

}  // namespace arc::data
