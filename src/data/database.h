// Database: a catalog of named base relations (the extensional database).
// Relation-name lookup is case-insensitive; the display name preserves the
// case used at creation.
#ifndef ARC_DATA_DATABASE_H_
#define ARC_DATA_DATABASE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/relation.h"

namespace arc::data {

class Database {
 public:
  Database() = default;

  /// Registers (or replaces) a base relation under `name`.
  void Put(const std::string& name, Relation relation);

  /// Creates an empty relation with `schema` under `name`.
  void Create(const std::string& name, Schema schema) {
    Put(name, Relation(std::move(schema)));
  }

  bool Has(std::string_view name) const;

  /// Looks up a relation; NotFound if absent.
  Result<Relation> Get(std::string_view name) const;

  /// Pointer access without copying; nullptr if absent. Stable until the
  /// database is mutated.
  const Relation* GetPtr(std::string_view name) const;

  /// Mutable access for incremental loading; nullptr if absent.
  Relation* GetMutable(std::string_view name);

  /// Registered names in insertion order (display case).
  std::vector<std::string> Names() const;

  int64_t relation_count() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    std::string name;
    Relation relation;
  };
  int Find(std::string_view name) const;
  std::vector<Entry> entries_;
};

}  // namespace arc::data

#endif  // ARC_DATA_DATABASE_H_
