#include "data/relation.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace arc::data {

Schema::Schema(std::initializer_list<const char*> names) {
  for (const char* n : names) names_.emplace_back(n);
  BuildIndex();
}

void Schema::BuildIndex() {
  lower_index_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    lower_index_.emplace(ToLower(names_[i]), static_cast<int>(i));
  }
}

int Schema::IndexOf(std::string_view attr) const {
  const auto it = lower_index_.find(ToLower(attr));
  return it == lower_index_.end() ? -1 : it->second;
}

std::vector<int> Schema::Projection(const std::vector<std::string>& names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(IndexOf(n));
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (names_.size() != other.names_.size()) return false;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (!EqualsIgnoreCase(names_[i], other.names_[i])) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  return "(" + Join(names_, ", ") + ")";
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != other.values_[i]) return false;
  }
  return true;
}

int Tuple::CompareTotal(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = values_[i].CompareTotal(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() == other.values_.size()) return 0;
  return values_.size() < other.values_.size() ? -1 : 1;
}

size_t Tuple::Hash() const {
  if (hash_valid_) return hash_;
  size_t h = 0x51ed270b;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  hash_ = h;
  hash_valid_ = true;
  return h;
}

std::string Tuple::ToString() const {
  return "(" +
         JoinMapped(values_, ", ", [](const Value& v) { return v.ToString(); }) +
         ")";
}

void Relation::Add(Tuple row) {
  assert(schema_.size() == 0 || row.size() == schema_.size());
  rows_.push_back(std::move(row));
  if (row_indexed_) {
    row_index_[rows_.back().Hash()].push_back(
        static_cast<uint32_t>(rows_.size() - 1));
  }
}

Status Relation::Append(const Relation& other) {
  if (other.schema().size() != schema_.size()) {
    return InvalidArgument("union-incompatible widths: " +
                           schema_.ToString() + " vs " +
                           other.schema().ToString());
  }
  if (row_indexed_) {
    for (const Tuple& t : other.rows_) Add(t);
    return Status::Ok();
  }
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  return Status::Ok();
}

void Relation::EnableRowIndex() {
  if (row_indexed_) return;
  row_indexed_ = true;
  row_index_.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    row_index_[rows_[i].Hash()].push_back(static_cast<uint32_t>(i));
  }
}

bool Relation::IndexedContains(const Tuple& row) const {
  const auto it = row_index_.find(row.Hash());
  if (it == row_index_.end()) return false;
  for (uint32_t id : it->second) {
    if (rows_[id] == row) return true;
  }
  return false;
}

bool Relation::AddUnique(Tuple row) {
  if (!row_indexed_) EnableRowIndex();
  assert(schema_.size() == 0 || row.size() == schema_.size());
  auto& bucket = row_index_[row.Hash()];
  for (uint32_t id : bucket) {
    if (rows_[id] == row) return false;
  }
  bucket.push_back(static_cast<uint32_t>(rows_.size()));
  rows_.push_back(std::move(row));
  return true;
}

bool Relation::Contains(const Tuple& row) const {
  if (row_indexed_) return IndexedContains(row);
  for (const Tuple& t : rows_) {
    if (t == row) return true;
  }
  return false;
}

Relation Relation::Distinct() const {
  Relation out(schema_);
  // Deduplicate through pointers into rows_ — no per-row Tuple copy for the
  // membership set, and the (cached) row hashes survive on the source.
  struct PtrHash {
    size_t operator()(const Tuple* t) const { return t->Hash(); }
  };
  struct PtrEq {
    bool operator()(const Tuple* a, const Tuple* b) const { return *a == *b; }
  };
  std::unordered_set<const Tuple*, PtrHash, PtrEq> seen;
  seen.reserve(rows_.size());
  for (const Tuple& t : rows_) {
    if (seen.insert(&t).second) out.Add(t);
  }
  return out;
}

Relation Relation::Sorted() const {
  // Sorting permutes row ids, so the copy re-derives its index (if any)
  // rather than inheriting stale ids.
  Relation out(schema_);
  out.rows_ = rows_;
  std::sort(out.rows_.begin(), out.rows_.end(),
            [](const Tuple& a, const Tuple& b) { return a.CompareTotal(b) < 0; });
  if (row_indexed_) out.EnableRowIndex();
  return out;
}

bool Relation::EqualsBag(const Relation& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  if (schema_.size() != other.schema_.size()) return false;
  const Relation a = Sorted();
  const Relation b = other.Sorted();
  for (size_t i = 0; i < a.rows_.size(); ++i) {
    if (!(a.rows_[i] == b.rows_[i])) return false;
  }
  return true;
}

bool Relation::EqualsSet(const Relation& other) const {
  if (schema_.size() != other.schema_.size()) return false;
  return Distinct().EqualsBag(other.Distinct());
}

std::string Relation::ToString() const {
  // Compute column widths from header and cells.
  const int ncols = schema_.size();
  std::vector<size_t> width(static_cast<size_t>(ncols), 0);
  for (int i = 0; i < ncols; ++i) {
    width[static_cast<size_t>(i)] = schema_.name(i).size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const Tuple& t : rows_) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(ncols));
    for (int i = 0; i < ncols && i < t.size(); ++i) {
      row.push_back(t.at(i).ToString());
      width[static_cast<size_t>(i)] =
          std::max(width[static_cast<size_t>(i)], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (int i = 0; i < ncols; ++i) {
      const std::string& cell =
          i < static_cast<int>(row.size()) ? row[static_cast<size_t>(i)] : "";
      out += " " + cell +
             std::string(width[static_cast<size_t>(i)] - cell.size(), ' ') +
             " |";
    }
    out += "\n";
  };
  emit_row(schema_.names());
  out += "|";
  for (int i = 0; i < ncols; ++i) {
    out += std::string(width[static_cast<size_t>(i)] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : cells) emit_row(row);
  if (rows_.empty()) out += "(empty)\n";
  return out;
}

}  // namespace arc::data
