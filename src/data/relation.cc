#include "data/relation.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/strings.h"

namespace arc::data {

Schema::Schema(std::initializer_list<const char*> names) {
  for (const char* n : names) names_.emplace_back(n);
}

int Schema::IndexOf(std::string_view attr) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (EqualsIgnoreCase(names_[i], attr)) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::operator==(const Schema& other) const {
  if (names_.size() != other.names_.size()) return false;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (!EqualsIgnoreCase(names_[i], other.names_[i])) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  return "(" + Join(names_, ", ") + ")";
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != other.values_[i]) return false;
  }
  return true;
}

int Tuple::CompareTotal(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = values_[i].CompareTotal(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() == other.values_.size()) return 0;
  return values_.size() < other.values_.size() ? -1 : 1;
}

size_t Tuple::Hash() const {
  size_t h = 0x51ed270b;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  return "(" +
         JoinMapped(values_, ", ", [](const Value& v) { return v.ToString(); }) +
         ")";
}

void Relation::Add(Tuple row) {
  assert(schema_.size() == 0 || row.size() == schema_.size());
  rows_.push_back(std::move(row));
}

Status Relation::Append(const Relation& other) {
  if (other.schema().size() != schema_.size()) {
    return InvalidArgument("union-incompatible widths: " +
                           schema_.ToString() + " vs " +
                           other.schema().ToString());
  }
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  return Status::Ok();
}

bool Relation::Contains(const Tuple& row) const {
  for (const Tuple& t : rows_) {
    if (t == row) return true;
  }
  return false;
}

Relation Relation::Distinct() const {
  Relation out(schema_);
  std::unordered_map<Tuple, bool, TupleHash> seen;
  for (const Tuple& t : rows_) {
    auto [it, inserted] = seen.emplace(t, true);
    if (inserted) out.Add(t);
  }
  return out;
}

Relation Relation::Sorted() const {
  Relation out = *this;
  std::sort(out.rows_.begin(), out.rows_.end(),
            [](const Tuple& a, const Tuple& b) { return a.CompareTotal(b) < 0; });
  return out;
}

bool Relation::EqualsBag(const Relation& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  if (schema_.size() != other.schema_.size()) return false;
  const Relation a = Sorted();
  const Relation b = other.Sorted();
  for (size_t i = 0; i < a.rows_.size(); ++i) {
    if (!(a.rows_[i] == b.rows_[i])) return false;
  }
  return true;
}

bool Relation::EqualsSet(const Relation& other) const {
  if (schema_.size() != other.schema_.size()) return false;
  return Distinct().EqualsBag(other.Distinct());
}

std::string Relation::ToString() const {
  // Compute column widths from header and cells.
  const int ncols = schema_.size();
  std::vector<size_t> width(static_cast<size_t>(ncols), 0);
  for (int i = 0; i < ncols; ++i) {
    width[static_cast<size_t>(i)] = schema_.name(i).size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const Tuple& t : rows_) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(ncols));
    for (int i = 0; i < ncols && i < t.size(); ++i) {
      row.push_back(t.at(i).ToString());
      width[static_cast<size_t>(i)] =
          std::max(width[static_cast<size_t>(i)], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (int i = 0; i < ncols; ++i) {
      const std::string& cell =
          i < static_cast<int>(row.size()) ? row[static_cast<size_t>(i)] : "";
      out += " " + cell +
             std::string(width[static_cast<size_t>(i)] - cell.size(), ' ') +
             " |";
    }
    out += "\n";
  };
  emit_row(schema_.names());
  out += "|";
  for (int i = 0; i < ncols; ++i) {
    out += std::string(width[static_cast<size_t>(i)] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : cells) emit_row(row);
  if (rows_.empty()) out += "(empty)\n";
  return out;
}

}  // namespace arc::data
