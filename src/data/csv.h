// Minimal CSV import/export for relations: header row = attribute names;
// cells are parsed as integers, doubles, booleans, empty = NULL, anything
// else = string. Quoting with double quotes, "" escapes a quote.
#ifndef ARC_DATA_CSV_H_
#define ARC_DATA_CSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "data/database.h"

namespace arc::data {

/// Parses CSV text (first line is the header) into a relation.
Result<Relation> RelationFromCsv(std::string_view csv);

/// Serializes a relation to CSV (header + rows). Nulls become empty cells;
/// strings are quoted when they contain separators or quotes.
std::string RelationToCsv(const Relation& relation);

/// Reads `path` and registers its relation under `name`.
Status LoadCsvFile(const std::string& path, const std::string& name,
                   Database* db);

/// Writes a relation to `path`.
Status SaveCsvFile(const Relation& relation, const std::string& path);

}  // namespace arc::data

#endif  // ARC_DATA_CSV_H_
