#include "data/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace arc::data {

namespace {

/// Splits one CSV record, honoring quotes. Returns false on unterminated
/// quotes.
bool SplitRecord(std::string_view line, std::vector<std::string>* out) {
  out->clear();
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out->push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  out->push_back(std::move(cell));
  return !in_quotes;
}

Value ParseCell(const std::string& cell) {
  if (cell.empty()) return Value::Null();
  if (cell == "true" || cell == "TRUE") return Value::Bool(true);
  if (cell == "false" || cell == "FALSE") return Value::Bool(false);
  // Integer?
  char* end = nullptr;
  const long long as_int = std::strtoll(cell.c_str(), &end, 10);
  if (end != cell.c_str() && *end == '\0') return Value::Int(as_int);
  const double as_double = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() && *end == '\0') return Value::Double(as_double);
  return Value::String(cell);
}

std::string EscapeCell(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return "";
    case ValueKind::kBool:
      return v.as_bool() ? "true" : "false";
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return v.kind() == ValueKind::kInt ? std::to_string(v.as_int())
                                         : v.ToString();
    case ValueKind::kString: {
      const std::string& s = v.as_string();
      bool needs_quotes = s.empty();
      for (char c : s) {
        if (c == ',' || c == '"' || c == '\n') needs_quotes = true;
      }
      if (!needs_quotes) return s;
      std::string out = "\"";
      for (char c : s) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "";
}

}  // namespace

Result<Relation> RelationFromCsv(std::string_view csv) {
  std::vector<std::string> cells;
  size_t pos = 0;
  int line_no = 0;
  Relation relation;
  while (pos < csv.size()) {
    size_t end = csv.find('\n', pos);
    std::string_view line = csv.substr(
        pos, end == std::string_view::npos ? std::string_view::npos
                                           : end - pos);
    pos = end == std::string_view::npos ? csv.size() : end + 1;
    ++line_no;
    if (line.empty() || line == "\r") continue;
    if (!SplitRecord(line, &cells)) {
      return ParseError("unterminated quote in CSV line " +
                        std::to_string(line_no));
    }
    if (line_no == 1) {
      relation = Relation(Schema(cells));
      continue;
    }
    if (static_cast<int>(cells.size()) != relation.schema().size()) {
      return ParseError("CSV line " + std::to_string(line_no) + " has " +
                        std::to_string(cells.size()) + " cells, expected " +
                        std::to_string(relation.schema().size()));
    }
    Tuple t;
    for (const std::string& cell : cells) t.Append(ParseCell(cell));
    relation.Add(std::move(t));
  }
  if (line_no == 0) return ParseError("empty CSV input (no header)");
  return relation;
}

std::string RelationToCsv(const Relation& relation) {
  std::ostringstream out;
  const Schema& schema = relation.schema();
  for (int i = 0; i < schema.size(); ++i) {
    if (i > 0) out << ',';
    out << schema.name(i);
  }
  out << '\n';
  for (const Tuple& t : relation.rows()) {
    for (int i = 0; i < t.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeCell(t.at(i));
    }
    out << '\n';
  }
  return out.str();
}

Status LoadCsvFile(const std::string& path, const std::string& name,
                   Database* db) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ARC_ASSIGN_OR_RETURN(Relation relation, RelationFromCsv(buffer.str()));
  db->Put(name, std::move(relation));
  return Status::Ok();
}

Status SaveCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return InvalidArgument("cannot write '" + path + "'");
  out << RelationToCsv(relation);
  return Status::Ok();
}

}  // namespace arc::data
