#include "data/database.h"

#include "common/strings.h"

namespace arc::data {

int Database::Find(std::string_view name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (EqualsIgnoreCase(entries_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

void Database::Put(const std::string& name, Relation relation) {
  const int i = Find(name);
  if (i >= 0) {
    entries_[static_cast<size_t>(i)].relation = std::move(relation);
    return;
  }
  entries_.push_back({name, std::move(relation)});
}

bool Database::Has(std::string_view name) const { return Find(name) >= 0; }

Result<Relation> Database::Get(std::string_view name) const {
  const int i = Find(name);
  if (i < 0) return NotFound("relation '" + std::string(name) + "' not found");
  return entries_[static_cast<size_t>(i)].relation;
}

const Relation* Database::GetPtr(std::string_view name) const {
  const int i = Find(name);
  if (i < 0) return nullptr;
  return &entries_[static_cast<size_t>(i)].relation;
}

Relation* Database::GetMutable(std::string_view name) {
  const int i = Find(name);
  if (i < 0) return nullptr;
  return &entries_[static_cast<size_t>(i)].relation;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

}  // namespace arc::data
