// Deterministic workload generators for tests, benchmarks, and examples.
// All generators are pure functions of their parameters (fixed internal
// PRNG), so every experiment is reproducible bit-for-bit.
#ifndef ARC_DATA_GENERATORS_H_
#define ARC_DATA_GENERATORS_H_

#include <cstdint>

#include "data/database.h"

namespace arc::data {

/// Deterministic 64-bit PRNG (splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next();
  /// Uniform integer in [0, bound).
  int64_t Below(int64_t bound);
  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_;
};

/// The count-bug instance from §3.2: R(id,q) = {(9,0)}, S(id,d) = {}.
Database CountBugInstance();

/// The conventions instance from §2.6 / Eq. (15): R(ak,b) = {(1,2)},
/// S(a,b) = {}.
Database ConventionInstance();

/// Fig. 2 substrate: R(A,B) and S(B,C) with `rows` tuples each; join keys
/// drawn from [0, domain) and C is 0 with probability `c_zero_fraction`
/// (the query selects s.C = 0).
Database TrcInstance(int64_t rows, int64_t domain, double c_zero_fraction,
                     uint64_t seed);

/// §2.5 running example: R(empl, dept), S(empl, sal). `n_empl` employees
/// spread over `n_depts` departments; salaries in [lo, hi].
Database EmployeeInstance(int64_t n_empl, int64_t n_depts, int64_t sal_lo,
                          int64_t sal_hi, uint64_t seed);

/// Example 2 substrate: Likes(drinker, beer). Each of `n_drinkers` likes a
/// random subset of `n_beers` with inclusion probability `p`. A fraction of
/// drinkers is given cloned beer-sets so the unique-set query has both
/// positive and negative answers.
Database LikesInstance(int64_t n_drinkers, int64_t n_beers, double p,
                       double clone_fraction, uint64_t seed);

/// Recursion substrates for Fig. 10: P(s, t).
Database ParentChain(int64_t n);
Database ParentTree(int64_t n, int64_t fanout);
Database ParentRandom(int64_t n, int64_t edges, uint64_t seed);

/// Sparse matrix in (row, col, val) form for Fig. 20, n x n with the given
/// nonzero density and integer values in [1, 9].
Relation SparseMatrix(int64_t n, double density, uint64_t seed);

/// Generic binary relation R(A, B) with `rows` tuples, both columns drawn
/// from [0, domain). `duplicate_fraction` of the rows are copies of earlier
/// rows (exercises bag semantics); `null_fraction` of B values are null
/// (exercises 3VL).
Relation RandomBinary(int64_t rows, int64_t domain, double duplicate_fraction,
                      double null_fraction, uint64_t seed);

/// Unary relation R(A) with `rows` values from [0, domain), with optional
/// nulls.
Relation RandomUnary(int64_t rows, int64_t domain, double null_fraction,
                     uint64_t seed);

/// Fig. 9 substrate: R(id, q) with `n` ids and a demanded quantity q;
/// S(id, d) with `per_id` deliveries per id on average. With
/// `satisfy_all`, every id receives at least q deliveries (so constraint
/// (14) holds); otherwise roughly half violate it.
Database InventoryInstance(int64_t n, int64_t per_id, bool satisfy_all,
                           uint64_t seed);

}  // namespace arc::data

#endif  // ARC_DATA_GENERATORS_H_
