#include "verify/bounded_eq.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "data/relation.h"
#include "data/value.h"
#include "eval/evaluator.h"

namespace arc::verify {

namespace {

using data::Relation;
using data::Schema;
using data::Tuple;
using data::Value;

// ---------------------------------------------------------------------------
// Program walks: literals, equivariance, signature inference
// ---------------------------------------------------------------------------

void WalkTerms(const Term& t, const std::function<void(const Term&)>& fn) {
  fn(t);
  if (t.lhs) WalkTerms(*t.lhs, fn);
  if (t.rhs) WalkTerms(*t.rhs, fn);
  if (t.agg_arg) WalkTerms(*t.agg_arg, fn);
}

void WalkCollection(const Collection& c,
                    const std::function<void(const Term&)>& term_fn,
                    const std::function<void(const Formula&)>& formula_fn,
                    const std::function<void(const JoinNode&)>& join_fn);

void WalkFormula(const Formula& f,
                 const std::function<void(const Term&)>& term_fn,
                 const std::function<void(const Formula&)>& formula_fn,
                 const std::function<void(const JoinNode&)>& join_fn) {
  formula_fn(f);
  switch (f.kind) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        WalkFormula(*c, term_fn, formula_fn, join_fn);
      }
      return;
    case FormulaKind::kNot:
      if (f.child) WalkFormula(*f.child, term_fn, formula_fn, join_fn);
      return;
    case FormulaKind::kExists: {
      if (!f.quantifier) return;
      const Quantifier& q = *f.quantifier;
      for (const Binding& b : q.bindings) {
        if (b.collection) {
          WalkCollection(*b.collection, term_fn, formula_fn, join_fn);
        }
      }
      if (q.grouping.has_value()) {
        for (const TermPtr& k : q.grouping->keys) WalkTerms(*k, term_fn);
      }
      if (q.join_tree) {
        std::function<void(const JoinNode&)> wj = [&](const JoinNode& n) {
          join_fn(n);
          for (const JoinNodePtr& c : n.children) wj(*c);
        };
        wj(*q.join_tree);
      }
      if (q.body) WalkFormula(*q.body, term_fn, formula_fn, join_fn);
      return;
    }
    case FormulaKind::kPredicate:
      if (f.lhs) WalkTerms(*f.lhs, term_fn);
      if (f.rhs) WalkTerms(*f.rhs, term_fn);
      return;
    case FormulaKind::kNullTest:
      if (f.null_arg) WalkTerms(*f.null_arg, term_fn);
      return;
  }
}

void WalkCollection(const Collection& c,
                    const std::function<void(const Term&)>& term_fn,
                    const std::function<void(const Formula&)>& formula_fn,
                    const std::function<void(const JoinNode&)>& join_fn) {
  if (c.body) WalkFormula(*c.body, term_fn, formula_fn, join_fn);
}

void WalkProgram(const Program& p,
                 const std::function<void(const Term&)>& term_fn,
                 const std::function<void(const Formula&)>& formula_fn,
                 const std::function<void(const JoinNode&)>& join_fn) {
  for (const Definition& d : p.definitions) {
    if (d.collection) WalkCollection(*d.collection, term_fn, formula_fn, join_fn);
  }
  if (p.main.collection) {
    WalkCollection(*p.main.collection, term_fn, formula_fn, join_fn);
  }
  if (p.main.sentence) {
    WalkFormula(*p.main.sentence, term_fn, formula_fn, join_fn);
  }
}

/// Distinct integer literals mentioned by `p` (predicates, grouping keys,
/// join anchors), ascending.
void CollectIntLiterals(const Program& p, std::set<int64_t>* out) {
  WalkProgram(
      p,
      [&](const Term& t) {
        if (t.kind == TermKind::kLiteral &&
            t.literal.kind() == data::ValueKind::kInt) {
          out->insert(t.literal.as_int());
        }
      },
      [](const Formula&) {}, [&](const JoinNode& n) {
        if (n.kind == JoinKind::kLiteralLeaf &&
            n.literal.kind() == data::ValueKind::kInt) {
          out->insert(n.literal.as_int());
        }
      });
}

bool ProgramHasAggregate(const Program& p) {
  bool found = false;
  WalkProgram(
      p, [&](const Term& t) { found |= t.kind == TermKind::kAggregate; },
      [](const Formula&) {}, [](const JoinNode&) {});
  return found;
}

/// Case-insensitive set of every collection head name in `p` (used to skip
/// defined / recursive ranges during signature inference).
std::set<std::string> HeadNamesLower(const Program& p) {
  std::set<std::string> heads;
  WalkProgram(
      p, [](const Term&) {},
      [&](const Formula& f) {
        if (f.kind == FormulaKind::kExists && f.quantifier) {
          for (const Binding& b : f.quantifier->bindings) {
            if (b.collection) heads.insert(ToLower(b.collection->head.relation));
          }
        }
      },
      [](const JoinNode&) {});
  for (const Definition& d : p.definitions) {
    if (d.collection) heads.insert(ToLower(d.collection->head.relation));
  }
  if (p.main.collection) heads.insert(ToLower(p.main.collection->head.relation));
  return heads;
}

struct SigBuilder {
  /// lowered name → display name.
  std::map<std::string, std::string> names;
  /// lowered name → attr display names in first-reference order.
  std::map<std::string, std::vector<std::string>> attrs;

  void AddAttr(const std::string& rel_lower, const std::string& attr) {
    std::vector<std::string>& list = attrs[rel_lower];
    for (const std::string& a : list) {
      if (EqualsIgnoreCase(a, attr)) return;
    }
    list.push_back(attr);
  }
};

/// Collects base-relation ranges and the attributes referenced through
/// them, with proper variable scoping (shadowing, correlation into nested
/// collections).
void InferFromProgram(const Program& p, const std::set<std::string>& heads,
                      SigBuilder* sig) {
  using Env = std::vector<std::pair<std::string, std::string>>;  // var→rel

  std::function<void(const Formula&, Env&)> walk_formula;
  auto record_term = [&](const Term& t, const Env& env) {
    if (t.kind != TermKind::kAttrRef) return;
    for (auto it = env.rbegin(); it != env.rend(); ++it) {
      if (EqualsIgnoreCase(it->first, t.var)) {
        if (!it->second.empty()) sig->AddAttr(it->second, t.attr);
        return;
      }
    }
  };
  auto walk_term = [&](const Term& t, const Env& env) {
    WalkTerms(t, [&](const Term& sub) { record_term(sub, env); });
  };
  std::function<void(const Collection&, Env&)> walk_coll = [&](
      const Collection& c, Env& env) {
    if (c.body) walk_formula(*c.body, env);
  };
  walk_formula = [&](const Formula& f, Env& env) {
    switch (f.kind) {
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        for (const FormulaPtr& c : f.children) walk_formula(*c, env);
        return;
      case FormulaKind::kNot:
        if (f.child) walk_formula(*f.child, env);
        return;
      case FormulaKind::kExists: {
        if (!f.quantifier) return;
        const Quantifier& q = *f.quantifier;
        const size_t mark = env.size();
        for (const Binding& b : q.bindings) {
          if (b.range_kind == RangeKind::kNamed) {
            const std::string lower = ToLower(b.relation);
            const bool base = heads.find(lower) == heads.end();
            if (base) sig->names.emplace(lower, b.relation);
            env.emplace_back(b.var, base ? lower : std::string());
          } else {
            if (b.collection) walk_coll(*b.collection, env);
            env.emplace_back(b.var, std::string());
          }
        }
        if (q.grouping.has_value()) {
          for (const TermPtr& k : q.grouping->keys) walk_term(*k, env);
        }
        if (q.body) walk_formula(*q.body, env);
        env.resize(mark);
        return;
      }
      case FormulaKind::kPredicate:
        if (f.lhs) walk_term(*f.lhs, env);
        if (f.rhs) walk_term(*f.rhs, env);
        return;
      case FormulaKind::kNullTest:
        if (f.null_arg) walk_term(*f.null_arg, env);
        return;
    }
  };

  Env env;
  for (const Definition& d : p.definitions) {
    if (d.collection) walk_coll(*d.collection, env);
  }
  if (p.main.collection) walk_coll(*p.main.collection, env);
  if (p.main.sentence) walk_formula(*p.main.sentence, env);
}

// ---------------------------------------------------------------------------
// Instance enumeration
// ---------------------------------------------------------------------------

/// One relation's enumeration tables: all candidate tuples over the pool
/// and, per cardinality, every multiset of tuple indices.
struct RelEnum {
  std::string name;
  Schema schema;
  int arity = 0;
  int tuple_count = 0;
  std::vector<Tuple> tuples;
  /// combos[c] = all non-decreasing index sequences of length c.
  std::vector<std::vector<std::vector<int>>> combos;
};

void BuildCombos(int tuple_count, int card, std::vector<int>* cur,
                 std::vector<std::vector<int>>* out) {
  if (static_cast<int>(cur->size()) == card) {
    out->push_back(*cur);
    return;
  }
  const int lo = cur->empty() ? 0 : cur->back();
  for (int t = lo; t < tuple_count; ++t) {
    cur->push_back(t);
    BuildCombos(tuple_count, card, cur, out);
    cur->pop_back();
  }
}

std::vector<Value> FullPool(const BoundedEqOptions& opts) {
  std::vector<Value> pool;
  if (!opts.domain.empty()) {
    for (const Value& v : opts.domain) {
      if (v.is_null()) continue;
      bool dup = false;
      for (const Value& p : pool) dup |= p.Equals(v);
      if (!dup) pool.push_back(v);
    }
  } else {
    for (int i = 0; i < opts.domain_size; ++i) pool.push_back(Value::Int(i));
  }
  if (opts.include_null) pool.push_back(Value::Null());
  return pool;
}

int64_t SaturatingMultisets(int64_t t, int max_rows) {
  // sum over c of C(t + c - 1, c), computed iteratively; saturates.
  unsigned __int128 total = 0;
  for (int c = 0; c <= max_rows; ++c) {
    unsigned __int128 n = 1;
    for (int i = 1; i <= c; ++i) {
      n = n * static_cast<unsigned __int128>(t + i - 1) /
          static_cast<unsigned __int128>(i);
      if (n > static_cast<unsigned __int128>(INT64_MAX)) return INT64_MAX;
    }
    total += n;
    if (total > static_cast<unsigned __int128>(INT64_MAX)) return INT64_MAX;
  }
  return static_cast<int64_t>(total);
}

/// Permutations of pool indices fixing NULL and every rigid value.
std::vector<std::vector<int>> BuildPermutations(
    const std::vector<Value>& pool, const std::vector<Value>& rigid) {
  std::vector<int> movable;
  for (int i = 0; i < static_cast<int>(pool.size()); ++i) {
    if (pool[i].is_null()) continue;
    bool is_rigid = false;
    for (const Value& r : rigid) is_rigid |= r.Equals(pool[i]);
    if (!is_rigid) movable.push_back(i);
  }
  std::vector<std::vector<int>> perms;
  if (movable.size() < 2) return perms;
  std::vector<int> image = movable;
  while (std::next_permutation(image.begin(), image.end())) {
    std::vector<int> perm(pool.size());
    for (int i = 0; i < static_cast<int>(pool.size()); ++i) perm[i] = i;
    for (size_t j = 0; j < movable.size(); ++j) perm[movable[j]] = image[j];
    perms.push_back(std::move(perm));
  }
  return perms;
}

/// For each permutation, the induced remap of `rel`'s tuple indices.
std::vector<std::vector<int>> BuildTupleRemaps(
    const RelEnum& rel, int pool_size,
    const std::vector<std::vector<int>>& perms) {
  std::vector<std::vector<int>> remaps;
  remaps.reserve(perms.size());
  for (const std::vector<int>& perm : perms) {
    std::vector<int> remap(rel.tuple_count);
    for (int t = 0; t < rel.tuple_count; ++t) {
      int src = t;
      int dst = 0;
      int weight = 1;
      for (int a = 0; a < rel.arity; ++a) {
        dst += perm[src % pool_size] * weight;
        src /= pool_size;
        weight *= pool_size;
      }
      remap[t] = dst;
    }
    remaps.push_back(std::move(remap));
  }
  return remaps;
}

/// True when the current selection is the lexicographic minimum of its
/// renaming orbit (relation-by-relation, then index-sequence order).
bool IsCanonical(const std::vector<const std::vector<int>*>& selection,
                 const std::vector<std::vector<std::vector<int>>>& remaps,
                 size_t perm_count) {
  std::vector<int> mapped;
  for (size_t p = 0; p < perm_count; ++p) {
    int cmp = 0;  // -1: image smaller (not canonical), 1: image larger
    for (size_t r = 0; r < selection.size() && cmp == 0; ++r) {
      const std::vector<int>& combo = *selection[r];
      mapped.resize(combo.size());
      for (size_t i = 0; i < combo.size(); ++i) {
        mapped[i] = remaps[r][p][combo[i]];
      }
      std::sort(mapped.begin(), mapped.end());
      for (size_t i = 0; i < combo.size() && cmp == 0; ++i) {
        if (mapped[i] < combo[i]) cmp = -1;
        if (mapped[i] > combo[i]) cmp = 1;
      }
    }
    if (cmp < 0) return false;
  }
  return true;
}

Result<Relation> EvalUnder(const data::Database& db, const Program& program,
                           const Conventions& conv) {
  eval::EvalOptions opts;
  opts.conventions = conv;
  if (program.main.is_sentence()) {
    eval::Evaluator evaluator(db, opts);
    auto truth = evaluator.EvalSentence(program);
    if (!truth.ok()) return truth.status();
    Relation out(Schema{"v"});
    if (data::IsTrue(*truth)) out.Add({Value::Bool(true)});
    return out;
  }
  return eval::Eval(db, program, opts);
}

/// Multiset containment: every row of `lhs` occurs in `rhs` at least as
/// often. (Under the set convention both results are already deduplicated,
/// so this coincides with set containment.)
bool MultisetContained(const Relation& lhs, const Relation& rhs) {
  std::unordered_map<Tuple, int, data::TupleHash> counts;
  for (const Tuple& t : rhs.rows()) ++counts[t];
  for (const Tuple& t : lhs.rows()) {
    auto it = counts.find(t);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

std::string Indent(const std::string& text, const std::string& prefix) {
  std::string out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out += prefix + text.substr(start, end - start) + "\n";
    start = end + 1;
  }
  return out;
}

}  // namespace

const char* EqRelationName(EqRelation r) {
  switch (r) {
    case EqRelation::kEquivalent:
      return "equivalent";
    case EqRelation::kLhsSubsetRhs:
      return "contained";
  }
  return "?";
}

Result<std::vector<RelationSig>> InferSignature(const Program& a,
                                                const Program& b,
                                                const data::Database* db) {
  std::set<std::string> heads = HeadNamesLower(a);
  for (const std::string& h : HeadNamesLower(b)) heads.insert(h);
  SigBuilder sig;
  InferFromProgram(a, heads, &sig);
  InferFromProgram(b, heads, &sig);
  std::vector<RelationSig> out;
  for (const auto& [lower, display] : sig.names) {
    RelationSig rs;
    if (db != nullptr && db->GetPtr(display) != nullptr) {
      const Relation* rel = db->GetPtr(display);
      rs.name = display;
      rs.attrs = rel->schema().names();
    } else {
      rs.name = display;
      rs.attrs = sig.attrs[lower];
    }
    if (rs.attrs.empty()) {
      return InvalidArgument("cannot infer attributes of relation '" +
                             display +
                             "': no attribute references and no database "
                             "schema available");
    }
    out.push_back(std::move(rs));
  }
  if (out.empty()) {
    return InvalidArgument(
        "programs range over no base relation: nothing to enumerate");
  }
  return out;
}

int64_t CountInstances(const std::vector<RelationSig>& schema,
                       const BoundedEqOptions& opts) {
  const std::vector<Value> pool = FullPool(opts);
  const int64_t pool_size = static_cast<int64_t>(pool.size());
  unsigned __int128 total = 1;
  for (const RelationSig& rs : schema) {
    int64_t tuples = 1;
    for (size_t i = 0; i < rs.attrs.size(); ++i) {
      if (tuples > INT64_MAX / pool_size) return INT64_MAX;
      tuples *= pool_size;
    }
    const int64_t per_rel = SaturatingMultisets(tuples, opts.max_rows);
    total *= static_cast<unsigned __int128>(per_rel);
    if (total > static_cast<unsigned __int128>(INT64_MAX)) return INT64_MAX;
  }
  return static_cast<int64_t>(total);
}

bool RenamingEquivariant(const Program& program) {
  bool ok = true;
  WalkProgram(
      program,
      [&](const Term& t) {
        if (t.kind == TermKind::kArith) ok = false;
        if (t.kind == TermKind::kAggregate && t.agg_func != AggFunc::kCount &&
            t.agg_func != AggFunc::kCountStar &&
            t.agg_func != AggFunc::kCountDistinct) {
          ok = false;
        }
      },
      [&](const Formula& f) {
        if (f.kind == FormulaKind::kPredicate &&
            f.cmp_op != data::CmpOp::kEq && f.cmp_op != data::CmpOp::kNe) {
          ok = false;
        }
      },
      [](const JoinNode&) {});
  return ok;
}

std::vector<Value> BuildValuePool(const Program& a, const Program& b,
                                  const BoundedEqOptions& opts) {
  if (!opts.domain.empty()) return opts.domain;
  std::set<int64_t> literals;
  CollectIntLiterals(a, &literals);
  CollectIntLiterals(b, &literals);
  std::vector<Value> pool;
  for (int64_t v : literals) {
    if (static_cast<int>(pool.size()) >= opts.domain_size) break;
    pool.push_back(Value::Int(v));
  }
  int64_t fresh = 0;
  while (static_cast<int>(pool.size()) < opts.domain_size) {
    if (literals.find(fresh) == literals.end()) {
      pool.push_back(Value::Int(fresh));
    }
    ++fresh;
  }
  return pool;
}

std::vector<Value> RigidValues(const Program& a, const Program& b,
                               const std::vector<RelationSig>& schema,
                               const BoundedEqOptions& opts) {
  std::set<int64_t> ints;
  CollectIntLiterals(a, &ints);
  CollectIntLiterals(b, &ints);
  if (ProgramHasAggregate(a) || ProgramHasAggregate(b)) {
    // Count outputs re-enter the value domain through comparisons like
    // r.q = count(s.d); hold every producible count rigid so renaming can
    // never alias one.
    const int64_t max_count =
        static_cast<int64_t>(schema.size()) * opts.max_rows;
    for (int64_t c = 0; c <= max_count; ++c) ints.insert(c);
  }
  std::vector<Value> rigid;
  rigid.reserve(ints.size());
  for (int64_t v : ints) rigid.push_back(Value::Int(v));
  return rigid;
}

EnumerationStats ForEachInstance(
    const std::vector<RelationSig>& schema, const BoundedEqOptions& opts,
    bool allow_symmetry, const std::vector<Value>& rigid_values,
    const std::function<bool(const data::Database&, int64_t total_rows)>&
        probe) {
  EnumerationStats stats;
  const std::vector<Value> pool = FullPool(opts);
  const int pool_size = static_cast<int>(pool.size());
  const int nrel = static_cast<int>(schema.size());

  std::vector<RelEnum> rels;
  rels.reserve(schema.size());
  for (const RelationSig& rs : schema) {
    RelEnum re;
    re.name = rs.name;
    re.schema = Schema(rs.attrs);
    re.arity = static_cast<int>(rs.attrs.size());
    int64_t count = 1;
    for (int i = 0; i < re.arity; ++i) count *= pool_size;
    re.tuple_count = static_cast<int>(count);
    re.tuples.reserve(re.tuple_count);
    for (int t = 0; t < re.tuple_count; ++t) {
      std::vector<Value> vals(re.arity);
      int digits = t;
      for (int a = 0; a < re.arity; ++a) {
        vals[a] = pool[digits % pool_size];
        digits /= pool_size;
      }
      re.tuples.emplace_back(std::move(vals));
    }
    re.combos.resize(opts.max_rows + 1);
    for (int c = 0; c <= opts.max_rows; ++c) {
      std::vector<int> cur;
      BuildCombos(re.tuple_count, c, &cur, &re.combos[c]);
    }
    rels.push_back(std::move(re));
  }

  std::vector<std::vector<int>> perms;
  std::vector<std::vector<std::vector<int>>> remaps(rels.size());
  if (allow_symmetry) {
    perms = BuildPermutations(pool, rigid_values);
    for (size_t r = 0; r < rels.size(); ++r) {
      remaps[r] = BuildTupleRemaps(rels[r], pool_size, perms);
    }
  }

  // Ascending total row count, so the first probe hit is minimal.
  std::vector<int> cards(rels.size(), 0);
  std::vector<const std::vector<int>*> selection(rels.size(), nullptr);
  bool stop = false;

  std::function<void(int, int)> choose_combo;  // (rel index, _)
  std::function<void(int, int)> choose_cards = [&](int r, int remaining) {
    if (stop) return;
    if (r == nrel) {
      if (remaining != 0) return;
      choose_combo(0, 0);
      return;
    }
    const int cap = std::min(remaining, opts.max_rows);
    for (int c = 0; c <= cap && !stop; ++c) {
      cards[static_cast<size_t>(r)] = c;
      choose_cards(r + 1, remaining - c);
    }
  };
  choose_combo = [&](int r, int) {
    if (stop) return;
    if (r == nrel) {
      ++stats.enumerated;
      if (!perms.empty() && !IsCanonical(selection, remaps, perms.size())) {
        ++stats.skipped_symmetry;
        return;
      }
      data::Database db;
      int64_t total_rows = 0;
      for (size_t i = 0; i < rels.size(); ++i) {
        std::vector<Tuple> rows;
        rows.reserve(selection[i]->size());
        for (int idx : *selection[i]) rows.push_back(rels[i].tuples[idx]);
        total_rows += static_cast<int64_t>(rows.size());
        db.Put(rels[i].name, Relation(rels[i].schema, std::move(rows)));
      }
      ++stats.checked;
      if (probe(db, total_rows)) stop = true;
      return;
    }
    const std::vector<std::vector<int>>& combos =
        rels[static_cast<size_t>(r)].combos[cards[static_cast<size_t>(r)]];
    for (const std::vector<int>& combo : combos) {
      if (stop) return;
      selection[static_cast<size_t>(r)] = &combo;
      choose_combo(r + 1, 0);
    }
  };

  const int max_total = nrel * opts.max_rows;
  for (int total = 0; total <= max_total && !stop; ++total) {
    choose_cards(0, total);
  }
  return stats;
}

Result<BoundedEqReport> CheckEquivalent(const Program& lhs, const Program& rhs,
                                        const std::vector<RelationSig>& schema,
                                        const BoundedEqOptions& opts,
                                        EqRelation relation) {
  BoundedEqOptions eopts = opts;
  if (eopts.conventions.empty()) {
    eopts.conventions = {Conventions::Arc(), Conventions::Sql()};
  }
  if (eopts.domain.empty()) eopts.domain = BuildValuePool(lhs, rhs, eopts);

  const int64_t instance_count = CountInstances(schema, eopts);
  if (instance_count > eopts.max_instances) {
    return InvalidArgument(
        "bounded check would enumerate " + std::to_string(instance_count) +
        " instances (cap " + std::to_string(eopts.max_instances) +
        "): lower domain_size / max_rows or raise max_instances");
  }

  const bool equivariant = eopts.symmetry_reduction &&
                           RenamingEquivariant(lhs) && RenamingEquivariant(rhs);
  const std::vector<Value> rigid = RigidValues(lhs, rhs, schema, eopts);

  BoundedEqReport report;
  report.relation = relation;
  report.bound = static_cast<int>(eopts.domain.size());
  report.max_rows = eopts.max_rows;
  report.null_in_domain = eopts.include_null;
  report.symmetry_used = equivariant;

  std::string last_error;
  EnumerationStats stats = ForEachInstance(
      schema, eopts, equivariant, rigid,
      [&](const data::Database& db, int64_t total_rows) {
        for (const Conventions& conv : eopts.conventions) {
          auto lr = EvalUnder(db, lhs, conv);
          if (!lr.ok()) {
            ++report.eval_failures;
            last_error = lr.status().ToString();
            return false;
          }
          auto rr = EvalUnder(db, rhs, conv);
          if (!rr.ok()) {
            ++report.eval_failures;
            last_error = rr.status().ToString();
            return false;
          }
          const bool ok = relation == EqRelation::kEquivalent
                              ? lr->EqualsBag(*rr)
                              : MultisetContained(*lr, *rr);
          if (!ok) {
            Counterexample cex;
            cex.instance = db;
            cex.conventions = conv;
            cex.lhs_result = *std::move(lr);
            cex.rhs_result = *std::move(rr);
            cex.total_rows = total_rows;
            report.counterexample = std::move(cex);
            return true;
          }
        }
        return false;
      });

  report.instances_enumerated = stats.enumerated;
  report.instances_checked = stats.checked;
  report.instances_skipped_symmetry = stats.skipped_symmetry;
  report.holds = !report.counterexample.has_value();
  if (report.holds && stats.checked > 0 &&
      report.eval_failures == stats.checked) {
    return EvalError(
        "bounded check evaluated no instance successfully (last error: " +
        last_error + ")");
  }
  return report;
}

std::string Counterexample::ToString() const {
  std::string out = "counterexample (" + std::to_string(total_rows) +
                    " total rows) under [" + conventions.ToString() + "]:\n";
  for (const std::string& name : instance.Names()) {
    const Relation* rel = instance.GetPtr(name);
    out += "  " + name + ":\n";
    out += Indent(rel->Sorted().ToString(), "    ");
  }
  out += "  lhs result:\n" + Indent(lhs_result.Sorted().ToString(), "    ");
  out += "  rhs result:\n" + Indent(rhs_result.Sorted().ToString(), "    ");
  return out;
}

std::string BoundedEqReport::ToString() const {
  std::string bound_desc = "{k=" + std::to_string(bound) +
                           ", rows<=" + std::to_string(max_rows) +
                           (null_in_domain ? ", null" : "") + "}";
  if (holds) {
    std::string name = relation == EqRelation::kEquivalent
                           ? "EquivalentUpToBound"
                           : "ContainedUpToBound";
    std::string out = name + bound_desc + ": " +
                      std::to_string(instances_enumerated) + " instances, " +
                      std::to_string(instances_checked) + " evaluated";
    if (instances_skipped_symmetry > 0) {
      out += ", " + std::to_string(instances_skipped_symmetry) +
             " renaming-redundant skipped";
    }
    if (eval_failures > 0) {
      out += ", " + std::to_string(eval_failures) + " evaluation failures";
    }
    return out;
  }
  std::string name = relation == EqRelation::kEquivalent
                         ? "NotEquivalentWithinBound"
                         : "NotContainedWithinBound";
  std::string out = name + bound_desc;
  if (counterexample.has_value()) {
    out += ": " + counterexample->ToString();
  }
  return out;
}

std::vector<VerifiedFix> VerifyFixes(const Program& original,
                                     std::vector<FixIt> fixes,
                                     const std::vector<RelationSig>& schema,
                                     const BoundedEqOptions& opts) {
  std::vector<VerifiedFix> out;
  out.reserve(fixes.size());
  for (FixIt& fix : fixes) {
    VerifiedFix vf;
    vf.fix = std::move(fix);
    const std::string k = std::to_string(
        opts.domain.empty() ? opts.domain_size
                            : static_cast<int>(opts.domain.size()));
    if (vf.fix.effect == FixEffect::kPinsMeaning) {
      BoundedEqOptions popts = opts;
      popts.conventions = {Conventions::Arc(), Conventions::Sql()};
      auto eq = CheckEquivalent(original, vf.fix.fixed, schema, popts,
                                EqRelation::kEquivalent);
      if (!eq.ok()) {
        vf.verdict = "verification failed: " + eq.status().ToString();
        out.push_back(std::move(vf));
        continue;
      }
      vf.primary = *std::move(eq);
      BoundedEqOptions dopts = opts;
      Conventions two_valued = Conventions::Arc();
      two_valued.null_logic = data::NullLogic::kTwoValued;
      dopts.conventions = {two_valued};
      auto dir = CheckEquivalent(vf.fix.fixed, original, schema, dopts,
                                 EqRelation::kLhsSubsetRhs);
      if (!dir.ok()) {
        vf.verdict = "direction check failed: " + dir.status().ToString();
        out.push_back(std::move(vf));
        continue;
      }
      vf.direction = *std::move(dir);
      vf.verified = vf.primary.holds && vf.direction->holds;
      vf.verdict = vf.verified
                       ? "equivalent under 3VL up to k=" + k +
                             "; under 2VL the guard only narrows "
                             "(documented direction)"
                       : "REFUTED: " +
                             (vf.primary.holds ? vf.direction->ToString()
                                               : vf.primary.ToString());
    } else {
      BoundedEqOptions popts = opts;
      popts.conventions = {Conventions::Arc(), Conventions::Sql()};
      auto sub = CheckEquivalent(original, vf.fix.fixed, schema, popts,
                                 EqRelation::kLhsSubsetRhs);
      if (!sub.ok()) {
        vf.verdict = "verification failed: " + sub.status().ToString();
        out.push_back(std::move(vf));
        continue;
      }
      vf.primary = *std::move(sub);
      vf.verified = vf.primary.holds;
      vf.verdict = vf.verified
                       ? "original ⊆ fixed up to k=" + k +
                             " (the left join only restores dropped rows)"
                       : "REFUTED: " + vf.primary.ToString();
    }
    out.push_back(std::move(vf));
  }
  return out;
}

}  // namespace arc::verify
