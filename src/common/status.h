// Lightweight Status / Result<T> error handling (the library does not use
// exceptions). A Status is either OK or carries an error code plus a
// human-readable message; Result<T> is a Status or a value.
#ifndef ARC_COMMON_STATUS_H_
#define ARC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace arc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input handed to an API
  kParseError,        // lexer/parser rejection (message carries location)
  kValidationError,   // ALT failed scoping/grouping/safety validation
  kNotFound,          // unknown relation, attribute, or variable
  kUnsupported,       // construct outside the implemented fragment
  kEvalError,         // runtime evaluation failure (type error, etc.)
  kInternal,          // invariant breakage; indicates a library bug
};

/// Returns the canonical spelling of a status code, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgument(std::string message);
Status ParseError(std::string message);
Status ValidationError(std::string message);
Status NotFound(std::string message);
Status Unsupported(std::string message);
Status EvalError(std::string message);
Status Internal(std::string message);

/// A value of type T or an error Status. Accessing the value of an errored
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  // Intentionally implicit: lets functions `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates an error Status from an expression that yields a Status.
#define ARC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::arc::Status _arc_status = (expr);          \
    if (!_arc_status.ok()) return _arc_status;   \
  } while (0)

// Evaluates a Result<T> expression and either binds its value or propagates
// the error. Usage: ARC_ASSIGN_OR_RETURN(auto x, ComputeX());
#define ARC_ASSIGN_OR_RETURN(decl, expr)            \
  ARC_ASSIGN_OR_RETURN_IMPL_(                       \
      ARC_STATUS_CONCAT_(_arc_result_, __LINE__), decl, expr)

#define ARC_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  decl = std::move(tmp).value()

#define ARC_STATUS_CONCAT_(a, b) ARC_STATUS_CONCAT_IMPL_(a, b)
#define ARC_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace arc

#endif  // ARC_COMMON_STATUS_H_
