// Small string helpers shared across modules (join, case folding, numeric
// formatting). Kept dependency-free.
#ifndef ARC_COMMON_STRINGS_H_
#define ARC_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace arc {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Joins `items` after mapping each through `fn` (which must return
/// something streamable into std::ostringstream).
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn fn) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    first = false;
    out << fn(item);
  }
  return out.str();
}

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Repeats `unit` `n` times.
std::string Repeat(std::string_view unit, int n);

/// Formats a double the way the library prints values: integral doubles
/// without a trailing ".0" are still printed with one decimal ("2.0") so
/// they remain distinguishable from integers; otherwise shortest form.
std::string FormatDouble(double v);

/// One contiguous byte-range replacement turning `before` into `after`:
/// `before[offset, offset+length)` → `replacement`. Computed as the span
/// between the longest common prefix and suffix, so it is the minimal
/// single edit (editors apply it without re-diffing).
struct EditSpan {
  size_t offset = 0;
  size_t length = 0;
  std::string replacement;
};
EditSpan SingleEditSpan(std::string_view before, std::string_view after);

/// Line-based unified diff (single hunk, full context) of `a` vs. `b`,
/// with conventional ---/+++ headers naming the two sides.
std::string UnifiedDiff(std::string_view a, std::string_view b,
                        std::string_view a_name, std::string_view b_name);

}  // namespace arc

#endif  // ARC_COMMON_STRINGS_H_
