#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace arc {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const std::string& p : parts) {
    if (!first) out += sep;
    first = false;
    out += p;
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Repeat(std::string_view unit, int n) {
  std::string out;
  out.reserve(unit.size() * static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += unit;
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

EditSpan SingleEditSpan(std::string_view before, std::string_view after) {
  size_t prefix = 0;
  while (prefix < before.size() && prefix < after.size() &&
         before[prefix] == after[prefix]) {
    ++prefix;
  }
  size_t suffix = 0;
  while (suffix < before.size() - prefix && suffix < after.size() - prefix &&
         before[before.size() - 1 - suffix] == after[after.size() - 1 - suffix]) {
    ++suffix;
  }
  EditSpan span;
  span.offset = prefix;
  span.length = before.size() - prefix - suffix;
  span.replacement = std::string(after.substr(prefix, after.size() - prefix - suffix));
  return span;
}

namespace {

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string UnifiedDiff(std::string_view a, std::string_view b,
                        std::string_view a_name, std::string_view b_name) {
  const std::vector<std::string> al = SplitLines(a);
  const std::vector<std::string> bl = SplitLines(b);
  const size_t n = al.size();
  const size_t m = bl.size();
  // LCS table; inputs are program renderings (a handful of lines).
  std::vector<std::vector<size_t>> lcs(n + 1, std::vector<size_t>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      lcs[i][j] = al[i] == bl[j] ? lcs[i + 1][j + 1] + 1
                                 : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::string body;
  size_t i = 0;
  size_t j = 0;
  while (i < n || j < m) {
    if (i < n && j < m && al[i] == bl[j]) {
      body += " " + al[i] + "\n";
      ++i;
      ++j;
    } else if (i < n && (j == m || lcs[i + 1][j] >= lcs[i][j + 1])) {
      body += "-" + al[i] + "\n";  // deletions precede additions
      ++i;
    } else {
      body += "+" + bl[j] + "\n";
      ++j;
    }
  }
  std::string out = "--- " + std::string(a_name) + "\n+++ " +
                    std::string(b_name) + "\n@@ -1," + std::to_string(n) +
                    " +1," + std::to_string(m) + " @@\n";
  return out + body;
}

}  // namespace arc
