#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace arc {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const std::string& p : parts) {
    if (!first) out += sep;
    first = false;
    out += p;
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Repeat(std::string_view unit, int n) {
  std::string out;
  out.reserve(unit.size() * static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += unit;
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace arc
