#include "common/status.h"

namespace arc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kValidationError:
      return "ValidationError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status ValidationError(std::string message) {
  return Status(StatusCode::kValidationError, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Unsupported(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status EvalError(std::string message) {
  return Status(StatusCode::kEvalError, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace arc
