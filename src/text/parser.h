// Recursive-descent parser for the ARC comprehension syntax (the textual
// modality). Grammar (ASCII spellings; Unicode equivalents accepted):
//
//   program    := definition* query
//   definition := ["abstract"] "define" collection
//   query      := collection | formula            -- formula = Boolean sentence
//   collection := "{" head "|" formula "}"
//   head       := relname "(" ident ("," ident)* ")"
//   formula    := conj ("or" conj)*
//   conj       := unary ("and" unary)*
//   unary      := "not" "(" formula ")" | exists | "(" formula ")" | predicate
//   exists     := "exists" spec ("," spec)* "[" formula "]"
//   spec       := ident "in" (relname | collection)     -- binding
//               | "gamma" ["(" [term ("," term)*] ")"]  -- grouping (γ∅ = gamma())
//               | jointree                              -- join annotation
//   jointree   := ("inner"|"left"|"full") "(" joinleaf ("," joinleaf)* ")"
//   joinleaf   := ident | literal | jointree
//   predicate  := term cmp term | term "is" ["not"] "null"
//   relname    := ident | quoted-ident               -- "\"*\"" for operators
//
// Terms support attribute references (var.attr), literals, arithmetic with
// the usual precedence, unary minus, and aggregate calls
// (sum/count/avg/min/max/countdistinct/..., count(*)).
#ifndef ARC_TEXT_PARSER_H_
#define ARC_TEXT_PARSER_H_

#include <string_view>

#include "arc/ast.h"
#include "common/status.h"

namespace arc::text {

Result<Program> ParseProgram(std::string_view input);
Result<CollectionPtr> ParseCollection(std::string_view input);
Result<FormulaPtr> ParseFormula(std::string_view input);
Result<TermPtr> ParseTerm(std::string_view input);
/// Parses a standalone join annotation, e.g. "left(r, inner(11, s))".
Result<JoinNodePtr> ParseJoinTree(std::string_view input);

}  // namespace arc::text

#endif  // ARC_TEXT_PARSER_H_
