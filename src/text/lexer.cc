#include "text/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace arc::text {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kQuotedIdent:
      return "quoted identifier";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kExists:
      return "'exists'";
    case TokenKind::kIn:
      return "'in'";
    case TokenKind::kAnd:
      return "'and'";
    case TokenKind::kOr:
      return "'or'";
    case TokenKind::kNot:
      return "'not'";
    case TokenKind::kGamma:
      return "'gamma'";
    case TokenKind::kIs:
      return "'is'";
    case TokenKind::kNull:
      return "'null'";
    case TokenKind::kTrue:
      return "'true'";
    case TokenKind::kFalse:
      return "'false'";
    case TokenKind::kInner:
      return "'inner'";
    case TokenKind::kLeftKw:
      return "'left'";
    case TokenKind::kFullKw:
      return "'full'";
    case TokenKind::kDefine:
      return "'define'";
    case TokenKind::kAbstract:
      return "'abstract'";
  }
  return "?";
}

namespace {

struct KeywordEntry {
  const char* text;
  TokenKind kind;
};

constexpr KeywordEntry kKeywords[] = {
    {"exists", TokenKind::kExists}, {"in", TokenKind::kIn},
    {"and", TokenKind::kAnd},       {"or", TokenKind::kOr},
    {"not", TokenKind::kNot},       {"gamma", TokenKind::kGamma},
    {"is", TokenKind::kIs},         {"null", TokenKind::kNull},
    {"true", TokenKind::kTrue},     {"false", TokenKind::kFalse},
    {"inner", TokenKind::kInner},   {"left", TokenKind::kLeftKw},
    {"full", TokenKind::kFullKw},   {"define", TokenKind::kDefine},
    {"abstract", TokenKind::kAbstract},
};

// UTF-8 sequences the lexer normalizes to keywords/operators.
struct UnicodeEntry {
  const char* utf8;
  TokenKind kind;
};

constexpr UnicodeEntry kUnicode[] = {
    {"∃", TokenKind::kExists},  // ∃
    {"∈", TokenKind::kIn},      // ∈
    {"∧", TokenKind::kAnd},     // ∧
    {"∨", TokenKind::kOr},      // ∨
    {"¬", TokenKind::kNot},     // ¬
    {"γ", TokenKind::kGamma},   // γ
    {"≤", TokenKind::kLe},      // ≤
    {"≥", TokenKind::kGe},      // ≥
    {"≠", TokenKind::kNe},      // ≠
    {"∅", TokenKind::kIdent},   // ∅ → treated as empty key list marker
};

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token t;
      t.line = line_;
      t.column = column_;
      if (AtEnd()) {
        t.kind = TokenKind::kEnd;
        tokens.push_back(std::move(t));
        return tokens;
      }
      ARC_RETURN_IF_ERROR(LexOne(&t));
      tokens.push_back(std::move(t));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' || (c == '-' && Peek(1) == '-')) {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status ErrorHere(const std::string& message) const {
    return ParseError(message + " at " + std::to_string(line_) + ":" +
                      std::to_string(column_));
  }

  bool TryUnicode(Token* t) {
    for (const UnicodeEntry& e : kUnicode) {
      const std::string_view u(e.utf8);
      if (input_.substr(pos_).substr(0, u.size()) == u) {
        for (size_t i = 0; i < u.size(); ++i) Advance();
        t->kind = e.kind;
        if (e.kind == TokenKind::kIdent) t->text = e.utf8;
        return true;
      }
    }
    return false;
  }

  Status LexOne(Token* t) {
    if (TryUnicode(t)) return Status::Ok();
    const char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::string ident;
      while (!AtEnd()) {
        const char p = Peek();
        if (std::isalnum(static_cast<unsigned char>(p)) || p == '_' ||
            p == '$') {
          ident += Advance();
        } else {
          break;
        }
      }
      for (const KeywordEntry& k : kKeywords) {
        if (EqualsIgnoreCase(ident, k.text)) {
          t->kind = k.kind;
          t->text = ident;
          return Status::Ok();
        }
      }
      t->kind = TokenKind::kIdent;
      t->text = std::move(ident);
      return Status::Ok();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_float = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Advance();
      }
      if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        is_float = true;
        num += Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          num += Advance();
        }
      }
      if (Peek() == 'e' || Peek() == 'E') {
        is_float = true;
        num += Advance();
        if (Peek() == '+' || Peek() == '-') num += Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          num += Advance();
        }
      }
      if (is_float) {
        t->kind = TokenKind::kFloat;
        t->float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t->kind = TokenKind::kInt;
        t->int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      return Status::Ok();
    }
    if (c == '\'' || c == '"') {
      const char quote = Advance();
      std::string payload;
      while (!AtEnd() && Peek() != quote) {
        payload += Advance();
      }
      if (AtEnd()) return ErrorHere("unterminated string");
      Advance();  // closing quote
      t->kind = quote == '\'' ? TokenKind::kString : TokenKind::kQuotedIdent;
      t->text = std::move(payload);
      return Status::Ok();
    }
    Advance();
    switch (c) {
      case '{':
        t->kind = TokenKind::kLBrace;
        return Status::Ok();
      case '}':
        t->kind = TokenKind::kRBrace;
        return Status::Ok();
      case '(':
        t->kind = TokenKind::kLParen;
        return Status::Ok();
      case ')':
        t->kind = TokenKind::kRParen;
        return Status::Ok();
      case '[':
        t->kind = TokenKind::kLBracket;
        return Status::Ok();
      case ']':
        t->kind = TokenKind::kRBracket;
        return Status::Ok();
      case ',':
        t->kind = TokenKind::kComma;
        return Status::Ok();
      case '.':
        t->kind = TokenKind::kDot;
        return Status::Ok();
      case '|':
        t->kind = TokenKind::kPipe;
        return Status::Ok();
      case '=':
        t->kind = TokenKind::kEq;
        return Status::Ok();
      case '<':
        if (Peek() == '=') {
          Advance();
          t->kind = TokenKind::kLe;
        } else if (Peek() == '>') {
          Advance();
          t->kind = TokenKind::kNe;
        } else {
          t->kind = TokenKind::kLt;
        }
        return Status::Ok();
      case '>':
        if (Peek() == '=') {
          Advance();
          t->kind = TokenKind::kGe;
        } else {
          t->kind = TokenKind::kGt;
        }
        return Status::Ok();
      case '!':
        if (Peek() == '=') {
          Advance();
          t->kind = TokenKind::kNe;
          return Status::Ok();
        }
        return ErrorHere("unexpected '!'");
      case '+':
        t->kind = TokenKind::kPlus;
        return Status::Ok();
      case '-':
        t->kind = TokenKind::kMinus;
        return Status::Ok();
      case '*':
        t->kind = TokenKind::kStar;
        return Status::Ok();
      case '/':
        t->kind = TokenKind::kSlash;
        return Status::Ok();
      case '%':
        t->kind = TokenKind::kPercent;
        return Status::Ok();
      default:
        return ErrorHere(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  return LexerImpl(input).Run();
}

}  // namespace arc::text
