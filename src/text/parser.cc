#include "text/parser.h"

#include <vector>

#include "text/lexer.h"

namespace arc::text {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Program_() {
    Program program;
    while (true) {
      if (Check(TokenKind::kAbstract)) {
        Advance();
        ARC_RETURN_IF_ERROR(Expect(TokenKind::kDefine));
        ARC_ASSIGN_OR_RETURN(CollectionPtr c, Collection_());
        Definition def;
        def.kind = DefKind::kAbstract;
        def.collection = std::move(c);
        program.definitions.push_back(std::move(def));
      } else if (Check(TokenKind::kDefine)) {
        Advance();
        ARC_ASSIGN_OR_RETURN(CollectionPtr c, Collection_());
        Definition def;
        def.kind = DefKind::kIntensional;
        def.collection = std::move(c);
        program.definitions.push_back(std::move(def));
      } else {
        break;
      }
    }
    if (Check(TokenKind::kLBrace)) {
      ARC_ASSIGN_OR_RETURN(program.main.collection, Collection_());
    } else {
      ARC_ASSIGN_OR_RETURN(program.main.sentence, Formula_());
    }
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return program;
  }

  Result<CollectionPtr> CollectionOnly() {
    ARC_ASSIGN_OR_RETURN(CollectionPtr c, Collection_());
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return c;
  }

  Result<FormulaPtr> FormulaOnly() {
    ARC_ASSIGN_OR_RETURN(FormulaPtr f, Formula_());
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return f;
  }

  Result<TermPtr> TermOnly() {
    ARC_ASSIGN_OR_RETURN(TermPtr t, Term_());
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return t;
  }

  Result<JoinNodePtr> JoinTreeOnly() {
    ARC_ASSIGN_OR_RETURN(JoinNodePtr t, JoinTree_());
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return t;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind k, size_t ahead = 0) const {
    return Peek(ahead).kind == k;
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind k) {
    if (Check(k)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ErrorAt(const Token& t, const std::string& message) const {
    return ParseError(message + " at " + std::to_string(t.line) + ":" +
                      std::to_string(t.column));
  }

  Status Expect(TokenKind k) {
    if (Match(k)) return Status::Ok();
    return ErrorAt(Peek(), std::string("expected ") + TokenKindName(k) +
                               ", found " + TokenKindName(Peek().kind));
  }

  /// Identifier-like token usable as a name; keywords are allowed where a
  /// name is expected after a dot (e.g. Minus.left).
  Result<std::string> NameToken(bool allow_keywords) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIdent:
      case TokenKind::kQuotedIdent:
        Advance();
        return t.text;
      default:
        if (allow_keywords && !t.text.empty()) {
          Advance();
          return t.text;
        }
        return ErrorAt(t, std::string("expected a name, found ") +
                              TokenKindName(t.kind));
    }
  }

  // ---- collections ---------------------------------------------------------

  Result<CollectionPtr> Collection_() {
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    Head head;
    ARC_ASSIGN_OR_RETURN(head.relation, NameToken(/*allow_keywords=*/false));
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    while (true) {
      ARC_ASSIGN_OR_RETURN(std::string attr, NameToken(/*allow_keywords=*/true));
      head.attrs.push_back(std::move(attr));
      if (!Match(TokenKind::kComma)) break;
    }
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kPipe));
    ARC_ASSIGN_OR_RETURN(FormulaPtr body, Formula_());
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return MakeCollection(std::move(head), std::move(body));
  }

  // ---- formulas -------------------------------------------------------------

  Result<FormulaPtr> Formula_() {
    ARC_ASSIGN_OR_RETURN(FormulaPtr first, Conj_());
    if (!Check(TokenKind::kOr)) return first;
    std::vector<FormulaPtr> children;
    children.push_back(std::move(first));
    while (Match(TokenKind::kOr)) {
      ARC_ASSIGN_OR_RETURN(FormulaPtr next, Conj_());
      children.push_back(std::move(next));
    }
    return MakeOr(std::move(children));
  }

  Result<FormulaPtr> Conj_() {
    ARC_ASSIGN_OR_RETURN(FormulaPtr first, Unary_());
    if (!Check(TokenKind::kAnd)) return first;
    std::vector<FormulaPtr> children;
    children.push_back(std::move(first));
    while (Match(TokenKind::kAnd)) {
      ARC_ASSIGN_OR_RETURN(FormulaPtr next, Unary_());
      children.push_back(std::move(next));
    }
    return MakeAnd(std::move(children));
  }

  Result<FormulaPtr> Unary_() {
    if (Match(TokenKind::kNot)) {
      ARC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      ARC_ASSIGN_OR_RETURN(FormulaPtr inner, Formula_());
      ARC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return MakeNot(std::move(inner));
    }
    if (Check(TokenKind::kExists)) return Exists_();
    if (Check(TokenKind::kLParen)) {
      // Could be a parenthesized formula or a parenthesized term starting a
      // predicate; try the formula reading first and backtrack on failure.
      const size_t saved = pos_;
      Advance();
      auto inner = Formula_();
      if (inner.ok() && Match(TokenKind::kRParen)) {
        // Ensure this is not actually a term: a formula followed by a
        // comparison operator means we mis-parsed.
        if (!CheckCmpStart()) return std::move(inner).value();
      }
      pos_ = saved;
    }
    return Predicate_();
  }

  bool CheckCmpStart() const {
    switch (Peek().kind) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
      case TokenKind::kIs:
      case TokenKind::kPlus:
      case TokenKind::kMinus:
      case TokenKind::kStar:
      case TokenKind::kSlash:
      case TokenKind::kPercent:
        return true;
      default:
        return false;
    }
  }

  Result<FormulaPtr> Exists_() {
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kExists));
    auto quantifier = std::make_unique<Quantifier>();
    while (true) {
      if (Check(TokenKind::kGamma)) {
        Advance();
        if (quantifier->grouping.has_value()) {
          return ErrorAt(Peek(), "multiple grouping operators in one scope");
        }
        Grouping grouping;
        if (Match(TokenKind::kLParen)) {
          if (!Check(TokenKind::kRParen)) {
            while (true) {
              ARC_ASSIGN_OR_RETURN(TermPtr key, Term_());
              grouping.keys.push_back(std::move(key));
              if (!Match(TokenKind::kComma)) break;
            }
          }
          ARC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        } else if (Check(TokenKind::kIdent) && Peek().text == "∅") {
          Advance();  // γ∅ — bare empty-set subscript
        }
        quantifier->grouping = std::move(grouping);
      } else if ((Check(TokenKind::kInner) || Check(TokenKind::kLeftKw) ||
                  Check(TokenKind::kFullKw)) &&
                 Check(TokenKind::kLParen, 1)) {
        if (quantifier->join_tree) {
          return ErrorAt(Peek(), "multiple join annotations in one scope");
        }
        ARC_ASSIGN_OR_RETURN(quantifier->join_tree, JoinTree_());
      } else {
        Binding binding;
        ARC_ASSIGN_OR_RETURN(binding.var, NameToken(/*allow_keywords=*/false));
        ARC_RETURN_IF_ERROR(Expect(TokenKind::kIn));
        if (Check(TokenKind::kLBrace)) {
          binding.range_kind = RangeKind::kCollection;
          ARC_ASSIGN_OR_RETURN(binding.collection, Collection_());
        } else {
          binding.range_kind = RangeKind::kNamed;
          ARC_ASSIGN_OR_RETURN(binding.relation,
                               NameToken(/*allow_keywords=*/false));
        }
        quantifier->bindings.push_back(std::move(binding));
      }
      if (!Match(TokenKind::kComma)) break;
    }
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    ARC_ASSIGN_OR_RETURN(quantifier->body, Formula_());
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    return MakeExists(std::move(quantifier));
  }

  Result<JoinNodePtr> JoinTree_() {
    JoinKind kind;
    if (Match(TokenKind::kInner)) {
      kind = JoinKind::kInner;
    } else if (Match(TokenKind::kLeftKw)) {
      kind = JoinKind::kLeft;
    } else if (Match(TokenKind::kFullKw)) {
      kind = JoinKind::kFull;
    } else {
      return ErrorAt(Peek(), "expected a join annotation");
    }
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<JoinNodePtr> children;
    while (true) {
      ARC_ASSIGN_OR_RETURN(JoinNodePtr leaf, JoinLeaf_());
      children.push_back(std::move(leaf));
      if (!Match(TokenKind::kComma)) break;
    }
    ARC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (kind != JoinKind::kInner && children.size() != 2) {
      return ErrorAt(Peek(), "left/full join annotations take two operands");
    }
    auto node = std::make_unique<JoinNode>();
    node->kind = kind;
    node->children = std::move(children);
    return node;
  }

  Result<JoinNodePtr> JoinLeaf_() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInner:
      case TokenKind::kLeftKw:
      case TokenKind::kFullKw:
        return JoinTree_();
      case TokenKind::kIdent:
        Advance();
        return MakeJoinVar(t.text);
      case TokenKind::kInt:
        Advance();
        return MakeJoinLiteral(data::Value::Int(t.int_value));
      case TokenKind::kFloat:
        Advance();
        return MakeJoinLiteral(data::Value::Double(t.float_value));
      case TokenKind::kString:
        Advance();
        return MakeJoinLiteral(data::Value::String(t.text));
      default:
        return ErrorAt(t, "expected a join operand");
    }
  }

  Result<FormulaPtr> Predicate_() {
    ARC_ASSIGN_OR_RETURN(TermPtr lhs, Term_());
    if (Match(TokenKind::kIs)) {
      const bool negated = Match(TokenKind::kNot);
      ARC_RETURN_IF_ERROR(Expect(TokenKind::kNull));
      return MakeNullTest(std::move(lhs), negated);
    }
    data::CmpOp op;
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kEq:
        op = data::CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = data::CmpOp::kNe;
        break;
      case TokenKind::kLt:
        op = data::CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = data::CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = data::CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = data::CmpOp::kGe;
        break;
      default:
        return ErrorAt(t, std::string("expected a comparison operator, found ") +
                              TokenKindName(t.kind));
    }
    Advance();
    ARC_ASSIGN_OR_RETURN(TermPtr rhs, Term_());
    return MakePredicate(op, std::move(lhs), std::move(rhs));
  }

  // ---- terms ------------------------------------------------------------

  Result<TermPtr> Term_() { return Additive_(); }

  Result<TermPtr> Additive_() {
    ARC_ASSIGN_OR_RETURN(TermPtr lhs, Multiplicative_());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const data::ArithOp op = Check(TokenKind::kPlus) ? data::ArithOp::kAdd
                                                       : data::ArithOp::kSub;
      Advance();
      ARC_ASSIGN_OR_RETURN(TermPtr rhs, Multiplicative_());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TermPtr> Multiplicative_() {
    ARC_ASSIGN_OR_RETURN(TermPtr lhs, Primary_());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      data::ArithOp op = data::ArithOp::kMul;
      if (Check(TokenKind::kSlash)) op = data::ArithOp::kDiv;
      if (Check(TokenKind::kPercent)) op = data::ArithOp::kMod;
      Advance();
      ARC_ASSIGN_OR_RETURN(TermPtr rhs, Primary_());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TermPtr> Primary_() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt:
        Advance();
        return MakeLiteral(data::Value::Int(t.int_value));
      case TokenKind::kFloat:
        Advance();
        return MakeLiteral(data::Value::Double(t.float_value));
      case TokenKind::kString:
        Advance();
        return MakeLiteral(data::Value::String(t.text));
      case TokenKind::kNull:
        Advance();
        return MakeLiteral(data::Value::Null());
      case TokenKind::kTrue:
        Advance();
        return MakeLiteral(data::Value::Bool(true));
      case TokenKind::kFalse:
        Advance();
        return MakeLiteral(data::Value::Bool(false));
      case TokenKind::kMinus: {
        Advance();
        ARC_ASSIGN_OR_RETURN(TermPtr inner, Primary_());
        if (inner->kind == TermKind::kLiteral && inner->literal.is_numeric()) {
          if (inner->literal.kind() == data::ValueKind::kInt) {
            return MakeLiteral(data::Value::Int(-inner->literal.as_int()));
          }
          return MakeLiteral(data::Value::Double(-inner->literal.as_double()));
        }
        return MakeArith(data::ArithOp::kSub,
                         MakeLiteral(data::Value::Int(0)), std::move(inner));
      }
      case TokenKind::kLParen: {
        Advance();
        ARC_ASSIGN_OR_RETURN(TermPtr inner, Term_());
        ARC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kIdent: {
        // Aggregate call?
        auto agg = AggFuncFromName(t.text);
        if (agg.has_value() && Check(TokenKind::kLParen, 1)) {
          Advance();
          Advance();
          if (Match(TokenKind::kStar)) {
            ARC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
            if (*agg != AggFunc::kCount && *agg != AggFunc::kCountStar) {
              return ErrorAt(t, "only count accepts '*'");
            }
            return MakeAggregate(AggFunc::kCountStar, nullptr);
          }
          ARC_ASSIGN_OR_RETURN(TermPtr arg, Term_());
          ARC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          return MakeAggregate(*agg, std::move(arg));
        }
        // Attribute reference var.attr.
        Advance();
        ARC_RETURN_IF_ERROR(Expect(TokenKind::kDot));
        ARC_ASSIGN_OR_RETURN(std::string attr, NameToken(/*allow_keywords=*/true));
        return MakeAttrRef(t.text, std::move(attr));
      }
      default:
        return ErrorAt(t, std::string("expected a term, found ") +
                              TokenKindName(t.kind));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).Program_();
}

Result<CollectionPtr> ParseCollection(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).CollectionOnly();
}

Result<FormulaPtr> ParseFormula(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).FormulaOnly();
}

Result<TermPtr> ParseTerm(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).TermOnly();
}

Result<JoinNodePtr> ParseJoinTree(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).JoinTreeOnly();
}

}  // namespace arc::text
