// Text modalities of ARC (§2.2):
//  * the comprehension syntax, e.g.
//      {Q(A,sm) | exists r in R, gamma(r.A) [Q.A = r.A and Q.sm = sum(r.B)]}
//    with an optional Unicode rendering (∃, ∈, ∧, ∨, ¬, γ) matching the
//    paper's notation, and
//  * the ALT tree rendering used in the paper's figures:
//      COLLECTION
//        HEAD: Q(A,sm)
//        QUANTIFIER exists
//          BINDING: r in R
//          GROUPING: r.A
//          AND
//            PREDICATE: Q.A = r.A
//            PREDICATE: Q.sm = sum(r.B)
// Both renderings are lossless: text/parser.h parses them back.
#ifndef ARC_TEXT_PRINTER_H_
#define ARC_TEXT_PRINTER_H_

#include <string>

#include "arc/ast.h"

namespace arc::text {

struct PrintOptions {
  /// Render ∃/∈/∧/∨/¬/γ instead of exists/in/and/or/not/gamma.
  bool unicode = false;
};

std::string PrintTerm(const Term& term, const PrintOptions& options = {});
std::string PrintFormula(const Formula& formula,
                         const PrintOptions& options = {});
std::string PrintCollection(const Collection& collection,
                            const PrintOptions& options = {});
std::string PrintJoinTree(const JoinNode& node,
                          const PrintOptions& options = {});
/// Definitions first (one per line), then the main query.
std::string PrintProgram(const Program& program,
                         const PrintOptions& options = {});

/// ALT (machine-facing) modality.
std::string PrintAltCollection(const Collection& collection);
std::string PrintAltFormula(const Formula& formula);
std::string PrintAltProgram(const Program& program);

}  // namespace arc::text

#endif  // ARC_TEXT_PRINTER_H_
