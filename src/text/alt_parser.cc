#include "text/alt_parser.h"

#include <vector>

#include "common/strings.h"
#include "text/parser.h"

namespace arc::text {

namespace {

struct Line {
  int indent = 0;       // nesting depth in 2-space units
  std::string content;  // trimmed text
  int number = 0;       // 1-based source line (diagnostics)
};

Result<std::vector<Line>> SplitIndented(std::string_view input) {
  std::vector<Line> lines;
  int number = 0;
  size_t pos = 0;
  while (pos <= input.size()) {
    const size_t end = input.find('\n', pos);
    std::string_view raw = input.substr(
        pos, end == std::string_view::npos ? std::string_view::npos
                                           : end - pos);
    ++number;
    pos = end == std::string_view::npos ? input.size() + 1 : end + 1;
    size_t spaces = 0;
    while (spaces < raw.size() && raw[spaces] == ' ') ++spaces;
    std::string_view content = raw.substr(spaces);
    while (!content.empty() && (content.back() == '\r' || content.back() == ' ')) {
      content.remove_suffix(1);
    }
    if (content.empty()) continue;
    if (spaces % 2 != 0) {
      return ParseError("odd indentation at line " + std::to_string(number));
    }
    lines.push_back({static_cast<int>(spaces / 2), std::string(content),
                     number});
  }
  return lines;
}

/// Stamps `line` onto every span-less node of a term tree (terms parsed out
/// of one ALT line all live on that line).
void StampTerm(Term* t, int line) {
  if (t == nullptr) return;
  if (t->line == 0) t->line = line;
  StampTerm(t->lhs.get(), line);
  StampTerm(t->rhs.get(), line);
  StampTerm(t->agg_arg.get(), line);
}

/// Stamps `line` onto a predicate-level formula (kPredicate / kNullTest and
/// their terms). Deeper structure keeps its own lines.
void StampPredicate(Formula* f, int line) {
  if (f == nullptr) return;
  if (f->line == 0) f->line = line;
  StampTerm(f->lhs.get(), line);
  StampTerm(f->rhs.get(), line);
  StampTerm(f->null_arg.get(), line);
  for (FormulaPtr& c : f->children) StampPredicate(c.get(), line);
  StampPredicate(f->child.get(), line);
}

class AltParser {
 public:
  explicit AltParser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Result<Program> Program_() {
    Program program;
    while (!AtEnd()) {
      const Line& line = Peek();
      if (line.content == "DEFINE" || line.content == "ABSTRACT DEFINE") {
        const bool is_abstract = line.content[0] == 'A';
        Advance();
        ARC_ASSIGN_OR_RETURN(CollectionPtr coll, Collection_(line.indent));
        Definition def;
        def.kind = is_abstract ? DefKind::kAbstract : DefKind::kIntensional;
        def.collection = std::move(coll);
        program.definitions.push_back(std::move(def));
        continue;
      }
      if (line.content == "COLLECTION") {
        ARC_ASSIGN_OR_RETURN(program.main.collection, Collection_(line.indent));
        break;
      }
      // Sentence: a bare formula tree.
      ARC_ASSIGN_OR_RETURN(program.main.sentence, Formula_(line.indent));
      break;
    }
    if (!AtEnd()) return ErrorHere("unexpected trailing content");
    if (!program.main.collection && !program.main.sentence) {
      return ParseError("empty ALT input");
    }
    return program;
  }

  Result<CollectionPtr> CollectionOnly() {
    if (AtEnd()) return ParseError("empty ALT input");
    ARC_ASSIGN_OR_RETURN(CollectionPtr coll, Collection_(Peek().indent));
    if (!AtEnd()) return ErrorHere("unexpected trailing content");
    return coll;
  }

 private:
  bool AtEnd() const { return pos_ >= lines_.size(); }
  const Line& Peek() const { return lines_[pos_]; }
  const Line& Advance() { return lines_[pos_++]; }

  Status ErrorHere(const std::string& message) const {
    if (AtEnd()) return ParseError(message + " at end of input");
    return ParseError(message + " at line " + std::to_string(Peek().number) +
                      ": '" + Peek().content + "'");
  }

  bool CheckAt(int indent, std::string_view prefix) const {
    return !AtEnd() && Peek().indent == indent &&
           StartsWith(Peek().content, prefix);
  }

  /// COLLECTION at `indent`, with HEAD and body at indent+1.
  Result<CollectionPtr> Collection_(int indent) {
    if (!CheckAt(indent, "COLLECTION")) return ErrorHere("expected COLLECTION");
    const int line = Advance().number;
    if (!CheckAt(indent + 1, "HEAD: ")) return ErrorHere("expected HEAD:");
    const std::string head_text = Advance().content.substr(6);
    Head head;
    ARC_RETURN_IF_ERROR(ParseHead(head_text, &head));
    ARC_ASSIGN_OR_RETURN(FormulaPtr body, Formula_(indent + 1));
    CollectionPtr coll = MakeCollection(std::move(head), std::move(body));
    coll->line = line;
    return coll;
  }

  static Status ParseHead(const std::string& text, Head* head) {
    const size_t open = text.find('(');
    const size_t close = text.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return ParseError("malformed HEAD '" + text + "'");
    }
    std::string name = text.substr(0, open);
    // Strip quotes from operator-named relations.
    if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
      name = name.substr(1, name.size() - 2);
    }
    head->relation = name;
    std::string attrs = text.substr(open + 1, close - open - 1);
    size_t start = 0;
    while (start <= attrs.size()) {
      size_t comma = attrs.find(',', start);
      std::string attr = attrs.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      while (!attr.empty() && attr.front() == ' ') attr.erase(attr.begin());
      while (!attr.empty() && attr.back() == ' ') attr.pop_back();
      if (attr.empty()) return ParseError("empty attribute in HEAD");
      head->attrs.push_back(std::move(attr));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return Status::Ok();
  }

  Result<FormulaPtr> Formula_(int indent) {
    if (AtEnd() || Peek().indent != indent) {
      return ErrorHere("expected a formula node at depth " +
                       std::to_string(indent));
    }
    const Line& line = Advance();
    if (line.content == "AND" || line.content == "OR") {
      std::vector<FormulaPtr> children;
      while (!AtEnd() && Peek().indent == indent + 1) {
        ARC_ASSIGN_OR_RETURN(FormulaPtr c, Formula_(indent + 1));
        children.push_back(std::move(c));
      }
      FormulaPtr f = line.content == "AND" ? MakeAnd(std::move(children))
                                           : MakeOr(std::move(children));
      f->line = line.number;
      return f;
    }
    if (line.content == "NOT") {
      ARC_ASSIGN_OR_RETURN(FormulaPtr child, Formula_(indent + 1));
      FormulaPtr f = MakeNot(std::move(child));
      f->line = line.number;
      return f;
    }
    if (StartsWith(line.content, "QUANTIFIER")) {
      return Quantifier_(indent, line.number);
    }
    if (StartsWith(line.content, "PREDICATE: ")) {
      ARC_ASSIGN_OR_RETURN(FormulaPtr f, ParseFormula(line.content.substr(11)));
      StampPredicate(f.get(), line.number);
      return f;
    }
    return ParseError("unknown ALT node at line " +
                      std::to_string(line.number) + ": '" + line.content +
                      "'");
  }

  /// The QUANTIFIER line has been consumed; children are at indent+1.
  Result<FormulaPtr> Quantifier_(int indent, int quantifier_line) {
    auto q = std::make_unique<Quantifier>();
    while (!AtEnd() && Peek().indent == indent + 1) {
      const Line& line = Peek();
      if (StartsWith(line.content, "BINDING: ")) {
        Advance();
        std::string spec = line.content.substr(9);
        Binding b;
        const size_t in_pos = spec.find(" in");
        if (in_pos == std::string::npos) {
          return ParseError("malformed BINDING at line " +
                            std::to_string(line.number));
        }
        b.var = spec.substr(0, in_pos);
        b.line = line.number;
        std::string range = spec.substr(in_pos + 3);
        while (!range.empty() && range.front() == ' ') range.erase(range.begin());
        if (range.empty()) {
          // Nested collection follows at indent+2.
          b.range_kind = RangeKind::kCollection;
          ARC_ASSIGN_OR_RETURN(b.collection, Collection_(indent + 2));
        } else {
          b.range_kind = RangeKind::kNamed;
          if (range.size() >= 2 && range.front() == '"' &&
              range.back() == '"') {
            range = range.substr(1, range.size() - 2);
          }
          b.relation = range;
        }
        q->bindings.push_back(std::move(b));
        continue;
      }
      if (StartsWith(line.content, "GROUPING: ")) {
        Advance();
        Grouping grouping;
        const std::string keys = line.content.substr(10);
        if (keys != "()") {
          size_t start = 0;
          while (start <= keys.size()) {
            size_t comma = keys.find(',', start);
            std::string key = keys.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start);
            ARC_ASSIGN_OR_RETURN(TermPtr term, ParseTerm(key));
            StampTerm(term.get(), line.number);
            grouping.keys.push_back(std::move(term));
            if (comma == std::string::npos) break;
            start = comma + 1;
          }
        }
        q->grouping = std::move(grouping);
        continue;
      }
      if (StartsWith(line.content, "JOIN: ")) {
        Advance();
        ARC_ASSIGN_OR_RETURN(q->join_tree,
                             ParseJoinTree(line.content.substr(6)));
        continue;
      }
      // Anything else is the body formula.
      break;
    }
    ARC_ASSIGN_OR_RETURN(q->body, Formula_(indent + 1));
    FormulaPtr f = MakeExists(std::move(q));
    f->line = quantifier_line;
    return f;
  }

  std::vector<Line> lines_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseAltProgram(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Line> lines, SplitIndented(input));
  return AltParser(std::move(lines)).Program_();
}

Result<CollectionPtr> ParseAltCollection(std::string_view input) {
  ARC_ASSIGN_OR_RETURN(std::vector<Line> lines, SplitIndented(input));
  return AltParser(std::move(lines)).CollectionOnly();
}

}  // namespace arc::text
