#include "text/printer.h"

#include <cctype>

#include "common/strings.h"

namespace arc::text {

namespace {

struct Keywords {
  const char* exists;
  const char* in;
  const char* and_;
  const char* or_;
  const char* not_;
  const char* gamma;
};

Keywords KeywordsFor(const PrintOptions& options) {
  if (options.unicode) {
    return {"∃", "∈", "∧", "∨", "¬", "γ"};
  }
  return {"exists", "in", "and", "or", "not", "gamma"};
}

// Operator-named relations ("*", "-") are printed quoted so the parser can
// read them back as relation names.
std::string RelationName(const std::string& name) {
  const bool identifier_like =
      !name.empty() &&
      (std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_');
  if (identifier_like) return name;
  return "\"" + name + "\"";
}

// Attribute names like "$1" need no quoting (the lexer accepts $-idents).

int TermPrecedence(const Term& t) {
  if (t.kind != TermKind::kArith) return 3;
  switch (t.arith_op) {
    case data::ArithOp::kMul:
    case data::ArithOp::kDiv:
    case data::ArithOp::kMod:
      return 2;
    default:
      return 1;
  }
}

std::string TermToString(const Term& t, const PrintOptions& options);

std::string TermChild(const Term& parent, const Term& child,
                      const PrintOptions& options, bool right_side) {
  std::string s = TermToString(child, options);
  const int pp = TermPrecedence(parent);
  const int cp = TermPrecedence(child);
  // Parenthesize lower-precedence children, and right children of equal
  // precedence (a - (b - c)).
  if (cp < pp || (right_side && cp == pp && child.kind == TermKind::kArith)) {
    return "(" + s + ")";
  }
  return s;
}

std::string TermToString(const Term& t, const PrintOptions& options) {
  switch (t.kind) {
    case TermKind::kAttrRef:
      return t.var + "." + t.attr;
    case TermKind::kLiteral:
      return t.literal.ToString();
    case TermKind::kArith:
      return TermChild(t, *t.lhs, options, false) + " " +
             data::ArithOpSymbol(t.arith_op) + " " +
             TermChild(t, *t.rhs, options, true);
    case TermKind::kAggregate: {
      if (t.agg_func == AggFunc::kCountStar) return "count(*)";
      return std::string(AggFuncName(t.agg_func)) + "(" +
             TermToString(*t.agg_arg, options) + ")";
    }
  }
  return "?";
}

std::string JoinTreeToString(const JoinNode& n, const PrintOptions& options) {
  switch (n.kind) {
    case JoinKind::kVarLeaf:
      return n.var;
    case JoinKind::kLiteralLeaf:
      return n.literal.ToString();
    case JoinKind::kInner:
    case JoinKind::kLeft:
    case JoinKind::kFull: {
      const char* name = n.kind == JoinKind::kInner
                             ? "inner"
                             : (n.kind == JoinKind::kLeft ? "left" : "full");
      return std::string(name) + "(" +
             JoinMapped(n.children, ", ",
                        [&](const JoinNodePtr& c) {
                          return JoinTreeToString(*c, options);
                        }) +
             ")";
    }
  }
  return "?";
}

// Formula precedence: or(1) < and(2) < unary(3).
int FormulaPrecedence(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kOr:
      return 1;
    case FormulaKind::kAnd:
      return 2;
    default:
      return 3;
  }
}

std::string FormulaToString(const Formula& f, const PrintOptions& options);
std::string CollectionToString(const Collection& c, const PrintOptions& options);

std::string FormulaChild(const Formula& f, const PrintOptions& options,
                         int parent_precedence) {
  std::string s = FormulaToString(f, options);
  if (FormulaPrecedence(f) < parent_precedence) return "(" + s + ")";
  return s;
}

std::string QuantifierToString(const Quantifier& q,
                               const PrintOptions& options) {
  const Keywords kw = KeywordsFor(options);
  std::string out = kw.exists;
  out += " ";
  bool first = true;
  for (const Binding& b : q.bindings) {
    if (!first) out += ", ";
    first = false;
    out += b.var;
    out += " ";
    out += kw.in;
    out += " ";
    if (b.range_kind == RangeKind::kNamed) {
      out += RelationName(b.relation);
    } else {
      out += CollectionToString(*b.collection, options);
    }
  }
  if (q.grouping.has_value()) {
    out += ", ";
    out += kw.gamma;
    out += "(";
    out += JoinMapped(q.grouping->keys, ", ", [&](const TermPtr& k) {
      return TermToString(*k, options);
    });
    out += ")";
  }
  if (q.join_tree) {
    out += ", ";
    out += JoinTreeToString(*q.join_tree, options);
  }
  out += " [";
  out += FormulaToString(*q.body, options);
  out += "]";
  return out;
}

std::string FormulaToString(const Formula& f, const PrintOptions& options) {
  const Keywords kw = KeywordsFor(options);
  switch (f.kind) {
    case FormulaKind::kAnd:
      if (f.children.empty()) return "true";
      return JoinMapped(f.children, std::string(" ") + kw.and_ + " ",
                        [&](const FormulaPtr& c) {
                          return FormulaChild(*c, options, 2);
                        });
    case FormulaKind::kOr:
      if (f.children.empty()) return "false";
      return JoinMapped(f.children, std::string(" ") + kw.or_ + " ",
                        [&](const FormulaPtr& c) {
                          return FormulaChild(*c, options, 1);
                        });
    case FormulaKind::kNot:
      return std::string(kw.not_) + "(" + FormulaToString(*f.child, options) +
             ")";
    case FormulaKind::kExists:
      return QuantifierToString(*f.quantifier, options);
    case FormulaKind::kPredicate:
      return TermToString(*f.lhs, options) + " " +
             data::CmpOpSymbol(f.cmp_op) + " " +
             TermToString(*f.rhs, options);
    case FormulaKind::kNullTest:
      return TermToString(*f.null_arg, options) +
             (f.null_negated ? " is not null" : " is null");
  }
  return "?";
}

std::string CollectionToString(const Collection& c,
                               const PrintOptions& options) {
  std::string out = "{";
  out += RelationName(c.head.relation);
  out += "(";
  out += Join(c.head.attrs, ", ");
  out += ") | ";
  out += FormulaToString(*c.body, options);
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// ALT modality
// ---------------------------------------------------------------------------

class AltPrinter {
 public:
  std::string Print(const Collection& c) {
    Collection_(c, 0);
    return std::move(out_);
  }

  std::string Print(const Formula& f) {
    Formula_(f, 0);
    return std::move(out_);
  }

 private:
  void Line(int depth, const std::string& text) {
    out_ += Repeat("  ", depth);
    out_ += text;
    out_ += "\n";
  }

  void Collection_(const Collection& c, int depth) {
    Line(depth, "COLLECTION");
    Line(depth + 1, "HEAD: " + RelationName(c.head.relation) + "(" +
                        Join(c.head.attrs, ",") + ")");
    Formula_(*c.body, depth + 1);
  }

  void Formula_(const Formula& f, int depth) {
    const PrintOptions opts;
    switch (f.kind) {
      case FormulaKind::kAnd:
        Line(depth, "AND");
        for (const FormulaPtr& c : f.children) Formula_(*c, depth + 1);
        return;
      case FormulaKind::kOr:
        Line(depth, "OR");
        for (const FormulaPtr& c : f.children) Formula_(*c, depth + 1);
        return;
      case FormulaKind::kNot:
        Line(depth, "NOT");
        Formula_(*f.child, depth + 1);
        return;
      case FormulaKind::kExists: {
        const Quantifier& q = *f.quantifier;
        Line(depth, "QUANTIFIER exists");
        for (const Binding& b : q.bindings) {
          if (b.range_kind == RangeKind::kNamed) {
            Line(depth + 1, "BINDING: " + b.var + " in " +
                                RelationName(b.relation));
          } else {
            Line(depth + 1, "BINDING: " + b.var + " in");
            Collection_(*b.collection, depth + 2);
          }
        }
        if (q.grouping.has_value()) {
          Line(depth + 1,
               "GROUPING: " +
                   (q.grouping->keys.empty()
                        ? std::string("()")
                        : JoinMapped(q.grouping->keys, ", ",
                                     [&](const TermPtr& k) {
                                       return TermToString(*k, opts);
                                     })));
        }
        if (q.join_tree) {
          Line(depth + 1, "JOIN: " + JoinTreeToString(*q.join_tree, opts));
        }
        Formula_(*q.body, depth + 1);
        return;
      }
      case FormulaKind::kPredicate:
      case FormulaKind::kNullTest:
        Line(depth, "PREDICATE: " + FormulaToString(f, opts));
        return;
    }
  }

  std::string out_;
};

}  // namespace

std::string PrintTerm(const Term& term, const PrintOptions& options) {
  return TermToString(term, options);
}

std::string PrintFormula(const Formula& formula, const PrintOptions& options) {
  return FormulaToString(formula, options);
}

std::string PrintCollection(const Collection& collection,
                            const PrintOptions& options) {
  return CollectionToString(collection, options);
}

std::string PrintJoinTree(const JoinNode& node, const PrintOptions& options) {
  return JoinTreeToString(node, options);
}

std::string PrintProgram(const Program& program, const PrintOptions& options) {
  std::string out;
  for (const Definition& d : program.definitions) {
    out += d.kind == DefKind::kAbstract ? "abstract define " : "define ";
    out += CollectionToString(*d.collection, options);
    out += "\n";
  }
  if (program.main.collection) {
    out += CollectionToString(*program.main.collection, options);
  } else if (program.main.sentence) {
    out += FormulaToString(*program.main.sentence, options);
  }
  return out;
}

std::string PrintAltCollection(const Collection& collection) {
  return AltPrinter().Print(collection);
}

std::string PrintAltFormula(const Formula& formula) {
  return AltPrinter().Print(formula);
}

std::string PrintAltProgram(const Program& program) {
  std::string out;
  for (const Definition& d : program.definitions) {
    out += d.kind == DefKind::kAbstract ? "ABSTRACT DEFINE\n" : "DEFINE\n";
    out += AltPrinter().Print(*d.collection);
  }
  if (program.main.collection) {
    out += AltPrinter().Print(*program.main.collection);
  } else if (program.main.sentence) {
    out += AltPrinter().Print(*program.main.sentence);
  }
  return out;
}

}  // namespace arc::text
