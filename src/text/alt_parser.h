// Parser for the ALT tree modality — the indentation-structured machine
// format produced by PrintAltProgram/PrintAltCollection:
//
//   COLLECTION
//     HEAD: Q(A,sm)
//     QUANTIFIER exists
//       BINDING: r in R
//       GROUPING: r.A
//       AND
//         PREDICATE: Q.A = r.A
//         PREDICATE: Q.sm = sum(r.B)
//
// Together with the printer this makes the ALT a lossless, parseable
// exchange format (the natural NL2SQL intermediate target of §4/§5).
#ifndef ARC_TEXT_ALT_PARSER_H_
#define ARC_TEXT_ALT_PARSER_H_

#include <string_view>

#include "arc/ast.h"
#include "common/status.h"

namespace arc::text {

Result<Program> ParseAltProgram(std::string_view input);
Result<CollectionPtr> ParseAltCollection(std::string_view input);

}  // namespace arc::text

#endif  // ARC_TEXT_ALT_PARSER_H_
