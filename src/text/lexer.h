// Lexer for the ARC comprehension syntax. Accepts both the ASCII spelling
// (exists/in/and/or/not/gamma) and the paper's Unicode notation
// (∃, ∈, ∧, ∨, ¬, γ, ≤, ≥, ≠), which normalize to the same tokens.
#ifndef ARC_TEXT_LEXER_H_
#define ARC_TEXT_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace arc::text {

enum class TokenKind {
  kEnd,
  kIdent,        // foo, _x, $1
  kQuotedIdent,  // "..." — relation names like "*"
  kInt,
  kFloat,
  kString,  // '...'
  // Punctuation.
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kPipe,
  // Operators.
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  // Keywords (case-insensitive).
  kExists,
  kIn,
  kAnd,
  kOr,
  kNot,
  kGamma,
  kIs,
  kNull,
  kTrue,
  kFalse,
  kInner,
  kLeftKw,
  kFullKw,
  kDefine,
  kAbstract,
};

const char* TokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier / quoted-identifier / string payload
  int64_t int_value = 0;  // kInt
  double float_value = 0; // kFloat
  int line = 1;
  int column = 1;
};

/// Tokenizes `input`; the final token is always kEnd.
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace arc::text

#endif  // ARC_TEXT_LEXER_H_
