// The higraph modality (§2.2): the resolved ALT rendered as a hierarchical
// graph — nested regions for scopes (collection, quantifier, grouping,
// negation, disjunction), relation boxes with attribute rows, and cross
// edges for predicates. This is the data structure behind the paper's
// Relational-Diagram figures:
//   * grouping scopes have double borders, grouped attributes are shaded,
//   * assignment predicates are directed, decorated edges (§2.2 (ii)),
//   * aggregation terms appear as pseudo-rows ("sum(B)") in their scope,
//   * constant selections render inside the attribute row ("C = 0"),
//   * negation scopes are dashed regions,
//   * abstract-relation modules can stay collapsed or be expanded (§2.13.2).
//
// Renderers: ASCII (terminal), Graphviz DOT, and standalone SVG.
#ifndef ARC_HIGRAPH_HIGRAPH_H_
#define ARC_HIGRAPH_HIGRAPH_H_

#include <string>
#include <vector>

#include "arc/ast.h"
#include "common/status.h"

namespace arc::higraph {

enum class RegionKind {
  kCanvas,
  kCollection,  // a comprehension; contains the head box and body regions
  kScope,       // quantifier scope (double border when grouping)
  kNegation,    // ¬ region (dashed)
  kDisjunct,    // one branch of an OR
  kModule,      // collapsed abstract-relation module
};

struct Row {
  std::string text;     // "A", "C = 0", "sum(B)", "A is null"
  bool grouped = false; // grouping key: shaded
  bool is_pseudo = false;  // aggregate/selection pseudo-row
};

/// A relation box: a named range with its visible attribute rows.
struct Box {
  int id = -1;
  std::string relation;  // display label (relation name)
  std::string var;       // range variable (shown when it differs)
  bool is_head = false;
  std::vector<Row> rows;

  /// Finds (or appends) the row with exactly `text`; returns its index.
  int EnsureRow(const std::string& text, bool pseudo = false);
};

struct Region {
  int id = -1;
  RegionKind kind = RegionKind::kCanvas;
  std::string label;       // head name for collections, module name, "or"
  bool grouping = false;   // double border
  std::vector<int> boxes;  // Box ids
  std::vector<int> children;  // sub-Region ids
};

enum class EdgeStyle {
  kJoin,        // comparison between attributes (label carries the op)
  kAssignment,  // assignment predicate: directed, decorated
};

struct Edge {
  int from_box = -1;
  int from_row = -1;
  int to_box = -1;
  int to_row = -1;
  std::string label;  // "", "<", "<=", … ("=" joins stay unlabeled)
  EdgeStyle style = EdgeStyle::kJoin;
};

struct Higraph {
  std::vector<Region> regions;  // regions[0] is the canvas
  std::vector<Box> boxes;
  std::vector<Edge> edges;

  int64_t region_count() const { return static_cast<int64_t>(regions.size()); }
  int64_t box_count() const { return static_cast<int64_t>(boxes.size()); }
  int64_t edge_count() const { return static_cast<int64_t>(edges.size()); }
};

struct BuildOptions {
  /// Expand abstract-relation modules into sub-diagrams instead of showing
  /// a collapsed module node.
  bool expand_modules = false;
};

/// Builds the higraph for a program's main query (collection or sentence).
Result<Higraph> Build(const Program& program, const BuildOptions& options = {});

/// Terminal rendering: nested boxes indented per region, edge list below.
std::string ToAscii(const Higraph& h);

/// Graphviz rendering: regions as clusters, boxes as record nodes.
std::string ToDot(const Higraph& h);

/// Standalone SVG (simple recursive layout; no external dependencies).
std::string ToSvg(const Higraph& h);

}  // namespace arc::higraph

#endif  // ARC_HIGRAPH_HIGRAPH_H_
