#include "higraph/higraph.h"

#include <unordered_map>

#include "common/strings.h"
#include "text/printer.h"

namespace arc::higraph {

namespace {

std::string TermText(const Term& t) { return text::PrintTerm(t); }

class Builder {
 public:
  explicit Builder(const BuildOptions& options) : options_(options) {}

  Result<Higraph> Run(const Program& program) {
    Region canvas;
    canvas.id = 0;
    canvas.kind = RegionKind::kCanvas;
    h_.regions.push_back(canvas);
    for (const Definition& def : program.definitions) {
      if (def.kind == DefKind::kAbstract) {
        abstract_defs_[ToLower(def.collection->head.relation)] =
            def.collection.get();
      } else {
        // Intensional definitions are drawn as their own top-level
        // sub-diagrams on the canvas.
        ARC_RETURN_IF_ERROR(BuildCollection(*def.collection, 0));
      }
    }
    if (program.main.collection) {
      ARC_RETURN_IF_ERROR(BuildCollection(*program.main.collection, 0));
    } else if (program.main.sentence) {
      ARC_RETURN_IF_ERROR(BuildFormula(*program.main.sentence, 0));
    } else {
      return InvalidArgument("program has no main query");
    }
    return std::move(h_);
  }

 private:
  int NewRegion(RegionKind kind, int parent, std::string label = "") {
    Region r;
    r.id = static_cast<int>(h_.regions.size());
    r.kind = kind;
    r.label = std::move(label);
    h_.regions.push_back(std::move(r));
    h_.regions[static_cast<size_t>(parent)].children.push_back(
        h_.regions.back().id);
    return h_.regions.back().id;
  }

  int NewBox(int region, std::string relation, std::string var,
             bool is_head = false) {
    Box b;
    b.id = static_cast<int>(h_.boxes.size());
    b.relation = std::move(relation);
    b.var = std::move(var);
    b.is_head = is_head;
    h_.boxes.push_back(std::move(b));
    h_.regions[static_cast<size_t>(region)].boxes.push_back(h_.boxes.back().id);
    return h_.boxes.back().id;
  }

  // ---- variable environment -----------------------------------------------

  struct VarEntry {
    std::string name;
    int box = -1;
  };
  std::vector<VarEntry> env_;
  std::vector<std::pair<std::string, int>> heads_;  // head name → head box

  int LookupBox(const std::string& var) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (EqualsIgnoreCase(it->name, var)) return it->box;
    }
    for (auto it = heads_.rbegin(); it != heads_.rend(); ++it) {
      if (EqualsIgnoreCase(it->first, var)) return it->second;
    }
    return -1;
  }

  bool IsHeadName(const std::string& var) const {
    return !heads_.empty() && EqualsIgnoreCase(heads_.back().first, var);
  }

  // ---- construction --------------------------------------------------------

  Status BuildCollection(const Collection& c, int parent) {
    const int region = NewRegion(RegionKind::kCollection, parent,
                                 c.head.relation);
    const int head_box = NewBox(region, c.head.relation, "", /*is_head=*/true);
    for (const std::string& attr : c.head.attrs) {
      h_.boxes[static_cast<size_t>(head_box)].EnsureRow(attr);
    }
    heads_.emplace_back(c.head.relation, head_box);
    Status s = BuildFormula(*c.body, region);
    heads_.pop_back();
    return s;
  }

  Status BuildFormula(const Formula& f, int region) {
    switch (f.kind) {
      case FormulaKind::kAnd:
        for (const FormulaPtr& c : f.children) {
          ARC_RETURN_IF_ERROR(BuildFormula(*c, region));
        }
        return Status::Ok();
      case FormulaKind::kOr: {
        for (size_t i = 0; i < f.children.size(); ++i) {
          const int branch = NewRegion(RegionKind::kDisjunct, region,
                                       "or-" + std::to_string(i + 1));
          ARC_RETURN_IF_ERROR(BuildFormula(*f.children[i], branch));
        }
        return Status::Ok();
      }
      case FormulaKind::kNot: {
        const int neg = NewRegion(RegionKind::kNegation, region, "not");
        return BuildFormula(*f.child, neg);
      }
      case FormulaKind::kExists:
        return BuildScope(*f.quantifier, region);
      case FormulaKind::kPredicate:
      case FormulaKind::kNullTest:
        return AddPredicate(f, region);
    }
    return Internal("bad formula");
  }

  Status BuildScope(const Quantifier& q, int parent) {
    const int region = NewRegion(RegionKind::kScope, parent);
    h_.regions[static_cast<size_t>(region)].grouping = q.grouping.has_value();
    const size_t env_mark = env_.size();
    for (const Binding& b : q.bindings) {
      if (b.range_kind == RangeKind::kCollection) {
        // The nested collection is its own sub-diagram; references to the
        // binding variable link to the nested head's rows (§2.5: defined
        // relations "exist on the Canvas as independent topological
        // entities").
        ARC_RETURN_IF_ERROR(BuildCollection(*b.collection, region));
        // The head box is the most recently created head.
        int head_box = -1;
        for (auto it = h_.boxes.rbegin(); it != h_.boxes.rend(); ++it) {
          if (it->is_head &&
              EqualsIgnoreCase(it->relation, b.collection->head.relation)) {
            head_box = it->id;
            break;
          }
        }
        env_.push_back({b.var, head_box});
        continue;
      }
      auto mod = abstract_defs_.find(ToLower(b.relation));
      if (mod != abstract_defs_.end()) {
        if (options_.expand_modules) {
          const int mregion =
              NewRegion(RegionKind::kModule, region, b.relation);
          ARC_RETURN_IF_ERROR(BuildCollection(*mod->second, mregion));
          int head_box = -1;
          for (auto it = h_.boxes.rbegin(); it != h_.boxes.rend(); ++it) {
            if (it->is_head && EqualsIgnoreCase(it->relation, b.relation)) {
              head_box = it->id;
              break;
            }
          }
          env_.push_back({b.var, head_box});
        } else {
          const int mregion =
              NewRegion(RegionKind::kModule, region, b.relation);
          const int box = NewBox(mregion, "«" + b.relation + "»", b.var);
          env_.push_back({b.var, box});
        }
        continue;
      }
      const int box = NewBox(region, b.relation, b.var);
      env_.push_back({b.var, box});
    }
    if (q.grouping.has_value()) {
      for (const TermPtr& k : q.grouping->keys) {
        if (k->kind == TermKind::kAttrRef) {
          const int box = LookupBox(k->var);
          if (box >= 0) {
            Box& b = h_.boxes[static_cast<size_t>(box)];
            b.rows[static_cast<size_t>(b.EnsureRow(k->attr))].grouped = true;
          }
        }
      }
    }
    Status s = BuildFormula(*q.body, region);
    env_.resize(env_mark);
    return s;
  }

  /// Anchor of a term: (box, row) it should connect from.
  struct Anchor {
    int box = -1;
    int row = -1;
  };

  std::optional<Anchor> TermAnchor(const Term& t) {
    switch (t.kind) {
      case TermKind::kAttrRef: {
        const int box = LookupBox(t.var);
        if (box < 0) return std::nullopt;
        Anchor a;
        a.box = box;
        a.row = h_.boxes[static_cast<size_t>(box)].EnsureRow(t.attr);
        return a;
      }
      case TermKind::kAggregate:
      case TermKind::kArith: {
        // Pseudo-row in the box of the first referenced variable.
        std::string first_var;
        FindFirstVar(t, &first_var);
        if (first_var.empty()) return std::nullopt;
        const int box = LookupBox(first_var);
        if (box < 0) return std::nullopt;
        Anchor a;
        a.box = box;
        a.row = h_.boxes[static_cast<size_t>(box)].EnsureRow(TermText(t),
                                                             /*pseudo=*/true);
        return a;
      }
      case TermKind::kLiteral:
        return std::nullopt;
    }
    return std::nullopt;
  }

  static void FindFirstVar(const Term& t, std::string* out) {
    if (!out->empty()) return;
    switch (t.kind) {
      case TermKind::kAttrRef:
        *out = t.var;
        return;
      case TermKind::kArith:
        if (t.lhs) FindFirstVar(*t.lhs, out);
        if (t.rhs) FindFirstVar(*t.rhs, out);
        return;
      case TermKind::kAggregate:
        if (t.agg_arg) FindFirstVar(*t.agg_arg, out);
        return;
      case TermKind::kLiteral:
        return;
    }
  }

  Status AddPredicate(const Formula& f, int region) {
    (void)region;
    if (f.kind == FormulaKind::kNullTest) {
      auto anchor = TermAnchor(*f.null_arg);
      if (anchor.has_value() && f.null_arg->kind == TermKind::kAttrRef) {
        Box& b = h_.boxes[static_cast<size_t>(anchor->box)];
        b.EnsureRow(f.null_arg->attr +
                        (f.null_negated ? " is not null" : " is null"),
                    /*pseudo=*/true);
      }
      return Status::Ok();
    }
    // Assignment predicate? (H.attr = term for the innermost head.)
    auto head_side = [&](const TermPtr& t) {
      return t && t->kind == TermKind::kAttrRef && IsHeadName(t->var);
    };
    const bool l = head_side(f.lhs);
    const bool r = head_side(f.rhs);
    if (f.cmp_op == data::CmpOp::kEq && l != r) {
      const Term& head_term = l ? *f.lhs : *f.rhs;
      const Term& value_term = l ? *f.rhs : *f.lhs;
      const int head_box = heads_.back().second;
      const int head_row =
          h_.boxes[static_cast<size_t>(head_box)].EnsureRow(head_term.attr);
      auto value = TermAnchor(value_term);
      if (!value.has_value()) {
        // Constant assignment: text row inside the head box.
        Box& b = h_.boxes[static_cast<size_t>(head_box)];
        b.EnsureRow(head_term.attr + " = " + TermText(value_term),
                    /*pseudo=*/true);
        return Status::Ok();
      }
      Edge e;
      e.from_box = value->box;
      e.from_row = value->row;
      e.to_box = head_box;
      e.to_row = head_row;
      e.style = EdgeStyle::kAssignment;
      h_.edges.push_back(e);
      return Status::Ok();
    }
    auto lhs = f.lhs ? TermAnchor(*f.lhs) : std::nullopt;
    auto rhs = f.rhs ? TermAnchor(*f.rhs) : std::nullopt;
    if (lhs.has_value() && rhs.has_value()) {
      Edge e;
      e.from_box = lhs->box;
      e.from_row = lhs->row;
      e.to_box = rhs->box;
      e.to_row = rhs->row;
      if (f.cmp_op != data::CmpOp::kEq) e.label = data::CmpOpSymbol(f.cmp_op);
      h_.edges.push_back(e);
      return Status::Ok();
    }
    // Attribute vs. constant: selection text inside the row.
    if (lhs.has_value() != rhs.has_value()) {
      const Anchor& a = lhs.has_value() ? *lhs : *rhs;
      const Term& other = lhs.has_value() ? *f.rhs : *f.lhs;
      const Term& anchored = lhs.has_value() ? *f.lhs : *f.rhs;
      if (other.kind == TermKind::kLiteral &&
          anchored.kind == TermKind::kAttrRef) {
        data::CmpOp op = lhs.has_value() ? f.cmp_op : data::FlipCmpOp(f.cmp_op);
        Box& b = h_.boxes[static_cast<size_t>(a.box)];
        b.EnsureRow(anchored.attr + " " + data::CmpOpSymbol(op) + " " +
                        TermText(other),
                    /*pseudo=*/true);
      }
      return Status::Ok();
    }
    return Status::Ok();
  }

  const BuildOptions& options_;
  Higraph h_;
  std::unordered_map<std::string, const Collection*> abstract_defs_;
};

}  // namespace

int Box::EnsureRow(const std::string& text, bool pseudo) {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].text == text) return static_cast<int>(i);
  }
  Row row;
  row.text = text;
  row.is_pseudo = pseudo;
  rows.push_back(std::move(row));
  return static_cast<int>(rows.size() - 1);
}

Result<Higraph> Build(const Program& program, const BuildOptions& options) {
  return Builder(options).Run(program);
}

}  // namespace arc::higraph
