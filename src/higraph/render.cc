// Renderers for the higraph modality: ASCII (terminal), Graphviz DOT, and
// a dependency-free SVG writer with a simple recursive layout.
#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"
#include "higraph/higraph.h"

namespace arc::higraph {

namespace {

const char* RegionName(RegionKind k) {
  switch (k) {
    case RegionKind::kCanvas:
      return "canvas";
    case RegionKind::kCollection:
      return "collection";
    case RegionKind::kScope:
      return "scope";
    case RegionKind::kNegation:
      return "not";
    case RegionKind::kDisjunct:
      return "or";
    case RegionKind::kModule:
      return "module";
  }
  return "?";
}

std::string BoxTitle(const Box& b) {
  std::string title = b.relation;
  if (!b.var.empty() && !EqualsIgnoreCase(b.var, b.relation)) {
    title += " " + b.var;
  }
  if (b.is_head) title = "HEAD " + title;
  return title;
}

}  // namespace

// ---------------------------------------------------------------------------
// ASCII
// ---------------------------------------------------------------------------

std::string ToAscii(const Higraph& h) {
  std::string out;
  std::function<void(int, int)> walk = [&](int region_id, int depth) {
    const Region& r = h.regions[static_cast<size_t>(region_id)];
    if (r.kind != RegionKind::kCanvas) {
      out += Repeat("  ", depth);
      out += "[";
      out += RegionName(r.kind);
      if (r.grouping) out += " γ";
      if (!r.label.empty()) out += " " + r.label;
      out += "]\n";
    }
    for (int box_id : r.boxes) {
      const Box& b = h.boxes[static_cast<size_t>(box_id)];
      out += Repeat("  ", depth + 1);
      out += BoxTitle(b);
      out += ": |";
      for (const Row& row : b.rows) {
        out += " " + row.text + (row.grouped ? "*" : "") + " |";
      }
      out += "\n";
    }
    for (int child : r.children) walk(child, depth + 1);
  };
  walk(0, -1);
  if (!h.edges.empty()) {
    out += "edges:\n";
    for (const Edge& e : h.edges) {
      const Box& from = h.boxes[static_cast<size_t>(e.from_box)];
      const Box& to = h.boxes[static_cast<size_t>(e.to_box)];
      out += "  " + BoxTitle(from) + "." +
             from.rows[static_cast<size_t>(e.from_row)].text;
      if (e.style == EdgeStyle::kAssignment) {
        out += " ==> ";
      } else {
        out += " --" + (e.label.empty() ? std::string("=") : e.label) + "-- ";
      }
      out += BoxTitle(to) + "." + to.rows[static_cast<size_t>(e.to_row)].text;
      out += "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DOT
// ---------------------------------------------------------------------------

namespace {

std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '|' ||
        c == '<' || c == '>') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string ToDot(const Higraph& h) {
  std::ostringstream out;
  out << "digraph higraph {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=record, fontname=\"Helvetica\"];\n"
      << "  compound=true;\n";
  std::function<void(int, int)> walk = [&](int region_id, int depth) {
    const Region& r = h.regions[static_cast<size_t>(region_id)];
    const std::string indent = Repeat("  ", depth + 1);
    const bool cluster = r.kind != RegionKind::kCanvas;
    if (cluster) {
      out << indent << "subgraph cluster_" << r.id << " {\n";
      out << indent << "  label=\"" << DotEscape(r.label) << "\";\n";
      switch (r.kind) {
        case RegionKind::kNegation:
          out << indent << "  style=dashed; color=red;\n";
          break;
        case RegionKind::kCollection:
          out << indent << "  style=solid; color=black;\n";
          break;
        case RegionKind::kScope:
          out << indent
              << (r.grouping ? "  style=bold; peripheries=2;\n"
                             : "  style=solid; color=gray50;\n");
          break;
        case RegionKind::kModule:
          out << indent << "  style=rounded; color=blue;\n";
          break;
        case RegionKind::kDisjunct:
          out << indent << "  style=dotted;\n";
          break;
        case RegionKind::kCanvas:
          break;
      }
    }
    for (int box_id : r.boxes) {
      const Box& b = h.boxes[static_cast<size_t>(box_id)];
      out << indent << "  box" << b.id << " [label=\"{"
          << DotEscape(BoxTitle(b));
      for (size_t i = 0; i < b.rows.size(); ++i) {
        out << "|<r" << i << "> " << DotEscape(b.rows[i].text)
            << (b.rows[i].grouped ? " ▦" : "");
      }
      out << "}\"";
      if (b.is_head) out << ", penwidth=2";
      out << "];\n";
    }
    for (int child : r.children) walk(child, depth + 1);
    if (cluster) out << indent << "}\n";
  };
  walk(0, 0);
  for (const Edge& e : h.edges) {
    out << "  box" << e.from_box << ":r" << e.from_row << " -> box"
        << e.to_box << ":r" << e.to_row;
    out << " [";
    if (e.style == EdgeStyle::kAssignment) {
      out << "arrowhead=normal, color=blue";
    } else {
      out << "arrowhead=none";
      if (!e.label.empty()) out << ", label=\"" << DotEscape(e.label) << "\"";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// SVG
// ---------------------------------------------------------------------------

namespace {

constexpr int kRowHeight = 18;
constexpr int kBoxHeaderHeight = 20;
constexpr int kPad = 10;
constexpr int kCharWidth = 7;

struct Placed {
  int x = 0, y = 0, w = 0, h = 0;
};

struct SvgLayout {
  std::unordered_map<int, Placed> regions;
  std::unordered_map<int, Placed> boxes;
};

int BoxWidth(const Box& b) {
  size_t longest = BoxTitle(b).size();
  for (const Row& r : b.rows) longest = std::max(longest, r.text.size() + 2);
  return static_cast<int>(longest) * kCharWidth + 2 * kPad;
}

int BoxHeight(const Box& b) {
  return kBoxHeaderHeight + static_cast<int>(b.rows.size()) * kRowHeight;
}

/// Recursive layout: boxes laid out left-to-right, child regions stacked
/// below them.
void LayoutRegion(const Higraph& h, int region_id, int x, int y,
                  SvgLayout* layout) {
  const Region& r = h.regions[static_cast<size_t>(region_id)];
  int cursor_x = x + kPad;
  int row_bottom = y + kPad + (r.kind == RegionKind::kCanvas ? 0 : 14);
  int max_h = 0;
  for (int box_id : r.boxes) {
    const Box& b = h.boxes[static_cast<size_t>(box_id)];
    Placed p;
    p.x = cursor_x;
    p.y = row_bottom;
    p.w = BoxWidth(b);
    p.h = BoxHeight(b);
    layout->boxes[box_id] = p;
    cursor_x += p.w + kPad;
    max_h = std::max(max_h, p.h);
  }
  int child_y = row_bottom + (r.boxes.empty() ? 0 : max_h + kPad);
  int max_w = cursor_x - x;
  for (int child : r.children) {
    LayoutRegion(h, child, x + kPad, child_y, layout);
    const Placed& cp = layout->regions[child];
    child_y = cp.y + cp.h + kPad;
    max_w = std::max(max_w, cp.w + 2 * kPad);
  }
  Placed p;
  p.x = x;
  p.y = y;
  p.w = std::max(max_w, 60);
  p.h = child_y - y + kPad;
  layout->regions[region_id] = p;
}

std::string SvgEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToSvg(const Higraph& h) {
  SvgLayout layout;
  LayoutRegion(h, 0, 0, 0, &layout);
  const Placed& canvas = layout.regions[0];
  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << canvas.w + 20 << "\" height=\"" << canvas.h + 20
      << "\" font-family=\"Helvetica\" font-size=\"12\">\n";

  std::function<void(int)> draw_region = [&](int region_id) {
    const Region& r = h.regions[static_cast<size_t>(region_id)];
    const Placed& p = layout.regions[region_id];
    if (r.kind != RegionKind::kCanvas) {
      std::string stroke = "#555";
      std::string dash;
      if (r.kind == RegionKind::kNegation) {
        stroke = "#c00";
        dash = " stroke-dasharray=\"6,3\"";
      }
      if (r.kind == RegionKind::kModule) stroke = "#00c";
      out << "<rect x=\"" << p.x << "\" y=\"" << p.y << "\" width=\"" << p.w
          << "\" height=\"" << p.h << "\" fill=\"none\" stroke=\"" << stroke
          << "\"" << dash << " rx=\"6\"/>\n";
      if (r.grouping) {
        out << "<rect x=\"" << p.x + 3 << "\" y=\"" << p.y + 3
            << "\" width=\"" << p.w - 6 << "\" height=\"" << p.h - 6
            << "\" fill=\"none\" stroke=\"" << stroke << "\" rx=\"5\"/>\n";
      }
      std::string label = RegionName(r.kind);
      if (!r.label.empty()) label += " " + r.label;
      if (r.grouping) label += " γ";
      out << "<text x=\"" << p.x + 6 << "\" y=\"" << p.y + 13
          << "\" fill=\"" << stroke << "\" font-size=\"10\">"
          << SvgEscape(label) << "</text>\n";
    }
    for (int box_id : r.boxes) {
      const Box& b = h.boxes[static_cast<size_t>(box_id)];
      const Placed& bp = layout.boxes[box_id];
      out << "<rect x=\"" << bp.x << "\" y=\"" << bp.y << "\" width=\""
          << bp.w << "\" height=\"" << bp.h
          << "\" fill=\"#fff\" stroke=\"#000\""
          << (b.is_head ? " stroke-width=\"2\"" : "") << "/>\n";
      out << "<text x=\"" << bp.x + kPad << "\" y=\"" << bp.y + 14
          << "\" font-weight=\"bold\">" << SvgEscape(BoxTitle(b))
          << "</text>\n";
      for (size_t i = 0; i < b.rows.size(); ++i) {
        const int ry = bp.y + kBoxHeaderHeight + static_cast<int>(i) * kRowHeight;
        if (b.rows[i].grouped) {
          out << "<rect x=\"" << bp.x + 1 << "\" y=\"" << ry << "\" width=\""
              << bp.w - 2 << "\" height=\"" << kRowHeight
              << "\" fill=\"#ddd\"/>\n";
        }
        out << "<line x1=\"" << bp.x << "\" y1=\"" << ry << "\" x2=\""
            << bp.x + bp.w << "\" y2=\"" << ry
            << "\" stroke=\"#999\"/>\n";
        out << "<text x=\"" << bp.x + kPad << "\" y=\"" << ry + 13 << "\""
            << (b.rows[i].is_pseudo ? " font-style=\"italic\"" : "") << ">"
            << SvgEscape(b.rows[i].text) << "</text>\n";
      }
    }
    for (int child : r.children) draw_region(child);
  };
  draw_region(0);

  // Edges: straight lines between row midpoints.
  for (const Edge& e : h.edges) {
    const Placed& from = layout.boxes[e.from_box];
    const Placed& to = layout.boxes[e.to_box];
    const int y1 =
        from.y + kBoxHeaderHeight + e.from_row * kRowHeight + kRowHeight / 2;
    const int y2 =
        to.y + kBoxHeaderHeight + e.to_row * kRowHeight + kRowHeight / 2;
    // Leave from the nearer side.
    const int x1 = from.x + from.w / 2 < to.x + to.w / 2 ? from.x + from.w
                                                         : from.x;
    const int x2 = from.x + from.w / 2 < to.x + to.w / 2 ? to.x : to.x + to.w;
    const char* color = e.style == EdgeStyle::kAssignment ? "#00c" : "#333";
    out << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
        << "\" y2=\"" << y2 << "\" stroke=\"" << color << "\""
        << (e.style == EdgeStyle::kAssignment
                ? " marker-end=\"url(#arrow)\""
                : "")
        << "/>\n";
    if (!e.label.empty()) {
      out << "<text x=\"" << (x1 + x2) / 2 << "\" y=\"" << (y1 + y2) / 2 - 3
          << "\" fill=\"#333\" font-size=\"10\">" << SvgEscape(e.label)
          << "</text>\n";
    }
  }
  // Arrow marker definition.
  out << "<defs><marker id=\"arrow\" markerWidth=\"8\" markerHeight=\"8\" "
         "refX=\"6\" refY=\"3\" orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\" "
         "fill=\"#00c\"/></marker></defs>\n";
  out << "</svg>\n";
  return out.str();
}

}  // namespace arc::higraph
